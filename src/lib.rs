//! # set-timeliness
//!
//! A from-scratch Rust reproduction of **“Partial Synchrony Based on Set
//! Timeliness”** (Aguilera, Delporte-Gallet, Fauconnier, Toueg — PODC 2009):
//! the set-timeliness model, the partially synchronous system family
//! `S^i_{j,n}`, the Figure 2 *t-resilient k-anti-Ω* failure detector, the
//! `(t,k,n)`-agreement protocol stack built on it, the BG-simulation
//! reduction behind the impossibility side, and an experiment harness that
//! regenerates every figure and theorem of the paper as a measured table.
//!
//! This crate is the umbrella: it re-exports the workspace crates under
//! stable module names.
//!
//! ## Quickstart
//!
//! ```
//! use set_timeliness::core::{AgreementTask, SystemSpec, solvability};
//!
//! // The paper's headline: S^k_{t+1,n} exactly matches (t,k,n)-agreement.
//! let task = AgreementTask::new(2, 2, 5).unwrap();
//! let system = SystemSpec::new(2, 3, 5).unwrap();
//! assert!(solvability(&task, &system).unwrap().is_solvable());
//!
//! // One notch more resilience — or one notch stronger agreement — flips it.
//! let harder = AgreementTask::new(3, 2, 5).unwrap();
//! assert!(!solvability(&harder, &system).unwrap().is_solvable());
//! let stronger = AgreementTask::new(2, 1, 5).unwrap();
//! assert!(!solvability(&stronger, &system).unwrap().is_solvable());
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `stlab` binary (`cargo run -p st-lab --release --bin stlab -- all`) for
//! the paper's experiment suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The model layer: processes, schedules, set timeliness, systems,
/// solvability (re-export of `st-core`).
pub use st_core as core;

/// The deterministic shared-memory simulator (re-export of `st-sim`).
pub use st_sim as sim;

/// Schedule generators and proof-derived adversaries (re-export of
/// `st-sched`).
pub use st_sched as sched;

/// Collect / snapshot / adopt-commit objects (re-export of `st-registers`).
pub use st_registers as registers;

/// Failure detectors: Figure 2 k-anti-Ω and Ω (re-export of `st-fd`).
pub use st_fd as fd;

/// Agreement protocols and the adaptive adversary (re-export of
/// `st-agreement`).
pub use st_agreement as agreement;

/// The BG simulation substrate (re-export of `st-bgsim`).
pub use st_bgsim as bgsim;

/// The scenario-campaign engine: declarative scenario grids executed in
/// parallel with a deterministic merge (re-export of `st-campaign`).
pub use st_campaign as campaign;

/// The campaign daemon, wire protocol, and client (re-export of
/// `st-serve`).
pub use st_serve as serve;

/// The experiment harness (re-export of `st-lab`).
pub use st_lab as lab;
