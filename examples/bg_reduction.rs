//! The BG reduction, narrated.
//!
//! Theorem 26's impossibility proof runs `k+1` processes that jointly
//! simulate an `n`-process algorithm. This example executes that machinery
//! with `k = 2`, `n = 5`: three simulators drive five simulated processes,
//! one simulator crashes mid-run, and the output shows the two properties
//! the proof needs — at most one simulated process stalls (Property i) and
//! every 3-set of live simulated processes stays timely in the simulated
//! schedule (Property ii) — plus the simulators' adopted decisions.
//!
//! Run with: `cargo run --example bg_reduction`

use set_timeliness::bgsim::{run_reduction, TrivialKDecide};
use set_timeliness::core::subsets::KSubsets;
use set_timeliness::core::timeliness::empirical_bound;
use set_timeliness::core::{ProcSet, ProcessId, Universe, Value};
use set_timeliness::sched::{CrashAfter, CrashPlan, SeededRandom};

fn main() {
    let k = 2;
    let n_sim = 5;
    let simulators = k + 1;

    let machines: Vec<TrivialKDecide> = (0..n_sim)
        .map(|u| TrivialKDecide::new(u, k, 4100 + u as Value))
        .collect();

    // Simulator s0 crashes 80 host steps in — possibly inside a safe-
    // agreement unsafe zone.
    let host = Universe::new(simulators).expect("valid host universe");
    let plan = CrashPlan::new().crash(ProcessId::new(0), 80);
    let mut source = CrashAfter::new(SeededRandom::new(host, 11), plan);

    let report = run_reduction(simulators, machines, 128, &mut source, 4_000_000);

    println!("host: {simulators} simulators, 1 crashed; {n_sim} simulated processes");
    println!("host steps executed: {}", report.host_steps);

    println!("\nsimulated decisions:");
    for (u, d) in report.simulated_decisions.iter().enumerate() {
        println!("  sim-process {u}: {d:?}");
    }
    let stalled = report.stalled_simulated();
    println!(
        "stalled simulated processes: {stalled} (Property i: ≤ 1 with one crashed simulator: {})",
        stalled.len() <= 1
    );

    // Property (ii) on a surviving simulator's linearization.
    let sched = &report.simulated_schedules[simulators - 1];
    let sim_universe = Universe::new(n_sim).expect("valid simulated universe");
    let full = ProcSet::full(sim_universe);
    let mut worst = 0usize;
    for set in KSubsets::new(sim_universe, k + 1) {
        if set.is_disjoint(stalled) {
            worst = worst.max(empirical_bound(sched, set, full));
        }
    }
    println!(
        "worst (k+1)-set timeliness bound in the simulated schedule: {worst} \
         (Property ii: small constant)"
    );

    println!("\nsimulator adoptions (the (k,k,k+1)-agreement output of the reduction):");
    for (s, d) in report.simulator_decisions.iter().enumerate() {
        println!("  simulator {s}: {d:?}");
    }
    let distinct = report.distinct_simulator_values();
    println!(
        "distinct adopted values: {distinct} (≤ k = {k}: {})",
        distinct <= k
    );
}
