//! Synchrony profiles: the `(i, j)` landscape of each schedule family.
//!
//! For every generator shipped by `st-sched`, this example prints the
//! matrix of best empirical timeliness bounds per set-size pair `(i, j)` —
//! the observable signature of which systems `S^i_{j,n}` the schedule
//! belongs to. Reading the matrices side by side shows the whole model at a
//! glance: round-robin supports everything; Figure 1 opens a gap between
//! `i = 1` and `i = 2`; rotating starvation supports nothing below
//! `i = k + 1`; the fictitious-crash adversary supports exactly the
//! `(i, j)` cells its theorem names.
//!
//! Run with: `cargo run --release --example synchrony_profile`

use set_timeliness::core::stepsource::StepSource;
use set_timeliness::core::{ProcSet, SynchronyProfile, SystemSpec, Universe};
use set_timeliness::sched::{
    AlternatingRotation, FictitiousCrash, Figure1, RotatingStarvation, RoundRobin, SeededRandom,
};

fn show(name: &str, schedule: &set_timeliness::core::Schedule, n: usize, cap: usize) {
    let universe = Universe::new(n).expect("valid universe");
    let profile = SynchronyProfile::analyze(schedule, universe, cap);
    println!(
        "--- {name} (n = {n}, {} steps, cap {cap}) ---",
        schedule.len()
    );
    print!("{profile}");
    let frontier = profile.frontier();
    let rendered: Vec<String> = frontier.iter().map(|(i, j)| format!("({i},{j})")).collect();
    println!("frontier (smallest i per j): {}\n", rendered.join(" "));
}

fn main() {
    let n = 4;
    let len = 60_000;
    let cap = 16;
    let u = Universe::new(n).expect("valid universe");

    show("RoundRobin", &RoundRobin::new(u).take_schedule(len), n, cap);
    show(
        "SeededRandom",
        &SeededRandom::new(u, 7).take_schedule(len),
        n,
        cap,
    );
    show(
        "Figure1 (p0,p1 vs p2)",
        &Figure1::new(
            set_timeliness::core::ProcessId::new(0),
            set_timeliness::core::ProcessId::new(1),
            set_timeliness::core::ProcessId::new(2),
        )
        .take_schedule(len),
        3,
        cap,
    );
    show(
        "AlternatingRotation {01}{23}",
        &AlternatingRotation::new(&[ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])])
            .take_schedule(len),
        n,
        cap,
    );
    show(
        "RotatingStarvation k=1",
        &RotatingStarvation::new(u, 1).take_schedule(len),
        n,
        cap,
    );
    show(
        "FictitiousCrash S^1_{2,4} vs (2,1,4)",
        &FictitiousCrash::new(SystemSpec::new(1, 2, 4).expect("valid"), 2, 1).take_schedule(len),
        n,
        cap,
    );
}
