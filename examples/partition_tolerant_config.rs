//! Config fan-out under degraded synchrony: k-set agreement in action.
//!
//! Scenario: six replicas must converge on a configuration epoch, but the
//! deployment's synchrony is too weak for consensus — only a *pair* of
//! replicas is collectively timely (each individually flaps, as in
//! Figure 1). The paper says exactly what is achievable: with a 2-set
//! timely with respect to a quorum of 4, `S^2_{4,6}` solves
//! `(3,2,6)`-agreement — at most **two** configurations survive, which the
//! application then reconciles — while plain consensus (`k = 1`) is out of
//! reach in this system (Theorem 27: `i = 2 > k = 1`).
//!
//! Run with: `cargo run --example partition_tolerant_config`

use set_timeliness::agreement::AgreementStack;
use set_timeliness::core::{solvability, AgreementTask, ProcSet, SystemSpec, Value};
use set_timeliness::sched::{GeneralizedFigure1, SetTimely};

fn main() {
    let n = 6;
    let system = SystemSpec::new(2, 4, 6).expect("valid system");

    // What does theory allow in S^2_{4,6}?
    for k in [1usize, 2] {
        let task = AgreementTask::new(3, k, n).expect("valid task");
        println!(
            "{task} in {system}: {}",
            solvability(&task, &system).unwrap()
        );
    }

    // Proposals: each replica proposes its locally staged config epoch.
    let proposals: Vec<Value> = vec![7001, 7002, 7003, 7004, 7005, 7006];
    let task = AgreementTask::new(3, 2, n).expect("valid task");
    let stack = AgreementStack::build(task, &proposals);

    // The deployment's schedule: replicas 0 and 1 alternate Figure 1-style
    // (neither individually timely!), observed against a 4-replica quorum;
    // the SetTimely wrapper enforces exactly the S^2_{4,6} guarantee over
    // that hostile base.
    let pair = ProcSet::from_indices([0, 1]);
    let quorum = ProcSet::from_indices([2, 3, 4, 5]);
    let figure1_base = GeneralizedFigure1::new(pair, quorum);
    let mut source = SetTimely::new(pair, quorum, 10, figure1_base);

    let run = stack.run(&mut source, 30_000_000, ProcSet::EMPTY);
    println!("\nrun status: {:?}", run.status);

    let mut survivors: Vec<Value> = run.outcome.decisions.iter().flatten().copied().collect();
    survivors.sort_unstable();
    survivors.dedup();
    for replica in task.universe().processes() {
        println!(
            "  replica {replica}: staged {} -> adopted {:?}",
            proposals[replica.index()],
            run.outcome.decisions[replica.index()]
        );
    }
    println!(
        "\nsurviving configurations: {survivors:?} (k-agreement allows at most {})",
        task.k()
    );
    assert!(run.violations.is_empty(), "{:?}", run.violations);
    assert!(survivors.len() <= task.k());
    println!("checker: no violations — reconcile the (≤ 2) survivors at the app layer");
}
