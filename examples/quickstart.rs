//! Quickstart: the paper in five minutes.
//!
//! 1. Build the Figure 1 schedule and watch set timeliness beat process
//!    timeliness.
//! 2. Query the Theorem 27 solvability predicate.
//! 3. Run the full protocol stack — Figure 2 k-anti-Ω plus k-parallel
//!    Paxos — to solve 2-resilient consensus in `S^1_{3,4}`.
//!
//! Run with: `cargo run --example quickstart`

use set_timeliness::agreement::AgreementStack;
use set_timeliness::core::timeliness::empirical_bound;
use set_timeliness::core::{
    solvability, AgreementTask, ProcSet, ProcessId, StepSource, SystemSpec,
};
use set_timeliness::sched::{Figure1, SeededRandom, SetTimely};

fn main() {
    // --- 1. Set timeliness vs process timeliness (Figure 1) -------------
    let (p1, p2, q) = (ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
    let schedule = Figure1::new(p1, p2, q).take_schedule(20_000);
    let qs = ProcSet::singleton(q);
    println!("Figure 1 schedule, 20k-step prefix:");
    println!(
        "  empirical bound of {{p1}} wrt {{q}}:     {}",
        empirical_bound(&schedule, ProcSet::singleton(p1), qs)
    );
    println!(
        "  empirical bound of {{p2}} wrt {{q}}:     {}",
        empirical_bound(&schedule, ProcSet::singleton(p2), qs)
    );
    println!(
        "  empirical bound of {{p1,p2}} wrt {{q}}:  {}  <- a set can be timely when no member is",
        empirical_bound(&schedule, ProcSet::from_indices([0, 1]), qs)
    );

    // --- 2. The Theorem 27 predicate ------------------------------------
    let task = AgreementTask::new(2, 1, 4).expect("valid task"); // 2-resilient consensus, n = 4
    let system = SystemSpec::new(1, 3, 4).expect("valid system"); // S^1_{3,4}
    println!(
        "\n{task} in {system}: {}",
        solvability(&task, &system).unwrap()
    );

    // --- 3. Run the stack ------------------------------------------------
    let inputs = [10, 20, 30, 40];
    let stack = AgreementStack::build(task, &inputs);
    // A conforming schedule of S^1_{3,4}: {p0} timely wrt {p0,p1,p2}.
    let timely = ProcSet::from_indices([0]);
    let observed = ProcSet::from_indices([0, 1, 2]);
    let mut source = SetTimely::new(timely, observed, 6, SeededRandom::new(task.universe(), 42));
    let run = stack.run(&mut source, 3_000_000, ProcSet::EMPTY);

    println!("\nconsensus run ({:?}):", run.status);
    for p in task.universe().processes() {
        match run.outcome.decisions[p.index()] {
            Some(v) => println!("  {p} decided {v}"),
            None => println!("  {p} undecided"),
        }
    }
    println!(
        "checker: {}",
        if run.violations.is_empty() {
            "no violations".to_string()
        } else {
            format!("{:?}", run.violations)
        }
    );
}
