//! Leader election for a replicated control plane.
//!
//! The `k = 1` corner of the paper is the classic leader oracle Ω
//! (footnote 2): the Figure 2 winnerset becomes a single eventually-stable,
//! eventually-correct leader. This example runs a 5-node "control plane"
//! where nodes elect a leader through Ω, the current leader crashes twice,
//! and the oracle re-elects among survivors each time — the standard
//! failover story of leader-based replication, driven entirely by set
//! timeliness.
//!
//! Run with: `cargo run --example leader_election`

use set_timeliness::core::{ProcSet, ProcessId, Universe};
use set_timeliness::fd::Omega;
use set_timeliness::sched::{CrashAfter, CrashPlan, SeededRandom, SetTimely};
use set_timeliness::sim::{RunConfig, Sim};

const LEADER_PROBE: &str = "leader";

fn main() {
    let n = 5;
    let universe = Universe::new(n).expect("valid universe");
    let mut sim = Sim::new(universe);
    let omega = Omega::alloc(&mut sim, n - 1);

    for node in universe.processes() {
        let omega = omega.clone();
        sim.spawn(node, move |ctx| async move {
            let mut local = omega.local_state();
            loop {
                omega.iterate(&ctx, &mut local).await;
                ctx.probe(LEADER_PROBE, local.leader().index() as u64);
            }
        })
        .expect("fresh simulator");
    }

    // Failover script: p0 crashes at step 150k, then p1 at step 450k.
    // Synchrony: {p2} stays timely with respect to a majority — it is the
    // final leader candidate the oracle can settle on.
    let plan = CrashPlan::new()
        .crash(ProcessId::new(0), 150_000)
        .crash(ProcessId::new(1), 450_000);
    let filler = CrashAfter::new(SeededRandom::new(universe, 7), plan.clone());
    let timely = ProcSet::from_indices([2]);
    let observed = ProcSet::from_indices([1, 2, 3, 4]);
    let mut source = SetTimely::new(timely, observed, 8, filler).with_crashes(plan);

    sim.run(&mut source, RunConfig::steps(1_200_000)).unwrap();
    let report = sim.report();

    println!("leadership timeline (changes only), per node:");
    for node in universe.processes() {
        let timeline = report.probes.timeline(node, LEADER_PROBE);
        let mut changes: Vec<(u64, u64)> = Vec::new();
        for (step, leader) in timeline {
            if changes.last().map(|&(_, l)| l) != Some(leader) {
                changes.push((step, leader));
            }
        }
        let rendered: Vec<String> = changes
            .iter()
            .map(|(step, l)| format!("p{l}@{step}"))
            .collect();
        println!("  {node}: {}", rendered.join(" -> "));
    }

    let survivors = ProcSet::from_indices([2, 3, 4]);
    let final_leaders: Vec<Option<u64>> = survivors
        .iter()
        .map(|p| report.probes.last_value(p, LEADER_PROBE))
        .collect();
    println!("\nfinal leader at each survivor: {final_leaders:?}");
    assert!(
        final_leaders.iter().all(|&l| l == final_leaders[0]),
        "survivors must agree on the leader"
    );
    let leader = final_leaders[0].expect("survivors elected someone");
    assert!(
        survivors.contains(ProcessId::new(leader as usize)),
        "the final leader must be a survivor"
    );
    println!("converged on a correct leader: p{leader}");
}
