#!/usr/bin/env bash
# Doc-freshness check: PROTOCOL.md's verb table must list exactly the
# verbs the serve crate implements, in the same order.
#
# The code half is the `PROTOCOL-VERBS:` marker comment in
# crates/serve/src/protocol.rs, which a unit test pins to the `Verb`
# enum itself (`the_marker_comment_matches_the_enum`). So:
#
#   Verb enum  ==  marker comment  ==  PROTOCOL.md verb table
#   (unit test)    (this script)
#
# and neither the doc nor the code can silently drift.
set -euo pipefail
cd "$(dirname "$0")/.."

code_verbs=$(sed -n 's|^// PROTOCOL-VERBS: ||p' crates/serve/src/protocol.rs)
if [ -z "$code_verbs" ]; then
  echo "error: PROTOCOL-VERBS marker missing from crates/serve/src/protocol.rs" >&2
  exit 1
fi

# The verb table is the backtick-led rows of PROTOCOL.md's "## Verbs"
# section (stop at the first subsection so the error-kinds table, whose
# rows have the same shape, is never scanned).
doc_verbs=$(sed -n '/^## Verbs/,/^### /s/^| `\([a-z-]*\)` |.*/\1/p' PROTOCOL.md \
  | tr '\n' ' ' | sed 's/ $//')

if [ "$code_verbs" != "$doc_verbs" ]; then
  echo "error: PROTOCOL.md's verb table is stale" >&2
  echo "  code (crates/serve/src/protocol.rs): $code_verbs" >&2
  echo "  doc  (PROTOCOL.md):                  $doc_verbs" >&2
  echo "update the table under '## Verbs' in PROTOCOL.md" >&2
  exit 1
fi

echo "ok: PROTOCOL.md verb table matches the serve crate ($code_verbs)"
