//! The deterministic executor and run controller.
//!
//! A [`Sim`] owns the register arena, the spawned process futures, and the
//! trace. Driving it with a [`StepSource`] executes the schedule: each step
//! grants exactly one register operation to the scheduled process. The
//! executor is single-threaded and fully deterministic — the schedule is the
//! only source of nondeterminism in a run, which is precisely the model of
//! the paper.

use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use st_core::{AgreementOutcome, ProcSet, ProcessId, Schedule, StepSource, Universe, Value};

use crate::automaton::{Automaton, Status, StepAccess};
use crate::ctx::{ProcessCtx, SimShared};
use crate::error::SimError;
use crate::memory::{Memory, RegisterStats};
use crate::register::{Reg, RegValue, WriteDiscipline};
use crate::soa::{BatchAccess, PhaseBatch};
use crate::trace::{executed_schedule, Decision, ProbeLog, TraceInner};

/// Result of executing a single step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The process consumed its grant (performed one register operation or a
    /// pause) and is still running.
    Progressed,
    /// The process's future completed during this step.
    Finished,
    /// The scheduled process has no live automaton (never spawned, already
    /// finished, or crashed): the step is a no-op, as for a halted process
    /// in the model.
    Idle,
    /// The process polled `Pending` without consuming its grant — it is
    /// blocked on a non-simulator future, which deterministic execution
    /// cannot resolve.
    Stuck,
}

/// Why a [`Sim::run`] call returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunStatus {
    /// The stop condition fired.
    Stopped,
    /// The step budget was exhausted.
    MaxSteps,
    /// The step source ran out of steps.
    SourceEnded,
    /// A process got stuck (see [`StepOutcome::Stuck`]).
    Stuck(ProcessId),
}

/// Stop conditions checked after every executed step.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StopWhen {
    /// Never stop early; run until the budget or the source ends.
    #[default]
    Never,
    /// Stop once every member of the set has decided.
    AllDecided(ProcSet),
    /// Stop once every member of the set has finished (future completed).
    AllFinished(ProcSet),
    /// Stop at the first decision by any process.
    AnyDecided,
}

/// Universe-size threshold below which
/// [`run_automata_replay_soa`](Sim::run_automata_replay_soa) delegates to
/// the plain replay instead of batching.
///
/// Below this n, per-slice allotments are too short to stay inside one
/// phase's read run on realistic schedules: batching degenerates to the
/// scalar fallback and only pays the bucketing overhead (measured at
/// ~0.50× plain on the lean n = 12 workload before delegation —
/// `lean_n_scaling` in `BENCH_timeliness.json`). The crossover sits well
/// below 64; 32 keeps a safety margin on schedules with long dwells, which
/// batch profitably at any n via the uniform-slice fast path — a dwell of
/// length ≥ n/2 still clears the threshold's break-even on the workloads
/// measured.
pub const SOA_DELEGATE_BELOW_N: usize = 32;

/// Configuration of one `run` call.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Hard cap on executed steps for this call.
    pub max_steps: u64,
    /// Early-stop condition.
    pub stop: StopWhen,
}

impl RunConfig {
    /// Runs up to `max_steps` with no early stop.
    pub fn steps(max_steps: u64) -> Self {
        RunConfig {
            max_steps,
            stop: StopWhen::Never,
        }
    }

    /// Sets the stop condition.
    pub fn stop_when(mut self, stop: StopWhen) -> Self {
        self.stop = stop;
        self
    }
}

/// Snapshot of a run: decisions, probe log, statistics, and (optionally) the
/// executed schedule.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total steps executed so far.
    pub steps: u64,
    /// Per-process decision (indexed by process index).
    pub decisions: Vec<Option<Decision>>,
    /// Per-process completion flag.
    pub finished: Vec<bool>,
    /// The probe log.
    pub probes: ProbeLog,
    /// The executed schedule, when recording was enabled.
    pub executed: Option<Schedule>,
    /// Per-process completed register operations.
    pub op_counts: Vec<u64>,
    /// Per-register access statistics.
    pub register_stats: Vec<RegisterStats>,
}

impl RunReport {
    /// Decided value of process `p`, if any.
    pub fn decision_value(&self, p: ProcessId) -> Option<Value> {
        self.decisions[p.index()].map(|d| d.value)
    }

    /// The set of processes that decided.
    pub fn decided_set(&self) -> ProcSet {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(i, _)| ProcessId::new(i))
            .collect()
    }

    /// Step of the latest decision among `among`, if all of them decided.
    pub fn all_decided_step(&self, among: ProcSet) -> Option<u64> {
        let mut max = 0;
        for p in among.iter() {
            max = max.max(self.decisions[p.index()]?.step);
        }
        Some(max)
    }

    /// Packages the run as an [`AgreementOutcome`] for the `st-core`
    /// checkers.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` length differs from the number of processes.
    pub fn agreement_outcome(&self, inputs: &[Value], correct: ProcSet) -> AgreementOutcome {
        assert_eq!(
            inputs.len(),
            self.decisions.len(),
            "inputs length must be n"
        );
        AgreementOutcome {
            inputs: inputs.to_vec(),
            decisions: self.decisions.iter().map(|d| d.map(|x| x.value)).collect(),
            correct,
        }
    }
}

/// A live automaton: one of the two execution ABIs (see the crate docs).
enum Body {
    /// Async protocol over a [`ProcessCtx`]: driven through the poll/grant
    /// machinery.
    Future(Pin<Box<dyn Future<Output = ()>>>),
    /// Explicit state machine: driven directly, no poll, no grant cell.
    Machine(Box<dyn Automaton>),
}

struct Slot {
    body: Option<Body>,
    spawned: bool,
}

/// The deterministic shared-memory simulator.
///
/// # Examples
///
/// ```
/// use st_core::{Universe, ProcessId, ScheduleCursor, Schedule};
/// use st_sim::{Sim, RunConfig};
///
/// let mut sim = Sim::new(Universe::new(2).unwrap());
/// let reg = sim.alloc("token", 0u64);
/// for pid in sim.universe().processes() {
///     let ctx = sim.ctx(pid);
///     sim.spawn(pid, |ctx| async move {
///         let v = ctx.read(reg).await;
///         ctx.write(reg, v + 1).await;
///         ctx.decide(v + 1);
///     }).unwrap();
///     let _ = ctx; // ctx available for external inspection too
/// }
/// let mut src = ScheduleCursor::new(Schedule::from_indices([0, 0, 1, 1]));
/// sim.run(&mut src, RunConfig::steps(10)).unwrap();
/// let report = sim.report();
/// assert_eq!(report.decision_value(ProcessId::new(0)), Some(1));
/// assert_eq!(report.decision_value(ProcessId::new(1)), Some(2));
/// ```
pub struct Sim {
    shared: Rc<SimShared>,
    slots: Vec<Slot>,
    universe: Universe,
    finished: Vec<bool>,
    steps: u64,
}

impl Sim {
    /// Creates a simulator for `universe` without executed-schedule
    /// recording.
    pub fn new(universe: Universe) -> Self {
        Sim::with_recording(universe, false)
    }

    /// Creates a simulator, optionally recording the executed schedule (one
    /// `ProcessId` per step; enable for timeliness analysis of runs).
    pub fn with_recording(universe: Universe, record_schedule: bool) -> Self {
        let n = universe.n();
        Sim {
            shared: Rc::new(SimShared {
                memory: std::cell::RefCell::new(Memory::new()),
                grant: std::cell::Cell::new(None),
                step: std::cell::Cell::new(0),
                trace: std::cell::RefCell::new(TraceInner::new(n, record_schedule)),
                decided: std::cell::Cell::new(0),
                decided_count: std::cell::Cell::new(0),
                op_counts: (0..n).map(|_| std::cell::Cell::new(0)).collect(),
                recording: record_schedule,
                n,
            }),
            slots: (0..n)
                .map(|_| Slot {
                    body: None,
                    spawned: false,
                })
                .collect(),
            universe,
            finished: vec![false; n],
            steps: 0,
        }
    }

    /// The simulated universe.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// Allocates a multi-writer register.
    pub fn alloc<T: RegValue>(&mut self, name: impl Into<String>, init: T) -> Reg<T> {
        self.shared
            .memory
            .borrow_mut()
            .alloc(name, WriteDiscipline::MultiWriter, init)
    }

    /// Allocates a single-writer register owned by `owner`.
    pub fn alloc_sw<T: RegValue>(
        &mut self,
        name: impl Into<String>,
        owner: ProcessId,
        init: T,
    ) -> Reg<T> {
        self.shared
            .memory
            .borrow_mut()
            .alloc(name, WriteDiscipline::SingleWriter(owner), init)
    }

    /// Allocates `count` multi-writer registers named `name[0..count]`.
    pub fn alloc_array<T: RegValue>(&mut self, name: &str, count: usize, init: T) -> Vec<Reg<T>> {
        (0..count)
            .map(|i| self.alloc(format!("{name}[{i}]"), init.clone()))
            .collect()
    }

    /// Allocates one single-writer register per process, `name[p]` owned by
    /// `p` — the layout of `Heartbeat[p]` in Figure 2.
    pub fn alloc_per_process<T: RegValue>(&mut self, name: &str, init: T) -> Vec<Reg<T>> {
        self.universe
            .processes()
            .map(|p| self.alloc_sw(format!("{name}[{}]", p.index()), p, init.clone()))
            .collect()
    }

    /// A context handle for `pid` (for spawning helpers or external
    /// inspection).
    pub fn ctx(&self, pid: ProcessId) -> ProcessCtx {
        ProcessCtx::new(pid, Rc::clone(&self.shared))
    }

    /// Spawns the automaton of `pid` from an async closure over its context.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AlreadySpawned`] if `pid` was spawned before.
    pub fn spawn<F, Fut>(&mut self, pid: ProcessId, f: F) -> Result<(), SimError>
    where
        F: FnOnce(ProcessCtx) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        if self.slots[pid.index()].spawned {
            return Err(SimError::AlreadySpawned { process: pid });
        }
        let future = Box::pin(f(self.ctx(pid)));
        let slot = &mut self.slots[pid.index()];
        slot.body = Some(Body::Future(future));
        slot.spawned = true;
        Ok(())
    }

    /// Spawns the automaton of `pid` as an explicit state machine on the
    /// non-async fast path (see [`Automaton`]). Machine and async slots mix
    /// freely in one simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AlreadySpawned`] if `pid` was spawned before.
    pub fn spawn_automaton<A: Automaton + 'static>(
        &mut self,
        pid: ProcessId,
        automaton: A,
    ) -> Result<(), SimError> {
        if self.slots[pid.index()].spawned {
            return Err(SimError::AlreadySpawned { process: pid });
        }
        let slot = &mut self.slots[pid.index()];
        slot.body = Some(Body::Machine(Box::new(automaton)));
        slot.spawned = true;
        Ok(())
    }

    /// Executes one step by `p`.
    ///
    /// Steps of processes without a live automaton are no-ops (the halted
    /// automaton self-loops), but still count and are still recorded — they
    /// are real steps of the schedule.
    pub fn step_with(&mut self, p: ProcessId) -> StepOutcome {
        assert!(self.universe.contains(p), "{p} outside {}", self.universe);
        self.shared.step.set(self.steps);
        self.steps += 1;
        if self.shared.recording {
            if let Some(executed) = self.shared.trace.borrow_mut().executed.as_mut() {
                executed.push(p);
            }
        }

        let slot = &mut self.slots[p.index()];
        match slot.body.as_mut() {
            None => StepOutcome::Idle,
            Some(Body::Machine(machine)) => {
                // The fast path: no future, no grant handshake — the machine
                // gets a scoped direct view of the arena for this one step.
                let (status, op_used) = {
                    let mut memory = self.shared.memory.borrow_mut();
                    let mut access = StepAccess::new(p, self.steps - 1, &mut memory, &self.shared);
                    let status = machine.step(&mut access);
                    (status, access.op_performed())
                };
                if op_used {
                    let count = &self.shared.op_counts[p.index()];
                    count.set(count.get() + 1);
                }
                match status {
                    Status::Running => StepOutcome::Progressed,
                    Status::Done => {
                        slot.body = None;
                        self.finished[p.index()] = true;
                        StepOutcome::Finished
                    }
                }
            }
            Some(Body::Future(future)) => {
                self.shared.grant.set(Some(p));
                let mut cx = Context::from_waker(Waker::noop());
                let poll = future.as_mut().poll(&mut cx);
                let grant_left = self.shared.grant.take();

                match poll {
                    Poll::Ready(()) => {
                        slot.body = None;
                        self.finished[p.index()] = true;
                        StepOutcome::Finished
                    }
                    Poll::Pending if grant_left.is_none() => StepOutcome::Progressed,
                    Poll::Pending => StepOutcome::Stuck,
                }
            }
        }
    }

    /// Drives the simulation from `src` under `cfg`. Can be called again to
    /// continue the same simulation with a different source or budget.
    ///
    /// When no async slot is live the run dispatches to a specialized loop
    /// that holds the register-arena borrow for the **whole call** instead
    /// of re-entering the `RefCell` on every step — the state-machine ABI's
    /// "scoped direct view" in its cheapest form. Semantics are identical to
    /// the general loop.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleOutOfUniverse`] if `src` names a process
    /// outside the simulated universe. Steps produced before the offending
    /// one have executed normally (and are recorded when recording is on);
    /// the simulation remains usable.
    pub fn run<S: StepSource>(
        &mut self,
        src: &mut S,
        cfg: RunConfig,
    ) -> Result<RunStatus, SimError> {
        let machines_only = self
            .slots
            .iter()
            .all(|s| !matches!(s.body, Some(Body::Future(_))));
        if machines_only {
            return self.run_machines(src, cfg);
        }
        for _ in 0..cfg.max_steps {
            if self.stop_met(&cfg.stop) {
                return Ok(RunStatus::Stopped);
            }
            let Some(p) = src.next_step() else {
                return Ok(RunStatus::SourceEnded);
            };
            self.check_in_universe(p)?;
            if self.step_with(p) == StepOutcome::Stuck {
                return Ok(RunStatus::Stuck(p));
            }
        }
        Ok(if self.stop_met(&cfg.stop) {
            RunStatus::Stopped
        } else {
            RunStatus::MaxSteps
        })
    }

    /// Typed bounds check of a scheduled process id against the universe —
    /// the run/replay entry points surface a malformed schedule as
    /// [`SimError::ScheduleOutOfUniverse`] instead of panicking.
    #[inline]
    fn check_in_universe(&self, p: ProcessId) -> Result<(), SimError> {
        if self.universe.contains(p) {
            Ok(())
        } else {
            Err(SimError::ScheduleOutOfUniverse {
                process: p,
                n: self.universe.n(),
            })
        }
    }

    /// The machine-only run loop: one arena borrow per call, one direct
    /// `step` dispatch per scheduled step (no poll, no grant cell, no
    /// per-step `RefCell`). Steps of processes without a live automaton are
    /// no-ops that still count and are still recorded, as in
    /// [`step_with`](Self::step_with).
    ///
    /// The common configuration — no early stop, no schedule recording — is
    /// a dedicated inner loop with nothing on it but the dispatch: the
    /// executor's contribution to a step is the cursor pull, the step-index
    /// bump, the slot load, and the call.
    fn run_machines<S: StepSource>(
        &mut self,
        src: &mut S,
        cfg: RunConfig,
    ) -> Result<RunStatus, SimError> {
        let n = self.universe.n();
        let shared = Rc::clone(&self.shared);
        let mut memory = shared.memory.borrow_mut();
        // Per-process op counts accumulate locally and flush once at the
        // end of the call: the step path touches no shared counter.
        let mut ops_local = vec![0u64; n];
        let status = 'run: {
            if matches!(cfg.stop, StopWhen::Never) && !shared.recording {
                for _ in 0..cfg.max_steps {
                    let Some(p) = src.next_step() else {
                        break 'run Ok(RunStatus::SourceEnded);
                    };
                    // Out-of-universe ids fail the slot lookup, which
                    // doubles as the bounds check of the general path.
                    let Some(slot) = self.slots.get_mut(p.index()) else {
                        break 'run Err(SimError::ScheduleOutOfUniverse { process: p, n });
                    };
                    let step = self.steps;
                    self.steps += 1;
                    if let Some(Body::Machine(machine)) = slot.body.as_mut() {
                        let mut access = StepAccess::new(p, step, &mut memory, &shared);
                        let status = machine.step(&mut access);
                        ops_local[p.index()] += access.op_performed() as u64;
                        if status == Status::Done {
                            slot.body = None;
                            self.finished[p.index()] = true;
                        }
                    }
                }
                break 'run Ok(RunStatus::MaxSteps);
            }
            for _ in 0..cfg.max_steps {
                if self.stop_met(&cfg.stop) {
                    break 'run Ok(RunStatus::Stopped);
                }
                let Some(p) = src.next_step() else {
                    break 'run Ok(RunStatus::SourceEnded);
                };
                if let Err(e) = self.check_in_universe(p) {
                    break 'run Err(e);
                }
                let step = self.steps;
                self.steps += 1;
                if shared.recording {
                    if let Some(executed) = shared.trace.borrow_mut().executed.as_mut() {
                        executed.push(p);
                    }
                }
                let slot = &mut self.slots[p.index()];
                if let Some(Body::Machine(machine)) = slot.body.as_mut() {
                    let mut access = StepAccess::new(p, step, &mut memory, &shared);
                    let status = machine.step(&mut access);
                    ops_local[p.index()] += access.op_performed() as u64;
                    if status == Status::Done {
                        slot.body = None;
                        self.finished[p.index()] = true;
                    }
                }
            }
            if self.stop_met(&cfg.stop) {
                Ok(RunStatus::Stopped)
            } else {
                Ok(RunStatus::MaxSteps)
            }
        };
        for (cell, &ops) in shared.op_counts.iter().zip(&ops_local) {
            if ops != 0 {
                cell.set(cell.get() + ops);
            }
        }
        status
    }

    /// Drives a homogeneous fleet of automata — `automata[i]` is the
    /// machine of process `i` — with **static dispatch**: `A` is a concrete
    /// type, so the automaton's `step` inlines into the executor loop and
    /// the per-step cost collapses to the cursor pull, the step bump, and
    /// the inlined body. This is the fastest execution mode of the
    /// simulator, and it is only expressible on the state-machine ABI (an
    /// async slot is a `Pin<Box<dyn Future>>` by construction — every poll
    /// is an opaque virtual call).
    ///
    /// The fleet is caller-owned: inspect the machines after (between) runs
    /// for their local state. Steps of processes whose machine has
    /// completed ([`Status::Done`]) are no-ops, as for finished slots;
    /// decisions, probes, and accounting flow into the same trace as the
    /// slot-based modes. Crashes are expressed by the schedule (stop
    /// scheduling the process), as in the model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleOutOfUniverse`] if `src` names a process
    /// outside the simulated universe (steps before the offending one have
    /// executed normally), and [`SimError::FleetDriveOnSpawnedSim`] —
    /// before executing anything — if any process was spawned into a slot
    /// (the two ownership modes do not mix within one `Sim`; mixing ABIs is
    /// what [`spawn`](Self::spawn) +
    /// [`spawn_automaton`](Self::spawn_automaton) are for).
    ///
    /// # Panics
    ///
    /// Panics if `automata.len() != n`.
    pub fn run_automata<A: Automaton, S: StepSource>(
        &mut self,
        automata: &mut [A],
        src: &mut S,
        cfg: RunConfig,
    ) -> Result<RunStatus, SimError> {
        assert_eq!(
            automata.len(),
            self.universe.n(),
            "one automaton per process"
        );
        self.check_fleet_drive("run_automata")?;
        let n = self.universe.n();
        let shared = Rc::clone(&self.shared);
        let mut memory = shared.memory.borrow_mut();
        let mut ops_local = vec![0u64; n];
        let status = 'run: {
            if matches!(cfg.stop, StopWhen::Never) && !shared.recording {
                let mut steps = self.steps;
                for _ in 0..cfg.max_steps {
                    let Some(p) = src.next_step() else {
                        self.steps = steps;
                        break 'run Ok(RunStatus::SourceEnded);
                    };
                    let idx = p.index();
                    let Some(machine) = automata.get_mut(idx) else {
                        self.steps = steps;
                        break 'run Err(SimError::ScheduleOutOfUniverse { process: p, n });
                    };
                    let step = steps;
                    steps += 1;
                    if !self.finished[idx] {
                        let mut access = StepAccess::new(p, step, &mut memory, &shared);
                        let status = machine.step(&mut access);
                        ops_local[idx] += access.op_performed() as u64;
                        if status == Status::Done {
                            self.finished[idx] = true;
                        }
                    }
                }
                self.steps = steps;
                break 'run Ok(RunStatus::MaxSteps);
            }
            for _ in 0..cfg.max_steps {
                if self.stop_met(&cfg.stop) {
                    break 'run Ok(RunStatus::Stopped);
                }
                let Some(p) = src.next_step() else {
                    break 'run Ok(RunStatus::SourceEnded);
                };
                if let Err(e) = self.check_in_universe(p) {
                    break 'run Err(e);
                }
                let step = self.steps;
                self.steps += 1;
                if shared.recording {
                    if let Some(executed) = shared.trace.borrow_mut().executed.as_mut() {
                        executed.push(p);
                    }
                }
                let idx = p.index();
                if !self.finished[idx] {
                    let mut access = StepAccess::new(p, step, &mut memory, &shared);
                    let status = automata[idx].step(&mut access);
                    ops_local[idx] += access.op_performed() as u64;
                    if status == Status::Done {
                        self.finished[idx] = true;
                    }
                }
            }
            if self.stop_met(&cfg.stop) {
                Ok(RunStatus::Stopped)
            } else {
                Ok(RunStatus::MaxSteps)
            }
        };
        for (cell, &ops) in shared.op_counts.iter().zip(&ops_local) {
            if ops != 0 {
                cell.set(cell.get() + ops);
            }
        }
        status
    }

    /// [`run_automata`](Self::run_automata) over a pre-materialized
    /// [`Schedule`], equivalent to driving a fresh
    /// [`ScheduleCursor`](st_core::ScheduleCursor) over it — but the fleet
    /// loop iterates the schedule's step slice directly, fusing the cursor
    /// pull and the budget check into the loop condition. This is the
    /// highest-throughput drive the simulator has; the step-throughput
    /// bench runs the Figure 2 workload through it.
    ///
    /// Returns [`RunStatus::SourceEnded`] if the schedule ran out before
    /// `cfg.max_steps`, [`RunStatus::Stopped`]/[`RunStatus::MaxSteps`]
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleOutOfUniverse`] if the replayed prefix
    /// names a process outside the universe. The schedule is validated
    /// **before** any step executes (it is finite and materialized), so an
    /// `Err` leaves the simulation untouched.
    /// [`SimError::FleetDriveOnSpawnedSim`] as for
    /// [`run_automata`](Self::run_automata).
    ///
    /// # Panics
    ///
    /// As for [`run_automata`](Self::run_automata).
    pub fn run_automata_replay<A: Automaton>(
        &mut self,
        automata: &mut [A],
        schedule: &Schedule,
        cfg: RunConfig,
    ) -> Result<RunStatus, SimError> {
        assert_eq!(
            automata.len(),
            self.universe.n(),
            "one automaton per process"
        );
        self.check_fleet_drive("run_automata_replay")?;
        let take = schedule
            .len()
            .min(cfg.max_steps.min(usize::MAX as u64) as usize);
        self.validate_slice(&schedule.as_slice()[..take])?;
        if !matches!(cfg.stop, StopWhen::Never) || self.shared.recording {
            let mut src = st_core::ScheduleCursor::new(schedule.clone());
            return self.run_automata(automata, &mut src, cfg);
        }
        let shared = Rc::clone(&self.shared);
        let mut memory = shared.memory.borrow_mut();
        let mut ops_local = vec![0u64; self.universe.n()];
        let mut steps = self.steps;
        for &p in &schedule.as_slice()[..take] {
            let idx = p.index();
            let step = steps;
            steps += 1;
            if !self.finished[idx] {
                let mut access = StepAccess::new(p, step, &mut memory, &shared);
                let status = automata[idx].step(&mut access);
                ops_local[idx] += access.op_performed() as u64;
                if status == Status::Done {
                    self.finished[idx] = true;
                }
            }
        }
        self.steps = steps;
        for (cell, &ops) in shared.op_counts.iter().zip(&ops_local) {
            if ops != 0 {
                cell.set(cell.get() + ops);
            }
        }
        Ok(if take < schedule.len() {
            RunStatus::MaxSteps
        } else if (take as u64) < cfg.max_steps {
            RunStatus::SourceEnded
        } else {
            RunStatus::MaxSteps
        })
    }

    /// Pre-validates a materialized schedule slice against the universe.
    fn validate_slice(&self, slice: &[ProcessId]) -> Result<(), SimError> {
        let n = self.universe.n();
        for &p in slice {
            if p.index() >= n {
                return Err(SimError::ScheduleOutOfUniverse { process: p, n });
            }
        }
        Ok(())
    }

    /// [`run_automata_replay`](Self::run_automata_replay) batched per
    /// cache-resident fleet shard: the fleet is partitioned into shards of
    /// `shard_size` consecutive processes, the schedule into contiguous
    /// slices of `slice_len` steps, and each slice is executed **shard by
    /// shard** — for each shard in ascending order, the slice's steps that
    /// belong to that shard run in their original relative order.
    ///
    /// The drive therefore executes the *shard-stable reordering* of
    /// `schedule`: a deterministic permutation that preserves every
    /// process's subschedule (each process sees exactly its own steps in the
    /// original order) but groups, within each slice, the steps of one
    /// shard's automata back to back. [`sharded_replay_order`] materializes
    /// the exact executed schedule, and
    /// `run_automata_replay_sharded(a, s, sh, sl, cfg)` is observationally
    /// identical to
    /// `run_automata_replay(a, &sharded_replay_order(s, sh, sl), cfg)` —
    /// the differential tests enforce it. With `shard_size >= n` or
    /// `slice_len == 1` the reordering is the identity and the drive is
    /// step-for-step the plain replay.
    ///
    /// Why batch: a fleet of state machines with per-automaton working sets
    /// larger than the step interleaving's reuse distance (the Figure 2
    /// machine's counter snapshot is `|Π^k_n|·n` words) thrashes the cache
    /// when the schedule round-robins across the whole fleet. Grouping a
    /// slice's steps per shard keeps one shard's automata hot for the whole
    /// slice at the cost of a bounded, deterministic reorder of the
    /// interleaving — a legitimate schedule of the same model. Note the
    /// reorder can change how much work the *protocol* does per step
    /// (within-slice bursts starve the other shards; timeout-based
    /// protocols then accuse more), so measure end to end before adopting
    /// it: `BENCH_timeliness.json` records the trade on the agreement
    /// workload, where the plain replay wins at small n — and the
    /// re-measurement at n = 256 (`lean_interleaved_n256`: the lean stack
    /// on a round-robin schedule, the thrash-shaped workload this drive
    /// was built for) shows it stays slightly *behind* plain there too.
    /// The lean machines keep O(n) state (a row scratch, not a matrix
    /// snapshot), so shard residency buys nothing they miss; prefer
    /// [`run_automata_replay_soa`](Self::run_automata_replay_soa) for
    /// large-n scan-heavy fleets and keep this drive for fleets whose
    /// per-automaton working set genuinely exceeds the cache.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleOutOfUniverse`] (before executing
    /// anything) if the replayed prefix names a process outside the
    /// universe; [`SimError::FleetDriveOnSpawnedSim`] as for
    /// [`run_automata`](Self::run_automata).
    ///
    /// # Panics
    ///
    /// As for [`run_automata`](Self::run_automata); additionally panics if
    /// `shard_size == 0` or `slice_len == 0`, or if `cfg.stop` is not
    /// [`StopWhen::Never`] (the batched drive has no per-step stop
    /// evaluation — drive slices yourself if you need early stops).
    pub fn run_automata_replay_sharded<A: Automaton>(
        &mut self,
        automata: &mut [A],
        schedule: &Schedule,
        shard_size: usize,
        slice_len: usize,
        cfg: RunConfig,
    ) -> Result<RunStatus, SimError> {
        assert_eq!(
            automata.len(),
            self.universe.n(),
            "one automaton per process"
        );
        self.check_fleet_drive("run_automata_replay_sharded")?;
        assert!(shard_size > 0, "shard_size must be positive");
        assert!(slice_len > 0, "slice_len must be positive");
        assert!(
            matches!(cfg.stop, StopWhen::Never),
            "the sharded replay drive supports StopWhen::Never only"
        );
        let n = self.universe.n();
        let take = schedule
            .len()
            .min(cfg.max_steps.min(usize::MAX as u64) as usize);
        let prefix = &schedule.as_slice()[..take];
        self.validate_slice(prefix)?;
        let shards = n.div_ceil(shard_size);
        let shared = Rc::clone(&self.shared);
        let mut memory = shared.memory.borrow_mut();
        let mut ops_local = vec![0u64; n];
        let mut steps = self.steps;
        // One bucketing pass per slice (reused buffers) instead of
        // rescanning the slice once per shard: the drive's cost stays
        // O(slice_len), not O(shards · slice_len).
        let mut buckets: Vec<Vec<ProcessId>> = vec![Vec::with_capacity(slice_len); shards];
        for slice in prefix.chunks(slice_len) {
            for bucket in &mut buckets {
                bucket.clear();
            }
            for &p in slice {
                buckets[p.index() / shard_size].push(p);
            }
            for bucket in &buckets {
                for &p in bucket {
                    let idx = p.index();
                    let step = steps;
                    steps += 1;
                    if shared.recording {
                        if let Some(executed) = shared.trace.borrow_mut().executed.as_mut() {
                            executed.push(p);
                        }
                    }
                    if !self.finished[idx] {
                        let mut access = StepAccess::new(p, step, &mut memory, &shared);
                        let status = automata[idx].step(&mut access);
                        ops_local[idx] += access.op_performed() as u64;
                        if status == Status::Done {
                            self.finished[idx] = true;
                        }
                    }
                }
            }
        }
        self.steps = steps;
        for (cell, &ops) in shared.op_counts.iter().zip(&ops_local) {
            if ops != 0 {
                cell.set(cell.get() + ops);
            }
        }
        Ok(if take < schedule.len() {
            RunStatus::MaxSteps
        } else if (take as u64) < cfg.max_steps {
            RunStatus::SourceEnded
        } else {
            RunStatus::MaxSteps
        })
    }

    /// [`run_automata_replay`](Self::run_automata_replay) batched **per
    /// phase** over struct-of-arrays fleet state: the third replay drive,
    /// for [`PhaseBatch`] automata.
    ///
    /// The schedule is processed in contiguous slices of `slice_len` steps.
    /// A slice that schedules a single process (the common case under
    /// dwell-shaped generators like `Bursty`) takes a fast path: its
    /// allotment is one contiguous step run, so no per-step bucketing, no
    /// materialized step-index list, and no probe re-sort are needed.
    /// Otherwise the drive buckets the steps per process. Either way it
    /// checks *purity*: every scheduled machine must report (via
    /// [`PhaseBatch::read_run`]) that its whole allotment consists of
    /// value-independent register reads. A pure slice touches no register,
    /// so its reads commute — the drive executes each machine's allotment
    /// in a single [`PhaseBatch::step_reads`] call, machines grouped by
    /// [`PhaseBatch::phase_class`] so each phase's tight scan loop runs
    /// back to back across the fleet, and then re-sorts the slice's probe
    /// events into global step order. A slice that is not pure (it contains
    /// a write, a phase turnover the machine cannot bound, or a completed
    /// machine's no-op allotment mixed with too-short runs) is executed
    /// scalar, in original order — exactly the plain replay.
    ///
    /// Observational identity to
    /// [`run_automata_replay`](Self::run_automata_replay) on the same
    /// schedule — probes (keys, values, step indices), decisions, op
    /// counts, per-register access statistics, final register contents — is
    /// a contract, enforced by differential tests on every schedule family.
    ///
    /// When the drive wins: large fleets (n ≥ 64) of scan-heavy machines,
    /// where per-slice allotments are long read runs and the batch loop
    /// amortizes the per-step dispatch into a
    /// [`read_word_span`](crate::Memory::read_word_span). At small n a
    /// slice rarely stays inside one phase's read run, so batching would
    /// degenerate to the scalar fallback and merely pay the bucketing
    /// overhead — this entry therefore **delegates** universes below
    /// [`SOA_DELEGATE_BELOW_N`] to the plain replay outright (identical
    /// semantics, no batching tax); see the three-drive decision table in
    /// the crate docs. Use
    /// [`run_automata_replay_soa_batched`](Self::run_automata_replay_soa_batched)
    /// to force batching at any n (differential tests do).
    ///
    /// Like the other replay drives this supports [`StopWhen::Never`]
    /// without recording on its fast path; any other stop condition, or an
    /// enabled schedule recording, delegates to the plain replay (whose
    /// semantics are identical).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleOutOfUniverse`] (before executing
    /// anything) if the replayed prefix names a process outside the
    /// universe; [`SimError::FleetDriveOnSpawnedSim`] as for
    /// [`run_automata`](Self::run_automata).
    ///
    /// # Panics
    ///
    /// Panics if `automata.len() != n` or `slice_len == 0`.
    pub fn run_automata_replay_soa<A: PhaseBatch>(
        &mut self,
        automata: &mut [A],
        schedule: &Schedule,
        slice_len: usize,
        cfg: RunConfig,
    ) -> Result<RunStatus, SimError> {
        assert_eq!(
            automata.len(),
            self.universe.n(),
            "one automaton per process"
        );
        self.check_fleet_drive("run_automata_replay_soa")?;
        assert!(slice_len > 0, "slice_len must be positive");
        if self.universe.n() < SOA_DELEGATE_BELOW_N {
            return self.run_automata_replay(automata, schedule, cfg);
        }
        self.run_automata_replay_soa_batched(automata, schedule, slice_len, cfg)
    }

    /// [`run_automata_replay_soa`](Self::run_automata_replay_soa) without
    /// the small-n delegation: always buckets and batches, whatever the
    /// universe size. Same contract, same errors, same panics.
    ///
    /// This is the raw batching engine. Prefer the delegating entry for
    /// real workloads; this one exists so differential suites can pin the
    /// batching machinery itself (purity detection, probe re-sorting,
    /// uniform/interleaved fast paths) on small universes where failures
    /// are easy to shrink.
    pub fn run_automata_replay_soa_batched<A: PhaseBatch>(
        &mut self,
        automata: &mut [A],
        schedule: &Schedule,
        slice_len: usize,
        cfg: RunConfig,
    ) -> Result<RunStatus, SimError> {
        assert_eq!(
            automata.len(),
            self.universe.n(),
            "one automaton per process"
        );
        self.check_fleet_drive("run_automata_replay_soa_batched")?;
        assert!(slice_len > 0, "slice_len must be positive");
        let n = self.universe.n();
        let take = schedule
            .len()
            .min(cfg.max_steps.min(usize::MAX as u64) as usize);
        let prefix = &schedule.as_slice()[..take];
        self.validate_slice(prefix)?;
        if !matches!(cfg.stop, StopWhen::Never) || self.shared.recording {
            return self.run_automata_replay(automata, schedule, cfg);
        }
        let shared = Rc::clone(&self.shared);
        let mut memory = shared.memory.borrow_mut();
        let mut ops_local = vec![0u64; n];
        let mut steps = self.steps;
        // Reused per-slice buffers: per-process step-index allotments, the
        // list of processes the slice touches (first-appearance order), a
        // membership scratchpad for the interleaved permutation check, and
        // the phase-sorted execution order of an interleaved slice.
        let mut allotments: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut touched: Vec<usize> = Vec::with_capacity(slice_len.min(n));
        let mut seen: Vec<bool> = vec![false; n];
        let mut order: Vec<(u8, usize, usize)> = Vec::with_capacity(n);
        for slice in prefix.chunks(slice_len) {
            // Uniform-slice fast path: a slice that schedules one process
            // only (every dwell-shaped schedule — `Bursty`, long crash
            // shadows — produces almost nothing else) is one contiguous
            // allotment. No per-step bucketing, no materialized step list,
            // and the single machine's probes are already in step order.
            let first = slice[0];
            if slice.iter().all(|&p| p == first) {
                let idx = first.index();
                if self.finished[idx] {
                    steps += slice.len() as u64;
                    continue;
                }
                if slice.len() <= automata[idx].read_run() {
                    let mut access =
                        BatchAccess::new_run(first, steps, slice.len(), &mut memory, &shared);
                    let status = automata[idx].step_reads(&mut access);
                    ops_local[idx] += access.ops();
                    if status == Status::Done {
                        self.finished[idx] = true;
                    }
                } else {
                    for off in 0..slice.len() {
                        if self.finished[idx] {
                            break;
                        }
                        let mut access =
                            StepAccess::new(first, steps + off as u64, &mut memory, &shared);
                        let status = automata[idx].step(&mut access);
                        ops_local[idx] += access.op_performed() as u64;
                        if status == Status::Done {
                            self.finished[idx] = true;
                        }
                    }
                }
                steps += slice.len() as u64;
                continue;
            }
            // Interleaved-slice fast path: a slice that repeats one fixed
            // permutation of the whole fleet with period n (round-robin and
            // every rotation of it — the dominant shape of convergence
            // workloads) gives each process an arithmetic progression of
            // steps: offset-in-permutation, stride n. No per-step
            // bucketing, no materialized step lists — one strided cursor
            // per machine.
            if slice.len() >= n && slice.len() % n == 0 {
                let periodic = (n..slice.len()).all(|i| slice[i] == slice[i - n]);
                let permutation = periodic && {
                    let mut distinct = true;
                    for &p in &slice[..n] {
                        let idx = p.index();
                        if seen[idx] {
                            distinct = false;
                            break;
                        }
                        seen[idx] = true;
                    }
                    for &p in &slice[..n] {
                        seen[p.index()] = false;
                    }
                    distinct
                };
                if permutation {
                    let runs = slice.len() / n;
                    let pure = slice[..n].iter().all(|&p| {
                        let idx = p.index();
                        self.finished[idx] || runs <= automata[idx].read_run()
                    });
                    if pure {
                        order.clear();
                        for (off, &p) in slice[..n].iter().enumerate() {
                            let idx = p.index();
                            if !self.finished[idx] {
                                order.push((automata[idx].phase_class(), idx, off));
                            }
                        }
                        order.sort_unstable();
                        let probe_mark = shared.trace.borrow().probes.len();
                        for &(_, idx, off) in &order {
                            let mut access = BatchAccess::new_strided(
                                ProcessId::new(idx),
                                steps + off as u64,
                                n as u64,
                                runs,
                                &mut memory,
                                &shared,
                            );
                            let status = automata[idx].step_reads(&mut access);
                            ops_local[idx] += access.ops();
                            if status == Status::Done {
                                self.finished[idx] = true;
                            }
                        }
                        // As on the bucketed pure path: restore the plain
                        // drive's publication order (stable by step; one
                        // step is one machine).
                        let mut trace = shared.trace.borrow_mut();
                        let tail = &mut trace.probes[probe_mark..];
                        if !tail.is_empty() {
                            tail.sort_by_key(|e| e.step);
                        }
                        steps += slice.len() as u64;
                        continue;
                    }
                }
                // Periodic but impure (a phase turnover inside the slice):
                // fall through to the generic bucketing, which re-checks
                // purity per allotment and otherwise runs scalar.
            }
            for (off, &p) in slice.iter().enumerate() {
                let idx = p.index();
                if allotments[idx].is_empty() {
                    touched.push(idx);
                }
                allotments[idx].push(steps + off as u64);
            }
            let pure = touched.iter().all(|&idx| {
                self.finished[idx] || allotments[idx].len() <= automata[idx].read_run()
            });
            if pure {
                // Group the batch calls by phase: machines in the same
                // control phase run the same scan loop back to back.
                touched.sort_unstable_by_key(|&idx| (automata[idx].phase_class(), idx));
                let probe_mark = shared.trace.borrow().probes.len();
                for &idx in &touched {
                    if self.finished[idx] {
                        continue;
                    }
                    let pid = ProcessId::new(idx);
                    let mut access = BatchAccess::new(pid, &allotments[idx], &mut memory, &shared);
                    let status = automata[idx].step_reads(&mut access);
                    ops_local[idx] += access.ops();
                    if status == Status::Done {
                        self.finished[idx] = true;
                    }
                }
                // Batching grouped each machine's probes together; restore
                // the publication order of the plain drive. Stable by step:
                // probes of one step (one machine) keep their order.
                let mut trace = shared.trace.borrow_mut();
                let tail = &mut trace.probes[probe_mark..];
                if !tail.is_empty() {
                    tail.sort_by_key(|e| e.step);
                }
            } else {
                for (off, &p) in slice.iter().enumerate() {
                    let idx = p.index();
                    if !self.finished[idx] {
                        let mut access =
                            StepAccess::new(p, steps + off as u64, &mut memory, &shared);
                        let status = automata[idx].step(&mut access);
                        ops_local[idx] += access.op_performed() as u64;
                        if status == Status::Done {
                            self.finished[idx] = true;
                        }
                    }
                }
            }
            steps += slice.len() as u64;
            for &idx in &touched {
                allotments[idx].clear();
            }
            touched.clear();
        }
        self.steps = steps;
        for (cell, &ops) in shared.op_counts.iter().zip(&ops_local) {
            if ops != 0 {
                cell.set(cell.get() + ops);
            }
        }
        Ok(if take < schedule.len() {
            RunStatus::MaxSteps
        } else if (take as u64) < cfg.max_steps {
            RunStatus::SourceEnded
        } else {
            RunStatus::MaxSteps
        })
    }

    /// Typed precondition of every fleet drive: the `Sim` must have no
    /// spawned slots (the fleet is caller-owned).
    fn check_fleet_drive(&self, drive: &'static str) -> Result<(), SimError> {
        match self.slots.iter().position(|s| s.spawned) {
            None => Ok(()),
            Some(i) => Err(SimError::FleetDriveOnSpawnedSim {
                drive,
                process: ProcessId::new(i),
            }),
        }
    }

    fn stop_met(&self, stop: &StopWhen) -> bool {
        // Decision conditions read the cached decision state (maintained by
        // the decide paths) — O(1) per executed step, no trace borrow. The
        // bitmask covers processes below the ProcSet capacity, which is all
        // an `AllDecided` set can name; `AnyDecided` uses the count so it
        // sees deciders beyond index 63 in large universes.
        match stop {
            StopWhen::Never => false,
            StopWhen::AllDecided(set) => set.bits() & !self.shared.decided.get() == 0,
            StopWhen::AllFinished(set) => set.iter().all(|p| self.finished[p.index()]),
            StopWhen::AnyDecided => self.shared.decided_count.get() != 0,
        }
    }

    /// The set of processes that have decided so far (O(1) snapshot of the
    /// cached bitmask).
    pub fn decided_set(&self) -> ProcSet {
        ProcSet::from_bits(self.shared.decided.get())
    }

    /// Steps executed so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// Number of probe events published so far.
    ///
    /// O(1), no trace materialization: pollers that only need to detect
    /// *new activity* (the Figure 2 winnerset probe publishes only on
    /// change, so a flat count means quiescence) use this instead of
    /// cloning a [`RunReport`] per poll interval.
    pub fn probe_count(&self) -> usize {
        self.shared.trace.borrow().probes.len()
    }

    /// Per-process decisions so far (indexed by process index).
    ///
    /// Copies only the `n`-element decision array — none of the probe or
    /// register statistics a full [`Sim::report`] clones.
    pub fn decisions(&self) -> Vec<Option<Decision>> {
        self.shared.trace.borrow().decisions.clone()
    }

    /// Completed register operations of `p` so far (O(1)).
    pub fn op_count(&self, p: ProcessId) -> u64 {
        self.shared.op_counts[p.index()].get()
    }

    /// Non-step observation of a register (tests and instrumentation).
    ///
    /// # Panics
    ///
    /// Panics on foreign handles or type confusion; use
    /// [`try_peek`](Self::try_peek) for the non-panicking form.
    pub fn peek<T: RegValue>(&self, reg: Reg<T>) -> T {
        self.try_peek(reg)
            .unwrap_or_else(|e| panic!("peek failed: {e}"))
    }

    /// Non-step observation of a register, surfacing foreign handles and
    /// type confusion as typed errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRegister`] for handles outside this
    /// arena and [`SimError::TypeMismatch`] when `T` is not the register's
    /// allocated type.
    pub fn try_peek<T: RegValue>(&self, reg: Reg<T>) -> Result<T, SimError> {
        self.shared.memory.borrow().peek(reg)
    }

    /// [`peek`](Self::peek) of the word register allocated `offset` slots
    /// after `base` — the instrumentation twin of
    /// [`StepAccess::read_word_array`](crate::StepAccess::read_word_array)
    /// for protocols that index contiguous register arrays by offset.
    ///
    /// # Panics
    ///
    /// Panics if the slot falls outside the arena or is not a `u64`
    /// register.
    pub fn peek_word_array(&self, base: Reg<u64>, offset: usize) -> u64 {
        let reg: Reg<u64> = Reg::new((base.index() + offset) as u32);
        self.peek(reg)
    }

    /// Crashes `p`: its automaton is dropped and all its future steps become
    /// no-ops. (Schedule generators usually *stop scheduling* crashed
    /// processes instead, which is the model's notion of a crash; explicit
    /// crashing is for fault-injection tests.)
    pub fn crash(&mut self, p: ProcessId) {
        self.slots[p.index()].body = None;
    }

    /// Whether `p`'s automaton has completed.
    pub fn is_finished(&self, p: ProcessId) -> bool {
        self.finished[p.index()]
    }

    /// Snapshot of the current trace and statistics.
    pub fn report(&self) -> RunReport {
        let trace = self.shared.trace.borrow();
        RunReport {
            steps: self.steps,
            decisions: trace.decisions.clone(),
            finished: self.finished.clone(),
            probes: ProbeLog::new(trace.probes.clone()),
            executed: trace.executed.as_deref().map(executed_schedule),
            op_counts: self.shared.op_counts.iter().map(Cell::get).collect(),
            register_stats: self.shared.memory.borrow().stats(),
        }
    }
}

/// The exact schedule executed by
/// [`Sim::run_automata_replay_sharded`]: each contiguous `slice_len`-step
/// slice of `schedule` is stably reordered to group steps by fleet shard
/// (`shard = process index / shard_size`), shards in ascending order.
///
/// Per-process subschedules are preserved — the reordering only permutes
/// steps of *different* processes within one slice — so the result is a
/// legitimate schedule of the same universe with the same per-process step
/// counts. `run_automata_replay_sharded(a, s, sh, sl, cfg)` and
/// `run_automata_replay(a, &sharded_replay_order(s, sh, sl), cfg)` are
/// observationally identical.
///
/// # Panics
///
/// Panics if `shard_size == 0` or `slice_len == 0`.
pub fn sharded_replay_order(schedule: &Schedule, shard_size: usize, slice_len: usize) -> Schedule {
    assert!(shard_size > 0, "shard_size must be positive");
    assert!(slice_len > 0, "slice_len must be positive");
    let mut out = Vec::with_capacity(schedule.len());
    for slice in schedule.as_slice().chunks(slice_len) {
        let shards = slice
            .iter()
            .map(|p| p.index() / shard_size + 1)
            .max()
            .unwrap_or(0);
        for shard in 0..shards {
            out.extend(
                slice
                    .iter()
                    .filter(|p| p.index() / shard_size == shard)
                    .copied(),
            );
        }
    }
    Schedule::from_steps(out)
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sim[n={}, steps={}, registers={}]",
            self.universe.n(),
            self.steps,
            self.shared.memory.borrow().len()
        )
    }
}
