//! Phase-batched struct-of-arrays execution: the third replay drive.
//!
//! The plain replay drive ([`Sim::run_automata_replay`](crate::Sim::run_automata_replay))
//! dispatches one `step` call per scheduled step: even with the automaton
//! body inlined, every step pays the dispatch prologue — reload the
//! machine's control state, branch on its phase, perform one register
//! operation, write the state back. For the paper's protocols that price is
//! paid almost entirely for *reads*: ~99% of the Figure 2 detector's steps
//! scan the counter matrix, and scans are long runs of consecutive steps
//! whose behavior does not depend on the values read.
//!
//! The SoA drive ([`Sim::run_automata_replay_soa`](crate::Sim::run_automata_replay_soa))
//! exploits exactly that structure. It processes the schedule in contiguous
//! slices; for each slice it buckets the steps per process and asks every
//! scheduled machine for its [`read_run`](PhaseBatch::read_run) — the
//! number of upcoming steps guaranteed to be reads regardless of the values
//! read. If every machine's allotment fits inside its read run, the slice is
//! **pure**: it contains only read operations, reads commute (the register
//! state is constant for the duration of the slice), and the drive may
//! execute each machine's whole allotment in a single
//! [`step_reads`](PhaseBatch::step_reads) call — machines grouped by
//! [`phase_class`](PhaseBatch::phase_class) so one phase's tight loop (a
//! [`read_word_span`](BatchAccess::read_word_span) over the word arena)
//! runs back to back across the fleet. A slice that is not pure falls back
//! to scalar in-order stepping, which is byte-for-byte the plain replay.
//!
//! Two slice shapes skip the bucketing entirely: a **uniform** slice (one
//! process throughout — dwell-shaped schedules) becomes a single
//! contiguous-run allotment, and an **interleaved** slice (a fixed
//! permutation of the whole fleet repeated with period `n` — round-robin
//! and every rotation of it) gives each machine an arithmetic-progression
//! allotment (start = its offset in the permutation, stride = `n`) driven
//! by a strided cursor. Neither materializes a step-index list. And below
//! [`SOA_DELEGATE_BELOW_N`](crate::SOA_DELEGATE_BELOW_N) processes the
//! delegating entry point does not batch at all: allotments that short
//! lose to the plain replay on every schedule family measured, so small
//! universes route straight to it
//! ([`Sim::run_automata_replay_soa_batched`](crate::Sim::run_automata_replay_soa_batched)
//! bypasses the heuristic for differential testing).
//!
//! Observational identity to plain replay is a hard contract, enforced by
//! differential tests over every schedule family: same probes at the same
//! step indices (each batched operation carries its original global step
//! index, and the probe-log tail of a batched slice is re-sorted into step
//! order), same decisions, same per-process op counts, same per-register
//! access statistics, same final register contents.

use st_core::{ProcSet, ProcessId, Value};

use crate::automaton::{Automaton, Status};
use crate::ctx::SimShared;
use crate::memory::Memory;
use crate::register::{Reg, RegValue};
use crate::trace::ProbeEvent;

/// An [`Automaton`] that can project its control state onto a phase vector
/// and execute runs of read steps in batch — the requirement for the SoA
/// replay drive.
///
/// # Contract
///
/// - [`read_run`](Self::read_run) returns a number `r` such that the next
///   `r` scheduled steps of this machine, from its current state, each
///   perform exactly one register **read** (or become no-ops by the machine
///   completing), *and* which registers they read does not depend on the
///   values returned by reads within the run. Returning fewer than the true
///   run length is always safe (it only forces the scalar fallback);
///   returning more is unsound.
/// - [`step_reads`](Self::step_reads) must consume **all** steps of the
///   passed [`BatchAccess`] (unless it completes first) and leave the
///   machine in exactly the state `mem.len()` individual
///   [`step`](Automaton::step) calls would have produced.
/// - [`phase_class`](Self::phase_class) is a small dense label of the
///   current control phase, used only to group machines so one phase's
///   batch loop runs back to back across the fleet; it carries no
///   correctness obligation.
pub trait PhaseBatch: Automaton {
    /// Dense label of the current control phase (grouping hint).
    fn phase_class(&self) -> u8;

    /// Guaranteed number of upcoming value-independent read steps.
    fn read_run(&self) -> usize;

    /// Executes `mem.len()` scheduled steps, all reads, in one call.
    fn step_reads(&mut self, mem: &mut BatchAccess<'_>) -> Status;
}

/// The global step indices allotted to one machine in the current slice:
/// an explicit list (irregular interleaved slices), a contiguous run
/// (uniform slices), or an arithmetic progression (periodic round-robin
/// slices) — the drive's fast paths never materialize the latter two.
enum Allotment<'a> {
    /// Explicit step indices, in schedule order.
    List(&'a [u64]),
    /// `len` consecutive steps starting at global step `start`.
    Run { start: u64, len: usize },
    /// `len` steps at `start, start + stride, start + 2·stride, …` — one
    /// process's allotment under a period-`stride` interleaved slice.
    Strided { start: u64, stride: u64, len: usize },
}

impl Allotment<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Allotment::List(steps) => steps.len(),
            Allotment::Run { len, .. } | Allotment::Strided { len, .. } => *len,
        }
    }

    #[inline]
    fn step_at(&self, i: usize) -> u64 {
        match self {
            Allotment::List(steps) => steps[i],
            Allotment::Run { start, .. } => start + i as u64,
            Allotment::Strided { start, stride, .. } => start + stride * i as u64,
        }
    }
}

/// Scoped view of the simulator handed to [`PhaseBatch::step_reads`] for a
/// whole run of read steps.
///
/// Unlike [`StepAccess`](crate::StepAccess) (one operation, then the step
/// ends), a `BatchAccess` carries the global step indices of every step
/// allotted to the machine in the current slice; each read operation
/// consumes the next one. Probes and decisions attach to the most recently
/// consumed step, which is exactly where the plain drive would have
/// published them (protocols probe/decide in the same step as the read that
/// triggered it).
pub struct BatchAccess<'a> {
    pid: ProcessId,
    steps: Allotment<'a>,
    cursor: usize,
    memory: &'a mut Memory,
    shared: &'a SimShared,
}

impl<'a> BatchAccess<'a> {
    pub(crate) fn new(
        pid: ProcessId,
        steps: &'a [u64],
        memory: &'a mut Memory,
        shared: &'a SimShared,
    ) -> Self {
        BatchAccess {
            pid,
            steps: Allotment::List(steps),
            cursor: 0,
            memory,
            shared,
        }
    }

    /// An arithmetic-progression allotment: `len` steps at
    /// `start, start + stride, …` — one process's cursor under the
    /// interleaved-slice fast path (a slice that repeats a fixed
    /// permutation of the fleet, period `stride = n`).
    pub(crate) fn new_strided(
        pid: ProcessId,
        start: u64,
        stride: u64,
        len: usize,
        memory: &'a mut Memory,
        shared: &'a SimShared,
    ) -> Self {
        BatchAccess {
            pid,
            steps: Allotment::Strided { start, stride, len },
            cursor: 0,
            memory,
            shared,
        }
    }

    /// A contiguous allotment: `len` steps starting at global step
    /// `start` — the uniform-slice fast path.
    pub(crate) fn new_run(
        pid: ProcessId,
        start: u64,
        len: usize,
        memory: &'a mut Memory,
        shared: &'a SimShared,
    ) -> Self {
        BatchAccess {
            pid,
            steps: Allotment::Run { start, len },
            cursor: 0,
            memory,
            shared,
        }
    }

    /// Register operations performed so far in this batch (= steps
    /// consumed; every batched step is a read).
    pub(crate) fn ops(&self) -> u64 {
        self.cursor as u64
    }

    /// This process's identity.
    #[inline]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of processes in the system.
    #[inline]
    pub fn n(&self) -> usize {
        self.shared.n
    }

    /// Steps allotted to this batch in total.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the batch carries no steps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.steps.len() == 0
    }

    /// Steps not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.steps.len() - self.cursor
    }

    #[inline]
    fn consume(&mut self, count: usize) {
        assert!(
            count <= self.remaining(),
            "automaton of {} overran its batch: {} steps requested, {} left",
            self.pid,
            count,
            self.remaining()
        );
        self.cursor += count;
    }

    /// Atomically reads a register of any value type. **Consumes one
    /// batched step.** Prefer [`read_word`](Self::read_word) (or the span
    /// form) for `u64` registers on hot paths.
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: batch overrun, foreign handles, or type
    /// confusion.
    #[inline]
    pub fn read<T: RegValue>(&mut self, reg: Reg<T>) -> T {
        self.consume(1);
        match self.memory.read(reg) {
            Ok(v) => v,
            Err(e) => panic!("simulated {} read failed: {e}", self.pid),
        }
    }

    /// Atomically reads a `u64` register. **Consumes one batched step.**
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: batch overrun, foreign handles, or type
    /// confusion.
    #[inline]
    pub fn read_word(&mut self, reg: Reg<u64>) -> u64 {
        self.consume(1);
        match self.memory.read_word(reg) {
            Ok(v) => v,
            Err(e) => panic!("simulated {} read failed: {e}", self.pid),
        }
    }

    /// [`read_word`](Self::read_word) of the register allocated `offset`
    /// slots after `base` (see
    /// [`StepAccess::read_word_array`](crate::StepAccess::read_word_array)).
    #[inline]
    pub fn read_word_array(&mut self, base: Reg<u64>, offset: usize) -> u64 {
        self.consume(1);
        let reg: Reg<u64> = Reg::new((base.index() + offset) as u32);
        match self.memory.read_word(reg) {
            Ok(v) => v,
            Err(e) => panic!("simulated {} array read failed: {e}", self.pid),
        }
    }

    /// Reads `dest.len()` consecutive word registers starting `offset`
    /// slots after `base` in one tight loop — the batch form of a register
    /// array scan. **Consumes `dest.len()` batched steps**, each counted as
    /// one read of its slot.
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: batch overrun, a span leaving the arena, or
    /// a non-word register inside the span.
    #[inline]
    pub fn read_word_span(&mut self, base: Reg<u64>, offset: usize, dest: &mut [u64]) {
        self.consume(dest.len());
        if let Err(e) = self.memory.read_word_span(base, offset, dest) {
            panic!("simulated {} span read failed: {e}", self.pid);
        }
    }

    /// Publishes an instrumentation probe, attached to the most recently
    /// consumed step. **Free.**
    ///
    /// # Panics
    ///
    /// Panics if no step has been consumed yet (a probe belongs to the step
    /// whose read triggered it).
    pub fn probe(&self, key: &'static str, value: u64) {
        let step = self.current_step();
        self.shared.trace.borrow_mut().probes.push(ProbeEvent {
            step,
            pid: self.pid,
            key,
            value,
        });
    }

    /// Publishes a process-set-valued probe (encoded as the bitset).
    pub fn probe_set(&self, key: &'static str, set: ProcSet) {
        self.probe(key, set.bits());
    }

    /// Records this process's irrevocable decision, attached to the most
    /// recently consumed step. **Free.**
    ///
    /// # Panics
    ///
    /// Panics if the process already decided, or if no step has been
    /// consumed yet.
    pub fn decide(&self, value: Value) {
        self.shared
            .record_decision(self.pid, value, self.current_step());
    }

    /// Returns `true` if this process has decided.
    pub fn has_decided(&self) -> bool {
        self.shared.trace.borrow().decisions[self.pid.index()].is_some()
    }

    #[inline]
    fn current_step(&self) -> u64 {
        assert!(
            self.cursor > 0,
            "automaton of {} probed/decided before consuming a step of its batch",
            self.pid
        );
        self.steps.step_at(self.cursor - 1)
    }
}
