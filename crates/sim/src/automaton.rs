//! The non-async automaton ABI: explicit state machines on the executor's
//! fast path.
//!
//! The async [`ProcessCtx`](crate::ProcessCtx) path is ergonomic — protocol
//! code reads like the paper's pseudocode — but every step pays for the poll
//! machinery: resuming a compiler-generated future, the grant-cell
//! handshake, and the suspension at the next awaited operation. Profiles of
//! the Figure 2 experiments put that machinery at well over half of the
//! async path's ~23–26 ns/step on the n = 8 workload — far above the cost
//! of the register operation itself (`BENCH_timeliness.json` tracks the
//! measured numbers).
//!
//! An [`Automaton`] is the explicit alternative: the executor calls
//! [`Automaton::step`] once per granted step and hands it a scoped
//! [`StepAccess`] — a direct view of the register arena plus the
//! instrumentation channels. No future, no poll, no grant cell: the automaton
//! keeps its own control state (typically a phase enum) and performs **at
//! most one** shared-memory operation per call, exactly the model's notion
//! of a step (one register access plus unbounded local computation).
//!
//! Both ABIs coexist in one [`Sim`](crate::Sim): spawn ergonomic protocols
//! with [`Sim::spawn`](crate::Sim::spawn) and hot ones with
//! [`Sim::spawn_automaton`](crate::Sim::spawn_automaton). Step semantics,
//! accounting, probes, and decisions are identical across the two — the
//! differential tests in `st-fd` hold the Figure 2 detector to
//! *observational equality* between its two implementations.

use st_core::{ProcSet, ProcessId, Value};

use crate::ctx::SimShared;
use crate::memory::Memory;
use crate::register::{Reg, RegValue};
use crate::trace::ProbeEvent;

/// What an automaton reports after a step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// The automaton has more steps to take.
    Running,
    /// The automaton completed; further scheduled steps become no-ops (the
    /// halted automaton self-loops, as in the model).
    Done,
}

/// An explicit protocol state machine driven directly by the executor.
///
/// Implementations keep their control state (phase, loop indices) in plain
/// fields and advance it by one scheduled step per [`step`](Self::step)
/// call. See the module docs for the contract and
/// [`Sim::spawn_automaton`](crate::Sim::spawn_automaton) for wiring.
///
/// # Examples
///
/// A two-phase automaton incrementing a shared counter and deciding:
///
/// ```
/// use st_sim::{Automaton, Reg, Sim, Status, StepAccess};
/// use st_core::{Universe, ProcessId};
///
/// enum Phase { Read, Write(u64), Done }
/// struct Incr { reg: Reg<u64>, phase: Phase }
///
/// impl Automaton for Incr {
///     fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
///         match self.phase {
///             Phase::Read => {
///                 let v = mem.read_word(self.reg);
///                 self.phase = Phase::Write(v + 1);
///                 Status::Running
///             }
///             Phase::Write(v) => {
///                 mem.write_word(self.reg, v);
///                 mem.decide(v);
///                 self.phase = Phase::Done;
///                 Status::Done
///             }
///             Phase::Done => unreachable!("executor stops stepping after Done"),
///         }
///     }
/// }
///
/// let mut sim = Sim::new(Universe::new(1).unwrap());
/// let reg = sim.alloc("x", 41u64);
/// sim.spawn_automaton(ProcessId::new(0), Incr { reg, phase: Phase::Read }).unwrap();
/// sim.step_with(ProcessId::new(0));
/// sim.step_with(ProcessId::new(0));
/// assert_eq!(sim.peek(reg), 42);
/// ```
pub trait Automaton {
    /// Executes one scheduled step: at most one register operation through
    /// `mem`, plus any amount of local computation.
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status;
}

/// Scoped, direct view of the simulator handed to an [`Automaton`] for
/// exactly one step.
///
/// Mirrors the [`ProcessCtx`](crate::ProcessCtx) API without the `async`
/// layer: register operations are plain calls against the word arena
/// (`&mut Memory`, no per-operation `RefCell` borrow), probes and decisions
/// go to the same trace. The **one-operation-per-step** discipline that the
/// async path gets from its grant handshake is enforced here explicitly:
/// a second register operation in the same step panics.
pub struct StepAccess<'a> {
    pid: ProcessId,
    /// The executing step's global index, passed by value: the hot loops
    /// never touch the shared step cell.
    step: u64,
    memory: &'a mut Memory,
    shared: &'a SimShared,
    /// The step's one slot (register operation *or* pause) was consumed.
    op_used: bool,
    /// A register operation was actually performed (pauses excluded) — the
    /// executor accumulates per-process op counts from this.
    op_performed: bool,
}

impl<'a> StepAccess<'a> {
    pub(crate) fn new(
        pid: ProcessId,
        step: u64,
        memory: &'a mut Memory,
        shared: &'a SimShared,
    ) -> Self {
        StepAccess {
            pid,
            step,
            memory,
            shared,
            op_used: false,
            op_performed: false,
        }
    }

    /// Whether this step performed a register operation (pauses excluded) —
    /// the executor accumulates per-process op counts from this flag, off
    /// the step path.
    pub(crate) fn op_performed(&self) -> bool {
        self.op_performed
    }

    /// This process's identity.
    #[inline]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of processes in the system.
    #[inline]
    pub fn n(&self) -> usize {
        self.shared.n
    }

    /// The global step index currently executing (instrumentation only; a
    /// real process has no access to global time).
    #[inline]
    pub fn now(&self) -> u64 {
        self.step
    }

    #[inline]
    fn consume_op(&mut self) {
        assert!(
            !self.op_used,
            "automaton of {} performed two shared-memory operations in one \
             step; a step is one register access plus local computation",
            self.pid
        );
        self.op_used = true;
        self.op_performed = true;
    }

    /// Atomically reads a `u64` register through the word fast path.
    /// **Costs the step's one operation.**
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: a second operation this step, foreign
    /// handles, or type confusion.
    #[inline]
    pub fn read_word(&mut self, reg: Reg<u64>) -> u64 {
        self.consume_op();
        match self.memory.read_word(reg) {
            Ok(v) => v,
            Err(e) => panic!("simulated {} read failed: {e}", self.pid),
        }
    }

    /// Atomically writes a `u64` register through the word fast path.
    /// **Costs the step's one operation.**
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: a second operation this step, foreign
    /// handles, type confusion, or violating a single-writer discipline.
    #[inline]
    pub fn write_word(&mut self, reg: Reg<u64>, value: u64) {
        self.consume_op();
        if let Err(e) = self.memory.write_word(self.pid, reg, value) {
            panic!("simulated {} write failed: {e}", self.pid);
        }
    }

    /// [`read_word`](Self::read_word) of the register allocated `offset`
    /// slots after `base` — the register-*array* scan primitive. Arrays from
    /// [`Sim::alloc_array`](crate::Sim::alloc_array) /
    /// [`Sim::alloc_per_process`](crate::Sim::alloc_per_process) (and any
    /// back-to-back allocation sequence) are contiguous, so a scanning
    /// automaton can keep one base handle and a counter instead of loading
    /// a handle from its own table every step — one less data-dependent
    /// load on the hottest path in the simulator. All access-time checks
    /// (bounds, storage class) still apply to the derived slot.
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: a second operation this step, an offset
    /// falling outside the arena, or a non-`u64` register at the slot.
    #[inline]
    pub fn read_word_array(&mut self, base: Reg<u64>, offset: usize) -> u64 {
        self.consume_op();
        let reg: Reg<u64> = Reg::new((base.index() + offset) as u32);
        match self.memory.read_word(reg) {
            Ok(v) => v,
            Err(e) => panic!("simulated {} array read failed: {e}", self.pid),
        }
    }

    /// [`write_word`](Self::write_word) of the register allocated `offset`
    /// slots after `base` — the write twin of
    /// [`read_word_array`](Self::read_word_array), for automata that index
    /// large contiguous register arrays by offset instead of carrying a
    /// handle table. All access-time checks (bounds, storage class, write
    /// discipline) still apply to the derived slot.
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: a second operation this step, an offset
    /// falling outside the arena, a non-`u64` register at the slot, or
    /// violating a single-writer discipline.
    #[inline]
    pub fn write_word_array(&mut self, base: Reg<u64>, offset: usize, value: u64) {
        self.consume_op();
        let reg: Reg<u64> = Reg::new((base.index() + offset) as u32);
        if let Err(e) = self.memory.write_word(self.pid, reg, value) {
            panic!("simulated {} array write failed: {e}", self.pid);
        }
    }

    /// Atomically reads a register of any type. **Costs the step's one
    /// operation.**
    ///
    /// # Panics
    ///
    /// Same conditions as [`read_word`](Self::read_word).
    pub fn read<T: RegValue>(&mut self, reg: Reg<T>) -> T {
        self.consume_op();
        match self.memory.read(reg) {
            Ok(v) => v,
            Err(e) => panic!("simulated {} read failed: {e}", self.pid),
        }
    }

    /// Atomically writes a register of any type. **Costs the step's one
    /// operation.**
    ///
    /// # Panics
    ///
    /// Same conditions as [`write_word`](Self::write_word).
    pub fn write<T: RegValue>(&mut self, reg: Reg<T>, value: T) {
        self.consume_op();
        if let Err(e) = self.memory.write(self.pid, reg, value) {
            panic!("simulated {} write failed: {e}", self.pid);
        }
    }

    /// Consumes the step's operation without touching shared memory — the
    /// automaton form of [`ProcessCtx::pause`](crate::ProcessCtx::pause).
    /// Returning from [`Automaton::step`] without any operation is
    /// equivalent; this exists to make the intent explicit (and to enforce
    /// that nothing else runs in the same step).
    pub fn pause(&mut self) {
        assert!(
            !self.op_used,
            "automaton of {} paused after an operation in the same step",
            self.pid
        );
        self.op_used = true;
    }

    /// Publishes an instrumentation probe. **Free** (see
    /// [`ProcessCtx::probe`](crate::ProcessCtx::probe)).
    pub fn probe(&self, key: &'static str, value: u64) {
        self.shared.trace.borrow_mut().probes.push(ProbeEvent {
            step: self.step,
            pid: self.pid,
            key,
            value,
        });
    }

    /// Publishes a process-set-valued probe (encoded as the bitset).
    pub fn probe_set(&self, key: &'static str, set: ProcSet) {
        self.probe(key, set.bits());
    }

    /// Records this process's irrevocable decision. **Free.**
    ///
    /// # Panics
    ///
    /// Panics if the process already decided (decisions are irrevocable).
    pub fn decide(&self, value: Value) {
        self.shared.record_decision(self.pid, value, self.step);
    }

    /// Returns `true` if this process has decided.
    pub fn has_decided(&self) -> bool {
        self.shared.trace.borrow().decisions[self.pid.index()].is_some()
    }
}
