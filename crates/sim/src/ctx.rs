//! The process-side API: awaitable register operations, probes, decisions.
//!
//! Protocol code is an `async fn` over a [`ProcessCtx`]. Every register
//! operation suspends until the deterministic executor grants the process a
//! step; a granted poll performs exactly one operation and then runs local
//! code until the next operation — matching the model, where a step is one
//! shared-memory access plus unbounded local computation.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use st_core::{ProcSet, ProcessId, Value, PROCSET_CAPACITY};

use crate::memory::Memory;
use crate::register::{Reg, RegValue};
use crate::trace::{Decision, ProbeEvent, TraceInner};

/// State shared between the executor and all process contexts.
pub(crate) struct SimShared {
    pub memory: RefCell<Memory>,
    /// The single outstanding step grant; consumed by the granted process's
    /// next register operation.
    pub grant: Cell<Option<ProcessId>>,
    /// Global step index (the index of the step currently executing).
    pub step: Cell<u64>,
    pub trace: RefCell<TraceInner>,
    /// Bitmask mirror of `trace.decisions` (`ProcSet::bits` encoding) for
    /// processes with index below [`PROCSET_CAPACITY`], maintained by
    /// [`SimShared::note_decided`]: lets the executor evaluate
    /// `StopWhen::AllDecided` in O(1) per step without borrowing the trace
    /// (the stop set is a `ProcSet`, so it can only name processes the mask
    /// covers).
    pub decided: Cell<u64>,
    /// Total decisions so far, over *all* processes — `AnyDecided` in large
    /// universes (n > 64) where the bitmask cannot see every decider.
    pub decided_count: Cell<u32>,
    /// Per-process completed register operations; `Cell`s so the per-op
    /// accounting path skips the trace `RefCell`.
    pub op_counts: Vec<Cell<u64>>,
    /// Whether the executed schedule is being recorded — checked before
    /// borrowing the trace on every step.
    pub recording: bool,
    pub n: usize,
}

impl SimShared {
    /// Records `pid`'s decision of `value` at `step` in the trace and the
    /// executor's cached decision state. Shared by every decide path (async
    /// context, step access, batch access).
    ///
    /// # Panics
    ///
    /// Panics if the process already decided (decisions are irrevocable).
    pub(crate) fn record_decision(&self, pid: ProcessId, value: Value, step: u64) {
        let mut trace = self.trace.borrow_mut();
        let slot = &mut trace.decisions[pid.index()];
        assert!(
            slot.is_none(),
            "process {pid} decided twice (had {slot:?}, now {value})"
        );
        *slot = Some(Decision { value, step });
        let idx = pid.index();
        if idx < PROCSET_CAPACITY {
            self.decided.set(self.decided.get() | (1u64 << idx));
        }
        self.decided_count.set(self.decided_count.get() + 1);
    }
}

/// Handle through which a simulated process interacts with the system.
///
/// Obtained by the closure passed to [`Sim::spawn`](crate::Sim::spawn).
/// Cloneable so that helper objects (e.g. shared-object implementations in
/// `st-registers`) can hold their own copy.
#[derive(Clone)]
pub struct ProcessCtx {
    pid: ProcessId,
    shared: Rc<SimShared>,
}

impl ProcessCtx {
    pub(crate) fn new(pid: ProcessId, shared: Rc<SimShared>) -> Self {
        ProcessCtx { pid, shared }
    }

    /// This process's identity.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.shared.n
    }

    /// Atomically reads a register. **Costs one step.**
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: foreign handles or type confusion.
    pub async fn read<T: RegValue>(&self, reg: Reg<T>) -> T {
        self.step_grant().await;
        let result = self.shared.memory.borrow_mut().read(reg);
        match result {
            Ok(v) => {
                self.count_op();
                v
            }
            Err(e) => panic!("simulated {} read failed: {e}", self.pid),
        }
    }

    /// Atomically writes a register. **Costs one step.**
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: foreign handles, type confusion, or
    /// violating a single-writer discipline.
    pub async fn write<T: RegValue>(&self, reg: Reg<T>, value: T) {
        self.step_grant().await;
        let result = self.shared.memory.borrow_mut().write(self.pid, reg, value);
        match result {
            Ok(()) => self.count_op(),
            Err(e) => panic!("simulated {} write failed: {e}", self.pid),
        }
    }

    /// Atomically reads a `u64` register through the word fast path (no
    /// type erasure — see [`Memory`]'s module docs). **Costs one step.**
    ///
    /// Equivalent to [`read`](Self::read) for `Reg<u64>`; protocols with
    /// register-scan inner loops (the Figure 2 counter matrix) use this to
    /// keep the per-step dispatch monomorphic.
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: foreign handles or type confusion.
    pub async fn read_word(&self, reg: Reg<u64>) -> u64 {
        self.step_grant().await;
        let result = self.shared.memory.borrow_mut().read_word(reg);
        match result {
            Ok(v) => {
                self.count_op();
                v
            }
            Err(e) => panic!("simulated {} read failed: {e}", self.pid),
        }
    }

    /// Atomically writes a `u64` register through the word fast path.
    /// **Costs one step.**
    ///
    /// # Panics
    ///
    /// Panics on protocol bugs: foreign handles, type confusion, or
    /// violating a single-writer discipline.
    pub async fn write_word(&self, reg: Reg<u64>, value: u64) {
        self.step_grant().await;
        let result = self
            .shared
            .memory
            .borrow_mut()
            .write_word(self.pid, reg, value);
        match result {
            Ok(()) => self.count_op(),
            Err(e) => panic!("simulated {} write failed: {e}", self.pid),
        }
    }

    /// Consumes one step without touching shared memory (a "skip" step; the
    /// model equivalent is reading a dummy register).
    pub async fn pause(&self) {
        self.step_grant().await;
    }

    /// Publishes an instrumentation probe. **Free**: probes model the
    /// external observation of a process's local variables (e.g. the
    /// failure-detector output `fdOutput` of Figure 2) and take no step.
    pub fn probe(&self, key: &'static str, value: u64) {
        let step = self.shared.step.get();
        self.shared.trace.borrow_mut().probes.push(ProbeEvent {
            step,
            pid: self.pid,
            key,
            value,
        });
    }

    /// Publishes a process-set-valued probe (encoded as the bitset).
    pub fn probe_set(&self, key: &'static str, set: ProcSet) {
        self.probe(key, set.bits());
    }

    /// Records this process's irrevocable decision. **Free** (the decision
    /// is local state; protocols typically write it to shared registers
    /// separately).
    ///
    /// # Panics
    ///
    /// Panics if the process already decided (decisions are irrevocable).
    pub fn decide(&self, value: Value) {
        let step = self.shared.step.get();
        self.shared.record_decision(self.pid, value, step);
    }

    /// Returns `true` if this process has decided.
    pub fn has_decided(&self) -> bool {
        self.shared.trace.borrow().decisions[self.pid.index()].is_some()
    }

    /// The global step index currently executing (instrumentation only; a
    /// real process has no access to global time).
    pub fn now(&self) -> u64 {
        self.shared.step.get()
    }

    fn count_op(&self) {
        let slot = &self.shared.op_counts[self.pid.index()];
        slot.set(slot.get() + 1);
    }

    fn step_grant(&self) -> StepGrant<'_> {
        StepGrant {
            shared: &self.shared,
            pid: self.pid,
        }
    }
}

/// Future resolving when the executor grants this process its next step.
struct StepGrant<'a> {
    shared: &'a SimShared,
    pid: ProcessId,
}

impl Future for StepGrant<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.shared.grant.get() == Some(self.pid) {
            self.shared.grant.set(None);
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}
