//! Typed register handles.
//!
//! The shared memory `Ξ` of the model is a set of atomic read/write
//! registers. A [`Reg<T>`] is a cheap, copyable, typed handle into the
//! simulator's register arena; the value type `T` must implement
//! [`RegValue`] (cloneable, debuggable, `'static`).

use std::fmt;
use std::marker::PhantomData;

use st_core::ProcessId;

/// Marker trait for values storable in a register.
///
/// Blanket-implemented for every `Clone + Debug + 'static` type; reads
/// return clones (register reads are atomic copies in the model).
pub trait RegValue: Clone + fmt::Debug + 'static {}

impl<T: Clone + fmt::Debug + 'static> RegValue for T {}

/// Write discipline of a register.
///
/// The model's registers are plain multi-writer multi-reader atomic
/// registers; protocols such as Figure 2 only ever write a register from one
/// process, and declaring that intent lets the simulator flag discipline
/// violations (a protocol bug) at the faulting write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteDiscipline {
    /// Any process may write.
    MultiWriter,
    /// Only the given process may write; other writers trigger a
    /// [`SimError::WriteDisciplineViolation`](crate::SimError).
    SingleWriter(ProcessId),
}

/// A typed handle to a register in the simulator's arena.
///
/// Handles are plain indices: copying is free, and a handle is only
/// meaningful for the simulator that allocated it.
pub struct Reg<T> {
    pub(crate) index: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Reg<T> {
    pub(crate) fn new(index: u32) -> Self {
        Reg {
            index,
            _marker: PhantomData,
        }
    }

    /// The arena index of this register (stable across the simulation).
    pub fn index(&self) -> usize {
        self.index as usize
    }
}

impl<T> Clone for Reg<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Reg<T> {}

impl<T> PartialEq for Reg<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T> Eq for Reg<T> {}

impl<T> fmt::Debug for Reg<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg#{}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_and_eq() {
        let a: Reg<u64> = Reg::new(3);
        let b = a;
        assert_eq!(a, b);
        assert_eq!(a.index(), 3);
        assert_eq!(format!("{a:?}"), "Reg#3");
    }

    #[test]
    fn blanket_reg_value() {
        fn assert_reg_value<T: RegValue>() {}
        assert_reg_value::<u64>();
        assert_reg_value::<Vec<u32>>();
        assert_reg_value::<Option<(u64, u64)>>();
    }
}
