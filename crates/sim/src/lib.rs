//! Deterministic read-write shared-memory simulator.
//!
//! This crate is the runtime substrate of the reproduction: it executes
//! protocol automata over atomic registers, driven step-by-step by a
//! schedule, exactly as in the model of *Partial Synchrony Based on Set
//! Timeliness* (Section 2):
//!
//! - a **step** is one register read or write plus unbounded local
//!   computation ([`ProcessCtx::read`]/[`ProcessCtx::write`] suspend until
//!   the schedule grants the process a step);
//! - the executor is hand-rolled, single-threaded, and **fully
//!   deterministic** — the schedule is the only nondeterminism, so runs are
//!   reproducible bit-for-bit and the schedule is a controlled experimental
//!   variable;
//! - crashes are schedules that stop scheduling a process; probes expose
//!   local protocol state (failure-detector outputs, round numbers) to the
//!   trace without costing steps.
//!
//! See [`Sim`] for the entry point and a complete example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
pub mod error;
pub mod memory;
pub mod register;
mod runner;
pub mod trace;

pub use ctx::ProcessCtx;
pub use error::SimError;
pub use memory::{Memory, RegisterStats};
pub use register::{Reg, RegValue, WriteDiscipline};
pub use runner::{RunConfig, RunReport, RunStatus, Sim, StepOutcome, StopWhen};
pub use trace::{Decision, ProbeEvent, ProbeLog};
