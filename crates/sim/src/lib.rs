//! Deterministic read-write shared-memory simulator.
//!
//! This crate is the runtime substrate of the reproduction: it executes
//! protocol automata over atomic registers, driven step-by-step by a
//! schedule, exactly as in the model of *Partial Synchrony Based on Set
//! Timeliness* (Section 2):
//!
//! - a **step** is one register read or write plus unbounded local
//!   computation;
//! - the executor is hand-rolled, single-threaded, and **fully
//!   deterministic** — the schedule is the only nondeterminism, so runs are
//!   reproducible bit-for-bit and the schedule is a controlled experimental
//!   variable;
//! - crashes are schedules that stop scheduling a process; probes expose
//!   local protocol state (failure-detector outputs, round numbers) to the
//!   trace without costing steps.
//!
//! # The two automaton ABIs
//!
//! Protocols plug into the executor through either of two equivalent ABIs,
//! and one [`Sim`] mixes both kinds of slots freely:
//!
//! 1. **Async** ([`Sim::spawn`], [`ProcessCtx`]): the protocol is an
//!    `async fn`; each register operation suspends until the schedule
//!    grants the process a step. This is the ergonomic default — code reads
//!    like the paper's pseudocode — and the right choice for everything off
//!    the hot path (`st-registers`, `st-agreement`, tests, scripted
//!    scenarios). Cost: the compiler-generated future must be polled and
//!    resumed every step (~23–26 ns/step on the Figure 2 n = 8 workload on
//!    the reference host).
//! 2. **State machine** ([`Sim::spawn_automaton`], [`Automaton`],
//!    [`StepAccess`]): the protocol keeps explicit control state and the
//!    executor calls [`Automaton::step`] directly with a scoped view of the
//!    register arena — no `Pin<Box<dyn Future>>`, no poll/grant handshake,
//!    and (in a machine-only run) a single arena borrow per `run` call
//!    instead of one per step. This is the fast path for protocols stepped
//!    millions of times per experiment.
//!
//! The state-machine ABI additionally unlocks two drive modes the boxed
//! async path cannot express:
//!
//! - [`Sim::run_automata`] drives a caller-owned homogeneous fleet
//!   (`&mut [A]`) with **static dispatch** — the automaton body inlines
//!   into the executor loop;
//! - [`Sim::run_automata_replay`] drives the fleet straight off a
//!   pre-materialized [`Schedule`](st_core::Schedule) slice, fusing the
//!   cursor pull into the
//!   loop condition;
//! - [`Sim::run_automata_replay_sharded`] batches the replay per
//!   **cache-resident fleet shard**: the schedule is processed in
//!   contiguous slices, each slice executed shard by shard (the
//!   deterministic *shard-stable reordering* of the schedule — see
//!   [`sharded_replay_order`] for the exact executed order and the
//!   equivalence contract);
//! - [`Sim::run_automata_replay_soa`] batches the replay per **phase over
//!   struct-of-arrays fleet state**: for [`PhaseBatch`] automata, slices
//!   whose allotments are pure read runs execute as single
//!   [`PhaseBatch::step_reads`] span reads, machines grouped by phase
//!   class — observationally identical to the plain replay, enforced by
//!   differential tests on every schedule family.
//!
//! ## Choosing a fleet replay drive
//!
//! | Drive | Executed order | When it wins | When to avoid |
//! |-------|----------------|--------------|---------------|
//! | [`run_automata_replay`](Sim::run_automata_replay) | the schedule, verbatim | always correct; fastest at small n (≤ 64-ish), and the only drive with per-step stop conditions | nothing — it is the reference |
//! | [`run_automata_replay_sharded`](Sim::run_automata_replay_sharded) | shard-stable **reordering** | per-automaton state ≫ cache and the schedule interleaves across the whole fleet | it executes a *different* (equivalent-model) schedule, so protocol behavior can shift; measured on the lean n = 256 interleaved workload it is ~neutral (`lean_interleaved_n256` in `BENCH_timeliness.json`) |
//! | [`run_automata_replay_soa`](Sim::run_automata_replay_soa) | the schedule, verbatim (batched) | scan-heavy [`PhaseBatch`] fleets at n ≥ 64 whose slices are pure read runs — the lean stack's n-scaling curve records ≥ 2× over plain at n ≥ 256 (`lean_n_scaling`); round-robin-shaped slices take a strided cursor fast path with no per-step bucketing at all | write-dense phases: slices go impure and the drive runs the scalar fallback plus bucketing overhead. At n < [`SOA_DELEGATE_BELOW_N`] the entry point delegates to the plain replay by itself (the old n = 12 0.50× degenerate is gone); [`run_automata_replay_soa_batched`](Sim::run_automata_replay_soa_batched) bypasses the heuristic |
//!
//! The Figure 2 k-anti-Ω detector in `st-fd` and the agreement stack in
//! `st-agreement` (Paxos proposer, k-set agreement) ship on both ABIs,
//! held observationally identical (same probes at the same step indices,
//! same register footprint) by differential tests; on the replay drive the
//! state machine executes the n = 8 convergence workload at ≥3× the async
//! step throughput, and the full FD + k-parallel-Paxos stack runs the E3
//! workload at ≥2× (see `BENCH_timeliness.json` at the repository root,
//! `sim_step_throughput` and `agreement_step_throughput`, for the recorded
//! numbers).
//!
//! Step semantics are identical across the ABIs and drive modes: one
//! register operation per scheduled step, same accounting, same probes and
//! decisions, same determinism guarantees. Malformed schedules — a step
//! source naming a process outside the universe — surface as typed
//! [`SimError::ScheduleOutOfUniverse`] errors from every run/replay entry
//! point, not as panics.
//!
//! See [`Sim`] for the entry point and a complete example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod ctx;
pub mod error;
pub mod memory;
pub mod register;
mod runner;
pub mod soa;
pub mod trace;

pub use automaton::{Automaton, Status, StepAccess};
pub use ctx::ProcessCtx;
pub use error::SimError;
pub use memory::{Memory, RegisterStats};
pub use register::{Reg, RegValue, WriteDiscipline};
pub use runner::{
    sharded_replay_order, RunConfig, RunReport, RunStatus, Sim, StepOutcome, StopWhen,
    SOA_DELEGATE_BELOW_N,
};
pub use soa::{BatchAccess, PhaseBatch};
pub use trace::{Decision, ProbeEvent, ProbeLog};
