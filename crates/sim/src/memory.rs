//! The register arena: the shared memory `Ξ` of the model.
//!
//! Registers are allocated before the run, hold either a raw `u64` word or a
//! type-erased value, and are accessed atomically (the simulator is
//! single-threaded; atomicity is by construction). Accounting (read/write
//! counts, versions) feeds the trace.
//!
//! # The typed word fast path, and the arena layout
//!
//! Every register of the paper's protocols (Figure 2's `Heartbeat[p]` and
//! `Counter[A, q]`, ballot numbers, round counters) is a `u64`, and the
//! k-anti-Ω inner loop reads `|Π^k_n|·n` of them per iteration — so the
//! register representation sits on the hottest path of the whole simulator.
//! Two layout decisions follow:
//!
//! 1. **Unboxed words.** `u64` registers are stored as plain words:
//!    [`Memory::read_word`] / [`Memory::write_word`] touch them with a byte
//!    compare and an array load (no vtable, no downcast, no clone), and the
//!    generic [`Memory::read`] / [`Memory::write`] route `T = u64` to the
//!    same representation via a compile-time [`TypeId`] check that
//!    monomorphizes away.
//! 2. **Structure of arrays.** The arena keeps parallel arrays — kinds
//!    (1 byte), word values (8 bytes), read/write counts, and the *cold*
//!    metadata (names, disciplines, boxed values) off to the side — instead
//!    of an array of register structs. A protocol that sweeps hundreds of
//!    registers per iteration (the Figure 2 counter matrix) then streams a
//!    few KiB of dense values rather than dragging each register's name and
//!    discipline through the cache with it: the per-step cost of the sweep
//!    is the load, the count bump, and nothing else.
//!
//! Handles, disciplines, and error behavior are independent of the layout.

use std::any::{Any, TypeId};

use st_core::ProcessId;

use crate::error::SimError;
use crate::register::{Reg, RegValue, WriteDiscipline};

/// Storage class of a register: words live inline in the hot cell,
/// everything else is boxed in the side table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Word,
    Boxed,
}

/// The register arena (see the module docs for the layout): genuine
/// structure-of-arrays — kinds, payloads, and access counts in parallel
/// dense vectors, so a scan streams 8-byte values (plus a 1-byte kind
/// check and an 8-byte count bump in their own sequential streams) instead
/// of dragging a 32-byte per-register struct through the cache with every
/// read. The counter-matrix scan is the hottest loop in the repository;
/// the split layout roughly halves its memory traffic and lets the span
/// paths compile to `memcpy` + a vectorized increment loop.
#[derive(Default)]
pub struct Memory {
    /// Storage class per register (1 byte, dense).
    kinds: Vec<Kind>,
    /// The value for `Kind::Word`, the index into `Memory::boxed` for
    /// `Kind::Boxed`.
    payloads: Vec<u64>,
    /// Completed reads per register.
    reads: Vec<u64>,
    /// Completed writes per register (version counter).
    writes: Vec<u64>,
    /// Write discipline per register (checked on writes only).
    disciplines: Vec<WriteDiscipline>,
    /// Allocation names (cold: error messages and stats).
    names: Vec<String>,
    /// Side table for non-word values.
    boxed: Vec<Box<dyn Any>>,
}

/// Per-register access statistics, reported after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterStats {
    /// Name given at allocation.
    pub name: String,
    /// Completed writes.
    pub writes: u64,
    /// Completed reads.
    pub reads: u64,
}

fn is_word<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<u64>()
}

/// Converts a `T` proven (by [`is_word`]) to be `u64`. The `dyn Any` hop is
/// how safe Rust spells a checked transmute; it compiles to a move once
/// monomorphized.
fn to_word<T: RegValue>(value: T) -> u64 {
    *(&value as &dyn Any)
        .downcast_ref::<u64>()
        .expect("caller checked T = u64")
}

/// Inverse of [`to_word`].
fn from_word<T: RegValue>(word: u64) -> T {
    (&word as &dyn Any)
        .downcast_ref::<T>()
        .expect("caller checked T = u64")
        .clone()
}

impl Memory {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of allocated registers.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if no register has been allocated.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Allocates a register with the given write discipline and initial
    /// value, returning its typed handle. `u64` values take the word fast
    /// path (see the module docs).
    pub fn alloc<T: RegValue>(
        &mut self,
        name: impl Into<String>,
        discipline: WriteDiscipline,
        init: T,
    ) -> Reg<T> {
        let index = self.kinds.len() as u32;
        let (kind, payload) = if is_word::<T>() {
            (Kind::Word, to_word(init))
        } else {
            let slot = self.boxed.len() as u64;
            self.boxed.push(Box::new(init));
            (Kind::Boxed, slot)
        };
        self.kinds.push(kind);
        self.payloads.push(payload);
        self.reads.push(0);
        self.writes.push(0);
        self.disciplines.push(discipline);
        self.names.push(name.into());
        Reg::new(index)
    }

    fn type_mismatch(&self, index: usize) -> SimError {
        SimError::TypeMismatch {
            register: index,
            name: self.names[index].clone(),
        }
    }

    fn check_writer(&self, index: usize, writer: ProcessId) -> Result<(), SimError> {
        if let WriteDiscipline::SingleWriter(owner) = self.disciplines[index] {
            if owner != writer {
                return Err(SimError::WriteDisciplineViolation {
                    register: index,
                    name: self.names[index].clone(),
                    owner,
                    writer,
                });
            }
        }
        Ok(())
    }

    /// Atomic read: returns a clone of the current value and counts the
    /// access.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`] for a foreign handle,
    /// [`SimError::TypeMismatch`] if `T` differs from the allocation type.
    pub fn read<T: RegValue>(&mut self, reg: Reg<T>) -> Result<T, SimError> {
        if is_word::<T>() {
            // Monomorphizes to the word path for T = u64.
            let forged: Reg<u64> = Reg::new(reg.index);
            return self.read_word(forged).map(from_word);
        }
        let idx = reg.index();
        match self.kinds.get(idx) {
            Some(Kind::Boxed) => {
                let value = self.boxed[self.payloads[idx] as usize]
                    .downcast_ref::<T>()
                    .ok_or_else(|| self.type_mismatch(idx))?
                    .clone();
                self.reads[idx] += 1;
                Ok(value)
            }
            Some(Kind::Word) => Err(self.type_mismatch(idx)),
            None => Err(SimError::UnknownRegister { register: idx }),
        }
    }

    /// Atomic word read: the non-generic fast path for `u64` registers — a
    /// bounds check, a kind compare, and a count bump on one hot cell.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::read`].
    #[inline]
    pub fn read_word(&mut self, reg: Reg<u64>) -> Result<u64, SimError> {
        let idx = reg.index();
        match self.kinds.get(idx) {
            Some(Kind::Word) => {
                self.reads[idx] += 1;
                Ok(self.payloads[idx])
            }
            Some(_) => Err(self.type_mismatch(idx)),
            None => Err(SimError::UnknownRegister { register: idx }),
        }
    }

    /// Atomic write: replaces the value and counts the access, enforcing the
    /// register's write discipline.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`], [`SimError::TypeMismatch`], or
    /// [`SimError::WriteDisciplineViolation`] when a single-writer register
    /// is written by a foreign process.
    pub fn write<T: RegValue>(
        &mut self,
        writer: ProcessId,
        reg: Reg<T>,
        value: T,
    ) -> Result<(), SimError> {
        if is_word::<T>() {
            let forged: Reg<u64> = Reg::new(reg.index);
            return self.write_word(writer, forged, to_word(value));
        }
        let idx = reg.index();
        let kind = *self
            .kinds
            .get(idx)
            .ok_or(SimError::UnknownRegister { register: idx })?;
        self.check_writer(idx, writer)?;
        match kind {
            Kind::Boxed => {
                match self.boxed[self.payloads[idx] as usize].downcast_mut::<T>() {
                    Some(slot) => *slot = value,
                    None => return Err(self.type_mismatch(idx)),
                }
                self.writes[idx] += 1;
                Ok(())
            }
            Kind::Word => Err(self.type_mismatch(idx)),
        }
    }

    /// Atomic reads of `dest.len()` consecutive word registers starting
    /// `offset` slots after `base` — the span form of
    /// [`read_word`](Self::read_word), one bounds check for the whole range
    /// and a tight copy/count loop the compiler can vectorize. Each slot
    /// counts as one completed read, exactly as `dest.len()` calls to
    /// `read_word` would.
    ///
    /// The span is *not* one atomic operation of the model — callers (the
    /// batched SoA drive) are responsible for only using it where the
    /// per-slot reads are known to commute with every concurrently
    /// scheduled operation.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`] if the span leaves the arena,
    /// [`SimError::TypeMismatch`] if any slot holds a non-word register. No
    /// access is counted on error.
    pub fn read_word_span(
        &mut self,
        base: Reg<u64>,
        offset: usize,
        dest: &mut [u64],
    ) -> Result<(), SimError> {
        let start = base.index() + offset;
        let end = start + dest.len();
        if end > self.kinds.len() {
            return Err(SimError::UnknownRegister {
                register: end.saturating_sub(1),
            });
        }
        // Three tight passes over the parallel arrays: a 1-byte kind scan,
        // a payload memcpy, and a vectorized count bump — each its own
        // sequential stream.
        if let Some(bad) = self.kinds[start..end].iter().position(|&k| k != Kind::Word) {
            return Err(self.type_mismatch(start + bad));
        }
        dest.copy_from_slice(&self.payloads[start..end]);
        for r in &mut self.reads[start..end] {
            *r += 1;
        }
        Ok(())
    }

    /// Atomic word write: the non-generic fast path for `u64` registers.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::write`].
    #[inline]
    pub fn write_word(
        &mut self,
        writer: ProcessId,
        reg: Reg<u64>,
        value: u64,
    ) -> Result<(), SimError> {
        let idx = reg.index();
        // Single-writer registers are the common case in the paper's
        // protocols; the discipline lives in a cold array, loaded only on
        // writes (reads outnumber writes ~n·|Π^k_n| to 1 in Figure 2).
        match self.disciplines.get(idx) {
            Some(&WriteDiscipline::MultiWriter) => {}
            Some(&WriteDiscipline::SingleWriter(owner)) if owner == writer => {}
            Some(_) => return Err(self.writer_violation(idx, writer)),
            None => return Err(SimError::UnknownRegister { register: idx }),
        }
        match self.kinds[idx] {
            Kind::Word => {
                self.payloads[idx] = value;
                self.writes[idx] += 1;
                Ok(())
            }
            Kind::Boxed => Err(self.type_mismatch(idx)),
        }
    }

    #[cold]
    fn writer_violation(&self, index: usize, writer: ProcessId) -> SimError {
        match self.disciplines[index] {
            WriteDiscipline::SingleWriter(owner) => SimError::WriteDisciplineViolation {
                register: index,
                name: self.names[index].clone(),
                owner,
                writer,
            },
            WriteDiscipline::MultiWriter => unreachable!("only single-writer can violate"),
        }
    }

    /// Non-step observation of a register (for tests and instrumentation):
    /// does not count as an access.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::read`], minus accounting.
    pub fn peek<T: RegValue>(&self, reg: Reg<T>) -> Result<T, SimError> {
        let idx = reg.index();
        let kind = *self
            .kinds
            .get(idx)
            .ok_or(SimError::UnknownRegister { register: idx })?;
        match kind {
            Kind::Word if is_word::<T>() => Ok(from_word(self.payloads[idx])),
            Kind::Boxed => self.boxed[self.payloads[idx] as usize]
                .downcast_ref::<T>()
                .cloned()
                .ok_or_else(|| self.type_mismatch(idx)),
            Kind::Word => Err(self.type_mismatch(idx)),
        }
    }

    /// Name of a register.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`] for a foreign handle.
    pub fn name(&self, index: usize) -> Result<&str, SimError> {
        if index < self.names.len() {
            Ok(&self.names[index])
        } else {
            Err(SimError::UnknownRegister { register: index })
        }
    }

    /// Access statistics for all registers, in allocation order.
    pub fn stats(&self) -> Vec<RegisterStats> {
        self.names
            .iter()
            .zip(self.reads.iter().zip(&self.writes))
            .map(|(name, (&reads, &writes))| RegisterStats {
                name: name.clone(),
                writes,
                reads,
            })
            .collect()
    }

    /// Total completed register operations (reads + writes).
    pub fn total_ops(&self) -> u64 {
        self.reads.iter().chain(&self.writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 0u64);
        assert_eq!(m.read(r).unwrap(), 0);
        m.write(p(0), r, 42).unwrap();
        assert_eq!(m.read(r).unwrap(), 42);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn word_fast_path_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc("hb", WriteDiscipline::MultiWriter, 7u64);
        // Word and generic accessors see the same cell.
        assert_eq!(m.read_word(r).unwrap(), 7);
        m.write_word(p(1), r, 9).unwrap();
        assert_eq!(m.read(r).unwrap(), 9);
        m.write(p(0), r, 11).unwrap();
        assert_eq!(m.read_word(r).unwrap(), 11);
        let stats = m.stats();
        assert_eq!(stats[0].reads, 3);
        assert_eq!(stats[0].writes, 2);
    }

    #[test]
    fn word_accessors_reject_boxed_cells() {
        let mut m = Memory::new();
        let r = m.alloc("s", WriteDiscipline::MultiWriter, String::from("x"));
        let forged: Reg<u64> = Reg::new(r.index);
        assert!(matches!(
            m.read_word(forged),
            Err(SimError::TypeMismatch { .. })
        ));
        assert!(matches!(
            m.write_word(p(0), forged, 1),
            Err(SimError::TypeMismatch { .. })
        ));
        // Failed accesses are not counted.
        assert_eq!(m.stats()[0].reads + m.stats()[0].writes, 0);
    }

    #[test]
    fn structured_values() {
        let mut m = Memory::new();
        let r = m.alloc(
            "pair",
            WriteDiscipline::MultiWriter,
            (0u64, Vec::<u32>::new()),
        );
        m.write(p(1), r, (7, vec![1, 2])).unwrap();
        assert_eq!(m.read(r).unwrap(), (7, vec![1, 2]));
    }

    #[test]
    fn word_and_boxed_registers_interleave() {
        // The boxed side table must stay aligned when allocations alternate
        // between the dense and boxed classes.
        let mut m = Memory::new();
        let w0 = m.alloc("w0", WriteDiscipline::MultiWriter, 10u64);
        let b0 = m.alloc("b0", WriteDiscipline::MultiWriter, String::from("a"));
        let w1 = m.alloc("w1", WriteDiscipline::MultiWriter, 20u64);
        let b1 = m.alloc("b1", WriteDiscipline::MultiWriter, vec![1u32]);
        m.write(p(0), b0, "z".into()).unwrap();
        m.write_word(p(0), w1, 21).unwrap();
        assert_eq!(m.read(b0).unwrap(), "z");
        assert_eq!(m.read(b1).unwrap(), vec![1u32]);
        assert_eq!(m.read_word(w0).unwrap(), 10);
        assert_eq!(m.read_word(w1).unwrap(), 21);
    }

    #[test]
    fn single_writer_enforced() {
        let mut m = Memory::new();
        let r = m.alloc("hb", WriteDiscipline::SingleWriter(p(2)), 0u64);
        assert!(m.write(p(2), r, 1).is_ok());
        let err = m.write(p(0), r, 9).unwrap_err();
        assert!(matches!(err, SimError::WriteDisciplineViolation { .. }));
        // The word path enforces the same discipline.
        let err = m.write_word(p(0), r, 9).unwrap_err();
        assert!(matches!(err, SimError::WriteDisciplineViolation { .. }));
        // Failed write must not change the value or counts.
        assert_eq!(m.peek(r).unwrap(), 1);
        assert_eq!(m.stats()[0].writes, 1);
    }

    #[test]
    fn type_mismatch_detected() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 5u64);
        // Forge a handle with the wrong type at the same index.
        let wrong: Reg<String> = Reg::new(r.index);
        assert!(matches!(m.peek(wrong), Err(SimError::TypeMismatch { .. })));
        let mut_err = m.read(wrong);
        assert!(matches!(mut_err, Err(SimError::TypeMismatch { .. })));
        assert!(matches!(
            m.write(p(0), wrong, "s".into()),
            Err(SimError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_register_detected() {
        let mut m = Memory::new();
        let r: Reg<u64> = Reg::new(9);
        assert!(matches!(
            m.peek(r),
            Err(SimError::UnknownRegister { register: 9 })
        ));
        assert!(matches!(
            m.read_word(r),
            Err(SimError::UnknownRegister { register: 9 })
        ));
    }

    #[test]
    fn accounting() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 0u64);
        let s = m.alloc("y", WriteDiscipline::MultiWriter, 0u64);
        m.write(p(0), r, 1).unwrap();
        let _ = m.read(r).unwrap();
        let _ = m.read(r).unwrap();
        let _ = m.peek(s).unwrap(); // peek not counted
        let stats = m.stats();
        assert_eq!(stats[0].writes, 1);
        assert_eq!(stats[0].reads, 2);
        assert_eq!(stats[1].reads, 0);
        assert_eq!(m.total_ops(), 3);
        assert_eq!(m.name(0).unwrap(), "x");
    }
}
