//! The register arena: the shared memory `Ξ` of the model.
//!
//! Registers are allocated before the run, hold type-erased values, and are
//! accessed atomically (the simulator is single-threaded; atomicity is by
//! construction). Accounting (read/write counts, versions) feeds the trace.

use std::any::Any;

use st_core::ProcessId;

use crate::error::SimError;
use crate::register::{Reg, RegValue, WriteDiscipline};

struct RegisterCell {
    name: String,
    discipline: WriteDiscipline,
    value: Box<dyn Any>,
    /// Number of completed writes (version counter).
    writes: u64,
    /// Number of completed reads.
    reads: u64,
}

/// The register arena.
#[derive(Default)]
pub struct Memory {
    cells: Vec<RegisterCell>,
}

/// Per-register access statistics, reported after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterStats {
    /// Name given at allocation.
    pub name: String,
    /// Completed writes.
    pub writes: u64,
    /// Completed reads.
    pub reads: u64,
}

impl Memory {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of allocated registers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no register has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Allocates a register with the given write discipline and initial
    /// value, returning its typed handle.
    pub fn alloc<T: RegValue>(
        &mut self,
        name: impl Into<String>,
        discipline: WriteDiscipline,
        init: T,
    ) -> Reg<T> {
        let index = self.cells.len() as u32;
        self.cells.push(RegisterCell {
            name: name.into(),
            discipline,
            value: Box::new(init),
            writes: 0,
            reads: 0,
        });
        Reg::new(index)
    }

    fn cell(&self, index: usize) -> Result<&RegisterCell, SimError> {
        self.cells
            .get(index)
            .ok_or(SimError::UnknownRegister { register: index })
    }

    fn cell_mut(&mut self, index: usize) -> Result<&mut RegisterCell, SimError> {
        self.cells
            .get_mut(index)
            .ok_or(SimError::UnknownRegister { register: index })
    }

    /// Atomic read: returns a clone of the current value and counts the
    /// access.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`] for a foreign handle,
    /// [`SimError::TypeMismatch`] if `T` differs from the allocation type.
    pub fn read<T: RegValue>(&mut self, reg: Reg<T>) -> Result<T, SimError> {
        let idx = reg.index();
        let cell = self.cell_mut(idx)?;
        let value = cell
            .value
            .downcast_ref::<T>()
            .ok_or_else(|| SimError::TypeMismatch {
                register: idx,
                name: cell.name.clone(),
            })?
            .clone();
        cell.reads += 1;
        Ok(value)
    }

    /// Atomic write: replaces the value and counts the access, enforcing the
    /// register's write discipline.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`], [`SimError::TypeMismatch`], or
    /// [`SimError::WriteDisciplineViolation`] when a single-writer register
    /// is written by a foreign process.
    pub fn write<T: RegValue>(
        &mut self,
        writer: ProcessId,
        reg: Reg<T>,
        value: T,
    ) -> Result<(), SimError> {
        let idx = reg.index();
        let cell = self.cell_mut(idx)?;
        if let WriteDiscipline::SingleWriter(owner) = cell.discipline {
            if owner != writer {
                return Err(SimError::WriteDisciplineViolation {
                    register: idx,
                    name: cell.name.clone(),
                    owner,
                    writer,
                });
            }
        }
        let slot = cell
            .value
            .downcast_mut::<T>()
            .ok_or_else(|| SimError::TypeMismatch {
                register: idx,
                name: cell.name.clone(),
            })?;
        *slot = value;
        cell.writes += 1;
        Ok(())
    }

    /// Non-step observation of a register (for tests and instrumentation):
    /// does not count as an access.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::read`], minus accounting.
    pub fn peek<T: RegValue>(&self, reg: Reg<T>) -> Result<T, SimError> {
        let idx = reg.index();
        let cell = self.cell(idx)?;
        cell.value
            .downcast_ref::<T>()
            .cloned()
            .ok_or_else(|| SimError::TypeMismatch {
                register: idx,
                name: cell.name.clone(),
            })
    }

    /// Name of a register.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`] for a foreign handle.
    pub fn name(&self, index: usize) -> Result<&str, SimError> {
        Ok(&self.cell(index)?.name)
    }

    /// Access statistics for all registers, in allocation order.
    pub fn stats(&self) -> Vec<RegisterStats> {
        self.cells
            .iter()
            .map(|c| RegisterStats {
                name: c.name.clone(),
                writes: c.writes,
                reads: c.reads,
            })
            .collect()
    }

    /// Total completed register operations (reads + writes).
    pub fn total_ops(&self) -> u64 {
        self.cells.iter().map(|c| c.reads + c.writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 0u64);
        assert_eq!(m.read(r).unwrap(), 0);
        m.write(p(0), r, 42).unwrap();
        assert_eq!(m.read(r).unwrap(), 42);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn structured_values() {
        let mut m = Memory::new();
        let r = m.alloc("pair", WriteDiscipline::MultiWriter, (0u64, Vec::<u32>::new()));
        m.write(p(1), r, (7, vec![1, 2])).unwrap();
        assert_eq!(m.read(r).unwrap(), (7, vec![1, 2]));
    }

    #[test]
    fn single_writer_enforced() {
        let mut m = Memory::new();
        let r = m.alloc("hb", WriteDiscipline::SingleWriter(p(2)), 0u64);
        assert!(m.write(p(2), r, 1).is_ok());
        let err = m.write(p(0), r, 9).unwrap_err();
        assert!(matches!(err, SimError::WriteDisciplineViolation { .. }));
        // Failed write must not change the value or counts.
        assert_eq!(m.peek(r).unwrap(), 1);
        assert_eq!(m.stats()[0].writes, 1);
    }

    #[test]
    fn type_mismatch_detected() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 5u64);
        // Forge a handle with the wrong type at the same index.
        let wrong: Reg<String> = Reg::new(r.index);
        assert!(matches!(m.peek(wrong), Err(SimError::TypeMismatch { .. })));
    }

    #[test]
    fn unknown_register_detected() {
        let m = Memory::new();
        let r: Reg<u64> = Reg::new(9);
        assert!(matches!(m.peek(r), Err(SimError::UnknownRegister { register: 9 })));
    }

    #[test]
    fn accounting() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 0u64);
        let s = m.alloc("y", WriteDiscipline::MultiWriter, 0u64);
        m.write(p(0), r, 1).unwrap();
        let _ = m.read(r).unwrap();
        let _ = m.read(r).unwrap();
        let _ = m.peek(s).unwrap(); // peek not counted
        let stats = m.stats();
        assert_eq!(stats[0].writes, 1);
        assert_eq!(stats[0].reads, 2);
        assert_eq!(stats[1].reads, 0);
        assert_eq!(m.total_ops(), 3);
        assert_eq!(m.name(0).unwrap(), "x");
    }
}
