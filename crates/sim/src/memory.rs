//! The register arena: the shared memory `Ξ` of the model.
//!
//! Registers are allocated before the run, hold either a raw `u64` word or a
//! type-erased value, and are accessed atomically (the simulator is
//! single-threaded; atomicity is by construction). Accounting (read/write
//! counts, versions) feeds the trace.
//!
//! # The typed word fast path
//!
//! Every register of the paper's protocols (Figure 2's `Heartbeat[p]` and
//! `Counter[A, q]`, ballot numbers, round counters) is a `u64`, and the
//! k-anti-Ω inner loop reads `|Π^k_n|·n` of them per iteration — so the
//! generic `Box<dyn Any>` + downcast + clone representation sat on the
//! hottest path of the whole simulator. `u64` registers are therefore stored
//! **unboxed** in a word arena variant: [`Memory::read_word`] /
//! [`Memory::write_word`] touch them with a plain enum match (no vtable, no
//! downcast, no clone), and the generic [`Memory::read`] / [`Memory::write`]
//! route `T = u64` to the same representation via a compile-time
//! [`TypeId`] check that monomorphizes away. Handles, disciplines, and error
//! behavior are unchanged.

use std::any::{Any, TypeId};

use st_core::ProcessId;

use crate::error::SimError;
use crate::register::{Reg, RegValue, WriteDiscipline};

/// Storage for one register: `u64`s live unboxed on the word fast path.
enum CellValue {
    Word(u64),
    Boxed(Box<dyn Any>),
}

struct RegisterCell {
    name: String,
    discipline: WriteDiscipline,
    value: CellValue,
    /// Number of completed writes (version counter).
    writes: u64,
    /// Number of completed reads.
    reads: u64,
}

impl RegisterCell {
    fn check_writer(&self, index: usize, writer: ProcessId) -> Result<(), SimError> {
        if let WriteDiscipline::SingleWriter(owner) = self.discipline {
            if owner != writer {
                return Err(SimError::WriteDisciplineViolation {
                    register: index,
                    name: self.name.clone(),
                    owner,
                    writer,
                });
            }
        }
        Ok(())
    }
}

/// The register arena.
#[derive(Default)]
pub struct Memory {
    cells: Vec<RegisterCell>,
}

/// Per-register access statistics, reported after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterStats {
    /// Name given at allocation.
    pub name: String,
    /// Completed writes.
    pub writes: u64,
    /// Completed reads.
    pub reads: u64,
}

fn is_word<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<u64>()
}

/// Converts a `T` proven (by [`is_word`]) to be `u64`. The `dyn Any` hop is
/// how safe Rust spells a checked transmute; it compiles to a move once
/// monomorphized.
fn to_word<T: RegValue>(value: T) -> u64 {
    *(&value as &dyn Any)
        .downcast_ref::<u64>()
        .expect("caller checked T = u64")
}

/// Inverse of [`to_word`].
fn from_word<T: RegValue>(word: u64) -> T {
    (&word as &dyn Any)
        .downcast_ref::<T>()
        .expect("caller checked T = u64")
        .clone()
}

impl Memory {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of allocated registers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no register has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Allocates a register with the given write discipline and initial
    /// value, returning its typed handle. `u64` values take the word fast
    /// path (see the module docs).
    pub fn alloc<T: RegValue>(
        &mut self,
        name: impl Into<String>,
        discipline: WriteDiscipline,
        init: T,
    ) -> Reg<T> {
        let index = self.cells.len() as u32;
        let value = if is_word::<T>() {
            CellValue::Word(to_word(init))
        } else {
            CellValue::Boxed(Box::new(init))
        };
        self.cells.push(RegisterCell {
            name: name.into(),
            discipline,
            value,
            writes: 0,
            reads: 0,
        });
        Reg::new(index)
    }

    fn cell(&self, index: usize) -> Result<&RegisterCell, SimError> {
        self.cells
            .get(index)
            .ok_or(SimError::UnknownRegister { register: index })
    }

    fn cell_mut(&mut self, index: usize) -> Result<&mut RegisterCell, SimError> {
        self.cells
            .get_mut(index)
            .ok_or(SimError::UnknownRegister { register: index })
    }

    /// Atomic read: returns a clone of the current value and counts the
    /// access.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`] for a foreign handle,
    /// [`SimError::TypeMismatch`] if `T` differs from the allocation type.
    pub fn read<T: RegValue>(&mut self, reg: Reg<T>) -> Result<T, SimError> {
        let idx = reg.index();
        let cell = self.cell_mut(idx)?;
        let value = match &cell.value {
            CellValue::Word(w) if is_word::<T>() => from_word(*w),
            CellValue::Boxed(boxed) => boxed
                .downcast_ref::<T>()
                .ok_or_else(|| SimError::TypeMismatch {
                    register: idx,
                    name: cell.name.clone(),
                })?
                .clone(),
            CellValue::Word(_) => {
                return Err(SimError::TypeMismatch {
                    register: idx,
                    name: cell.name.clone(),
                })
            }
        };
        cell.reads += 1;
        Ok(value)
    }

    /// Atomic word read: the non-generic fast path for `u64` registers.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::read`].
    #[inline]
    pub fn read_word(&mut self, reg: Reg<u64>) -> Result<u64, SimError> {
        let idx = reg.index();
        let cell = self.cell_mut(idx)?;
        match cell.value {
            CellValue::Word(w) => {
                cell.reads += 1;
                Ok(w)
            }
            CellValue::Boxed(_) => Err(SimError::TypeMismatch {
                register: idx,
                name: cell.name.clone(),
            }),
        }
    }

    /// Atomic write: replaces the value and counts the access, enforcing the
    /// register's write discipline.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`], [`SimError::TypeMismatch`], or
    /// [`SimError::WriteDisciplineViolation`] when a single-writer register
    /// is written by a foreign process.
    pub fn write<T: RegValue>(
        &mut self,
        writer: ProcessId,
        reg: Reg<T>,
        value: T,
    ) -> Result<(), SimError> {
        let idx = reg.index();
        let cell = self.cell_mut(idx)?;
        cell.check_writer(idx, writer)?;
        match &mut cell.value {
            CellValue::Word(w) if is_word::<T>() => *w = to_word(value),
            CellValue::Boxed(boxed) => {
                let slot = boxed
                    .downcast_mut::<T>()
                    .ok_or_else(|| SimError::TypeMismatch {
                        register: idx,
                        name: cell.name.clone(),
                    })?;
                *slot = value;
            }
            CellValue::Word(_) => {
                return Err(SimError::TypeMismatch {
                    register: idx,
                    name: cell.name.clone(),
                })
            }
        }
        cell.writes += 1;
        Ok(())
    }

    /// Atomic word write: the non-generic fast path for `u64` registers.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::write`].
    #[inline]
    pub fn write_word(
        &mut self,
        writer: ProcessId,
        reg: Reg<u64>,
        value: u64,
    ) -> Result<(), SimError> {
        let idx = reg.index();
        let cell = self.cell_mut(idx)?;
        cell.check_writer(idx, writer)?;
        match &mut cell.value {
            CellValue::Word(w) => {
                *w = value;
                cell.writes += 1;
                Ok(())
            }
            CellValue::Boxed(_) => Err(SimError::TypeMismatch {
                register: idx,
                name: cell.name.clone(),
            }),
        }
    }

    /// Non-step observation of a register (for tests and instrumentation):
    /// does not count as an access.
    ///
    /// # Errors
    ///
    /// Same as [`Memory::read`], minus accounting.
    pub fn peek<T: RegValue>(&self, reg: Reg<T>) -> Result<T, SimError> {
        let idx = reg.index();
        let cell = self.cell(idx)?;
        match &cell.value {
            CellValue::Word(w) if is_word::<T>() => Ok(from_word(*w)),
            CellValue::Boxed(boxed) => {
                boxed
                    .downcast_ref::<T>()
                    .cloned()
                    .ok_or_else(|| SimError::TypeMismatch {
                        register: idx,
                        name: cell.name.clone(),
                    })
            }
            CellValue::Word(_) => Err(SimError::TypeMismatch {
                register: idx,
                name: cell.name.clone(),
            }),
        }
    }

    /// Name of a register.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegister`] for a foreign handle.
    pub fn name(&self, index: usize) -> Result<&str, SimError> {
        Ok(&self.cell(index)?.name)
    }

    /// Access statistics for all registers, in allocation order.
    pub fn stats(&self) -> Vec<RegisterStats> {
        self.cells
            .iter()
            .map(|c| RegisterStats {
                name: c.name.clone(),
                writes: c.writes,
                reads: c.reads,
            })
            .collect()
    }

    /// Total completed register operations (reads + writes).
    pub fn total_ops(&self) -> u64 {
        self.cells.iter().map(|c| c.reads + c.writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 0u64);
        assert_eq!(m.read(r).unwrap(), 0);
        m.write(p(0), r, 42).unwrap();
        assert_eq!(m.read(r).unwrap(), 42);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn word_fast_path_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc("hb", WriteDiscipline::MultiWriter, 7u64);
        // Word and generic accessors see the same cell.
        assert_eq!(m.read_word(r).unwrap(), 7);
        m.write_word(p(1), r, 9).unwrap();
        assert_eq!(m.read(r).unwrap(), 9);
        m.write(p(0), r, 11).unwrap();
        assert_eq!(m.read_word(r).unwrap(), 11);
        let stats = m.stats();
        assert_eq!(stats[0].reads, 3);
        assert_eq!(stats[0].writes, 2);
    }

    #[test]
    fn word_accessors_reject_boxed_cells() {
        let mut m = Memory::new();
        let r = m.alloc("s", WriteDiscipline::MultiWriter, String::from("x"));
        let forged: Reg<u64> = Reg::new(r.index);
        assert!(matches!(
            m.read_word(forged),
            Err(SimError::TypeMismatch { .. })
        ));
        assert!(matches!(
            m.write_word(p(0), forged, 1),
            Err(SimError::TypeMismatch { .. })
        ));
        // Failed accesses are not counted.
        assert_eq!(m.stats()[0].reads + m.stats()[0].writes, 0);
    }

    #[test]
    fn structured_values() {
        let mut m = Memory::new();
        let r = m.alloc(
            "pair",
            WriteDiscipline::MultiWriter,
            (0u64, Vec::<u32>::new()),
        );
        m.write(p(1), r, (7, vec![1, 2])).unwrap();
        assert_eq!(m.read(r).unwrap(), (7, vec![1, 2]));
    }

    #[test]
    fn single_writer_enforced() {
        let mut m = Memory::new();
        let r = m.alloc("hb", WriteDiscipline::SingleWriter(p(2)), 0u64);
        assert!(m.write(p(2), r, 1).is_ok());
        let err = m.write(p(0), r, 9).unwrap_err();
        assert!(matches!(err, SimError::WriteDisciplineViolation { .. }));
        // The word path enforces the same discipline.
        let err = m.write_word(p(0), r, 9).unwrap_err();
        assert!(matches!(err, SimError::WriteDisciplineViolation { .. }));
        // Failed write must not change the value or counts.
        assert_eq!(m.peek(r).unwrap(), 1);
        assert_eq!(m.stats()[0].writes, 1);
    }

    #[test]
    fn type_mismatch_detected() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 5u64);
        // Forge a handle with the wrong type at the same index.
        let wrong: Reg<String> = Reg::new(r.index);
        assert!(matches!(m.peek(wrong), Err(SimError::TypeMismatch { .. })));
        let mut_err = m.read(wrong);
        assert!(matches!(mut_err, Err(SimError::TypeMismatch { .. })));
        assert!(matches!(
            m.write(p(0), wrong, "s".into()),
            Err(SimError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_register_detected() {
        let mut m = Memory::new();
        let r: Reg<u64> = Reg::new(9);
        assert!(matches!(
            m.peek(r),
            Err(SimError::UnknownRegister { register: 9 })
        ));
        assert!(matches!(
            m.read_word(r),
            Err(SimError::UnknownRegister { register: 9 })
        ));
    }

    #[test]
    fn accounting() {
        let mut m = Memory::new();
        let r = m.alloc("x", WriteDiscipline::MultiWriter, 0u64);
        let s = m.alloc("y", WriteDiscipline::MultiWriter, 0u64);
        m.write(p(0), r, 1).unwrap();
        let _ = m.read(r).unwrap();
        let _ = m.read(r).unwrap();
        let _ = m.peek(s).unwrap(); // peek not counted
        let stats = m.stats();
        assert_eq!(stats[0].writes, 1);
        assert_eq!(stats[0].reads, 2);
        assert_eq!(stats[1].reads, 0);
        assert_eq!(m.total_ops(), 3);
        assert_eq!(m.name(0).unwrap(), "x");
    }
}
