//! Simulator error types.

use std::error::Error;
use std::fmt;

use st_core::ProcessId;

/// Errors surfaced by the simulator.
///
/// Most are *protocol* bugs (type confusion, write-discipline violations)
/// rather than user-input errors, and abort the run with context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A register was accessed with the wrong value type.
    TypeMismatch {
        /// Register arena index.
        register: usize,
        /// Register name given at allocation.
        name: String,
    },
    /// A single-writer register was written by a process other than its
    /// declared writer.
    WriteDisciplineViolation {
        /// Register arena index.
        register: usize,
        /// Register name given at allocation.
        name: String,
        /// Declared writer.
        owner: ProcessId,
        /// Faulting writer.
        writer: ProcessId,
    },
    /// A register handle did not belong to this simulator's arena.
    UnknownRegister {
        /// Out-of-range arena index.
        register: usize,
    },
    /// `spawn` was called twice for the same process.
    AlreadySpawned {
        /// The doubly-spawned process.
        process: ProcessId,
    },
    /// A scheduled process polled `Pending` without consuming its step
    /// grant: its future is waiting on something other than a simulator
    /// operation, which the deterministic executor cannot make progress on.
    StuckProcess {
        /// The stuck process.
        process: ProcessId,
    },
    /// A step source or schedule named a process outside the simulated
    /// universe. Returned (not panicked) by the run/replay entry points so
    /// that a malformed schedule — a user input, not a protocol bug — is a
    /// recoverable error.
    ScheduleOutOfUniverse {
        /// The out-of-universe process named by the schedule.
        process: ProcessId,
        /// Size of the simulated universe (valid indices are `0..n`).
        n: usize,
    },
    /// A fleet drive (`run_automata` and its replay variants) was called on
    /// a `Sim` that has spawned slots. The fleet drives execute a
    /// caller-owned homogeneous fleet; the two ownership modes do not mix
    /// within one simulation — returned (not panicked) because the caller
    /// can recover by using the slot-based `run` instead.
    FleetDriveOnSpawnedSim {
        /// The drive entry point that was called.
        drive: &'static str,
        /// A process that was spawned into a slot.
        process: ProcessId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TypeMismatch { register, name } => {
                write!(f, "type mismatch on register #{register} ({name})")
            }
            SimError::WriteDisciplineViolation {
                register,
                name,
                owner,
                writer,
            } => write!(
                f,
                "write-discipline violation on register #{register} ({name}): owned by {owner}, written by {writer}"
            ),
            SimError::UnknownRegister { register } => {
                write!(f, "unknown register #{register}")
            }
            SimError::AlreadySpawned { process } => {
                write!(f, "process {process} spawned twice")
            }
            SimError::StuckProcess { process } => {
                write!(f, "process {process} is pending on a non-simulator future")
            }
            SimError::ScheduleOutOfUniverse { process, n } => {
                write!(
                    f,
                    "schedule names {process} outside the simulated universe (n = {n})"
                )
            }
            SimError::FleetDriveOnSpawnedSim { drive, process } => {
                write!(
                    f,
                    "{drive} drives a caller-owned fleet, but this Sim has spawned \
                     slots (e.g. {process}); the ownership modes do not mix"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_register_name() {
        let e = SimError::WriteDisciplineViolation {
            register: 7,
            name: "Heartbeat[3]".into(),
            owner: ProcessId::new(3),
            writer: ProcessId::new(1),
        };
        let s = e.to_string();
        assert!(s.contains("Heartbeat[3]") && s.contains("p3") && s.contains("p1"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error>() {}
        assert_err::<SimError>();
    }
}
