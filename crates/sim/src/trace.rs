//! Run instrumentation: probes, decisions, executed-schedule recording.
//!
//! Probes are the *observability side-channel* of the simulator: a process
//! publishes a `(key, u64)` pair without taking a step (the model allows
//! unbounded local computation per step, and reading a process's local state
//! costs nothing). Failure-detector outputs — local variables in the model —
//! are exposed this way, e.g. the Figure 2 `winnerset` as the bitset of a
//! [`ProcSet`](st_core::ProcSet).

use st_core::{ProcessId, Schedule, Value};

/// One probe publication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Global step index at which the probe was published.
    pub step: u64,
    /// Publishing process.
    pub pid: ProcessId,
    /// Probe key (interned by the protocol as a static string).
    pub key: &'static str,
    /// Published value (protocol-defined encoding; often `ProcSet::bits`).
    pub value: u64,
}

/// A decision taken by a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Decided value.
    pub value: Value,
    /// Global step index at which the decision happened.
    pub step: u64,
}

/// Mutable instrumentation state, owned by the simulator.
///
/// Step-hot counters live outside this struct (as `Cell`s in the shared
/// state) so the per-step path never takes the `RefCell` borrow: this holds
/// only the event-shaped data.
pub(crate) struct TraceInner {
    pub probes: Vec<ProbeEvent>,
    pub decisions: Vec<Option<Decision>>,
    pub executed: Option<Vec<ProcessId>>,
}

impl TraceInner {
    pub fn new(n: usize, record_schedule: bool) -> Self {
        TraceInner {
            probes: Vec::new(),
            decisions: vec![None; n],
            executed: record_schedule.then(Vec::new),
        }
    }
}

/// Immutable probe log exposed in a [`RunReport`](crate::RunReport).
#[derive(Clone, Debug, Default)]
pub struct ProbeLog {
    events: Vec<ProbeEvent>,
}

impl ProbeLog {
    pub(crate) fn new(events: Vec<ProbeEvent>) -> Self {
        ProbeLog { events }
    }

    /// All events in publication order.
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no probe was published.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The timeline of values published by `pid` under `key`, as
    /// `(step, value)` pairs in order.
    pub fn timeline(&self, pid: ProcessId, key: &str) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter(|e| e.pid == pid && e.key == key)
            .map(|e| (e.step, e.value))
            .collect()
    }

    /// The last value published by `pid` under `key`, if any.
    pub fn last_value(&self, pid: ProcessId, key: &str) -> Option<u64> {
        self.events
            .iter()
            .rev()
            .find(|e| e.pid == pid && e.key == key)
            .map(|e| e.value)
    }

    /// The earliest step from which `pid`'s publications under `key` keep the
    /// final value until the end of the log (`None` if `pid` never published
    /// under `key`).
    ///
    /// This is the per-process *stabilization step*: the FD convergence
    /// analysis takes the max over correct processes.
    pub fn stabilization_step(&self, pid: ProcessId, key: &str) -> Option<u64> {
        let tl = self.timeline(pid, key);
        let (_, last) = *tl.last()?;
        let mut stab = tl[0].0;
        let mut stable = false;
        for &(step, v) in &tl {
            if v == last {
                if !stable {
                    stab = step;
                    stable = true;
                }
            } else {
                stable = false;
            }
        }
        Some(stab)
    }
}

/// Converts a recorded executed-step vector into a [`Schedule`].
pub(crate) fn executed_schedule(executed: &[ProcessId]) -> Schedule {
    Schedule::from_steps(executed.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: u64, pid: usize, key: &'static str, value: u64) -> ProbeEvent {
        ProbeEvent {
            step,
            pid: ProcessId::new(pid),
            key,
            value,
        }
    }

    #[test]
    fn timeline_and_last_value() {
        let log = ProbeLog::new(vec![
            ev(1, 0, "ws", 3),
            ev(2, 1, "ws", 5),
            ev(4, 0, "ws", 6),
            ev(5, 0, "other", 9),
        ]);
        assert_eq!(log.timeline(ProcessId::new(0), "ws"), vec![(1, 3), (4, 6)]);
        assert_eq!(log.last_value(ProcessId::new(0), "ws"), Some(6));
        assert_eq!(log.last_value(ProcessId::new(1), "ws"), Some(5));
        assert_eq!(log.last_value(ProcessId::new(2), "ws"), None);
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
    }

    #[test]
    fn stabilization_simple() {
        let log = ProbeLog::new(vec![
            ev(1, 0, "ws", 1),
            ev(3, 0, "ws", 2),
            ev(5, 0, "ws", 2),
            ev(9, 0, "ws", 2),
        ]);
        assert_eq!(log.stabilization_step(ProcessId::new(0), "ws"), Some(3));
    }

    #[test]
    fn stabilization_with_relapse() {
        // Value returns to 2 after a relapse: stabilization restarts.
        let log = ProbeLog::new(vec![
            ev(1, 0, "ws", 2),
            ev(3, 0, "ws", 7),
            ev(5, 0, "ws", 2),
            ev(6, 0, "ws", 2),
        ]);
        assert_eq!(log.stabilization_step(ProcessId::new(0), "ws"), Some(5));
    }

    #[test]
    fn stabilization_single_event() {
        let log = ProbeLog::new(vec![ev(4, 1, "ws", 8)]);
        assert_eq!(log.stabilization_step(ProcessId::new(1), "ws"), Some(4));
        assert_eq!(log.stabilization_step(ProcessId::new(0), "ws"), None);
    }
}
