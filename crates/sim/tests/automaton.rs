//! Integration tests for the non-async automaton ABI: step semantics,
//! mixing with async slots, the one-operation-per-step discipline,
//! completion, and crashes.

use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
use st_sim::{Automaton, Reg, RunConfig, Sim, Status, StepAccess, StepOutcome, StopWhen};

fn universe(n: usize) -> Universe {
    Universe::new(n).unwrap()
}

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Write 1..=limit into a register, one write per step, then decide.
struct CountUp {
    reg: Reg<u64>,
    next: u64,
    limit: u64,
}

impl Automaton for CountUp {
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        mem.write_word(self.reg, self.next);
        if self.next == self.limit {
            mem.decide(self.next);
            Status::Done
        } else {
            self.next += 1;
            Status::Running
        }
    }
}

#[test]
fn one_operation_per_step_and_completion() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn_automaton(
        pid(0),
        CountUp {
            reg: r,
            next: 1,
            limit: 5,
        },
    )
    .unwrap();

    for expected in 1..=4u64 {
        assert_eq!(sim.step_with(pid(0)), StepOutcome::Progressed);
        assert_eq!(sim.peek(r), expected);
    }
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Finished);
    assert_eq!(sim.peek(r), 5);
    assert!(sim.is_finished(pid(0)));
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Idle);
    assert_eq!(sim.op_count(pid(0)), 5);
    assert_eq!(sim.decisions()[0].map(|d| d.value), Some(5));
}

/// Machine and async slots interleave in one simulation over shared
/// registers.
#[test]
fn machine_and_async_slots_mix() {
    let mut sim = Sim::new(universe(2));
    let r = sim.alloc("ping", 0u64);

    // p0: machine incrementing the register by one per step.
    struct Incr {
        reg: Reg<u64>,
        phase: bool,
        cached: u64,
    }
    impl Automaton for Incr {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            if self.phase {
                mem.write_word(self.reg, self.cached + 1);
            } else {
                self.cached = mem.read_word(self.reg);
            }
            self.phase = !self.phase;
            Status::Running
        }
    }
    sim.spawn_automaton(
        pid(0),
        Incr {
            reg: r,
            phase: false,
            cached: 0,
        },
    )
    .unwrap();

    // p1: async protocol doing the same through the poll path.
    sim.spawn(pid(1), move |ctx| async move {
        loop {
            let v = ctx.read_word(r).await;
            ctx.write_word(r, v + 1).await;
        }
    })
    .unwrap();

    // Strict alternation of complete read+write rounds.
    let steps: Vec<usize> = [0, 0, 1, 1].repeat(25).to_vec();
    let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
    sim.run(&mut src, RunConfig::steps(100));
    assert_eq!(sim.peek(r), 50);
    assert_eq!(sim.op_count(pid(0)), 50);
    assert_eq!(sim.op_count(pid(1)), 50);
}

/// A second register operation in the same step is a protocol bug and
/// panics.
#[test]
fn two_operations_in_one_step_panic() {
    struct DoubleOp {
        reg: Reg<u64>,
    }
    impl Automaton for DoubleOp {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            let v = mem.read_word(self.reg);
            mem.write_word(self.reg, v + 1); // second op: must panic
            Status::Running
        }
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = Sim::new(universe(1));
        let r = sim.alloc("x", 0u64);
        sim.spawn_automaton(pid(0), DoubleOp { reg: r }).unwrap();
        sim.step_with(pid(0));
    }));
    assert!(result.is_err(), "two ops in one step must panic");
}

/// Probes are free, pause consumes the step, and stop conditions see
/// machine decisions.
#[test]
fn probes_pause_and_stop_conditions() {
    struct Prober {
        ticks: u64,
    }
    impl Automaton for Prober {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            self.ticks += 1;
            mem.probe("tick", self.ticks);
            mem.pause();
            if self.ticks == 3 {
                mem.decide(99);
            }
            Status::Running
        }
    }
    let mut sim = Sim::new(universe(1));
    sim.spawn_automaton(pid(0), Prober { ticks: 0 }).unwrap();
    let mut src = ScheduleCursor::new(Schedule::from_indices(vec![0; 50]));
    let status = sim.run(
        &mut src,
        RunConfig::steps(50).stop_when(StopWhen::AllDecided(ProcSet::from_indices([0]))),
    );
    assert_eq!(status, st_sim::RunStatus::Stopped);
    assert_eq!(sim.steps_executed(), 3); // decided on the third tick
    assert_eq!(sim.probe_count(), 3);
    // Pauses are steps but not register operations.
    assert_eq!(sim.op_count(pid(0)), 0);
    let rep = sim.report();
    assert_eq!(
        rep.probes.timeline(pid(0), "tick"),
        vec![(0, 1), (1, 2), (2, 3)]
    );
}

/// Crashing a machine freezes it like an async automaton.
#[test]
fn crash_freezes_machine() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn_automaton(
        pid(0),
        CountUp {
            reg: r,
            next: 1,
            limit: 1_000,
        },
    )
    .unwrap();
    sim.step_with(pid(0));
    sim.step_with(pid(0));
    assert_eq!(sim.peek(r), 2);
    sim.crash(pid(0));
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Idle);
    assert_eq!(sim.peek(r), 2);
}

/// The typed fleet runner: statically dispatched machines, completion
/// semantics, op accounting, and stop conditions.
#[test]
fn fleet_runner_matches_slot_semantics() {
    let n = 3;
    let mut sim = Sim::new(universe(n));
    let regs = sim.alloc_array("c", n, 0u64);
    let mut fleet: Vec<CountUp> = regs
        .iter()
        .enumerate()
        .map(|(i, &reg)| CountUp {
            reg,
            next: 1,
            limit: (i as u64 + 1) * 2,
        })
        .collect();
    let sched: Vec<usize> = (0..60).map(|s| s % n).collect();
    let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
    let status = sim.run_automata(&mut fleet, &mut src, RunConfig::steps(100));
    assert_eq!(status, st_sim::RunStatus::SourceEnded);
    // Every machine ran to its limit, then its steps became no-ops.
    for (i, &reg) in regs.iter().enumerate() {
        assert_eq!(sim.peek(reg), (i as u64 + 1) * 2);
        assert!(sim.is_finished(pid(i)));
        assert_eq!(sim.op_count(pid(i)), (i as u64 + 1) * 2);
        assert_eq!(
            sim.decisions()[i].map(|d| d.value),
            Some((i as u64 + 1) * 2)
        );
    }
    assert_eq!(sim.steps_executed(), 60);
}

/// The replay drive is equivalent to a cursor over the same schedule.
#[test]
fn replay_drive_equals_cursor_drive() {
    let n = 2;
    let schedule = Schedule::from_indices((0..40).map(|s| s % n));
    let run = |replay: bool| {
        let mut sim = Sim::new(universe(n));
        let regs = sim.alloc_array("c", n, 0u64);
        let mut fleet: Vec<CountUp> = (0..n)
            .map(|i| CountUp {
                reg: regs[i],
                next: 1,
                limit: 100,
            })
            .collect();
        if replay {
            sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(100));
        } else {
            let mut src = ScheduleCursor::new(schedule.clone());
            sim.run_automata(&mut fleet, &mut src, RunConfig::steps(100));
        }
        (
            sim.steps_executed(),
            sim.peek(regs[0]),
            sim.peek(regs[1]),
            sim.op_count(pid(0)),
        )
    };
    assert_eq!(run(false), run(true));
}

/// The fleet runner honors stop conditions through the general loop.
#[test]
fn fleet_runner_stop_condition() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    let mut fleet = vec![CountUp {
        reg: r,
        next: 1,
        limit: 3,
    }];
    let mut src = ScheduleCursor::new(Schedule::from_indices(vec![0; 50]));
    let status = sim.run_automata(
        &mut fleet,
        &mut src,
        RunConfig::steps(50).stop_when(StopWhen::AllDecided(ProcSet::from_indices([0]))),
    );
    assert_eq!(status, st_sim::RunStatus::Stopped);
    assert_eq!(sim.peek(r), 3);
}

/// A fleet cannot be driven over a Sim with spawned slots.
#[test]
fn fleet_runner_rejects_spawned_slots() {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = Sim::new(universe(1));
        let r = sim.alloc("x", 0u64);
        sim.spawn(pid(0), |ctx| async move {
            ctx.pause().await;
        })
        .unwrap();
        let mut fleet = vec![CountUp {
            reg: r,
            next: 1,
            limit: 1,
        }];
        let mut src = ScheduleCursor::new(Schedule::from_indices([0]));
        sim.run_automata(&mut fleet, &mut src, RunConfig::steps(1));
    }));
    assert!(result.is_err(), "mixed fleet + slots must panic");
}

/// Double spawn across ABIs is rejected in both directions.
#[test]
fn double_spawn_across_abis_rejected() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn_automaton(
        pid(0),
        CountUp {
            reg: r,
            next: 1,
            limit: 2,
        },
    )
    .unwrap();
    assert!(sim
        .spawn(pid(0), |ctx| async move {
            ctx.pause().await;
        })
        .is_err());
    assert!(sim
        .spawn_automaton(
            pid(0),
            CountUp {
                reg: r,
                next: 1,
                limit: 2
            }
        )
        .is_err());
}
