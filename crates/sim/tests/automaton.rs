//! Integration tests for the non-async automaton ABI: step semantics,
//! mixing with async slots, the one-operation-per-step discipline,
//! completion, and crashes.

use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
use st_sim::{Automaton, Reg, RunConfig, Sim, Status, StepAccess, StepOutcome, StopWhen};

fn universe(n: usize) -> Universe {
    Universe::new(n).unwrap()
}

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Write 1..=limit into a register, one write per step, then decide.
struct CountUp {
    reg: Reg<u64>,
    next: u64,
    limit: u64,
}

impl Automaton for CountUp {
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        mem.write_word(self.reg, self.next);
        if self.next == self.limit {
            mem.decide(self.next);
            Status::Done
        } else {
            self.next += 1;
            Status::Running
        }
    }
}

#[test]
fn one_operation_per_step_and_completion() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn_automaton(
        pid(0),
        CountUp {
            reg: r,
            next: 1,
            limit: 5,
        },
    )
    .unwrap();

    for expected in 1..=4u64 {
        assert_eq!(sim.step_with(pid(0)), StepOutcome::Progressed);
        assert_eq!(sim.peek(r), expected);
    }
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Finished);
    assert_eq!(sim.peek(r), 5);
    assert!(sim.is_finished(pid(0)));
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Idle);
    assert_eq!(sim.op_count(pid(0)), 5);
    assert_eq!(sim.decisions()[0].map(|d| d.value), Some(5));
}

/// Machine and async slots interleave in one simulation over shared
/// registers.
#[test]
fn machine_and_async_slots_mix() {
    let mut sim = Sim::new(universe(2));
    let r = sim.alloc("ping", 0u64);

    // p0: machine incrementing the register by one per step.
    struct Incr {
        reg: Reg<u64>,
        phase: bool,
        cached: u64,
    }
    impl Automaton for Incr {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            if self.phase {
                mem.write_word(self.reg, self.cached + 1);
            } else {
                self.cached = mem.read_word(self.reg);
            }
            self.phase = !self.phase;
            Status::Running
        }
    }
    sim.spawn_automaton(
        pid(0),
        Incr {
            reg: r,
            phase: false,
            cached: 0,
        },
    )
    .unwrap();

    // p1: async protocol doing the same through the poll path.
    sim.spawn(pid(1), move |ctx| async move {
        loop {
            let v = ctx.read_word(r).await;
            ctx.write_word(r, v + 1).await;
        }
    })
    .unwrap();

    // Strict alternation of complete read+write rounds.
    let steps: Vec<usize> = [0, 0, 1, 1].repeat(25).to_vec();
    let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
    sim.run(&mut src, RunConfig::steps(100)).unwrap();
    assert_eq!(sim.peek(r), 50);
    assert_eq!(sim.op_count(pid(0)), 50);
    assert_eq!(sim.op_count(pid(1)), 50);
}

/// A second register operation in the same step is a protocol bug and
/// panics.
#[test]
fn two_operations_in_one_step_panic() {
    struct DoubleOp {
        reg: Reg<u64>,
    }
    impl Automaton for DoubleOp {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            let v = mem.read_word(self.reg);
            mem.write_word(self.reg, v + 1); // second op: must panic
            Status::Running
        }
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = Sim::new(universe(1));
        let r = sim.alloc("x", 0u64);
        sim.spawn_automaton(pid(0), DoubleOp { reg: r }).unwrap();
        sim.step_with(pid(0));
    }));
    assert!(result.is_err(), "two ops in one step must panic");
}

/// Probes are free, pause consumes the step, and stop conditions see
/// machine decisions.
#[test]
fn probes_pause_and_stop_conditions() {
    struct Prober {
        ticks: u64,
    }
    impl Automaton for Prober {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            self.ticks += 1;
            mem.probe("tick", self.ticks);
            mem.pause();
            if self.ticks == 3 {
                mem.decide(99);
            }
            Status::Running
        }
    }
    let mut sim = Sim::new(universe(1));
    sim.spawn_automaton(pid(0), Prober { ticks: 0 }).unwrap();
    let mut src = ScheduleCursor::new(Schedule::from_indices(vec![0; 50]));
    let status = sim
        .run(
            &mut src,
            RunConfig::steps(50).stop_when(StopWhen::AllDecided(ProcSet::from_indices([0]))),
        )
        .unwrap();
    assert_eq!(status, st_sim::RunStatus::Stopped);
    assert_eq!(sim.steps_executed(), 3); // decided on the third tick
    assert_eq!(sim.probe_count(), 3);
    // Pauses are steps but not register operations.
    assert_eq!(sim.op_count(pid(0)), 0);
    let rep = sim.report();
    assert_eq!(
        rep.probes.timeline(pid(0), "tick"),
        vec![(0, 1), (1, 2), (2, 3)]
    );
}

/// Crashing a machine freezes it like an async automaton.
#[test]
fn crash_freezes_machine() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn_automaton(
        pid(0),
        CountUp {
            reg: r,
            next: 1,
            limit: 1_000,
        },
    )
    .unwrap();
    sim.step_with(pid(0));
    sim.step_with(pid(0));
    assert_eq!(sim.peek(r), 2);
    sim.crash(pid(0));
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Idle);
    assert_eq!(sim.peek(r), 2);
}

/// The typed fleet runner: statically dispatched machines, completion
/// semantics, op accounting, and stop conditions.
#[test]
fn fleet_runner_matches_slot_semantics() {
    let n = 3;
    let mut sim = Sim::new(universe(n));
    let regs = sim.alloc_array("c", n, 0u64);
    let mut fleet: Vec<CountUp> = regs
        .iter()
        .enumerate()
        .map(|(i, &reg)| CountUp {
            reg,
            next: 1,
            limit: (i as u64 + 1) * 2,
        })
        .collect();
    let sched: Vec<usize> = (0..60).map(|s| s % n).collect();
    let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
    let status = sim
        .run_automata(&mut fleet, &mut src, RunConfig::steps(100))
        .unwrap();
    assert_eq!(status, st_sim::RunStatus::SourceEnded);
    // Every machine ran to its limit, then its steps became no-ops.
    for (i, &reg) in regs.iter().enumerate() {
        assert_eq!(sim.peek(reg), (i as u64 + 1) * 2);
        assert!(sim.is_finished(pid(i)));
        assert_eq!(sim.op_count(pid(i)), (i as u64 + 1) * 2);
        assert_eq!(
            sim.decisions()[i].map(|d| d.value),
            Some((i as u64 + 1) * 2)
        );
    }
    assert_eq!(sim.steps_executed(), 60);
}

/// The replay drive is equivalent to a cursor over the same schedule.
#[test]
fn replay_drive_equals_cursor_drive() {
    let n = 2;
    let schedule = Schedule::from_indices((0..40).map(|s| s % n));
    let run = |replay: bool| {
        let mut sim = Sim::new(universe(n));
        let regs = sim.alloc_array("c", n, 0u64);
        let mut fleet: Vec<CountUp> = (0..n)
            .map(|i| CountUp {
                reg: regs[i],
                next: 1,
                limit: 100,
            })
            .collect();
        if replay {
            sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(100))
                .unwrap();
        } else {
            let mut src = ScheduleCursor::new(schedule.clone());
            sim.run_automata(&mut fleet, &mut src, RunConfig::steps(100))
                .unwrap();
        }
        (
            sim.steps_executed(),
            sim.peek(regs[0]),
            sim.peek(regs[1]),
            sim.op_count(pid(0)),
        )
    };
    assert_eq!(run(false), run(true));
}

/// The fleet runner honors stop conditions through the general loop.
#[test]
fn fleet_runner_stop_condition() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    let mut fleet = vec![CountUp {
        reg: r,
        next: 1,
        limit: 3,
    }];
    let mut src = ScheduleCursor::new(Schedule::from_indices(vec![0; 50]));
    let status = sim
        .run_automata(
            &mut fleet,
            &mut src,
            RunConfig::steps(50).stop_when(StopWhen::AllDecided(ProcSet::from_indices([0]))),
        )
        .unwrap();
    assert_eq!(status, st_sim::RunStatus::Stopped);
    assert_eq!(sim.peek(r), 3);
}

/// A fleet cannot be driven over a Sim with spawned slots: the drive
/// returns the typed [`st_sim::SimError::FleetDriveOnSpawnedSim`] (all
/// four drives are covered in `tests/soa_drive.rs`).
#[test]
fn fleet_runner_rejects_spawned_slots() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn(pid(0), |ctx| async move {
        ctx.pause().await;
    })
    .unwrap();
    let mut fleet = vec![CountUp {
        reg: r,
        next: 1,
        limit: 1,
    }];
    let mut src = ScheduleCursor::new(Schedule::from_indices([0]));
    let err = sim
        .run_automata(&mut fleet, &mut src, RunConfig::steps(1))
        .unwrap_err();
    assert!(
        matches!(
            err,
            st_sim::SimError::FleetDriveOnSpawnedSim { drive: "run_automata", process } if process == pid(0)
        ),
        "expected typed fleet-drive error, got {err:?}"
    );
    assert_eq!(sim.steps_executed(), 0, "nothing may execute");
}

/// Double spawn across ABIs is rejected in both directions.
#[test]
fn double_spawn_across_abis_rejected() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn_automaton(
        pid(0),
        CountUp {
            reg: r,
            next: 1,
            limit: 2,
        },
    )
    .unwrap();
    assert!(sim
        .spawn(pid(0), |ctx| async move {
            ctx.pause().await;
        })
        .is_err());
    assert!(sim
        .spawn_automaton(
            pid(0),
            CountUp {
                reg: r,
                next: 1,
                limit: 2
            }
        )
        .is_err());
}

/// A schedule naming a process outside the universe yields a typed `Err`
/// from every fleet drive — not a panic — and (for the replay drives) the
/// simulation is untouched.
#[test]
fn out_of_universe_schedule_is_a_typed_error() {
    use st_sim::SimError;
    let n = 2;
    let bad = Schedule::from_indices([0, 1, 5, 0]);

    // Replay drives validate the whole prefix up front: nothing executes.
    let mut sim = Sim::new(universe(n));
    let regs = sim.alloc_array("c", n, 0u64);
    let mut fleet: Vec<CountUp> = (0..n)
        .map(|i| CountUp {
            reg: regs[i],
            next: 1,
            limit: 100,
        })
        .collect();
    let err = sim
        .run_automata_replay(&mut fleet, &bad, RunConfig::steps(100))
        .unwrap_err();
    assert_eq!(
        err,
        SimError::ScheduleOutOfUniverse {
            process: pid(5),
            n: 2
        }
    );
    assert_eq!(
        sim.steps_executed(),
        0,
        "replay must validate before running"
    );
    let err = sim
        .run_automata_replay_sharded(&mut fleet, &bad, 1, 8, RunConfig::steps(100))
        .unwrap_err();
    assert_eq!(
        err,
        SimError::ScheduleOutOfUniverse {
            process: pid(5),
            n: 2
        }
    );
    assert_eq!(sim.steps_executed(), 0);

    // The generator-driven drive errors at the offending step; prior steps
    // have executed.
    let mut src = ScheduleCursor::new(bad.clone());
    let err = sim
        .run_automata(&mut fleet, &mut src, RunConfig::steps(100))
        .unwrap_err();
    assert!(matches!(err, SimError::ScheduleOutOfUniverse { .. }));
    assert_eq!(sim.steps_executed(), 2);
    assert!(err.to_string().contains("outside the simulated universe"));
}

/// With `shard_size >= n` (or `slice_len == 1`) the sharded drive is the
/// identity reorder: step-for-step the plain replay.
#[test]
fn sharded_replay_identity_cases_match_plain_replay() {
    let n = 3;
    let schedule = Schedule::from_indices((0..120).map(|s| (s * 7 + s / 5) % n));
    let run = |mode: u8| {
        let mut sim = Sim::new(universe(n));
        let regs = sim.alloc_array("c", n, 0u64);
        let mut fleet: Vec<CountUp> = (0..n)
            .map(|i| CountUp {
                reg: regs[i],
                next: 1,
                limit: 1000,
            })
            .collect();
        match mode {
            0 => sim
                .run_automata_replay(&mut fleet, &schedule, RunConfig::steps(1000))
                .unwrap(),
            1 => sim
                .run_automata_replay_sharded(&mut fleet, &schedule, n, 16, RunConfig::steps(1000))
                .unwrap(),
            _ => sim
                .run_automata_replay_sharded(&mut fleet, &schedule, 1, 1, RunConfig::steps(1000))
                .unwrap(),
        };
        let vals: Vec<u64> = regs.iter().map(|&r| sim.peek(r)).collect();
        (sim.steps_executed(), vals, sim.op_count(pid(0)))
    };
    assert_eq!(run(0), run(1));
    assert_eq!(run(0), run(2));
}

/// The sharded drive executes exactly the shard-stable reordering:
/// observationally identical to the plain replay over
/// `sharded_replay_order(schedule, shard_size, slice_len)`.
#[test]
fn sharded_replay_equals_replay_of_reordered_schedule() {
    use st_sim::sharded_replay_order;
    let n = 4;
    let schedule = Schedule::from_indices((0..200).map(|s| (s * 13 + s / 3) % n));
    for (shard_size, slice_len) in [(2usize, 8usize), (1, 16), (3, 5)] {
        let reordered = sharded_replay_order(&schedule, shard_size, slice_len);
        // Same per-process subschedules, same length.
        assert_eq!(reordered.len(), schedule.len());
        let run = |sharded: bool| {
            let mut sim = Sim::new(universe(n));
            let regs = sim.alloc_array("c", n, 0u64);
            let mut fleet: Vec<CountUp> = (0..n)
                .map(|i| CountUp {
                    reg: regs[i],
                    next: 1,
                    limit: 1000,
                })
                .collect();
            if sharded {
                sim.run_automata_replay_sharded(
                    &mut fleet,
                    &schedule,
                    shard_size,
                    slice_len,
                    RunConfig::steps(1000),
                )
                .unwrap();
            } else {
                sim.run_automata_replay(&mut fleet, &reordered, RunConfig::steps(1000))
                    .unwrap();
            }
            let vals: Vec<u64> = regs.iter().map(|&r| sim.peek(r)).collect();
            let ops: Vec<u64> = (0..n).map(|i| sim.op_count(pid(i))).collect();
            (sim.steps_executed(), vals, ops, sim.report().register_stats)
        };
        assert_eq!(
            run(true),
            run(false),
            "shard {shard_size} slice {slice_len}"
        );
    }
}

/// The sharded drive records the *executed* (reordered) schedule when
/// recording is enabled.
#[test]
fn sharded_replay_records_executed_order() {
    use st_sim::sharded_replay_order;
    let n = 3;
    let schedule = Schedule::from_indices((0..30).map(|s| s % n));
    let mut sim = Sim::with_recording(universe(n), true);
    let regs = sim.alloc_array("c", n, 0u64);
    let mut fleet: Vec<CountUp> = (0..n)
        .map(|i| CountUp {
            reg: regs[i],
            next: 1,
            limit: 1000,
        })
        .collect();
    sim.run_automata_replay_sharded(&mut fleet, &schedule, 2, 6, RunConfig::steps(1000))
        .unwrap();
    assert_eq!(
        sim.report().executed.unwrap(),
        sharded_replay_order(&schedule, 2, 6)
    );
}
