//! Property tests for the executor: accounting invariants that hold for
//! every schedule and every protocol shape.

use proptest::prelude::*;
use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
use st_sim::{RunConfig, Sim};

prop_compose! {
    fn arb_schedule(n: usize)(steps in prop::collection::vec(0..n, 0..2_000)) -> Schedule {
        Schedule::from_indices(steps)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total register operations never exceed executed steps, and equal
    /// them exactly when no process pauses, idles, or finishes mid-run.
    #[test]
    fn ops_bounded_by_steps(sched in arb_schedule(3)) {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let reg = sim.alloc("x", 0u64);
        for p in u.processes() {
            sim.spawn(p, move |ctx| async move {
                loop {
                    let v = ctx.read(reg).await;
                    ctx.write(reg, v + 1).await;
                }
            }).unwrap();
        }
        let len = sched.len() as u64;
        let mut src = ScheduleCursor::new(sched);
        sim.run(&mut src, RunConfig::steps(len)).unwrap();
        let report = sim.report();
        let total_ops: u64 = report.op_counts.iter().sum();
        prop_assert_eq!(total_ops, report.steps);
    }

    /// Per-process op counts split exactly along the schedule's step counts
    /// for never-finishing protocols.
    #[test]
    fn per_process_accounting(sched in arb_schedule(4)) {
        let u = Universe::new(4).unwrap();
        let mut sim = Sim::new(u);
        let regs = sim.alloc_per_process("r", 0u64);
        for p in u.processes() {
            let mine = regs[p.index()];
            sim.spawn(p, move |ctx| async move {
                let mut i = 0u64;
                loop {
                    i += 1;
                    ctx.write(mine, i).await;
                }
            }).unwrap();
        }
        let counts = sched.step_counts(u);
        let len = sched.len() as u64;
        let mut src = ScheduleCursor::new(sched);
        sim.run(&mut src, RunConfig::steps(len)).unwrap();
        let report = sim.report();
        for (idx, &c) in counts.iter().enumerate() {
            prop_assert_eq!(report.op_counts[idx], c as u64);
            // The register holds exactly the number of writes performed.
            prop_assert_eq!(sim.peek(regs[idx]), c as u64);
        }
    }

    /// The executed-schedule recording reproduces the driving schedule
    /// verbatim, including steps of finished and unspawned processes.
    #[test]
    fn recording_is_verbatim(sched in arb_schedule(3)) {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::with_recording(u, true);
        // p0 finishes immediately; p2 is never spawned.
        sim.spawn(ProcessId::new(0), |ctx| async move {
            ctx.pause().await;
        }).unwrap();
        sim.spawn(ProcessId::new(1), |ctx| async move {
            loop { ctx.pause().await; }
        }).unwrap();
        let len = sched.len() as u64;
        let mut src = ScheduleCursor::new(sched.clone());
        sim.run(&mut src, RunConfig::steps(len)).unwrap();
        prop_assert_eq!(sim.report().executed.unwrap(), sched);
    }

    /// Crash makes a process permanently idle without disturbing others'
    /// registers.
    #[test]
    fn crash_isolates(sched in arb_schedule(2), crash_at in 0usize..500) {
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let regs = sim.alloc_per_process("r", 0u64);
        for p in u.processes() {
            let mine = regs[p.index()];
            sim.spawn(p, move |ctx| async move {
                let mut i = 0u64;
                loop {
                    i += 1;
                    ctx.write(mine, i).await;
                }
            }).unwrap();
        }
        let len = sched.len();
        let cut = crash_at.min(len);
        let mut src = ScheduleCursor::new(sched.prefix(cut));
        sim.run(&mut src, RunConfig::steps(cut as u64)).unwrap();
        let frozen = sim.peek(regs[0]);
        sim.crash(ProcessId::new(0));
        let mut src = ScheduleCursor::new(sched.suffix(cut));
        sim.run(&mut src, RunConfig::steps((len - cut) as u64)).unwrap();
        // p0's register froze at the crash; p1's reflects all its steps.
        prop_assert_eq!(sim.peek(regs[0]), frozen);
        prop_assert_eq!(sim.peek(regs[1]), sched.occurrences(ProcessId::new(1)) as u64);
    }

    /// Probes never consume steps: a probe-only process finishes on its
    /// first granted step regardless of probe volume.
    #[test]
    fn probes_are_free(probe_count in 0usize..200) {
        let u = Universe::new(1).unwrap();
        let mut sim = Sim::new(u);
        sim.spawn(ProcessId::new(0), move |ctx| async move {
            for i in 0..probe_count {
                ctx.probe("x", i as u64);
            }
            ctx.pause().await;
        }).unwrap();
        sim.step_with(ProcessId::new(0));
        let report = sim.report();
        prop_assert_eq!(report.probes.len(), probe_count);
        prop_assert_eq!(report.op_counts[0], 0);
        prop_assert_eq!(report.steps, 1);
        let _ = ProcSet::EMPTY;
    }
}
