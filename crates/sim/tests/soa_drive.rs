//! Unit tests for the struct-of-arrays replay drive
//! ([`Sim::run_automata_replay_soa`]): identity to the plain replay on a
//! purpose-built two-phase machine, the scalar fallback on impure slices,
//! delegation under recording and stop conditions, and the typed
//! [`SimError::FleetDriveOnSpawnedSim`] precondition shared by every fleet
//! drive.
//!
//! (The workspace-wide differential suites live with the protocols, in
//! `st-agreement/tests/soa_differential.rs`; this file covers drive
//! mechanics with a minimal machine.)

use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
use st_sim::{
    Automaton, BatchAccess, PhaseBatch, Reg, RunConfig, RunStatus, Sim, SimError, Status,
    StepAccess, StopWhen,
};

fn universe(n: usize) -> Universe {
    Universe::new(n).unwrap()
}

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Two-phase scan machine: reads `m` words of a shared array one per step
/// (pure), probes the running sum at the scan boundary, then writes it to
/// its own output register (impure) — repeating until `limit` rounds, then
/// deciding. The smallest shape that exercises batched span reads, probe
/// ordering, phase turnover inside a slice, and the scalar write fallback.
struct SumScan {
    base: Reg<u64>,
    out: Reg<u64>,
    m: usize,
    idx: usize,
    acc: u64,
    rounds: u64,
    limit: u64,
}

impl SumScan {
    fn new(base: Reg<u64>, out: Reg<u64>, m: usize, limit: u64) -> Self {
        SumScan {
            base,
            out,
            m,
            idx: 0,
            acc: 0,
            rounds: 0,
            limit,
        }
    }
}

impl Automaton for SumScan {
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        if self.idx < self.m {
            self.acc = self
                .acc
                .wrapping_add(mem.read_word_array(self.base, self.idx));
            self.idx += 1;
            if self.idx == self.m {
                mem.probe("sum", self.acc);
            }
            Status::Running
        } else {
            mem.write_word(self.out, self.acc);
            self.rounds += 1;
            if self.rounds == self.limit {
                mem.decide(self.acc as st_core::Value);
                return Status::Done;
            }
            self.idx = 0;
            self.acc = 0;
            Status::Running
        }
    }
}

impl PhaseBatch for SumScan {
    fn phase_class(&self) -> u8 {
        (self.idx >= self.m) as u8
    }

    fn read_run(&self) -> usize {
        // The whole remaining scan is guaranteed value-independent reads;
        // the write phase pins the run to zero (impure slice → fallback).
        self.m - self.idx.min(self.m)
    }

    fn step_reads(&mut self, mem: &mut BatchAccess<'_>) -> Status {
        let take = mem.remaining().min(self.m - self.idx);
        let mut buf = vec![0u64; take];
        mem.read_word_span(self.base, self.idx, &mut buf);
        for w in buf {
            self.acc = self.acc.wrapping_add(w);
        }
        self.idx += take;
        if self.idx == self.m {
            mem.probe("sum", self.acc);
        }
        Status::Running
    }
}

/// Builds a Sim with a shared `m`-word array (seeded with distinct values)
/// and one `SumScan` per process.
fn build(n: usize, m: usize, limit: u64, recording: bool) -> (Sim, Vec<Reg<u64>>, Vec<SumScan>) {
    let u = universe(n);
    let mut sim = if recording {
        Sim::with_recording(u, true)
    } else {
        Sim::new(u)
    };
    // Sequential allocations are contiguous (arena property): the first
    // register is a valid base for offset reads, with distinct seeds.
    let shared: Vec<Reg<u64>> = (0..m)
        .map(|i| sim.alloc(format!("shared{i}"), 10 + i as u64))
        .collect();
    let outs = sim.alloc_array("out", n, 0u64);
    let fleet = (0..n)
        .map(|i| SumScan::new(shared[0], outs[i], m, limit))
        .collect();
    (sim, outs, fleet)
}

/// Full observation of a run: step count, probes, decisions, op counts,
/// register stats, and the output registers.
fn observe(sim: &Sim, outs: &[Reg<u64>]) -> (u64, Vec<String>, String, Vec<u64>, String, Vec<u64>) {
    let rep = sim.report();
    (
        rep.steps,
        rep.probes
            .events()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect(),
        format!("{:?}", rep.decisions),
        rep.op_counts.clone(),
        format!("{:?}", rep.register_stats),
        outs.iter().map(|&r| sim.peek(r)).collect(),
    )
}

/// The SoA drive is observationally identical to the plain replay across
/// slice lengths, on schedules that make slices pure, impure, and mixed.
#[test]
fn soa_drive_equals_plain_replay() {
    let (n, m, limit) = (4usize, 6usize, 5u64);
    let schedules: Vec<(&str, Schedule)> = vec![
        ("rr", Schedule::from_indices((0..500).map(|s| s % n))),
        (
            "bursty",
            Schedule::from_indices((0..500).map(|s| (s / 13) % n)),
        ),
        (
            "skewed",
            Schedule::from_indices((0..500).map(|s| if s % 5 < 4 { 0 } else { 1 + s % (n - 1) })),
        ),
    ];
    for (name, sched) in &schedules {
        let plain = {
            let (mut sim, outs, mut fleet) = build(n, m, limit, false);
            sim.run_automata_replay(&mut fleet, sched, RunConfig::steps(1_000))
                .unwrap();
            observe(&sim, &outs)
        };
        for slice_len in [1usize, 2, 7, 64, 2_000] {
            let (mut sim, outs, mut fleet) = build(n, m, limit, false);
            sim.run_automata_replay_soa_batched(
                &mut fleet,
                sched,
                slice_len,
                RunConfig::steps(1_000),
            )
            .unwrap();
            assert_eq!(
                plain,
                observe(&sim, &outs),
                "{name}/slice={slice_len}: SoA diverged from plain replay"
            );
        }
    }
}

/// Dwell-shaped schedules make every slice single-process, which routes
/// through the uniform-slice fast path (contiguous-run allotments, no
/// per-step bucketing). The path must stay observationally identical to
/// plain replay across all its branches: whole-slice batched runs, the
/// scalar fallback when the slice outruns the read run (covering the
/// write phase mid-dwell), and the finished-machine skip once a dwelling
/// machine decides.
#[test]
fn soa_uniform_slice_fast_path_equals_plain_replay() {
    let (n, m, limit) = (3usize, 6usize, 3u64);
    // Dwell blocks of uneven lengths: process 0 dwells past its decision
    // (round = m reads + 1 write = 7 steps; limit 3 => done at step 21,
    // the rest of its 40-step block exercises the finished skip), the
    // others dwell in lengths misaligned with every slice length below.
    let blocks: [(usize, usize); 6] = [(0, 40), (1, 13), (2, 9), (1, 20), (2, 30), (1, 11)];
    let sched =
        Schedule::from_indices(blocks.iter().flat_map(|&(p, len)| (0..len).map(move |_| p)));
    let plain = {
        let (mut sim, outs, mut fleet) = build(n, m, limit, false);
        sim.run_automata_replay(&mut fleet, &sched, RunConfig::steps(200))
            .unwrap();
        observe(&sim, &outs)
    };
    for slice_len in [1usize, 4, 8, 64, 512] {
        let (mut sim, outs, mut fleet) = build(n, m, limit, false);
        sim.run_automata_replay_soa_batched(&mut fleet, &sched, slice_len, RunConfig::steps(200))
            .unwrap();
        assert_eq!(
            plain,
            observe(&sim, &outs),
            "slice={slice_len}: uniform-slice fast path diverged from plain replay"
        );
    }
}

/// Probes attach to the correct global step index even when a batch call
/// consumes several steps at once: the probe lands on the step of the last
/// read of the scan, exactly as in the scalar drive.
#[test]
fn soa_probe_steps_match_plain() {
    let (n, m) = (2usize, 4usize);
    let sched = Schedule::from_indices((0..40).map(|s| s % n));
    let probes = |soa: bool| {
        let (mut sim, _outs, mut fleet) = build(n, m, 3, false);
        if soa {
            sim.run_automata_replay_soa_batched(&mut fleet, &sched, 8, RunConfig::steps(40))
                .unwrap();
        } else {
            sim.run_automata_replay(&mut fleet, &sched, RunConfig::steps(40))
                .unwrap();
        }
        sim.report().probes.events().to_vec()
    };
    let plain = probes(false);
    assert!(!plain.is_empty(), "scan boundaries must probe");
    assert_eq!(plain, probes(true));
}

/// With recording enabled the SoA drive delegates to the plain replay:
/// the `executed` schedule is recorded and everything stays identical.
#[test]
fn soa_drive_records_when_recording() {
    let n = 3;
    let sched = Schedule::from_indices((0..90).map(|s| s % n));
    let (mut sim, outs, mut fleet) = build(n, 5, 2, true);
    sim.run_automata_replay_soa_batched(&mut fleet, &sched, 16, RunConfig::steps(90))
        .unwrap();
    let rep = sim.report();
    assert_eq!(rep.executed.as_ref().map(|e| e.len()), Some(90));
    let (mut psim, pouts, mut pfleet) = build(n, 5, 2, true);
    psim.run_automata_replay(&mut pfleet, &sched, RunConfig::steps(90))
        .unwrap();
    assert_eq!(observe(&psim, &pouts), observe(&sim, &outs));
}

/// A stop condition also routes through the delegating path and is honored.
#[test]
fn soa_drive_honors_stop_conditions() {
    let n = 2;
    let sched = Schedule::from_indices(vec![0usize; 200]);
    let (mut sim, _outs, mut fleet) = build(n, 3, 2, false);
    let status = sim
        .run_automata_replay_soa_batched(
            &mut fleet,
            &sched,
            16,
            RunConfig::steps(200).stop_when(StopWhen::AnyDecided),
        )
        .unwrap();
    assert_eq!(status, RunStatus::Stopped);
    assert_eq!(sim.decisions().iter().flatten().count(), 1);
    assert!(sim.steps_executed() < 200, "must stop at the decision");
}

/// Completed machines' remaining allotments are no-ops in both drives.
#[test]
fn soa_drive_finished_machines_idle() {
    let n = 2;
    // p0 finishes early (limit 1), then keeps being scheduled.
    let sched = Schedule::from_indices((0..120).map(|s| s % n));
    let run = |soa: bool| {
        let u = universe(n);
        let mut sim = Sim::new(u);
        let shared = sim.alloc_array("shared", 3, 7u64);
        let outs = sim.alloc_array("out", n, 0u64);
        let mut fleet = vec![
            SumScan::new(shared[0], outs[0], 3, 1),
            SumScan::new(shared[0], outs[1], 3, 20),
        ];
        if soa {
            sim.run_automata_replay_soa_batched(&mut fleet, &sched, 10, RunConfig::steps(120))
                .unwrap();
        } else {
            sim.run_automata_replay(&mut fleet, &sched, RunConfig::steps(120))
                .unwrap();
        }
        (
            sim.is_finished(pid(0)),
            sim.op_count(pid(0)),
            sim.op_count(pid(1)),
            observe(&sim, &outs),
        )
    };
    let plain = run(false);
    assert!(plain.0, "p0 must finish");
    assert_eq!(plain, run(true));
}

/// Every fleet drive returns the typed
/// [`SimError::FleetDriveOnSpawnedSim`] — naming the drive and the spawned
/// process — instead of executing over a Sim that owns spawned slots.
#[test]
fn fleet_drives_return_typed_error_on_spawned_sim() {
    let check = |err: SimError, want_drive: &str| match err {
        SimError::FleetDriveOnSpawnedSim { drive, process } => {
            assert_eq!(drive, want_drive);
            assert_eq!(process, pid(1));
            let msg = err.to_string();
            assert!(
                msg.contains(want_drive),
                "display must name the drive: {msg}"
            );
        }
        other => panic!("expected FleetDriveOnSpawnedSim, got {other:?}"),
    };
    let spawned_sim = || {
        let mut sim = Sim::new(universe(2));
        sim.spawn(pid(1), |ctx| async move {
            ctx.pause().await;
        })
        .unwrap();
        let shared = sim.alloc_array("shared", 2, 0u64);
        let outs = sim.alloc_array("out", 2, 0u64);
        let fleet: Vec<SumScan> = (0..2)
            .map(|i| SumScan::new(shared[0], outs[i], 2, 1))
            .collect();
        (sim, fleet)
    };
    let sched = Schedule::from_indices([0usize, 1]);

    let (mut sim, mut fleet) = spawned_sim();
    let mut src = ScheduleCursor::new(sched.clone());
    check(
        sim.run_automata(&mut fleet, &mut src, RunConfig::steps(2))
            .unwrap_err(),
        "run_automata",
    );

    let (mut sim, mut fleet) = spawned_sim();
    check(
        sim.run_automata_replay(&mut fleet, &sched, RunConfig::steps(2))
            .unwrap_err(),
        "run_automata_replay",
    );

    let (mut sim, mut fleet) = spawned_sim();
    check(
        sim.run_automata_replay_sharded(&mut fleet, &sched, 2, 2, RunConfig::steps(2))
            .unwrap_err(),
        "run_automata_replay_sharded",
    );

    let (mut sim, mut fleet) = spawned_sim();
    check(
        sim.run_automata_replay_soa(&mut fleet, &sched, 4, RunConfig::steps(2))
            .unwrap_err(),
        "run_automata_replay_soa",
    );

    let (mut sim, mut fleet) = spawned_sim();
    check(
        sim.run_automata_replay_soa_batched(&mut fleet, &sched, 4, RunConfig::steps(2))
            .unwrap_err(),
        "run_automata_replay_soa_batched",
    );

    // The error is recoverable: none of the calls executed a step or
    // touched a register.
    let (sim, _fleet) = spawned_sim();
    assert_eq!(sim.steps_executed(), 0);
}

/// The interleaved-slice fast path: schedules that repeat a fixed
/// permutation of the whole fleet with period n route through strided
/// allotments (no bucketing, no step-index lists) and must stay
/// observationally identical to plain replay — across rotations of the
/// permutation, a shuffled permutation, slice lengths aligned and
/// misaligned with the period, and ragged tails.
#[test]
fn soa_interleaved_fast_path_equals_plain_replay() {
    let (n, m, limit) = (5usize, 6usize, 4u64);
    let shuffled = [3usize, 0, 4, 1, 2];
    let schedules: Vec<(&str, Schedule)> = vec![
        ("rr", Schedule::from_indices((0..400).map(|s| s % n))),
        (
            "rotated",
            Schedule::from_indices((0..400).map(|s| (s + 2) % n)),
        ),
        (
            "shuffled-perm",
            Schedule::from_indices((0..400).map(|s| shuffled[s % n])),
        ),
        (
            // Ragged: 370 = 74 permutation periods, but chunked at 64 the
            // final slice is 50 steps (period check passes, length is not
            // a multiple of n) — must fall back and stay identical.
            "ragged-tail",
            Schedule::from_indices((0..370).map(|s| s % n)),
        ),
    ];
    for (name, sched) in &schedules {
        let plain = {
            let (mut sim, outs, mut fleet) = build(n, m, limit, false);
            sim.run_automata_replay(&mut fleet, sched, RunConfig::steps(1_000))
                .unwrap();
            observe(&sim, &outs)
        };
        // 5·n and 64: slice aligned and misaligned with the period; n
        // itself: one period per slice (strided runs of length 1).
        for slice_len in [n, 5 * n, 64, 1_000] {
            let (mut sim, outs, mut fleet) = build(n, m, limit, false);
            sim.run_automata_replay_soa_batched(
                &mut fleet,
                sched,
                slice_len,
                RunConfig::steps(1_000),
            )
            .unwrap();
            assert_eq!(
                plain,
                observe(&sim, &outs),
                "{name}/slice={slice_len}: interleaved fast path diverged"
            );
        }
    }
}

/// Finished machines inside an interleaved slice: the permutation still
/// matches (the schedule keeps naming the finished process), its allotment
/// is a no-op, and everything stays identical to plain replay.
#[test]
fn soa_interleaved_with_finished_machines_equals_plain() {
    let n = 4;
    let sched = Schedule::from_indices((0..480).map(|s| s % n));
    let run = |batched: bool| {
        let u = universe(n);
        let mut sim = Sim::new(u);
        let shared = sim.alloc_array("shared", 5, 3u64);
        let outs = sim.alloc_array("out", n, 0u64);
        // p0 decides after one round; the others keep scanning.
        let mut fleet: Vec<SumScan> = (0..n)
            .map(|i| SumScan::new(shared[0], outs[i], 5, if i == 0 { 1 } else { 15 }))
            .collect();
        if batched {
            sim.run_automata_replay_soa_batched(&mut fleet, &sched, 6 * n, RunConfig::steps(480))
                .unwrap();
        } else {
            sim.run_automata_replay(&mut fleet, &sched, RunConfig::steps(480))
                .unwrap();
        }
        observe(&sim, &outs)
    };
    assert_eq!(run(false), run(true));
}

/// The delegating entry is observationally identical to the raw batched
/// engine on both sides of [`SOA_DELEGATE_BELOW_N`] — delegation is a pure
/// performance heuristic.
#[test]
fn soa_delegation_threshold_preserves_identity() {
    use st_sim::SOA_DELEGATE_BELOW_N;
    let (m, limit) = (6usize, 3u64);
    for n in [SOA_DELEGATE_BELOW_N - 1, SOA_DELEGATE_BELOW_N] {
        let sched = Schedule::from_indices((0..n * 40).map(|s| s % n));
        let steps = (n * 40) as u64;
        let plain = {
            let (mut sim, outs, mut fleet) = build(n, m, limit, false);
            sim.run_automata_replay(&mut fleet, &sched, RunConfig::steps(steps))
                .unwrap();
            observe(&sim, &outs)
        };
        for batched in [false, true] {
            let (mut sim, outs, mut fleet) = build(n, m, limit, false);
            if batched {
                sim.run_automata_replay_soa_batched(
                    &mut fleet,
                    &sched,
                    64,
                    RunConfig::steps(steps),
                )
                .unwrap();
            } else {
                sim.run_automata_replay_soa(&mut fleet, &sched, 64, RunConfig::steps(steps))
                    .unwrap();
            }
            assert_eq!(
                plain,
                observe(&sim, &outs),
                "n={n} batched={batched}: delegation changed observations"
            );
        }
    }
}

/// A fresh (never-spawned) Sim accepts every fleet drive; the typed error
/// appears only when slots exist — i.e. `ProcSet::full` of drives is
/// usable after plain construction.
#[test]
fn fleet_drives_accept_unspawned_sim() {
    let sched = Schedule::from_indices([0usize, 1, 0, 1]);
    let mut sim = Sim::new(universe(2));
    let shared = sim.alloc_array("shared", 2, 1u64);
    let outs = sim.alloc_array("out", 2, 0u64);
    let mut fleet: Vec<SumScan> = (0..2)
        .map(|i| SumScan::new(shared[0], outs[i], 2, 1))
        .collect();
    sim.run_automata_replay_soa(&mut fleet, &sched, 2, RunConfig::steps(4))
        .unwrap();
    assert_eq!(sim.steps_executed(), 4);
    let _ = ProcSet::full(universe(2));
}
