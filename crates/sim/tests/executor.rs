//! Integration tests for the deterministic executor: step semantics,
//! determinism, crashes, stop conditions, and instrumentation.

use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
use st_sim::{RunConfig, RunStatus, Sim, StepOutcome, StopWhen};

fn universe(n: usize) -> Universe {
    Universe::new(n).unwrap()
}

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Each scheduled step performs exactly one register operation.
#[test]
fn one_operation_per_step() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn(pid(0), |ctx| async move {
        for i in 1..=5u64 {
            ctx.write(r, i).await;
        }
    })
    .unwrap();

    // After s steps, exactly s writes have happened.
    for expected in 1..=4u64 {
        assert_eq!(sim.step_with(pid(0)), StepOutcome::Progressed);
        assert_eq!(sim.peek(r), expected);
    }
    // The fifth write is the last operation: the future completes within the
    // same poll, so the step reports Finished.
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Finished);
    assert_eq!(sim.peek(r), 5);
    assert!(sim.is_finished(pid(0)));
    // Further steps are idle no-ops.
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Idle);
    assert_eq!(sim.steps_executed(), 6);
}

/// Local computation between operations is free: many local mutations happen
/// within a single step.
#[test]
fn local_computation_is_free() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("sum", 0u64);
    sim.spawn(pid(0), |ctx| async move {
        let mut local = 0u64;
        for i in 0..1000 {
            local += i; // free local work
        }
        ctx.write(r, local).await; // exactly one step
    })
    .unwrap();
    sim.step_with(pid(0));
    assert_eq!(sim.peek(r), 499_500);
    assert_eq!(sim.steps_executed(), 1);
}

/// Steps by never-spawned processes are real but idle — this models the
/// fictitious, crashed-from-the-start processes of the Theorem 27 proof.
#[test]
fn unspawned_process_steps_are_idle() {
    let mut sim = Sim::new(universe(2));
    let r = sim.alloc("x", 0u64);
    sim.spawn(pid(0), |ctx| async move {
        ctx.write(r, 1).await;
    })
    .unwrap();
    assert_eq!(sim.step_with(pid(1)), StepOutcome::Idle);
    // The single write is p0's last operation: Finished on the same step.
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Finished);
    assert_eq!(sim.peek(r), 1);
}

/// Interleaving respects the schedule exactly: a register ping-pong between
/// two processes reproduces the scheduled order.
#[test]
fn interleaving_follows_schedule() {
    let mut sim = Sim::with_recording(universe(2), true);
    let log = sim.alloc("log", Vec::<u64>::new());
    for me in 0..2usize {
        sim.spawn(pid(me), move |ctx| async move {
            for round in 0..3u64 {
                let mut cur = ctx.read(log).await;
                cur.push(me as u64 * 10 + round);
                ctx.write(log, cur).await;
            }
        })
        .unwrap();
    }
    // p0 completes fully, then p1: strict sequential order.
    let mut src = ScheduleCursor::new(Schedule::from_indices([0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]));
    sim.run(&mut src, RunConfig::steps(100)).unwrap();
    assert_eq!(sim.peek(log), vec![0, 1, 2, 10, 11, 12]);
    let report = sim.report();
    assert_eq!(
        report.executed.unwrap(),
        Schedule::from_indices([0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1])
    );
}

/// The same seed/schedule gives bit-identical traces (determinism).
#[test]
fn deterministic_replay() {
    fn run_once() -> (Vec<Option<u64>>, u64) {
        let mut sim = Sim::new(universe(3));
        let regs = sim.alloc_per_process("v", 0u64);
        for i in 0..3usize {
            let my = regs[i];
            let all = regs.clone();
            sim.spawn(pid(i), move |ctx| async move {
                ctx.write(my, (i as u64 + 1) * 7).await;
                let mut sum = 0;
                for r in all {
                    sum += ctx.read(r).await;
                }
                ctx.decide(sum);
            })
            .unwrap();
        }
        let sched: Vec<usize> = (0..60).map(|s| (s * 7 + s / 3) % 3).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
        sim.run(&mut src, RunConfig::steps(100)).unwrap();
        let rep = sim.report();
        (
            rep.decisions.iter().map(|d| d.map(|x| x.value)).collect(),
            rep.steps,
        )
    }
    assert_eq!(run_once(), run_once());
}

/// Crashed processes stop making progress; their registers keep their last
/// written values.
#[test]
fn crash_freezes_process() {
    let mut sim = Sim::new(universe(2));
    let r = sim.alloc("x", 0u64);
    sim.spawn(pid(0), |ctx| async move {
        for i in 1..1000u64 {
            ctx.write(r, i).await;
        }
    })
    .unwrap();
    sim.step_with(pid(0));
    sim.step_with(pid(0));
    assert_eq!(sim.peek(r), 2);
    sim.crash(pid(0));
    assert_eq!(sim.step_with(pid(0)), StepOutcome::Idle);
    assert_eq!(sim.peek(r), 2);
}

/// StopWhen::AllDecided fires as soon as the set has decided, not later.
#[test]
fn stop_when_all_decided() {
    let mut sim = Sim::new(universe(3));
    let r = sim.alloc("x", 0u64);
    for i in 0..3usize {
        sim.spawn(pid(i), move |ctx| async move {
            let v = ctx.read(r).await;
            ctx.decide(v + i as u64);
            // Keep running forever after deciding.
            loop {
                ctx.pause().await;
            }
        })
        .unwrap();
    }
    let sched: Vec<usize> = (0..300).map(|s| s % 3).collect();
    let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
    let status = sim
        .run(
            &mut src,
            RunConfig::steps(300).stop_when(StopWhen::AllDecided(ProcSet::from_indices([0, 1, 2]))),
        )
        .unwrap();
    assert_eq!(status, RunStatus::Stopped);
    // All three decide at their first step each: 3 steps + 1 extra poll round.
    assert!(
        sim.steps_executed() <= 4,
        "stopped late: {}",
        sim.steps_executed()
    );
}

/// AnyDecided stops at the first decision.
#[test]
fn stop_when_any_decided() {
    let mut sim = Sim::new(universe(2));
    sim.spawn(pid(0), |ctx| async move {
        ctx.pause().await;
        ctx.pause().await;
        ctx.decide(42);
    })
    .unwrap();
    sim.spawn(pid(1), |ctx| async move {
        loop {
            ctx.pause().await;
        }
    })
    .unwrap();
    let sched: Vec<usize> = (0..100).map(|s| s % 2).collect();
    let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
    let status = sim
        .run(
            &mut src,
            RunConfig::steps(100).stop_when(StopWhen::AnyDecided),
        )
        .unwrap();
    assert_eq!(status, RunStatus::Stopped);
    assert_eq!(sim.report().decision_value(pid(0)), Some(42));
}

/// Run status distinguishes budget exhaustion from source exhaustion.
#[test]
fn run_statuses() {
    let mut sim = Sim::new(universe(1));
    sim.spawn(pid(0), |ctx| async move {
        loop {
            ctx.pause().await;
        }
    })
    .unwrap();
    let mut src = ScheduleCursor::new(Schedule::from_indices([0, 0, 0]));
    assert_eq!(
        sim.run(&mut src, RunConfig::steps(10)).unwrap(),
        RunStatus::SourceEnded
    );
    let mut src2 = ScheduleCursor::new(Schedule::from_indices(vec![0; 50]));
    assert_eq!(
        sim.run(&mut src2, RunConfig::steps(5)).unwrap(),
        RunStatus::MaxSteps
    );
    assert_eq!(sim.steps_executed(), 8);
}

/// A process pending on a foreign future is reported as stuck.
#[test]
fn stuck_process_detected() {
    struct NeverReady;
    impl std::future::Future for NeverReady {
        type Output = ();
        fn poll(
            self: std::pin::Pin<&mut Self>,
            _: &mut std::task::Context<'_>,
        ) -> std::task::Poll<()> {
            std::task::Poll::Pending
        }
    }
    let mut sim = Sim::new(universe(1));
    sim.spawn(pid(0), |_ctx| async move {
        NeverReady.await;
    })
    .unwrap();
    let mut src = ScheduleCursor::new(Schedule::from_indices([0]));
    assert_eq!(
        sim.run(&mut src, RunConfig::steps(5)).unwrap(),
        RunStatus::Stuck(pid(0))
    );
}

/// Probes are free (no steps) and recorded with the right step indices.
#[test]
fn probes_are_free_and_ordered() {
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 0u64);
    sim.spawn(pid(0), |ctx| async move {
        ctx.probe("phase", 1);
        ctx.write(r, 1).await;
        ctx.probe("phase", 2);
        ctx.probe_set("members", ProcSet::from_indices([0, 3]));
        ctx.write(r, 2).await;
        ctx.probe("phase", 3);
    })
    .unwrap();
    let mut src = ScheduleCursor::new(Schedule::from_indices(vec![0; 10]));
    sim.run(&mut src, RunConfig::steps(10)).unwrap();
    let rep = sim.report();
    let tl = rep.probes.timeline(pid(0), "phase");
    assert_eq!(
        tl.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    assert_eq!(
        rep.probes.last_value(pid(0), "members"),
        Some(ProcSet::from_indices([0, 3]).bits())
    );
    // Probes took no steps: only 2 writes + 1 finishing step happened.
    assert_eq!(rep.op_counts[0], 2);
}

/// Double spawn is rejected; double decide panics.
#[test]
fn spawn_and_decide_misuse() {
    let mut sim = Sim::new(universe(1));
    sim.spawn(pid(0), |ctx| async move {
        ctx.pause().await;
    })
    .unwrap();
    assert!(sim
        .spawn(pid(0), |ctx| async move {
            ctx.pause().await;
        })
        .is_err());

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = Sim::new(universe(1));
        sim.spawn(pid(0), |ctx| async move {
            ctx.decide(1);
            ctx.decide(2);
        })
        .unwrap();
        sim.step_with(pid(0));
    }));
    assert!(result.is_err(), "double decide must panic");
}

/// Write-discipline violations surface as panics naming the register.
#[test]
fn single_writer_violation_panics() {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = Sim::new(universe(2));
        let hb = sim.alloc_per_process("Heartbeat", 0u64);
        // p1 tries to write p0's heartbeat.
        sim.spawn(pid(1), move |ctx| async move {
            ctx.write(hb[0], 9).await;
        })
        .unwrap();
        sim.step_with(pid(1));
    }));
    assert!(result.is_err());
}

/// Report helpers: decided set, all-decided step, agreement outcome.
#[test]
fn report_helpers() {
    let mut sim = Sim::new(universe(3));
    for i in 0..2usize {
        sim.spawn(pid(i), move |ctx| async move {
            ctx.pause().await;
            ctx.decide(5);
        })
        .unwrap();
    }
    let mut src = ScheduleCursor::new(Schedule::from_indices([0, 0, 1, 1]));
    sim.run(&mut src, RunConfig::steps(10)).unwrap();
    let rep = sim.report();
    assert_eq!(rep.decided_set(), ProcSet::from_indices([0, 1]));
    assert_eq!(rep.all_decided_step(ProcSet::from_indices([0, 1])), Some(2));
    assert_eq!(rep.all_decided_step(ProcSet::from_indices([0, 2])), None);

    let outcome = rep.agreement_outcome(&[5, 5, 7], ProcSet::from_indices([0, 1]));
    assert_eq!(outcome.decisions, vec![Some(5), Some(5), None]);
}

/// The executed schedule recording matches what the analyzer needs.
#[test]
fn executed_schedule_feeds_analyzer() {
    let mut sim = Sim::with_recording(universe(2), true);
    sim.spawn(pid(0), |ctx| async move {
        loop {
            ctx.pause().await;
        }
    })
    .unwrap();
    sim.spawn(pid(1), |ctx| async move {
        loop {
            ctx.pause().await;
        }
    })
    .unwrap();
    let mut src = ScheduleCursor::new(Schedule::from_indices([0, 1, 0, 1, 0, 1]));
    sim.run(&mut src, RunConfig::steps(6)).unwrap();
    let executed = sim.report().executed.unwrap();
    let bound = st_core::timeliness::empirical_bound(
        &executed,
        ProcSet::from_indices([0]),
        ProcSet::from_indices([1]),
    );
    assert_eq!(bound, 2);
}

/// A bad schedule against async slots is a typed error from `run`, not a
/// panic; steps before the offending one executed and remain visible.
#[test]
fn run_surfaces_out_of_universe_schedule_as_error() {
    use st_sim::SimError;
    let mut sim = Sim::new(universe(2));
    let r = sim.alloc("x", 0u64);
    for i in 0..2usize {
        sim.spawn(pid(i), move |ctx| async move {
            loop {
                let v = ctx.read(r).await;
                ctx.write(r, v + 1).await;
            }
        })
        .unwrap();
    }
    let mut src = ScheduleCursor::new(Schedule::from_indices([0, 1, 9, 0]));
    let err = sim.run(&mut src, RunConfig::steps(10)).unwrap_err();
    assert_eq!(
        err,
        SimError::ScheduleOutOfUniverse {
            process: pid(9),
            n: 2
        }
    );
    // The two good steps ran; the sim is still usable afterwards.
    assert_eq!(sim.steps_executed(), 2);
    let mut rest = ScheduleCursor::new(Schedule::from_indices([0, 1]));
    assert_eq!(
        sim.run(&mut rest, RunConfig::steps(10)).unwrap(),
        RunStatus::SourceEnded
    );
    assert_eq!(sim.steps_executed(), 4);
}

/// `try_peek` surfaces foreign handles and type confusion as typed errors.
#[test]
fn try_peek_returns_typed_errors() {
    use st_sim::{Reg, SimError};
    let mut sim = Sim::new(universe(1));
    let r = sim.alloc("x", 7u64);
    assert_eq!(sim.try_peek(r), Ok(7));
    // A handle no simulator allocated.
    let foreign: Reg<u64> = {
        let mut other = Sim::new(universe(1));
        let _ = other.alloc("a", 0u64);
        let _ = other.alloc("b", 0u64);
        other.alloc("c", 0u64)
    };
    assert!(matches!(
        sim.try_peek(foreign),
        Err(SimError::UnknownRegister { .. })
    ));
}
