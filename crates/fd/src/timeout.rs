//! Timeout growth policies (line 17 of Figure 2, plus an ablation).

/// How `timeout[A]` grows when the timer for set `A` expires.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TimeoutPolicy {
    /// The paper's rule: `timeout[A] ← timeout[A] + 1` (Figure 2, line 17).
    #[default]
    Increment,
    /// Ablation: exponential growth `timeout[A] ← 2 · timeout[A]`. Reaches a
    /// sufficient timeout in logarithmically many expirations, at the cost
    /// of overshooting (slower detection of genuinely crashed sets).
    Double,
}

impl TimeoutPolicy {
    /// The next timeout after an expiration.
    pub fn grow(self, timeout: u64) -> u64 {
        match self {
            TimeoutPolicy::Increment => timeout + 1,
            TimeoutPolicy::Double => timeout.saturating_mul(2).max(2),
        }
    }

    /// Number of expirations before the timeout reaches at least `target`,
    /// starting from 1 (used to size experiment budgets).
    pub fn expirations_to_reach(self, target: u64) -> u64 {
        let mut timeout = 1u64;
        let mut count = 0;
        while timeout < target {
            timeout = self.grow(timeout);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_grows_linearly() {
        let p = TimeoutPolicy::Increment;
        assert_eq!(p.grow(1), 2);
        assert_eq!(p.grow(10), 11);
        assert_eq!(p.expirations_to_reach(100), 99);
    }

    #[test]
    fn double_grows_exponentially() {
        let p = TimeoutPolicy::Double;
        assert_eq!(p.grow(1), 2);
        assert_eq!(p.grow(8), 16);
        assert_eq!(p.expirations_to_reach(1024), 10);
        // Saturation guard.
        assert_eq!(p.grow(u64::MAX), u64::MAX);
    }

    #[test]
    fn default_is_the_paper_rule() {
        assert_eq!(TimeoutPolicy::default(), TimeoutPolicy::Increment);
    }
}
