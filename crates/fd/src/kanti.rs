//! The Figure 2 algorithm: t-resilient k-anti-Ω in system `S^k_{t+1,n}`.
//!
//! Transcribed line-by-line from the paper. Shared registers:
//!
//! ```text
//! ∀p ∈ Π_n:                Heartbeat[p] = 0        (written only by p)
//! ∀A ∈ Π^k_n, ∀q ∈ Π_n:    Counter[A, q] = 0       (written only by q)
//! ```
//!
//! Each process loops: read all counters (line 2), compute per-set
//! accusation counters as the `(t+1)`-st smallest entry (line 3), pick the
//! winner set minimizing `(accusation[A], A)` (line 4), output its
//! complement (line 5), bump its heartbeat (lines 6–7), reset the timers of
//! every set containing a process whose heartbeat advanced (lines 8–13), and
//! on timer expiry grow the timeout and accuse the set by incrementing its
//! own counter entry (lines 14–19).
//!
//! The loop body is exposed as [`KAntiOmega::iterate`] so the failure
//! detector can be *composed* with a protocol in the same process (the
//! process interleaves FD iterations with protocol steps); the standalone
//! automaton of the paper is [`KAntiOmega::run`].
//!
//! The detector ships in **both simulator ABIs**: the async transcription
//! above, and [`KAntiOmegaMachine`] — an explicit state machine on the
//! executor's non-async fast path ([`st_sim::Automaton`]) that the
//! convergence experiments and benches drive. The two are observationally
//! identical step-for-step (same probes at the same step indices, same
//! register writes in the same order); `tests/differential.rs` enforces it
//! on round-robin, seeded-random, and Figure 1 schedules.

use st_core::subsets::wide_k_subsets;
use st_core::{ProcessId, Universe, WideProcSet};
use st_sim::{Automaton, BatchAccess, PhaseBatch, ProcessCtx, Reg, Sim, Status, StepAccess};

use crate::timeout::TimeoutPolicy;

/// Probe key under which every process publishes its current `winnerset`
/// whenever it changes.
///
/// The encoding depends on the bitset width: at `W = 1` (the classic
/// `n ≤ 64` regime) the value is `ProcSet::bits()` — unchanged from every
/// prior release, so existing analyses and goldens keep decoding it. At
/// `W > 1` a set no longer fits in the probe's `u64` payload, so the value
/// is the winner's **colexicographic rank** within `Π^k_n` (its index in
/// [`KAntiOmega::subsets`]); decode with
/// [`wide_unrank`](st_core::subsets::wide_unrank).
pub const WINNERSET_PROBE: &str = "winnerset";

/// Parameters of the t-resilient k-anti-Ω instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KAntiOmegaConfig {
    /// Agreement degree: the winner set has size `k`; the FD outputs `n − k`
    /// processes.
    pub k: usize,
    /// Resilience: accusation counters take the `(t+1)`-st smallest entry.
    pub t: usize,
    /// Timeout growth rule (the paper's increment by default).
    pub policy: TimeoutPolicy,
}

impl KAntiOmegaConfig {
    /// The paper's configuration for `(t, k, n)`-agreement support.
    pub fn new(k: usize, t: usize) -> Self {
        KAntiOmegaConfig {
            k,
            t,
            policy: TimeoutPolicy::Increment,
        }
    }

    /// Overrides the timeout policy (ablation).
    pub fn with_policy(mut self, policy: TimeoutPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// The shared side of a k-anti-Ω instance: register handles plus the
/// `Π^k_n` table. Clone into every process.
///
/// # Examples
///
/// Run the detector on every process of a small system and observe its
/// converged winnerset:
///
/// ```
/// use st_core::{ProcSet, ProcessId, Universe, ScheduleCursor, Schedule};
/// use st_fd::{KAntiOmega, KAntiOmegaConfig};
/// use st_sim::{RunConfig, Sim};
///
/// let universe = Universe::new(3).unwrap();
/// let mut sim = Sim::new(universe);
/// let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 1));
/// for p in universe.processes() {
///     let fd = fd.clone();
///     sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
/// }
/// // Round-robin is synchronous: the detector settles quickly.
/// let steps: Vec<usize> = (0..60_000).map(|s| s % 3).collect();
/// let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
/// sim.run(&mut src, RunConfig::steps(60_000)).unwrap();
/// let stab = st_fd::convergence::winnerset_stabilization(
///     &sim.report(),
///     ProcSet::full(universe),
/// );
/// assert!(stab.is_some());
/// assert_eq!(stab.unwrap().winnerset.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct KAntiOmega<const W: usize = 1> {
    config: KAntiOmegaConfig,
    universe: Universe,
    /// `Heartbeat[p]`, single-writer.
    heartbeat: Vec<Reg<u64>>,
    /// `Counter[A, q]` indexed `[rank(A)][q]`, single-writer per column.
    counter: Vec<Vec<Reg<u64>>>,
    /// `Π^k_n` in ascending order (rank = index).
    subsets: Vec<WideProcSet<W>>,
    /// For each process q, the ranks of the sets containing q (line 11–12).
    containing: Vec<Vec<u32>>,
}

impl KAntiOmega {
    /// Allocates all shared registers of Figure 2 in `sim`, at the classic
    /// single-word set width (`n ≤ 64`). This pins `W = 1` so existing
    /// call sites keep their codegen and probe encoding; larger universes
    /// go through [`KAntiOmega::alloc_wide`] with an explicit width.
    ///
    /// # Panics
    ///
    /// As for [`alloc_wide`](KAntiOmega::alloc_wide), with the capacity
    /// bound fixed at the [`ProcSet`](st_core::ProcSet) capacity of 64.
    pub fn alloc(sim: &mut Sim, config: KAntiOmegaConfig) -> Self {
        Self::alloc_wide(sim, config)
    }
}

impl<const W: usize> KAntiOmega<W> {
    /// Allocates all shared registers of Figure 2 in `sim`, with process
    /// sets `W` words wide (capacity `64·W` processes).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ t ≤ n − 1` (the range of Theorem 23), or if
    /// `n` exceeds the bitset capacity at this width — pick `W` via
    /// [`st_core::words_for`], or use the lean `k = 1` specialization
    /// ([`LeanOmega`](crate::LeanOmega)) when O(n)-state suffices.
    pub fn alloc_wide(sim: &mut Sim, config: KAntiOmegaConfig) -> Self {
        let universe = sim.universe();
        let n = universe.n();
        let (k, t) = (config.k, config.t);
        assert!(
            k >= 1 && k <= t && t < n,
            "Figure 2 requires 1 <= k <= t <= n-1 (got k={k}, t={t}, n={n})"
        );
        assert!(
            n <= WideProcSet::<W>::CAPACITY,
            "Figure 2's Π^k_n machinery at width W={W} needs n <= {} (got n={n}); \
             pick W with st_core::words_for, or use LeanOmega",
            WideProcSet::<W>::CAPACITY
        );
        let heartbeat = sim.alloc_per_process("Heartbeat", 0u64);
        let subsets = wide_k_subsets(universe, k);
        let counter: Vec<Vec<Reg<u64>>> = subsets
            .iter()
            .enumerate()
            .map(|(rank, set)| {
                universe
                    .processes()
                    .map(|q| sim.alloc_sw(format!("Counter[{set}#{rank},{q}]"), q, 0u64))
                    .collect()
            })
            .collect();
        let mut containing = vec![Vec::new(); n];
        for (rank, set) in subsets.iter().enumerate() {
            for q in set.iter() {
                containing[q.index()].push(rank as u32);
            }
        }
        KAntiOmega {
            config,
            universe,
            heartbeat,
            counter,
            subsets,
            containing,
        }
    }

    /// The instance parameters.
    pub fn config(&self) -> KAntiOmegaConfig {
        self.config
    }

    /// The universe this instance was allocated for.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// Number of candidate sets `|Π^k_n|`.
    pub fn set_count(&self) -> usize {
        self.subsets.len()
    }

    /// Shared-memory steps of one loop iteration for a process that accuses
    /// `expired` sets: `|Π^k_n|·n` counter reads + 1 heartbeat write + `n`
    /// heartbeat reads + `expired` counter writes.
    pub fn steps_per_iteration(&self, expired: usize) -> u64 {
        let m = self.subsets.len() as u64;
        let n = self.universe.n() as u64;
        m * n + 1 + n + expired as u64
    }

    /// Creates the local state of one process (the local variables block of
    /// Figure 2).
    pub fn local_state(&self) -> KAntiOmegaLocal<W> {
        let n = self.universe.n();
        let m = self.subsets.len();
        KAntiOmegaLocal {
            my_hb: 0,
            prev_heartbeat: vec![0; n],
            timeout: vec![1; m],
            timer: vec![1; m],
            cnt: vec![vec![0; n]; m],
            accusation: vec![0; m],
            winnerset: WideProcSet::EMPTY,
            fd_output: WideProcSet::EMPTY,
            published: None,
            iterations: 0,
        }
    }

    /// The [`WINNERSET_PROBE`] payload for the winner of the given rank:
    /// the raw bitmask at `W = 1` (the historical encoding), the colex
    /// rank at wider widths (see the probe's docs).
    #[inline]
    fn encode_winnerset(&self, rank: usize) -> u64 {
        if W == 1 {
            self.subsets[rank].words()[0]
        } else {
            rank as u64
        }
    }

    /// Executes one iteration of the Figure 2 loop (lines 2–19) for the
    /// calling process, updating `local` and publishing the winnerset probe
    /// on change.
    pub async fn iterate(&self, ctx: &ProcessCtx, local: &mut KAntiOmegaLocal<W>) {
        let me = ctx.pid().index();
        let n = self.universe.n();
        let m = self.subsets.len();
        let t = self.config.t;

        // Line 2: read every Counter[A, q] — the |Π^k_n|·n-read inner loop
        // of the algorithm, kept on the simulator's u64 word fast path.
        for a in 0..m {
            for q in 0..n {
                local.cnt[a][q] = ctx.read_word(self.counter[a][q]).await;
            }
        }

        // Line 3: accusation[A] = (t+1)-st smallest of cnt[A, *].
        let mut scratch = vec![0u64; n];
        for a in 0..m {
            scratch.copy_from_slice(&local.cnt[a]);
            scratch.sort_unstable();
            local.accusation[a] = scratch[t];
        }

        // Line 4: winnerset = argmin (accusation[A], A); `subsets` is stored
        // in ascending set order, so scanning ranks in order with a strict
        // `<` realizes the lexicographic tie-break.
        let mut winner = 0usize;
        for a in 1..m {
            if local.accusation[a] < local.accusation[winner] {
                winner = a;
            }
        }
        local.winnerset = self.subsets[winner];
        // Line 5: fdOutput = Π_n − winnerset.
        local.fd_output = local.winnerset.complement(self.universe);
        if local.published != Some(local.winnerset) {
            ctx.probe(WINNERSET_PROBE, self.encode_winnerset(winner));
            local.published = Some(local.winnerset);
        }

        // Lines 6–7: bump heartbeat.
        local.my_hb += 1;
        ctx.write_word(self.heartbeat[me], local.my_hb).await;

        // Lines 8–13: check other processes' heartbeats.
        for q in 0..n {
            let hbq = ctx.read_word(self.heartbeat[q]).await;
            if hbq > local.prev_heartbeat[q] {
                for &rank in &self.containing[q] {
                    local.timer[rank as usize] = local.timeout[rank as usize];
                }
                local.prev_heartbeat[q] = hbq;
            }
        }

        // Lines 14–19: decrement timers; on expiry, grow the timeout and
        // accuse by incrementing Counter[A, p] from the value read in line 2.
        for a in 0..m {
            local.timer[a] -= 1;
            if local.timer[a] == 0 {
                local.timeout[a] = self.config.policy.grow(local.timeout[a]);
                local.timer[a] = local.timeout[a];
                ctx.write_word(self.counter[a][me], local.cnt[a][me] + 1)
                    .await;
            }
        }

        local.iterations += 1;
    }

    /// The standalone Figure 2 automaton: iterate forever. Run via
    /// [`Sim::spawn`], e.g.
    /// `sim.spawn(p, |ctx| fd.clone().run(ctx))`.
    pub async fn run(self, ctx: ProcessCtx) {
        let mut local = self.local_state();
        loop {
            self.iterate(&ctx, &mut local).await;
        }
    }

    /// The same automaton as an explicit state machine on the simulator's
    /// non-async fast path: spawn via
    /// [`Sim::spawn_automaton`](st_sim::Sim::spawn_automaton), e.g.
    /// `sim.spawn_automaton(p, fd.machine())`. Observationally identical to
    /// [`run`](Self::run), step for step, at a fraction of the per-step
    /// cost.
    pub fn machine(&self) -> KAntiOmegaMachine<W> {
        KAntiOmegaMachine::new(self.clone())
    }

    /// The subsets table (rank order), for analyses.
    pub fn subsets(&self) -> &[WideProcSet<W>] {
        &self.subsets
    }

    /// Reads `Counter[A, q]` without taking a step (instrumentation).
    pub fn peek_counter(&self, sim: &Sim, rank: usize, q: ProcessId) -> u64 {
        sim.peek(self.counter[rank][q.index()])
    }

    /// Reads `Heartbeat[p]` without taking a step (instrumentation).
    pub fn peek_heartbeat(&self, sim: &Sim, p: ProcessId) -> u64 {
        sim.peek(self.heartbeat[p.index()])
    }
}

/// The per-process local variables of Figure 2.
#[derive(Clone, Debug)]
pub struct KAntiOmegaLocal<const W: usize = 1> {
    my_hb: u64,
    prev_heartbeat: Vec<u64>,
    timeout: Vec<u64>,
    timer: Vec<u64>,
    cnt: Vec<Vec<u64>>,
    accusation: Vec<u64>,
    /// Current winner set (line 4).
    pub winnerset: WideProcSet<W>,
    /// Current FD output `Π_n − winnerset` (line 5).
    pub fd_output: WideProcSet<W>,
    published: Option<WideProcSet<W>>,
    /// Completed loop iterations.
    pub iterations: u64,
}

impl<const W: usize> KAntiOmegaLocal<W> {
    /// Current timeout for the set of the given rank (ablation metrics).
    pub fn timeout_of(&self, rank: usize) -> u64 {
        self.timeout[rank]
    }

    /// Current accusation counter for the set of the given rank.
    pub fn accusation_of(&self, rank: usize) -> u64 {
        self.accusation[rank]
    }
}

/// Control state of [`KAntiOmegaMachine`]: which Figure 2 line the next
/// scheduled step executes. Every variant performs exactly one register
/// operation; the local computation between operations (lines 3–5, timer
/// bookkeeping) runs at the phase boundaries, inside the step that precedes
/// it — exactly where the async transcription runs it.
#[derive(Clone, Copy, Debug)]
enum Phase {
    /// Line 2: read `Counter[A, q]`, flat index `a·n + q` into the counter
    /// table. `m·n` steps per iteration — the hot phase.
    ReadCounters(u32),
    /// Line 7: write the bumped heartbeat.
    WriteHeartbeat,
    /// Lines 8–13: read `Heartbeat[q]` and reset timers of sets containing
    /// `q` whose heartbeat advanced.
    ReadHeartbeats(u32),
    /// Lines 16–19: write the accusation `Counter[A, p]` for the expired
    /// set at this index of the machine's expired list.
    Accuse(u32),
}

/// The Figure 2 automaton as an explicit state machine
/// ([`st_sim::Automaton`]): the non-async fast path of the detector.
///
/// Construct via [`KAntiOmega::machine`] and spawn with
/// [`Sim::spawn_automaton`](st_sim::Sim::spawn_automaton). Local state is
/// kept in flat buffers (the counter snapshot is one `m·n` vector, the
/// register handles one flat table), so the hot `ReadCounters` step is a
/// bounds-checked word read plus an index increment — no future to resume,
/// no grant handshake, no nested `Vec` hops.
///
/// # Examples
///
/// ```
/// use st_core::{ProcSet, Universe, ScheduleCursor, Schedule};
/// use st_fd::{KAntiOmega, KAntiOmegaConfig};
/// use st_sim::{RunConfig, Sim};
///
/// let universe = Universe::new(3).unwrap();
/// let mut sim = Sim::new(universe);
/// let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 1));
/// for p in universe.processes() {
///     sim.spawn_automaton(p, fd.machine()).unwrap();
/// }
/// let steps: Vec<usize> = (0..60_000).map(|s| s % 3).collect();
/// let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
/// sim.run(&mut src, RunConfig::steps(60_000)).unwrap();
/// let stab = st_fd::convergence::winnerset_stabilization(
///     &sim.report(),
///     ProcSet::full(universe),
/// );
/// assert_eq!(stab.unwrap().winnerset.len(), 1);
/// ```
pub struct KAntiOmegaMachine<const W: usize = 1> {
    fd: KAntiOmega<W>,
    phase: Phase,
    // The local variables block of Figure 2, flat where the async port nests.
    my_hb: u64,
    prev_heartbeat: Vec<u64>,
    timeout: Vec<u64>,
    timer: Vec<u64>,
    /// The handle of `Counter[A₀, p₀]`: Figure 2's counter matrix is
    /// allocated contiguously (rank-major, process-minor), so the line 2
    /// scan reads `counter_base + i` via
    /// [`StepAccess::read_word_array`] — no handle table to load on the
    /// hot phase (contiguity is asserted at construction).
    counter_base: Reg<u64>,
    /// The handle of `Heartbeat[p0]`; the per-process array is allocated
    /// contiguously (asserted at construction) so the lines 8–13 scan can
    /// run as one span read on the batched drive.
    heartbeat_base: Reg<u64>,
    /// The line 2 snapshot, flattened to `[a·n + q]`.
    cnt: Vec<u64>,
    /// Memoized line 3: `accusation[a]` is a pure function of the row
    /// `cnt[a·n .. (a+1)·n]`, so it is recomputed only when a counter in
    /// that row actually changed since the previous iteration. After
    /// convergence no counter moves and the whole line 3 pass is `m`
    /// cached loads — this is where the state machine stops paying the
    /// per-iteration sort the async transcription re-runs verbatim.
    accusation: Vec<u64>,
    /// Rows whose snapshot changed since `accusation[a]` was computed.
    row_dirty: Vec<bool>,
    scratch: Vec<u64>,
    winnerset: WideProcSet<W>,
    fd_output: WideProcSet<W>,
    published: Option<WideProcSet<W>>,
    iterations: u64,
    /// Ranks whose timers expired this iteration, in ascending order —
    /// the pending line 18 writes.
    expired: Vec<u32>,
    /// Landing buffer for span reads on the batched drive
    /// ([`PhaseBatch::step_reads`]); sized to the batch on use.
    batch_buf: Vec<u64>,
}

impl<const W: usize> KAntiOmegaMachine<W> {
    fn new(fd: KAntiOmega<W>) -> Self {
        let n = fd.universe.n();
        let m = fd.subsets.len();
        let counter_base = fd.counter[0][0];
        for (a, row) in fd.counter.iter().enumerate() {
            for (q, reg) in row.iter().enumerate() {
                assert_eq!(
                    reg.index(),
                    counter_base.index() + a * n + q,
                    "counter matrix must be allocated contiguously"
                );
            }
        }
        let heartbeat_base = fd.heartbeat[0];
        for (q, reg) in fd.heartbeat.iter().enumerate() {
            assert_eq!(
                reg.index(),
                heartbeat_base.index() + q,
                "heartbeat array must be allocated contiguously"
            );
        }
        KAntiOmegaMachine {
            fd,
            phase: Phase::ReadCounters(0),
            my_hb: 0,
            prev_heartbeat: vec![0; n],
            timeout: vec![1; m],
            timer: vec![1; m],
            counter_base,
            heartbeat_base,
            cnt: vec![0; m * n],
            accusation: vec![0; m],
            row_dirty: vec![true; m],
            scratch: vec![0; n],
            winnerset: WideProcSet::EMPTY,
            fd_output: WideProcSet::EMPTY,
            published: None,
            iterations: 0,
            expired: Vec::with_capacity(m),
            batch_buf: Vec::new(),
        }
    }

    /// Current winner set (line 4).
    pub fn winnerset(&self) -> WideProcSet<W> {
        self.winnerset
    }

    /// Current FD output `Π_n − winnerset` (line 5).
    pub fn fd_output(&self) -> WideProcSet<W> {
        self.fd_output
    }

    /// Completed loop iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Lines 3–5 plus the line 6 increment: runs at the end of the last
    /// line 2 read, inside that read's step (where the async port runs it).
    /// Returns the encoded probe payload when the winnerset changed — the
    /// caller publishes it as the [`WINNERSET_PROBE`] through whichever
    /// access type (scalar [`StepAccess`] or batched
    /// [`st_sim::BatchAccess`]) drove the step.
    fn select_winner(&mut self) -> Option<u64> {
        let n = self.fd.universe.n();
        let m = self.fd.subsets.len();
        let t = self.fd.config.t;

        // Line 3: accusation[A] is the (t+1)-st smallest of cnt[A, *] —
        // recomputed only for rows whose snapshot changed (see the field
        // docs; values are identical to recomputing every row). Line 4: the
        // winner minimizes (accusation[A], A) — subsets are in ascending
        // set order, so a strict `<` scan in rank order realizes the
        // lexicographic tie-break.
        let mut winner = 0usize;
        let mut winner_acc = u64::MAX;
        for a in 0..m {
            if self.row_dirty[a] {
                self.row_dirty[a] = false;
                self.scratch.copy_from_slice(&self.cnt[a * n..(a + 1) * n]);
                let (_, &mut acc, _) = self.scratch.select_nth_unstable(t);
                self.accusation[a] = acc;
            }
            let acc = self.accusation[a];
            if acc < winner_acc {
                winner = a;
                winner_acc = acc;
            }
        }
        self.winnerset = self.fd.subsets[winner];
        // Line 5: fdOutput = Π_n − winnerset.
        self.fd_output = self.winnerset.complement(self.fd.universe);
        let publish = if self.published != Some(self.winnerset) {
            self.published = Some(self.winnerset);
            Some(self.fd.encode_winnerset(winner))
        } else {
            None
        };

        // Line 6: bump the local heartbeat; the write is the next step.
        self.my_hb += 1;
        publish
    }

    /// Lines 14–15 + 17 bookkeeping for every set at once: decrement all
    /// timers, grow the timeout of the expired ones, and queue their
    /// accusation writes (ascending rank — the order the async loop emits
    /// them). Timer arithmetic is local, so batching it at the end of the
    /// lines 8–13 phase is unobservable; the queued writes then replay one
    /// per step.
    fn expire_timers(&mut self) {
        self.expired.clear();
        for a in 0..self.timer.len() {
            self.timer[a] -= 1;
            if self.timer[a] == 0 {
                self.timeout[a] = self.fd.config.policy.grow(self.timeout[a]);
                self.timer[a] = self.timeout[a];
                self.expired.push(a as u32);
            }
        }
    }

    /// Closes the loop iteration and re-enters line 2.
    fn next_iteration(&mut self) {
        self.iterations += 1;
        self.phase = Phase::ReadCounters(0);
    }
}

impl<const W: usize> Automaton for KAntiOmegaMachine<W> {
    // Inline hint: the k-set agreement machine (st-agreement) embeds this
    // machine and calls `step` once per scheduled step on its hottest path;
    // without the hint the cross-crate call stays opaque.
    #[inline]
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        match self.phase {
            Phase::ReadCounters(idx) => {
                let i = idx as usize;
                let value = mem.read_word_array(self.counter_base, i);
                // Counters move rarely (one accusation per timer expiry):
                // compare-before-store keeps the line 3 memo exact and the
                // row-index division off the common path.
                if self.cnt[i] != value {
                    self.cnt[i] = value;
                    self.row_dirty[i / self.fd.universe.n()] = true;
                }
                if i + 1 == self.cnt.len() {
                    if let Some(ws) = self.select_winner() {
                        mem.probe(WINNERSET_PROBE, ws);
                    }
                    self.phase = Phase::WriteHeartbeat;
                } else {
                    self.phase = Phase::ReadCounters(idx + 1);
                }
            }
            Phase::WriteHeartbeat => {
                // Line 7.
                let me = mem.pid().index();
                mem.write_word(self.fd.heartbeat[me], self.my_hb);
                self.phase = Phase::ReadHeartbeats(0);
            }
            Phase::ReadHeartbeats(q) => {
                let qi = q as usize;
                let hbq = mem.read_word(self.fd.heartbeat[qi]);
                if hbq > self.prev_heartbeat[qi] {
                    for &rank in &self.fd.containing[qi] {
                        self.timer[rank as usize] = self.timeout[rank as usize];
                    }
                    self.prev_heartbeat[qi] = hbq;
                }
                if qi + 1 == self.fd.universe.n() {
                    self.expire_timers();
                    if self.expired.is_empty() {
                        self.next_iteration();
                    } else {
                        self.phase = Phase::Accuse(0);
                    }
                } else {
                    self.phase = Phase::ReadHeartbeats(q + 1);
                }
            }
            Phase::Accuse(idx) => {
                // Line 18: accuse from the line 2 snapshot, as the paper
                // (and the async port) does.
                let me = mem.pid().index();
                let a = self.expired[idx as usize] as usize;
                let snap = self.cnt[a * self.fd.universe.n() + me];
                mem.write_word(self.fd.counter[a][me], snap + 1);
                if idx as usize + 1 == self.expired.len() {
                    self.next_iteration();
                } else {
                    self.phase = Phase::Accuse(idx + 1);
                }
            }
        }
        Status::Running
    }
}

impl<const W: usize> PhaseBatch for KAntiOmegaMachine<W> {
    #[inline]
    fn phase_class(&self) -> u8 {
        match self.phase {
            Phase::ReadCounters(_) => 0,
            Phase::WriteHeartbeat => 1,
            Phase::ReadHeartbeats(_) => 2,
            Phase::Accuse(_) => 3,
        }
    }

    #[inline]
    fn read_run(&self) -> usize {
        // Both read phases scan a fixed register range: which registers get
        // read never depends on the values read (values only feed the local
        // timer bookkeeping at the phase boundary), so the full remainder of
        // the phase is a sound run. The write phases pin the run at 0.
        match self.phase {
            Phase::ReadCounters(idx) => self.cnt.len() - idx as usize,
            Phase::ReadHeartbeats(q) => self.fd.universe.n() - q as usize,
            Phase::WriteHeartbeat | Phase::Accuse(_) => 0,
        }
    }

    fn step_reads(&mut self, mem: &mut BatchAccess<'_>) -> Status {
        let l = mem.remaining();
        if l == 0 {
            return Status::Running;
        }
        match self.phase {
            Phase::ReadCounters(idx) => {
                // Line 2, batched: one span read over the counter matrix,
                // then the compare-before-store memo pass of the scalar
                // drive over the landed values.
                let i = idx as usize;
                let n = self.fd.universe.n();
                self.batch_buf.resize(l, 0);
                mem.read_word_span(self.counter_base, i, &mut self.batch_buf);
                for (j, &value) in self.batch_buf.iter().enumerate() {
                    let gi = i + j;
                    if self.cnt[gi] != value {
                        self.cnt[gi] = value;
                        self.row_dirty[gi / n] = true;
                    }
                }
                if i + l == self.cnt.len() {
                    if let Some(ws) = self.select_winner() {
                        // Attaches to the last consumed step — exactly the
                        // step the scalar drive publishes on.
                        mem.probe(WINNERSET_PROBE, ws);
                    }
                    self.phase = Phase::WriteHeartbeat;
                } else {
                    self.phase = Phase::ReadCounters((i + l) as u32);
                }
            }
            Phase::ReadHeartbeats(q) => {
                // Lines 8–13, batched: span-read the heartbeat array, then
                // run the timer resets over the landed values.
                let q0 = q as usize;
                let n = self.fd.universe.n();
                self.batch_buf.resize(l, 0);
                mem.read_word_span(self.heartbeat_base, q0, &mut self.batch_buf);
                for j in 0..l {
                    let qi = q0 + j;
                    let hbq = self.batch_buf[j];
                    if hbq > self.prev_heartbeat[qi] {
                        for &rank in &self.fd.containing[qi] {
                            self.timer[rank as usize] = self.timeout[rank as usize];
                        }
                        self.prev_heartbeat[qi] = hbq;
                    }
                }
                if q0 + l == n {
                    self.expire_timers();
                    if self.expired.is_empty() {
                        self.next_iteration();
                    } else {
                        self.phase = Phase::Accuse(0);
                    }
                } else {
                    self.phase = Phase::ReadHeartbeats((q0 + l) as u32);
                }
            }
            Phase::WriteHeartbeat | Phase::Accuse(_) => {
                unreachable!("step_reads in a write phase: read_run() is 0 here")
            }
        }
        Status::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, Schedule, ScheduleCursor};
    use st_sim::RunConfig;

    fn universe(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn allocation_layout() {
        let mut sim = Sim::new(universe(4));
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(2, 2));
        assert_eq!(fd.set_count(), 6); // C(4,2)
        assert_eq!(fd.subsets()[0], ProcSet::from_indices([0, 1]));
        // Registers: 4 heartbeats + 6*4 counters.
        assert_eq!(fd.steps_per_iteration(0), 6 * 4 + 1 + 4);
    }

    #[test]
    #[should_panic(expected = "requires 1 <= k <= t")]
    fn invalid_parameters_rejected() {
        let mut sim = Sim::new(universe(3));
        let _ = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(2, 1));
    }

    #[test]
    fn first_iteration_outputs_lowest_set_and_beats() {
        // With all counters zero, the winner is the rank-0 set {p0,..,p_{k-1}}.
        let mut sim = Sim::new(universe(3));
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 1));
        let fd2 = fd.clone();
        sim.spawn(ProcessId::new(0), move |ctx| async move {
            let mut local = fd2.local_state();
            fd2.iterate(&ctx, &mut local).await;
            ctx.probe("iter-done", local.iterations);
            assert_eq!(local.winnerset, ProcSet::from_indices([0]));
            assert_eq!(local.fd_output, ProcSet::from_indices([1, 2]));
        })
        .unwrap();
        // One iteration for n=3, k=1: 3*3 reads + 1 write + 3 reads + expiry writes.
        let steps = vec![0usize; 40];
        let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
        sim.run(&mut src, RunConfig::steps(40)).unwrap();
        let rep = sim.report();
        assert_eq!(
            rep.probes.last_value(ProcessId::new(0), "iter-done"),
            Some(1)
        );
        assert_eq!(fd.peek_heartbeat(&sim, ProcessId::new(0)), 1);
    }

    #[test]
    fn solo_runner_accuses_silent_sets() {
        // p0 runs alone: every set not containing p0 gets accused (its
        // timers keep expiring), so Counter[A, p0] grows for those sets.
        let mut sim = Sim::new(universe(3));
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 2));
        let fd2 = fd.clone();
        sim.spawn(ProcessId::new(0), move |ctx| fd2.run(ctx))
            .unwrap();
        let steps = vec![0usize; 4000];
        let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
        sim.run(&mut src, RunConfig::steps(4000)).unwrap();
        // Ranks: {p0}=0, {p1}=1, {p2}=2.
        let acc_p1 = fd.peek_counter(&sim, 1, ProcessId::new(0));
        let acc_p2 = fd.peek_counter(&sim, 2, ProcessId::new(0));
        let acc_p0 = fd.peek_counter(&sim, 0, ProcessId::new(0));
        assert!(acc_p1 > 0 && acc_p2 > 0, "silent sets must be accused");
        // {p0} is its own heartbeat source: its timer keeps being reset.
        // It may be accused a bounded number of times early (timer races the
        // first heartbeat observations) but far less than silent sets.
        assert!(
            acc_p0 < acc_p1 / 2,
            "live set accused almost as much: {acc_p0} vs {acc_p1}"
        );
    }

    #[test]
    fn accusation_uses_t_plus_1_smallest() {
        // Unit-check the selection rule via a crafted local state.
        let mut sim = Sim::new(universe(4));
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 2));
        let fd2 = fd.clone();
        // Pre-set counters for set rank 0 ({p0}): entries 5, 1, 3, 2 → sorted
        // 1,2,3,5 → (t+1)=3rd smallest = 3.
        let ctxs: Vec<_> = (0..4).map(|i| sim.ctx(ProcessId::new(i))).collect();
        let _ = ctxs; // counters are single-writer; write via each owner below
        for (q, v) in [(0u64, 5u64), (1, 1), (2, 3), (3, 2)] {
            let fd3 = fd.clone();
            sim.spawn(ProcessId::new(q as usize), move |ctx| async move {
                // Each process writes its own Counter[{p0}, q] entry.
                ctx.write(fd3.counter[0][q as usize], v).await;
                ctx.pause().await;
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices([0, 1, 2, 3]));
        sim.run(&mut src, RunConfig::steps(4)).unwrap();
        // Now run one FD iteration on a fresh context: spawn would conflict,
        // so compute the accusation directly from peeked counters.
        let cnt: Vec<u64> = (0..4)
            .map(|q| fd2.peek_counter(&sim, 0, ProcessId::new(q)))
            .collect();
        let mut sorted = cnt.clone();
        sorted.sort_unstable();
        assert_eq!(sorted[2], 3, "(t+1)-st smallest with t=2");
    }
}
