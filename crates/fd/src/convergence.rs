//! Convergence analysis: verifying the k-anti-Ω specification and the
//! stronger Lemma 22 stabilization on run traces.
//!
//! The *t-resilient k-anti-Ω* specification (Section 4.1): every process `p`
//! continuously outputs a set `fdOutput_p` of `n − k` processes such that,
//! if at most `t` processes are faulty, there exist a correct process `c`
//! and a time after which `c ∉ fdOutput_p` for every correct `p`.
//! Equivalently, in terms of the winnerset (`Π_n − fdOutput`): eventually
//! `c ∈ winnerset_p` forever.
//!
//! The Figure 2 algorithm guarantees more (Lemma 22): eventually every
//! correct process outputs the *same* winnerset `A0`, which contains a
//! correct process. [`winnerset_stabilization`] detects that; the
//! k-parallel-Paxos agreement layer relies on it.
//!
//! [`run_until_quiescent`] is the driving side of the analysis: it steps a
//! simulation (either FD implementation — async or the
//! [`KAntiOmegaMachine`](crate::KAntiOmegaMachine) fast path) in poll
//! intervals, watching the O(1) probe count for quiescence instead of
//! materializing a report per interval, and judges stabilization once at
//! the end.

use st_core::timeliness::{TimelinessAnalyzer, TimelyPair};
use st_core::{ProcSet, ProcessId, StepSource, Universe};
use st_sim::{RunConfig, RunReport, RunStatus, Sim};

use crate::kanti::WINNERSET_PROBE;

/// Evidence that the k-anti-Ω specification held on a finite trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KAntiOmegaWitness {
    /// A correct process eventually never output (i.e., always in the
    /// winnerset of every correct process).
    pub trusted: ProcessId,
    /// The earliest step from which the property holds through the end of
    /// the trace.
    pub from_step: u64,
}

/// Checks the t-resilient k-anti-Ω property on a trace: finds a correct
/// process `c` and a step from which every correct process's winnerset
/// contains `c` until the end of the run.
///
/// Returns the witness with the smallest `from_step` (preferring the
/// lowest-indexed process on ties), or `None` if the property failed on this
/// trace. A `None` on a *finite* trace is definitive only for runs long
/// enough that stabilization was owed; experiments pick budgets accordingly.
pub fn kanti_omega_witness(report: &RunReport, correct: ProcSet) -> Option<KAntiOmegaWitness> {
    let mut best: Option<KAntiOmegaWitness> = None;
    for c in correct.iter() {
        let mut worst_from = 0u64;
        let mut ok = true;
        for p in correct.iter() {
            let timeline = report.probes.timeline(p, WINNERSET_PROBE);
            if timeline.is_empty() {
                ok = false;
                break;
            }
            // Last point where p's winnerset did NOT contain c; the property
            // holds from the following publication (or from the start).
            let mut from = timeline[0].0;
            let mut holds_at_end = false;
            for &(step, bits) in &timeline {
                if ProcSet::from_bits(bits).contains(c) {
                    if !holds_at_end {
                        from = step;
                        holds_at_end = true;
                    }
                } else {
                    holds_at_end = false;
                }
            }
            if !holds_at_end {
                ok = false;
                break;
            }
            worst_from = worst_from.max(from);
        }
        if ok {
            let candidate = KAntiOmegaWitness {
                trusted: c,
                from_step: worst_from,
            };
            best = match best {
                Some(b) if b.from_step <= candidate.from_step => Some(b),
                _ => Some(candidate),
            };
        }
    }
    best
}

/// Evidence of Lemma 22 stabilization: a common final winnerset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stabilization {
    /// The common final winnerset `A0`.
    pub winnerset: ProcSet,
    /// Step by which every correct process had converged to it (and stayed).
    pub step: u64,
}

/// Detects whether all correct processes converged to one common winnerset
/// by the end of the trace (Lemma 22), returning the set and the
/// stabilization step.
pub fn winnerset_stabilization(report: &RunReport, correct: ProcSet) -> Option<Stabilization> {
    let mut common: Option<ProcSet> = None;
    let mut step = 0u64;
    for p in correct.iter() {
        let last = report.probes.last_value(p, WINNERSET_PROBE)?;
        let set = ProcSet::from_bits(last);
        match common {
            None => common = Some(set),
            Some(c) if c != set => return None,
            _ => {}
        }
        step = step.max(report.probes.stabilization_step(p, WINNERSET_PROBE)?);
    }
    Some(Stabilization {
        winnerset: common?,
        step,
    })
}

/// Evidence of Lemma 22 stabilization at bitset widths beyond one word: a
/// common final winnerset, identified by its **colex rank** in `Π^k_n` —
/// the encoding wide detectors publish under [`WINNERSET_PROBE`] (see the
/// probe's docs). Decode the members with
/// [`wide_unrank`](st_core::subsets::wide_unrank) at the detector's width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WideStabilization {
    /// Colex rank of the common final winnerset `A0` within `Π^k_n`.
    pub winnerset_rank: u64,
    /// Step by which every correct process had converged to it (and stayed).
    pub step: u64,
}

/// Detects whether all correct processes converged to one common winnerset
/// by the end of the trace (Lemma 22), for detectors publishing the
/// **rank-encoded** probe of the `W > 1` regime. Rank equality is set
/// equality, so no decode is needed to judge convergence; pass the correct
/// processes by id (index-based, valid at any `n`).
pub fn wide_winnerset_stabilization(
    report: &RunReport,
    correct: impl IntoIterator<Item = ProcessId>,
) -> Option<WideStabilization> {
    let mut common: Option<u64> = None;
    let mut step = 0u64;
    let mut saw_any = false;
    for p in correct {
        saw_any = true;
        let last = report.probes.last_value(p, WINNERSET_PROBE)?;
        match common {
            None => common = Some(last),
            Some(c) if c != last => return None,
            _ => {}
        }
        step = step.max(report.probes.stabilization_step(p, WINNERSET_PROBE)?);
    }
    if !saw_any {
        return None;
    }
    Some(WideStabilization {
        winnerset_rank: common?,
        step,
    })
}

/// Certifies that the run really took place in the system `S^i_{j,n}` it
/// claims, by sweeping the **executed schedule** recorded in the report
/// with the [`TimelinessAnalyzer`]: returns the first `(P, Q)` pair with
/// `|P| = i`, `|Q| = j` and empirical bound at most `bound_cap`, or `None`
/// if no such pair exists (or the run did not record its schedule — enable
/// [`Sim::with_recording`](st_sim::Sim::with_recording)).
///
/// Convergence claims about Figure 2 are conditional on membership in
/// `S^k_{t+1,n}`; checking the premise on the same trace as the conclusion
/// turns "converged on a schedule we believe is timely" into a
/// self-contained theorem instance.
pub fn certify_system_membership(
    report: &RunReport,
    universe: Universe,
    i: usize,
    j: usize,
    bound_cap: usize,
) -> Option<TimelyPair> {
    let schedule = report.executed.as_ref()?;
    TimelinessAnalyzer::new(universe).find_timely_pair(schedule, i, j, bound_cap)
}

/// Outcome of [`run_until_quiescent`]: how the drive ended plus the
/// stabilization verdict of the single report materialized at the end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuiescentRun {
    /// Status of the last `Sim::run` call.
    pub status: RunStatus,
    /// Steps executed in total (across all poll intervals).
    pub steps: u64,
    /// Lemma 22 stabilization, judged on the final trace.
    pub stabilization: Option<Stabilization>,
}

/// Drives `sim` in poll intervals until the winnerset probes go quiet, then
/// judges stabilization on **one** final report.
///
/// Every `poll_interval` steps the harness reads
/// [`Sim::probe_count`](st_sim::Sim::probe_count) — an O(1) accessor, not a
/// [`RunReport`] (which clones the full probe vector and register
/// statistics; materializing one per poll interval made polling cost
/// O(trace²) over a long run). The Figure 2 detector publishes its
/// winnerset probe **only on change**, so a flat probe count over
/// `quiet_polls` consecutive intervals means no process changed its output
/// for `quiet_polls · poll_interval` steps — the drive stops early instead
/// of burning the rest of the budget. Quiescence is a stopping heuristic,
/// not the verdict: the returned stabilization is computed from the final
/// trace by [`winnerset_stabilization`], exactly as for a full-budget run
/// over the same steps.
///
/// Runs at most `budget` steps in total; stops earlier on quiescence, on
/// source exhaustion, or when a process gets stuck.
///
/// # Panics
///
/// Panics if `poll_interval == 0` or `quiet_polls == 0`.
pub fn run_until_quiescent<S: StepSource>(
    sim: &mut Sim,
    src: &mut S,
    correct: ProcSet,
    budget: u64,
    poll_interval: u64,
    quiet_polls: u32,
) -> QuiescentRun {
    assert!(poll_interval > 0, "poll interval must be positive");
    assert!(quiet_polls > 0, "quiescence needs at least one quiet poll");
    let start = sim.steps_executed();
    let mut last_count = sim.probe_count();
    let mut quiet = 0u32;
    let mut status = RunStatus::MaxSteps;
    loop {
        let executed = sim.steps_executed() - start;
        if executed >= budget {
            break;
        }
        let chunk = poll_interval.min(budget - executed);
        status = sim
            .run(src, RunConfig::steps(chunk))
            .expect("poll schedule within universe");
        match status {
            RunStatus::MaxSteps => {}
            // Source ended, stop condition, or a stuck process: no more
            // steps will happen, judge what we have.
            _ => break,
        }
        let count = sim.probe_count();
        if count == last_count {
            quiet += 1;
            if quiet >= quiet_polls {
                break;
            }
        } else {
            last_count = count;
            quiet = 0;
        }
    }
    QuiescentRun {
        status,
        steps: sim.steps_executed() - start,
        stabilization: winnerset_stabilization(&sim.report(), correct),
    }
}

/// Counts winnerset changes published by `p` after `step` — a liveness-of-
/// instability measure for adversarial runs (a stack that keeps flapping is
/// evidence of non-convergence).
pub fn changes_after(report: &RunReport, p: ProcessId, step: u64) -> usize {
    report
        .probes
        .timeline(p, WINNERSET_PROBE)
        .iter()
        .filter(|&&(s, _)| s > step)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, Sim};

    /// Builds a report by having scripted processes publish winnerset
    /// sequences.
    fn scripted(n: usize, scripts: Vec<Vec<u64>>) -> RunReport {
        let mut sim = Sim::new(Universe::new(n).unwrap());
        for (i, script) in scripts.into_iter().enumerate() {
            sim.spawn(ProcessId::new(i), move |ctx| async move {
                for bits in script {
                    ctx.probe(WINNERSET_PROBE, bits);
                    ctx.pause().await;
                }
            })
            .unwrap();
        }
        let order: Vec<usize> = (0..200).map(|s| s % n).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(&mut src, RunConfig::steps(200)).unwrap();
        sim.report()
    }

    #[test]
    fn witness_found_on_converged_trace() {
        // Both processes end at winnerset {p0} = bits 0b01.
        let report = scripted(2, vec![vec![0b10, 0b01, 0b01], vec![0b01]]);
        let correct = ProcSet::from_indices([0, 1]);
        let w = kanti_omega_witness(&report, correct).expect("witness");
        assert_eq!(w.trusted, ProcessId::new(0));
        let stab = winnerset_stabilization(&report, correct).expect("stabilized");
        assert_eq!(stab.winnerset, ProcSet::from_indices([0]));
    }

    #[test]
    fn no_witness_when_outputs_diverge() {
        // p0 ends trusting {p0}, p1 ends trusting {p1}: no common c.
        let report = scripted(2, vec![vec![0b01], vec![0b10]]);
        let correct = ProcSet::from_indices([0, 1]);
        assert!(kanti_omega_witness(&report, correct).is_none());
        assert!(winnerset_stabilization(&report, correct).is_none());
    }

    #[test]
    fn witness_tolerates_faulty_divergence() {
        // p1 is faulty: only p0's output matters.
        let report = scripted(2, vec![vec![0b01], vec![0b10]]);
        let correct = ProcSet::from_indices([0]);
        let w = kanti_omega_witness(&report, correct).unwrap();
        assert_eq!(w.trusted, ProcessId::new(0));
    }

    #[test]
    fn witness_requires_holding_to_the_end() {
        // p0 trusts {p1} briefly, then flips away and never returns.
        let report = scripted(2, vec![vec![0b10, 0b01], vec![0b01]]);
        let correct = ProcSet::from_indices([0, 1]);
        let w = kanti_omega_witness(&report, correct).unwrap();
        // c = p0 works (both end on {p0}); c = p1 must not.
        assert_eq!(w.trusted, ProcessId::new(0));
    }

    #[test]
    fn changes_after_counts_flapping() {
        let report = scripted(1, vec![vec![1, 2, 1, 2, 1]]);
        // The first poll publishes twice at step 0 (probe, pause resolves,
        // next probe, suspend); later polls publish once per step: steps are
        // 0,0,1,2,3 — three events strictly after step 0.
        assert_eq!(changes_after(&report, ProcessId::new(0), 0), 3);
        assert_eq!(
            report
                .probes
                .timeline(ProcessId::new(0), WINNERSET_PROBE)
                .len(),
            5
        );
    }

    #[test]
    fn missing_probes_mean_no_verdict() {
        let report = scripted(2, vec![vec![0b01], vec![]]);
        let correct = ProcSet::from_indices([0, 1]);
        assert!(kanti_omega_witness(&report, correct).is_none());
        assert!(winnerset_stabilization(&report, correct).is_none());
    }

    #[test]
    fn quiescent_run_stops_early_and_matches_full_budget() {
        use crate::{KAntiOmega, KAntiOmegaConfig};
        use st_core::ScheduleCursor;

        let universe = Universe::new(3).unwrap();
        let full = ProcSet::full(universe);
        let budget = 120_000u64;
        let steps: Vec<usize> = (0..budget as usize).map(|s| s % 3).collect();

        // Full-budget reference on the machine ABI.
        let mut sim = Sim::new(universe);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 1));
        for p in universe.processes() {
            sim.spawn_automaton(p, fd.machine()).unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(steps.clone()));
        sim.run(&mut src, RunConfig::steps(budget)).unwrap();
        let reference = winnerset_stabilization(&sim.report(), full).expect("round-robin settles");

        // Quiescence-polled run over the same schedule.
        let mut sim = Sim::new(universe);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 1));
        for p in universe.processes() {
            sim.spawn_automaton(p, fd.machine()).unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
        let run = run_until_quiescent(&mut sim, &mut src, full, budget, 1_000, 8);
        assert!(
            run.steps < budget,
            "expected early stop, ran all {} steps",
            run.steps
        );
        // On a round-robin schedule the detector never flaps again after
        // settling, so the early-stopped trace judges identically.
        assert_eq!(run.stabilization, Some(reference));
    }

    #[test]
    fn quiescent_run_respects_budget_and_source_end() {
        use crate::{KAntiOmega, KAntiOmegaConfig};
        use st_core::ScheduleCursor;

        let universe = Universe::new(3).unwrap();
        let full = ProcSet::full(universe);
        // Source shorter than the budget: the drive must end with the
        // source, counting only executed steps.
        let mut sim = Sim::new(universe);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 1));
        for p in universe.processes() {
            sim.spawn_automaton(p, fd.machine()).unwrap();
        }
        let steps: Vec<usize> = (0..500).map(|s| s % 3).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
        let run = run_until_quiescent(&mut sim, &mut src, full, 10_000, 100, 50);
        assert_eq!(run.status, RunStatus::SourceEnded);
        assert_eq!(run.steps, 500);
    }
}
