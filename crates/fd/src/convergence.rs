//! Convergence analysis: verifying the k-anti-Ω specification and the
//! stronger Lemma 22 stabilization on run traces.
//!
//! The *t-resilient k-anti-Ω* specification (Section 4.1): every process `p`
//! continuously outputs a set `fdOutput_p` of `n − k` processes such that,
//! if at most `t` processes are faulty, there exist a correct process `c`
//! and a time after which `c ∉ fdOutput_p` for every correct `p`.
//! Equivalently, in terms of the winnerset (`Π_n − fdOutput`): eventually
//! `c ∈ winnerset_p` forever.
//!
//! The Figure 2 algorithm guarantees more (Lemma 22): eventually every
//! correct process outputs the *same* winnerset `A0`, which contains a
//! correct process. [`winnerset_stabilization`] detects that; the
//! k-parallel-Paxos agreement layer relies on it.

use st_core::timeliness::{TimelinessAnalyzer, TimelyPair};
use st_core::{ProcSet, ProcessId, Universe};
use st_sim::RunReport;

use crate::kanti::WINNERSET_PROBE;

/// Evidence that the k-anti-Ω specification held on a finite trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KAntiOmegaWitness {
    /// A correct process eventually never output (i.e., always in the
    /// winnerset of every correct process).
    pub trusted: ProcessId,
    /// The earliest step from which the property holds through the end of
    /// the trace.
    pub from_step: u64,
}

/// Checks the t-resilient k-anti-Ω property on a trace: finds a correct
/// process `c` and a step from which every correct process's winnerset
/// contains `c` until the end of the run.
///
/// Returns the witness with the smallest `from_step` (preferring the
/// lowest-indexed process on ties), or `None` if the property failed on this
/// trace. A `None` on a *finite* trace is definitive only for runs long
/// enough that stabilization was owed; experiments pick budgets accordingly.
pub fn kanti_omega_witness(report: &RunReport, correct: ProcSet) -> Option<KAntiOmegaWitness> {
    let mut best: Option<KAntiOmegaWitness> = None;
    for c in correct.iter() {
        let mut worst_from = 0u64;
        let mut ok = true;
        for p in correct.iter() {
            let timeline = report.probes.timeline(p, WINNERSET_PROBE);
            if timeline.is_empty() {
                ok = false;
                break;
            }
            // Last point where p's winnerset did NOT contain c; the property
            // holds from the following publication (or from the start).
            let mut from = timeline[0].0;
            let mut holds_at_end = false;
            for &(step, bits) in &timeline {
                if ProcSet::from_bits(bits).contains(c) {
                    if !holds_at_end {
                        from = step;
                        holds_at_end = true;
                    }
                } else {
                    holds_at_end = false;
                }
            }
            if !holds_at_end {
                ok = false;
                break;
            }
            worst_from = worst_from.max(from);
        }
        if ok {
            let candidate = KAntiOmegaWitness {
                trusted: c,
                from_step: worst_from,
            };
            best = match best {
                Some(b) if b.from_step <= candidate.from_step => Some(b),
                _ => Some(candidate),
            };
        }
    }
    best
}

/// Evidence of Lemma 22 stabilization: a common final winnerset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stabilization {
    /// The common final winnerset `A0`.
    pub winnerset: ProcSet,
    /// Step by which every correct process had converged to it (and stayed).
    pub step: u64,
}

/// Detects whether all correct processes converged to one common winnerset
/// by the end of the trace (Lemma 22), returning the set and the
/// stabilization step.
pub fn winnerset_stabilization(report: &RunReport, correct: ProcSet) -> Option<Stabilization> {
    let mut common: Option<ProcSet> = None;
    let mut step = 0u64;
    for p in correct.iter() {
        let last = report.probes.last_value(p, WINNERSET_PROBE)?;
        let set = ProcSet::from_bits(last);
        match common {
            None => common = Some(set),
            Some(c) if c != set => return None,
            _ => {}
        }
        step = step.max(report.probes.stabilization_step(p, WINNERSET_PROBE)?);
    }
    Some(Stabilization {
        winnerset: common?,
        step,
    })
}

/// Certifies that the run really took place in the system `S^i_{j,n}` it
/// claims, by sweeping the **executed schedule** recorded in the report
/// with the [`TimelinessAnalyzer`]: returns the first `(P, Q)` pair with
/// `|P| = i`, `|Q| = j` and empirical bound at most `bound_cap`, or `None`
/// if no such pair exists (or the run did not record its schedule — enable
/// [`Sim::with_recording`](st_sim::Sim::with_recording)).
///
/// Convergence claims about Figure 2 are conditional on membership in
/// `S^k_{t+1,n}`; checking the premise on the same trace as the conclusion
/// turns "converged on a schedule we believe is timely" into a
/// self-contained theorem instance.
pub fn certify_system_membership(
    report: &RunReport,
    universe: Universe,
    i: usize,
    j: usize,
    bound_cap: usize,
) -> Option<TimelyPair> {
    let schedule = report.executed.as_ref()?;
    TimelinessAnalyzer::new(universe).find_timely_pair(schedule, i, j, bound_cap)
}

/// Counts winnerset changes published by `p` after `step` — a liveness-of-
/// instability measure for adversarial runs (a stack that keeps flapping is
/// evidence of non-convergence).
pub fn changes_after(report: &RunReport, p: ProcessId, step: u64) -> usize {
    report
        .probes
        .timeline(p, WINNERSET_PROBE)
        .iter()
        .filter(|&&(s, _)| s > step)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, Sim};

    /// Builds a report by having scripted processes publish winnerset
    /// sequences.
    fn scripted(n: usize, scripts: Vec<Vec<u64>>) -> RunReport {
        let mut sim = Sim::new(Universe::new(n).unwrap());
        for (i, script) in scripts.into_iter().enumerate() {
            sim.spawn(ProcessId::new(i), move |ctx| async move {
                for bits in script {
                    ctx.probe(WINNERSET_PROBE, bits);
                    ctx.pause().await;
                }
            })
            .unwrap();
        }
        let order: Vec<usize> = (0..200).map(|s| s % n).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(&mut src, RunConfig::steps(200));
        sim.report()
    }

    #[test]
    fn witness_found_on_converged_trace() {
        // Both processes end at winnerset {p0} = bits 0b01.
        let report = scripted(2, vec![vec![0b10, 0b01, 0b01], vec![0b01]]);
        let correct = ProcSet::from_indices([0, 1]);
        let w = kanti_omega_witness(&report, correct).expect("witness");
        assert_eq!(w.trusted, ProcessId::new(0));
        let stab = winnerset_stabilization(&report, correct).expect("stabilized");
        assert_eq!(stab.winnerset, ProcSet::from_indices([0]));
    }

    #[test]
    fn no_witness_when_outputs_diverge() {
        // p0 ends trusting {p0}, p1 ends trusting {p1}: no common c.
        let report = scripted(2, vec![vec![0b01], vec![0b10]]);
        let correct = ProcSet::from_indices([0, 1]);
        assert!(kanti_omega_witness(&report, correct).is_none());
        assert!(winnerset_stabilization(&report, correct).is_none());
    }

    #[test]
    fn witness_tolerates_faulty_divergence() {
        // p1 is faulty: only p0's output matters.
        let report = scripted(2, vec![vec![0b01], vec![0b10]]);
        let correct = ProcSet::from_indices([0]);
        let w = kanti_omega_witness(&report, correct).unwrap();
        assert_eq!(w.trusted, ProcessId::new(0));
    }

    #[test]
    fn witness_requires_holding_to_the_end() {
        // p0 trusts {p1} briefly, then flips away and never returns.
        let report = scripted(2, vec![vec![0b10, 0b01], vec![0b01]]);
        let correct = ProcSet::from_indices([0, 1]);
        let w = kanti_omega_witness(&report, correct).unwrap();
        // c = p0 works (both end on {p0}); c = p1 must not.
        assert_eq!(w.trusted, ProcessId::new(0));
    }

    #[test]
    fn changes_after_counts_flapping() {
        let report = scripted(1, vec![vec![1, 2, 1, 2, 1]]);
        // The first poll publishes twice at step 0 (probe, pause resolves,
        // next probe, suspend); later polls publish once per step: steps are
        // 0,0,1,2,3 — three events strictly after step 0.
        assert_eq!(changes_after(&report, ProcessId::new(0), 0), 3);
        assert_eq!(
            report
                .probes
                .timeline(ProcessId::new(0), WINNERSET_PROBE)
                .len(),
            5
        );
    }

    #[test]
    fn missing_probes_mean_no_verdict() {
        let report = scripted(2, vec![vec![0b01], vec![]]);
        let correct = ProcSet::from_indices([0, 1]);
        assert!(kanti_omega_witness(&report, correct).is_none());
        assert!(winnerset_stabilization(&report, correct).is_none());
    }
}
