//! Ω as the `k = 1` special case.
//!
//! The paper notes (footnote 2) that `(n−1)`-resilient 1-anti-Ω is
//! equivalent to the classic leader oracle Ω of Chandra–Hadzilacos–Toueg:
//! the winnerset is a singleton whose (eventually stable, eventually
//! correct) member is the leader. This wrapper exposes that view.

use st_core::{ProcessId, Universe};
use st_sim::{ProcessCtx, Sim};

use crate::kanti::{KAntiOmega, KAntiOmegaConfig, KAntiOmegaLocal};
use crate::timeout::TimeoutPolicy;

/// The Ω leader oracle, implemented as 1-anti-Ω (Figure 2 with `k = 1`).
#[derive(Clone, Debug)]
pub struct Omega {
    inner: KAntiOmega,
}

/// Per-process local state of [`Omega`].
#[derive(Clone, Debug)]
pub struct OmegaLocal {
    inner: KAntiOmegaLocal,
}

impl Omega {
    /// Allocates an Ω instance tolerating `t` crashes.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ t ≤ n − 1`.
    pub fn alloc(sim: &mut Sim, t: usize) -> Self {
        Omega {
            inner: KAntiOmega::alloc(sim, KAntiOmegaConfig::new(1, t)),
        }
    }

    /// Allocates with an explicit timeout policy (ablation).
    pub fn alloc_with_policy(sim: &mut Sim, t: usize, policy: TimeoutPolicy) -> Self {
        Omega {
            inner: KAntiOmega::alloc(sim, KAntiOmegaConfig::new(1, t).with_policy(policy)),
        }
    }

    /// Creates the local state for one process.
    pub fn local_state(&self) -> OmegaLocal {
        OmegaLocal {
            inner: self.inner.local_state(),
        }
    }

    /// One oracle refresh (one Figure 2 iteration); afterwards
    /// [`OmegaLocal::leader`] reflects the current trust.
    pub async fn iterate(&self, ctx: &ProcessCtx, local: &mut OmegaLocal) {
        self.inner.iterate(ctx, &mut local.inner).await;
    }

    /// The underlying k-anti-Ω instance.
    pub fn as_kanti(&self) -> &KAntiOmega {
        &self.inner
    }

    /// The universe served by this oracle.
    pub fn universe(&self) -> Universe {
        self.inner.universe()
    }
}

impl OmegaLocal {
    /// The currently trusted leader (the winnerset's only member).
    ///
    /// # Panics
    ///
    /// Panics if called before the first [`Omega::iterate`] (the oracle has
    /// produced no output yet).
    pub fn leader(&self) -> ProcessId {
        self.inner
            .winnerset
            .min()
            .expect("leader available after first iteration")
    }

    /// Completed oracle iterations.
    pub fn iterations(&self) -> u64 {
        self.inner.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, Schedule, ScheduleCursor};
    use st_sim::RunConfig;

    #[test]
    fn omega_elects_a_stable_leader_round_robin() {
        let n = 3;
        let mut sim = Sim::new(Universe::new(n).unwrap());
        let omega = Omega::alloc(&mut sim, n - 1);
        let leaders = sim.alloc_array("leader", n, u64::MAX);
        for p in sim.universe().processes() {
            let omega = omega.clone();
            let mine = leaders[p.index()];
            sim.spawn(p, move |ctx| async move {
                let mut local = omega.local_state();
                loop {
                    omega.iterate(&ctx, &mut local).await;
                    ctx.write(mine, local.leader().index() as u64).await;
                }
            })
            .unwrap();
        }
        let order: Vec<usize> = (0..30_000).map(|s| s % n).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(&mut src, RunConfig::steps(30_000)).unwrap();
        // All processes trust the same leader at the end.
        let final_leaders: Vec<u64> = leaders.iter().map(|&r| sim.peek(r)).collect();
        assert!(final_leaders.iter().all(|&l| l == final_leaders[0]));
        assert!(final_leaders[0] < n as u64);
    }

    #[test]
    fn leader_is_correct_after_crash() {
        // p0 stops being scheduled: the eventual leader must not be p0.
        let n = 3;
        let mut sim = Sim::new(Universe::new(n).unwrap());
        let omega = Omega::alloc(&mut sim, n - 1);
        let leaders = sim.alloc_array("leader", n, u64::MAX);
        for p in sim.universe().processes() {
            let omega = omega.clone();
            let mine = leaders[p.index()];
            sim.spawn(p, move |ctx| async move {
                let mut local = omega.local_state();
                loop {
                    omega.iterate(&ctx, &mut local).await;
                    ctx.write(mine, local.leader().index() as u64).await;
                }
            })
            .unwrap();
        }
        // p0 runs briefly, then only p1 and p2 forever.
        let mut order: Vec<usize> = (0..60).map(|s| s % n).collect();
        order.extend((0..60_000).map(|s| 1 + (s % 2)));
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(&mut src, RunConfig::steps(61_000)).unwrap();
        for survivor in [1usize, 2] {
            let l = sim.peek(leaders[survivor]);
            assert_ne!(
                l, 0,
                "crashed p0 must not stay leader (p{survivor} trusts p{l})"
            );
        }
    }

    #[test]
    fn universe_roundtrip() {
        let mut sim = Sim::new(Universe::new(4).unwrap());
        let omega = Omega::alloc(&mut sim, 2);
        assert_eq!(omega.universe().n(), 4);
        assert_eq!(omega.as_kanti().set_count(), 4);
    }

    #[test]
    fn local_accessors() {
        let mut sim = Sim::new(Universe::new(2).unwrap());
        let omega = Omega::alloc(&mut sim, 1);
        let local = omega.local_state();
        assert_eq!(local.iterations(), 0);
        let _ = ProcSet::EMPTY; // keep import used
    }
}
