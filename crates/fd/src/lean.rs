//! Lean `k = 1` anti-Ω for large universes: the Figure 2 algorithm
//! specialized to singleton candidate sets, with `O(n)` local state.
//!
//! [`KAntiOmega`](crate::KAntiOmega) materializes `Π^k_n` and keeps an
//! `m·n`-word counter snapshot per process — exact for the paper's
//! combinatorial regime, but quadratic-and-worse in `n` and capped at
//! `n ≤ 64` by the [`ProcSet`](st_core::ProcSet) bitset. For `k = 1` the
//! candidate sets are exactly the singletons `{p_a}`, so the structure
//! collapses: the counter matrix is `Counter[a][q]` (accused × accuser),
//! the per-set timers are per-process timers, and the winnerset is a single
//! **leader index** — no set representation needed at all. This module is
//! that specialization, built for the `n ∈ {256, 1024}` scaling
//! experiments:
//!
//! - local state is `O(n)` (the line 3 selection folds over each row as the
//!   line 2 scan streams past it; only the process's own counter column is
//!   retained for the line 18 accusations);
//! - no [`ProcSet`](st_core::ProcSet) anywhere — processes are tracked by
//!   index, so any `n` up to
//!   [`MAX_PROCESSES`](st_core::process::MAX_PROCESSES) works;
//! - the leader is published as a plain index under [`LEADER_PROBE`]
//!   (`u64`), not as a set bitmask.
//!
//! The machine ships on the state-machine ABI only (it exists for fleet
//! drives at scales where per-step futures are the bottleneck) and
//! implements [`PhaseBatch`], so the SoA replay drive can stream its
//! line 2 scan — which is ~`n/(n+2)` of all its steps — as span reads.

use st_core::Universe;
use st_sim::{Automaton, BatchAccess, PhaseBatch, Reg, Sim, Status, StepAccess};

use crate::timeout::TimeoutPolicy;

/// Probe key under which every process publishes its current leader index
/// whenever it changes.
pub const LEADER_PROBE: &str = "leader";

/// The shared side of a lean anti-Ω instance: register handles and
/// parameters. Clone into every machine.
#[derive(Clone, Debug)]
pub struct LeanOmega {
    universe: Universe,
    /// Resilience: accusation counters take the `(t+1)`-st smallest entry.
    t: usize,
    policy: TimeoutPolicy,
    /// `Heartbeat[p]`, single-writer, contiguous from `heartbeat_base`.
    heartbeat_base: Reg<u64>,
    /// `Counter[a][q]` (accused-major), single-writer per column `q`,
    /// contiguous from `counter_base`: handle of `Counter[a·n + q]` is
    /// `counter_base + a·n + q`.
    counter_base: Reg<u64>,
}

impl LeanOmega {
    /// Allocates `n` heartbeats and the `n × n` accusation counter matrix
    /// in `sim`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ t ≤ n − 1` (the `k = 1` slice of Theorem 23's
    /// range).
    pub fn alloc(sim: &mut Sim, t: usize, policy: TimeoutPolicy) -> Self {
        let universe = sim.universe();
        let n = universe.n();
        assert!(
            (1..n).contains(&t),
            "lean anti-Ω requires 1 <= t <= n-1 (got t={t}, n={n})"
        );
        let heartbeat = sim.alloc_per_process("LeanHB", 0u64);
        let heartbeat_base = heartbeat[0];
        let mut counter_base = None;
        for a in 0..n {
            for q in universe.processes() {
                let reg = sim.alloc_sw(format!("LeanCnt[{a},{}]", q.index()), q, 0u64);
                if counter_base.is_none() {
                    counter_base = Some(reg);
                }
            }
        }
        LeanOmega {
            universe,
            t,
            policy,
            heartbeat_base,
            counter_base: counter_base.expect("n >= 2"),
        }
    }

    /// The universe this instance was allocated for.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// The resilience parameter `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Shared-memory steps of one loop iteration for a process accusing
    /// `expired` singletons: `n²` counter reads + 1 heartbeat write + `n`
    /// heartbeat reads + `expired` counter writes.
    pub fn steps_per_iteration(&self, expired: usize) -> u64 {
        let n = self.universe.n() as u64;
        n * n + 1 + n + expired as u64
    }

    /// One process's machine. Spawn with
    /// [`Sim::spawn_automaton`](st_sim::Sim::spawn_automaton) or drive a
    /// `Vec` of them as a typed fleet.
    pub fn machine(&self) -> LeanOmegaMachine {
        let n = self.universe.n();
        LeanOmegaMachine {
            fd: self.clone(),
            phase: LeanPhase::ReadCounters,
            scan_idx: 0,
            col: 0,
            row: 0,
            hb_idx: 0,
            acc_idx: 0,
            my_hb: 0,
            prev_heartbeat: vec![0; n],
            timeout: vec![1; n],
            timer: vec![1; n],
            row_scratch: vec![0; n],
            cnt_me: vec![0; n],
            best_row: 0,
            best_acc: u64::MAX,
            leader: 0,
            published: None,
            iterations: 0,
            expired: Vec::new(),
            batch_buf: Vec::new(),
        }
    }

    /// Reads `Counter[a][q]` without taking a step (instrumentation).
    pub fn peek_counter(&self, sim: &Sim, a: usize, q: usize) -> u64 {
        let n = self.universe.n();
        sim.peek_word_array(self.counter_base, a * n + q)
    }

    /// Reads `Heartbeat[q]` without taking a step (instrumentation).
    pub fn peek_heartbeat(&self, sim: &Sim, q: usize) -> u64 {
        sim.peek_word_array(self.heartbeat_base, q)
    }
}

/// Control state of [`LeanOmegaMachine`]: which Figure 2 line the next
/// scheduled step executes (progress indices live in the machine fields).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LeanPhase {
    /// Line 2: the `n²`-read counter scan (`scan_idx`/`col`/`row`).
    ReadCounters,
    /// Line 7: write the bumped heartbeat.
    WriteHeartbeat,
    /// Lines 8–13: read `Heartbeat[q]` (`hb_idx`).
    ReadHeartbeats,
    /// Lines 16–19: accusation write for `expired[acc_idx]`.
    Accuse,
}

/// The lean `k = 1` anti-Ω machine. Construct via [`LeanOmega::machine`].
pub struct LeanOmegaMachine {
    fd: LeanOmega,
    phase: LeanPhase,
    /// Flat scan position `a·n + q` within the line 2 phase.
    scan_idx: u32,
    /// `scan_idx % n`, maintained incrementally.
    col: u32,
    /// `scan_idx / n`, maintained incrementally.
    row: u32,
    hb_idx: u32,
    acc_idx: u32,
    my_hb: u64,
    prev_heartbeat: Vec<u64>,
    timeout: Vec<u64>,
    timer: Vec<u64>,
    /// The current line 2 row, folded into the accusation at the row
    /// boundary — the whole matrix is never retained.
    row_scratch: Vec<u64>,
    /// `Counter[a][me]` snapshot (the line 18 accusation base).
    cnt_me: Vec<u64>,
    /// Running argmin of `(accusation[a], a)` over the completed rows.
    best_row: u32,
    best_acc: u64,
    leader: u32,
    published: Option<u32>,
    iterations: u64,
    /// Rows whose timers expired this iteration, ascending.
    expired: Vec<u32>,
    /// Landing buffer for span reads on the batched drive.
    batch_buf: Vec<u64>,
}

impl LeanOmegaMachine {
    /// Current leader index (line 4's argmin, as an index).
    pub fn leader(&self) -> usize {
        self.leader as usize
    }

    /// Completed loop iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Ingests one line 2 counter value (the value of flat slot
    /// `scan_idx`), folding rows into the accusation argmin at row
    /// boundaries. Returns `Some(leader)` when this value closed the whole
    /// scan and the leader changed (the caller publishes the probe through
    /// its access type), and advances the phase.
    fn ingest_counter(&mut self, me: usize, value: u64) -> Option<u32> {
        let n = self.fd.universe.n();
        let c = self.col as usize;
        self.row_scratch[c] = value;
        self.scan_idx += 1;
        if c + 1 < n {
            self.col += 1;
            return None;
        }
        self.fold_row(me)
    }

    /// Folds the just-completed line 2 row out of `row_scratch` — line 3
    /// (the (t+1)-st smallest of the row) and line 4 (strict-< argmin in
    /// ascending row order realizes the lexicographic tie-break) — and
    /// advances to the next row, or, at the scan boundary, runs lines 4–6
    /// and returns `Some(leader)` if the leader changed.
    fn fold_row(&mut self, me: usize) -> Option<u32> {
        let n = self.fd.universe.n();
        let row = self.row as usize;
        self.cnt_me[row] = self.row_scratch[me];
        let (_, &mut acc, _) = self.row_scratch.select_nth_unstable(self.fd.t);
        if acc < self.best_acc {
            self.best_acc = acc;
            self.best_row = self.row;
        }
        if row + 1 < n {
            self.col = 0;
            self.row += 1;
            return None;
        }
        // Scan boundary: lines 4–6.
        self.leader = self.best_row;
        self.my_hb += 1;
        self.phase = LeanPhase::WriteHeartbeat;
        if self.published != Some(self.leader) {
            self.published = Some(self.leader);
            Some(self.leader)
        } else {
            None
        }
    }

    /// Ingests one lines 8–13 heartbeat value (of process `hb_idx`),
    /// running timer resets and — at the phase boundary — the lines 14–15
    /// expiry pass, and advances the phase.
    fn ingest_heartbeat(&mut self, hb: u64) {
        let q = self.hb_idx as usize;
        if hb > self.prev_heartbeat[q] {
            self.timer[q] = self.timeout[q];
            self.prev_heartbeat[q] = hb;
        }
        if q + 1 < self.fd.universe.n() {
            self.hb_idx += 1;
            return;
        }
        self.expired.clear();
        for a in 0..self.timer.len() {
            self.timer[a] -= 1;
            if self.timer[a] == 0 {
                self.timeout[a] = self.fd.policy.grow(self.timeout[a]);
                self.timer[a] = self.timeout[a];
                self.expired.push(a as u32);
            }
        }
        if self.expired.is_empty() {
            self.next_iteration();
        } else {
            self.acc_idx = 0;
            self.phase = LeanPhase::Accuse;
        }
    }

    /// Closes the loop iteration and re-enters line 2.
    fn next_iteration(&mut self) {
        self.iterations += 1;
        self.phase = LeanPhase::ReadCounters;
        self.scan_idx = 0;
        self.col = 0;
        self.row = 0;
        self.hb_idx = 0;
        self.best_row = 0;
        self.best_acc = u64::MAX;
    }
}

impl Automaton for LeanOmegaMachine {
    #[inline]
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        match self.phase {
            LeanPhase::ReadCounters => {
                let me = mem.pid().index();
                let value = mem.read_word_array(self.fd.counter_base, self.scan_idx as usize);
                if let Some(leader) = self.ingest_counter(me, value) {
                    mem.probe(LEADER_PROBE, leader as u64);
                }
            }
            LeanPhase::WriteHeartbeat => {
                let me = mem.pid().index();
                mem.write_word_array(self.fd.heartbeat_base, me, self.my_hb);
                self.hb_idx = 0;
                self.phase = LeanPhase::ReadHeartbeats;
            }
            LeanPhase::ReadHeartbeats => {
                let hb = mem.read_word_array(self.fd.heartbeat_base, self.hb_idx as usize);
                self.ingest_heartbeat(hb);
            }
            LeanPhase::Accuse => {
                // Line 18: accuse from the line 2 snapshot of the own
                // column.
                let me = mem.pid().index();
                let n = self.fd.universe.n();
                let a = self.expired[self.acc_idx as usize] as usize;
                mem.write_word_array(self.fd.counter_base, a * n + me, self.cnt_me[a] + 1);
                if self.acc_idx as usize + 1 == self.expired.len() {
                    self.next_iteration();
                } else {
                    self.acc_idx += 1;
                }
            }
        }
        Status::Running
    }
}

impl PhaseBatch for LeanOmegaMachine {
    #[inline]
    fn phase_class(&self) -> u8 {
        match self.phase {
            LeanPhase::ReadCounters => 0,
            LeanPhase::WriteHeartbeat => 1,
            LeanPhase::ReadHeartbeats => 2,
            LeanPhase::Accuse => 3,
        }
    }

    #[inline]
    fn read_run(&self) -> usize {
        let n = self.fd.universe.n();
        match self.phase {
            LeanPhase::ReadCounters => n * n - self.scan_idx as usize,
            LeanPhase::ReadHeartbeats => n - self.hb_idx as usize,
            LeanPhase::WriteHeartbeat | LeanPhase::Accuse => 0,
        }
    }

    fn step_reads(&mut self, mem: &mut BatchAccess<'_>) -> Status {
        let l = mem.remaining();
        if l == 0 {
            return Status::Running;
        }
        let me = mem.pid().index();
        match self.phase {
            LeanPhase::ReadCounters => {
                // Span reads land row segment by row segment directly in
                // `row_scratch` — no intermediate buffer, no per-value
                // column bookkeeping; the fold consumes the row in place.
                // `read_run` caps the allotment at the scan boundary, so
                // the phase cannot turn over mid-batch.
                let n = self.fd.universe.n();
                let mut remaining = l;
                while remaining > 0 {
                    debug_assert!(matches!(self.phase, LeanPhase::ReadCounters));
                    let c = self.col as usize;
                    let seg = remaining.min(n - c);
                    let (base, at) = (self.fd.counter_base, self.scan_idx as usize);
                    mem.read_word_span(base, at, &mut self.row_scratch[c..c + seg]);
                    self.scan_idx += seg as u32;
                    remaining -= seg;
                    if c + seg < n {
                        self.col = (c + seg) as u32;
                    } else if let Some(leader) = self.fold_row(me) {
                        mem.probe(LEADER_PROBE, leader as u64);
                    }
                }
            }
            LeanPhase::ReadHeartbeats => {
                self.batch_buf.resize(l, 0);
                let mut buf = std::mem::take(&mut self.batch_buf);
                mem.read_word_span(self.fd.heartbeat_base, self.hb_idx as usize, &mut buf);
                for &hb in &buf {
                    self.ingest_heartbeat(hb);
                }
                self.batch_buf = buf;
            }
            LeanPhase::WriteHeartbeat | LeanPhase::Accuse => {
                unreachable!("step_reads in a write phase: read_run() is 0 here")
            }
        }
        Status::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, Sim};

    fn round_robin(n: usize, steps: usize) -> Vec<usize> {
        (0..steps).map(|s| s % n).collect()
    }

    #[test]
    fn all_alive_converges_to_lowest_index() {
        let n = 5;
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let fd = LeanOmega::alloc(&mut sim, 1, TimeoutPolicy::Increment);
        let mut fleet: Vec<LeanOmegaMachine> = (0..n).map(|_| fd.machine()).collect();
        let schedule = Schedule::from_indices(round_robin(n, 40_000));
        let mut src = ScheduleCursor::new(schedule);
        sim.run_automata(&mut fleet, &mut src, RunConfig::steps(40_000))
            .unwrap();
        for m in &fleet {
            assert_eq!(m.leader(), 0, "synchronous run must elect p0");
            assert!(m.iterations() > 0);
        }
    }

    #[test]
    fn crashed_lowest_process_is_deposed() {
        // p0 never scheduled: rows accusing p0 grow at >= t+1 columns, so
        // the argmin moves off row 0.
        let n = 4;
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let fd = LeanOmega::alloc(&mut sim, 1, TimeoutPolicy::Increment);
        let mut fleet: Vec<LeanOmegaMachine> = (0..n).map(|_| fd.machine()).collect();
        let steps: Vec<usize> = (0..120_000).map(|s| 1 + (s % (n - 1))).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
        sim.run_automata(&mut fleet, &mut src, RunConfig::steps(120_000))
            .unwrap();
        for m in fleet.iter().skip(1) {
            assert_ne!(m.leader(), 0, "crashed p0 must be deposed");
        }
        assert!(
            fd.peek_counter(&sim, 0, 1) > 0,
            "p1 must have accused {{p0}}"
        );
    }

    #[test]
    fn leader_probe_published_on_change() {
        let n = 3;
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let fd = LeanOmega::alloc(&mut sim, 1, TimeoutPolicy::Increment);
        let mut fleet: Vec<LeanOmegaMachine> = (0..n).map(|_| fd.machine()).collect();
        let schedule = Schedule::from_indices(round_robin(n, 10_000));
        sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(10_000))
            .unwrap();
        let rep = sim.report();
        assert_eq!(
            rep.probes
                .last_value(st_core::ProcessId::new(0), LEADER_PROBE),
            Some(0)
        );
    }

    #[test]
    fn step_cost_formula() {
        let u = Universe::new(4).unwrap();
        let mut sim = Sim::new(u);
        let fd = LeanOmega::alloc(&mut sim, 2, TimeoutPolicy::Increment);
        assert_eq!(fd.steps_per_iteration(0), 16 + 1 + 4);
        assert_eq!(fd.steps_per_iteration(3), 16 + 1 + 4 + 3);
    }

    #[test]
    #[should_panic(expected = "requires 1 <= t <= n-1")]
    fn invalid_t_rejected() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let _ = LeanOmega::alloc(&mut sim, 3, TimeoutPolicy::Increment);
    }
}
