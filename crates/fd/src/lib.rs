//! Failure detectors: the paper's Figure 2 algorithm and its analysis.
//!
//! - [`KAntiOmega`] — the t-resilient k-anti-Ω algorithm of Figure 2,
//!   transcribed line-by-line: heartbeats, per-set timers over `Π^k_n`,
//!   shared accusation counters `Counter[A, q]`, winnerset selection by
//!   minimal `(accusation, A)`.
//! - [`KAntiOmegaMachine`] — the same algorithm as an explicit state
//!   machine on the simulator's non-async fast path
//!   ([`st_sim::Automaton`]); observationally identical to the async
//!   transcription (enforced by `tests/differential.rs`) and what the
//!   convergence experiments run.
//! - [`Omega`] — the `k = 1` special case: the classic leader oracle
//!   (footnote 2 of the paper).
//! - [`ProcessTimelyDetector`] — the *process*-timeliness baseline the
//!   paper improves on (accuses individuals instead of sets); it flaps
//!   forever on schedules where only sets are timely (experiment E8).
//! - [`LeanOmega`] / [`LeanOmegaMachine`] — the `k = 1` specialization
//!   with `O(n)` local state and no set representation, for the large-`n`
//!   (`n > 64`) scaling experiments where `Π^k_n` and
//!   [`ProcSet`](st_core::ProcSet) are out of reach.
//! - [`TimeoutPolicy`] — the paper's increment-by-one rule plus a doubling
//!   ablation.
//! - [`convergence`] — trace analyses: the k-anti-Ω specification
//!   ([`convergence::kanti_omega_witness`]) and the stronger Lemma 22
//!   common-winnerset stabilization
//!   ([`convergence::winnerset_stabilization`]) that the agreement layer
//!   builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
pub mod convergence;
mod kanti;
mod lean;
mod omega;
mod timeout;

pub use baseline::{ProcessTimelyDetector, ProcessTimelyLocal, BASELINE_WINNERSET_PROBE};
pub use kanti::{
    KAntiOmega, KAntiOmegaConfig, KAntiOmegaLocal, KAntiOmegaMachine, WINNERSET_PROBE,
};
pub use lean::{LeanOmega, LeanOmegaMachine, LEADER_PROBE};
pub use omega::{Omega, OmegaLocal};
pub use timeout::TimeoutPolicy;
