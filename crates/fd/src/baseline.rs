//! The process-timeliness baseline detector — what the paper improves on.
//!
//! Prior partially synchronous models (the paper's Section 1 and related
//! work [3]) build failure detectors on the timeliness of *individual*
//! processes. This module implements that approach with exactly the
//! Figure 2 machinery, but specialized to singletons: per-process timers,
//! per-process accusation counters `Counter[q, p]`, and a winnerset formed
//! of the `k` *individually* least-accused processes.
//!
//! The comparison is the paper's motivation, made measurable (experiment
//! E8): on schedules where a set is timely but none of its members is
//! (e.g. [`AlternatingRotation`](../../st_sched/struct.AlternatingRotation.html)),
//! every singleton's accusation counter grows forever, so this baseline
//! flaps forever — while the set-based Figure 2 algorithm stabilizes.

use st_core::{ProcSet, ProcessId, Universe};
use st_sim::{ProcessCtx, Reg, Sim};

use crate::timeout::TimeoutPolicy;

/// Probe key under which the baseline publishes its winnerset (as
/// `ProcSet::bits`) whenever it changes.
pub const BASELINE_WINNERSET_PROBE: &str = "pt-winnerset";

/// The per-process-timeliness detector: Figure 2 specialized to singleton
/// candidate sets, with the winnerset formed of the `k` least-accused
/// processes. Clone into every process.
#[derive(Clone, Debug)]
pub struct ProcessTimelyDetector {
    k: usize,
    t: usize,
    policy: TimeoutPolicy,
    universe: Universe,
    /// `Heartbeat[p]`, single-writer.
    heartbeat: Vec<Reg<u64>>,
    /// `Counter[q][p]`: `p`'s accusations of process `q`; written by `p`.
    counter: Vec<Vec<Reg<u64>>>,
}

impl ProcessTimelyDetector {
    /// Allocates the detector's registers.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ t ≤ n − 1`.
    pub fn alloc(sim: &mut Sim, k: usize, t: usize, policy: TimeoutPolicy) -> Self {
        let universe = sim.universe();
        let n = universe.n();
        assert!(
            k >= 1 && k <= t && t < n,
            "requires 1 <= k <= t <= n-1 (got k={k}, t={t}, n={n})"
        );
        let heartbeat = sim.alloc_per_process("pt.Heartbeat", 0u64);
        let counter = universe
            .processes()
            .map(|q| {
                universe
                    .processes()
                    .map(|p| sim.alloc_sw(format!("pt.Counter[{q},{p}]"), p, 0u64))
                    .collect()
            })
            .collect();
        ProcessTimelyDetector {
            k,
            t,
            policy,
            universe,
            heartbeat,
            counter,
        }
    }

    /// Creates the local state for one process.
    pub fn local_state(&self) -> ProcessTimelyLocal {
        let n = self.universe.n();
        ProcessTimelyLocal {
            my_hb: 0,
            prev_heartbeat: vec![0; n],
            timeout: vec![1; n],
            timer: vec![1; n],
            cnt: vec![vec![0; n]; n],
            accusation: vec![0; n],
            winnerset: ProcSet::EMPTY,
            published: None,
            iterations: 0,
        }
    }

    /// One loop iteration: read all counters, accuse by `(t+1)`-st-smallest,
    /// pick the `k` least-accused processes, heartbeat, check heartbeats,
    /// expire per-process timers.
    pub async fn iterate(&self, ctx: &ProcessCtx, local: &mut ProcessTimelyLocal) {
        let me = ctx.pid().index();
        let n = self.universe.n();

        for q in 0..n {
            for p in 0..n {
                local.cnt[q][p] = ctx.read(self.counter[q][p]).await;
            }
        }
        let mut scratch = vec![0u64; n];
        for q in 0..n {
            scratch.copy_from_slice(&local.cnt[q]);
            scratch.sort_unstable();
            local.accusation[q] = scratch[self.t];
        }
        // Winnerset: k smallest (accusation, q) pairs.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&q| (local.accusation[q], q));
        local.winnerset = order[..self.k].iter().map(|&q| ProcessId::new(q)).collect();
        if local.published != Some(local.winnerset) {
            ctx.probe_set(BASELINE_WINNERSET_PROBE, local.winnerset);
            local.published = Some(local.winnerset);
        }

        local.my_hb += 1;
        ctx.write(self.heartbeat[me], local.my_hb).await;

        for q in 0..n {
            let hbq = ctx.read(self.heartbeat[q]).await;
            if hbq > local.prev_heartbeat[q] {
                local.timer[q] = local.timeout[q];
                local.prev_heartbeat[q] = hbq;
            }
        }

        for q in 0..n {
            local.timer[q] -= 1;
            if local.timer[q] == 0 {
                local.timeout[q] = self.policy.grow(local.timeout[q]);
                local.timer[q] = local.timeout[q];
                ctx.write(self.counter[q][me], local.cnt[q][me] + 1).await;
            }
        }
        local.iterations += 1;
    }

    /// The standalone automaton: iterate forever.
    pub async fn run(self, ctx: ProcessCtx) {
        let mut local = self.local_state();
        loop {
            self.iterate(&ctx, &mut local).await;
        }
    }

    /// Shared-memory steps per iteration with `expired` accusations:
    /// `n²` counter reads + 1 heartbeat write + `n` heartbeat reads +
    /// `expired` counter writes.
    pub fn steps_per_iteration(&self, expired: usize) -> u64 {
        let n = self.universe.n() as u64;
        n * n + 1 + n + expired as u64
    }
}

/// Per-process local state of [`ProcessTimelyDetector`].
#[derive(Clone, Debug)]
pub struct ProcessTimelyLocal {
    my_hb: u64,
    prev_heartbeat: Vec<u64>,
    timeout: Vec<u64>,
    timer: Vec<u64>,
    cnt: Vec<Vec<u64>>,
    accusation: Vec<u64>,
    /// The k individually-least-accused processes.
    pub winnerset: ProcSet,
    published: Option<ProcSet>,
    /// Completed loop iterations.
    pub iterations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, StepSource};
    use st_sched::{RoundRobin, SeededRandom, SetTimely};
    use st_sim::RunConfig;

    fn run_baseline<S: StepSource>(
        n: usize,
        k: usize,
        t: usize,
        src: &mut S,
        budget: u64,
    ) -> st_sim::RunReport {
        let universe = Universe::new(n).unwrap();
        let mut sim = Sim::new(universe);
        let fd = ProcessTimelyDetector::alloc(&mut sim, k, t, TimeoutPolicy::Increment);
        for p in universe.processes() {
            let fd = fd.clone();
            sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
        }
        sim.run(src, RunConfig::steps(budget)).unwrap();
        sim.report()
    }

    fn stabilization(report: &st_sim::RunReport, n: usize) -> Option<(ProcSet, u64)> {
        let correct = ProcSet::full(Universe::new(n).unwrap());
        let mut common: Option<ProcSet> = None;
        let mut step = 0;
        for p in correct.iter() {
            let last = report.probes.last_value(p, BASELINE_WINNERSET_PROBE)?;
            let set = ProcSet::from_bits(last);
            match common {
                None => common = Some(set),
                Some(c) if c != set => return None,
                _ => {}
            }
            step = step.max(
                report
                    .probes
                    .stabilization_step(p, BASELINE_WINNERSET_PROBE)?,
            );
        }
        common.map(|c| (c, step))
    }

    #[test]
    fn stabilizes_under_round_robin() {
        let mut src = RoundRobin::new(Universe::new(4).unwrap());
        let report = run_baseline(4, 2, 2, &mut src, 300_000);
        let (ws, _) = stabilization(&report, 4).expect("round robin is process-timely");
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn stabilizes_when_an_individual_is_timely() {
        let u = Universe::new(4).unwrap();
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([0, 1, 2]);
        let mut src = SetTimely::new(p, q, 4, SeededRandom::new(u, 5));
        let report = run_baseline(4, 1, 2, &mut src, 600_000);
        let (ws, _) = stabilization(&report, 4).expect("p0 is individually timely");
        assert!(ws.contains(ProcessId::new(0)));
    }

    #[test]
    fn flaps_when_only_sets_are_timely() {
        // The E8 workload: groups {p0,p1}, {p2,p3} are timely, nobody
        // individually is. The baseline must keep flapping late in the run.
        let groups = [ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])];
        let mut src = st_sched::AlternatingRotation::new(&groups);
        let budget = 600_000u64;
        let report = run_baseline(4, 2, 2, &mut src, budget);
        let late_changes: usize = (0..4)
            .map(|i| {
                report
                    .probes
                    .timeline(ProcessId::new(i), BASELINE_WINNERSET_PROBE)
                    .iter()
                    .filter(|&&(s, _)| s > budget * 3 / 4)
                    .count()
            })
            .sum();
        assert!(
            late_changes > 0,
            "baseline unexpectedly stabilized on a set-timely-only schedule"
        );
    }

    #[test]
    fn step_cost_formula() {
        let mut sim = Sim::new(Universe::new(3).unwrap());
        let fd = ProcessTimelyDetector::alloc(&mut sim, 1, 1, TimeoutPolicy::Increment);
        assert_eq!(fd.steps_per_iteration(0), 9 + 1 + 3);
    }

    #[test]
    #[should_panic(expected = "requires 1 <= k <= t")]
    fn invalid_parameters_rejected() {
        let mut sim = Sim::new(Universe::new(3).unwrap());
        let _ = ProcessTimelyDetector::alloc(&mut sim, 2, 1, TimeoutPolicy::Increment);
    }
}
