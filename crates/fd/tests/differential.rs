//! Differential tests: the async k-anti-Ω transcription against the
//! [`KAntiOmegaMachine`] state machine, on identical schedules.
//!
//! The state-machine port is only admissible as "the same algorithm" if it
//! is **observationally identical** step-for-step: the same winnerset probe
//! sequence at the same step indices, the same decisions, the same register
//! writes in the same order (checked through per-register read/write counts
//! and final register contents), and the same per-process operation counts.
//! This suite enforces that on the three schedule families the experiments
//! use: round-robin, seeded-random, and the Figure 1 starvation schedule.

use st_core::{ProcessId, Schedule, ScheduleCursor, StepSource, Universe};
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy};
use st_sched::{Figure1, SeededRandom};
use st_sim::{RunConfig, RunReport, Sim};

/// How the detector is executed: the async transcription, the state machine
/// in a dyn slot, or the typed fleet on the replay drive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Async,
    MachineSlot,
    FleetReplay,
}

/// Runs one detector per process over `schedule` in the chosen mode and
/// returns the report plus the final heartbeat/counter register contents.
fn run_kanti(
    n: usize,
    config: KAntiOmegaConfig,
    schedule: &Schedule,
    mode: Mode,
) -> (RunReport, Vec<u64>) {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::with_recording(universe, true);
    let fd = KAntiOmega::alloc(&mut sim, config);
    let budget = schedule.len() as u64;
    match mode {
        Mode::Async => {
            for p in universe.processes() {
                let fd = fd.clone();
                sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
            }
            let mut src = ScheduleCursor::new(schedule.clone());
            sim.run(&mut src, RunConfig::steps(budget)).unwrap();
        }
        Mode::MachineSlot => {
            for p in universe.processes() {
                sim.spawn_automaton(p, fd.machine()).unwrap();
            }
            let mut src = ScheduleCursor::new(schedule.clone());
            sim.run(&mut src, RunConfig::steps(budget)).unwrap();
        }
        Mode::FleetReplay => {
            let mut fleet: Vec<_> = universe.processes().map(|_| fd.machine()).collect();
            sim.run_automata_replay(&mut fleet, schedule, RunConfig::steps(budget))
                .unwrap();
        }
    }

    let mut registers = Vec::new();
    for p in universe.processes() {
        registers.push(fd.peek_heartbeat(&sim, p));
    }
    for rank in 0..fd.set_count() {
        for q in universe.processes() {
            registers.push(fd.peek_counter(&sim, rank, q));
        }
    }
    (sim.report(), registers)
}

/// Asserts full observational equality of every execution mode on one
/// workload, taking the async transcription as the reference.
fn assert_identical(n: usize, k: usize, t: usize, schedule: Schedule, label: &str) {
    for policy in [TimeoutPolicy::Increment, TimeoutPolicy::Double] {
        let config = KAntiOmegaConfig::new(k, t).with_policy(policy);
        let (async_rep, async_regs) = run_kanti(n, config, &schedule, Mode::Async);
        for mode in [Mode::MachineSlot, Mode::FleetReplay] {
            let (machine_rep, machine_regs) = run_kanti(n, config, &schedule, mode);

            assert_eq!(
                async_rep.steps, machine_rep.steps,
                "{label}/{policy:?}/{mode:?}: step counts diverged"
            );
            // The winnerset probe sequence is the detector's observable
            // output: step-for-step identity, including publication step
            // indices.
            assert_eq!(
                async_rep.probes.events(),
                machine_rep.probes.events(),
                "{label}/{policy:?}/{mode:?}: probe sequences diverged"
            );
            assert_eq!(
                async_rep.decisions, machine_rep.decisions,
                "{label}/{policy:?}/{mode:?}: decisions diverged"
            );
            assert_eq!(
                async_rep.op_counts, machine_rep.op_counts,
                "{label}/{policy:?}/{mode:?}: per-process op counts diverged"
            );
            // Same registers, same read/write counts per register, same
            // final contents: the shared-memory footprints are
            // indistinguishable.
            assert_eq!(
                async_rep.register_stats, machine_rep.register_stats,
                "{label}/{policy:?}/{mode:?}: register access statistics diverged"
            );
            assert_eq!(
                async_regs, machine_regs,
                "{label}/{policy:?}/{mode:?}: final register contents diverged"
            );
            assert_eq!(
                async_rep.executed, machine_rep.executed,
                "{label}/{policy:?}/{mode:?}: executed schedules diverged"
            );
        }
    }
}

fn round_robin(n: usize, len: usize) -> Schedule {
    Schedule::from_indices((0..len).map(|s| s % n))
}

#[test]
fn round_robin_schedules_are_identical() {
    assert_identical(3, 1, 1, round_robin(3, 30_000), "rr n=3 k=1 t=1");
    assert_identical(4, 2, 2, round_robin(4, 40_000), "rr n=4 k=2 t=2");
    assert_identical(5, 2, 3, round_robin(5, 50_000), "rr n=5 k=2 t=3");
}

#[test]
fn seeded_random_schedules_are_identical() {
    for seed in [1u64, 0xDEAD, 0xFEED_5EED] {
        let u = Universe::new(4).unwrap();
        let s = SeededRandom::new(u, seed).take_schedule(40_000);
        assert_identical(4, 1, 2, s.clone(), "rnd k=1 t=2");
        assert_identical(4, 2, 3, s, "rnd k=2 t=3");
    }
}

#[test]
fn figure1_schedule_is_identical() {
    // The Figure 1 schedule starves each of p0, p1 for unboundedly long
    // stretches — the detector's timers expire heavily, exercising the
    // accusation-write phase on both ABIs.
    let s =
        Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)).take_schedule(30_000);
    assert_identical(3, 1, 1, s.clone(), "fig1 k=1 t=1");
    assert_identical(3, 1, 2, s, "fig1 k=1 t=2");
}

#[test]
fn unrecorded_fast_loops_match_recorded_runs() {
    // `run_automata_replay` with recording on (as `assert_identical` uses)
    // falls back to the cursor-driven general loop, so this test is the
    // one that drives the schedule-slice fast loop itself: recording off,
    // no stop condition. The observable trace must not change.
    let n = 4;
    let u = Universe::new(n).unwrap();
    let schedules = [
        ("rr", round_robin(n, 20_000)),
        ("rnd", SeededRandom::new(u, 0xFA57).take_schedule(20_000)),
    ];
    for (label, schedule) in &schedules {
        for policy in [TimeoutPolicy::Increment, TimeoutPolicy::Double] {
            let config = KAntiOmegaConfig::new(2, 2).with_policy(policy);
            let run = |machine: bool| {
                let universe = Universe::new(n).unwrap();
                let mut sim = Sim::new(universe);
                let fd = KAntiOmega::alloc(&mut sim, config);
                if machine {
                    let mut fleet: Vec<_> = universe.processes().map(|_| fd.machine()).collect();
                    sim.run_automata_replay(
                        &mut fleet,
                        schedule,
                        RunConfig::steps(schedule.len() as u64),
                    )
                    .unwrap();
                } else {
                    for p in universe.processes() {
                        let fd = fd.clone();
                        sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
                    }
                    let mut src = ScheduleCursor::new(schedule.clone());
                    sim.run(&mut src, RunConfig::steps(schedule.len() as u64))
                        .unwrap();
                }
                let mut registers = Vec::new();
                for p in universe.processes() {
                    registers.push(fd.peek_heartbeat(&sim, p));
                }
                for rank in 0..fd.set_count() {
                    for q in universe.processes() {
                        registers.push(fd.peek_counter(&sim, rank, q));
                    }
                }
                (sim.report(), registers)
            };
            let (async_rep, async_regs) = run(false);
            let (fleet_rep, fleet_regs) = run(true);
            assert_eq!(
                async_rep.probes.events(),
                fleet_rep.probes.events(),
                "{label}/{policy:?}: probe sequences diverged on the fast loop"
            );
            assert_eq!(async_rep.steps, fleet_rep.steps, "{label}/{policy:?}");
            assert_eq!(
                async_rep.decisions, fleet_rep.decisions,
                "{label}/{policy:?}"
            );
            assert_eq!(
                async_rep.op_counts, fleet_rep.op_counts,
                "{label}/{policy:?}"
            );
            assert_eq!(
                async_rep.register_stats, fleet_rep.register_stats,
                "{label}/{policy:?}"
            );
            assert_eq!(async_regs, fleet_regs, "{label}/{policy:?}");
        }
    }
}

#[test]
fn crash_mid_iteration_keeps_survivors_identical() {
    // Stop scheduling p1 mid-run (the model's crash): the surviving
    // processes' observable behavior must stay identical across ABIs.
    let n = 3;
    let mut steps: Vec<usize> = (0..10_000).map(|s| s % n).collect();
    steps.extend((0..20_000).map(|s| s % (n - 1)));
    assert_identical(3, 1, 2, Schedule::from_indices(steps), "crash n=3");
}
