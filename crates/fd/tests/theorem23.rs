//! End-to-end tests of Theorem 23: the Figure 2 algorithm implements
//! t-resilient k-anti-Ω in system `S^k_{t+1,n}` — and visibly fails to
//! converge outside it.

use st_core::{ProcSet, ProcessId, StepSource, Universe};
use st_fd::convergence::{certify_system_membership, kanti_omega_witness, winnerset_stabilization};
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy};
use st_sched::{CrashAfter, CrashPlan, RotatingStarvation, SeededRandom, SetTimely};
use st_sim::{RunConfig, RunReport, Sim};

/// Runs Figure 2 on all processes under the given source; returns the report.
fn run_fd<S: StepSource>(
    n: usize,
    config: KAntiOmegaConfig,
    src: &mut S,
    budget: u64,
) -> RunReport {
    let universe = Universe::new(n).unwrap();
    // Record the executed schedule so system membership can be certified on
    // the same trace the convergence claims are made about.
    let mut sim = Sim::with_recording(universe, true);
    let fd = KAntiOmega::alloc(&mut sim, config);
    for p in universe.processes() {
        let fd = fd.clone();
        sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
    }
    sim.run(src, RunConfig::steps(budget)).unwrap();
    sim.report()
}

/// Theorem 23, fault-free: on a set-timely schedule every correct process
/// converges to one common winnerset containing a correct process
/// (Lemma 22), hence the k-anti-Ω property holds.
#[test]
fn converges_in_matching_system_fault_free() {
    for (n, k, t) in [(3, 1, 1), (3, 1, 2), (4, 2, 2), (4, 1, 3), (5, 2, 3)] {
        let universe = Universe::new(n).unwrap();
        // Timely pair: P = {p0..p_{k-1}} wrt Q = {p0..p_t} with bound 2(t+1).
        let p: ProcSet = (0..k).map(ProcessId::new).collect();
        let q: ProcSet = (0..=t).map(ProcessId::new).collect();
        let mut src = SetTimely::new(p, q, 2 * (t + 1), SeededRandom::new(universe, 7));
        let report = run_fd(n, KAntiOmegaConfig::new(k, t), &mut src, 400_000);
        let correct = ProcSet::full(universe);

        // Premise first: the executed schedule really is in S^k_{t+1,n}.
        let membership = certify_system_membership(&report, universe, k, t + 1, 2 * (t + 1))
            .unwrap_or_else(|| panic!("schedule not in S^{k}_{{{},{n}}}", t + 1));
        assert_eq!(membership.p.len(), k);
        assert_eq!(membership.q.len(), t + 1);

        let stab = winnerset_stabilization(&report, correct)
            .unwrap_or_else(|| panic!("no stabilization for n={n} k={k} t={t}"));
        assert_eq!(stab.winnerset.len(), k);
        assert!(
            !stab.winnerset.intersection(correct).is_empty(),
            "winnerset must contain a correct process"
        );
        let witness = kanti_omega_witness(&report, correct).expect("k-anti-Ω property");
        assert!(stab.winnerset.contains(witness.trusted));
    }
}

/// Theorem 23 with crashes: t processes crash; the common winnerset still
/// contains a correct process (Lemma 20).
#[test]
fn converges_with_t_crashes() {
    for (n, k, t, seed) in [(4, 1, 2, 1u64), (5, 2, 2, 2), (5, 1, 3, 3)] {
        let universe = Universe::new(n).unwrap();
        // P must stay live: crash the top-t processes, keep {p0..p_{k-1}}.
        let p: ProcSet = (0..k).map(ProcessId::new).collect();
        let q: ProcSet = (0..=t).map(ProcessId::new).collect();
        let crashed: ProcSet = ((n - t)..n).map(ProcessId::new).collect();
        assert!(p.is_disjoint(crashed));
        let plan = CrashPlan::all_at(crashed, 3_000);
        let filler = CrashAfter::new(SeededRandom::new(universe, seed), plan.clone());
        let mut src = SetTimely::new(p, q, 2 * (t + 1), filler).with_crashes(plan);
        let report = run_fd(n, KAntiOmegaConfig::new(k, t), &mut src, 600_000);
        let correct = crashed.complement(universe);

        let stab = winnerset_stabilization(&report, correct)
            .unwrap_or_else(|| panic!("no stabilization for n={n} k={k} t={t}"));
        assert!(
            !stab.winnerset.intersection(correct).is_empty(),
            "n={n} k={k} t={t}: winnerset {} has no correct member (correct = {})",
            stab.winnerset,
            correct
        );
        assert!(kanti_omega_witness(&report, correct).is_some());
    }
}

/// Fully crashed candidate sets are eventually excluded (Lemma 17): if the
/// initial winner {p0} crashes, the FD moves off it.
#[test]
fn moves_off_crashed_winner() {
    let n = 3;
    let universe = Universe::new(n).unwrap();
    let crashed = ProcSet::from_indices([0]);
    let p = ProcSet::from_indices([1]);
    let q = ProcSet::from_indices([1, 2]);
    let plan = CrashPlan::all_at(crashed, 2_000);
    let filler = CrashAfter::new(SeededRandom::new(universe, 9), plan.clone());
    let mut src = SetTimely::new(p, q, 4, filler).with_crashes(plan);
    let report = run_fd(n, KAntiOmegaConfig::new(1, 1), &mut src, 400_000);
    let correct = ProcSet::from_indices([1, 2]);
    let stab = winnerset_stabilization(&report, correct).expect("stabilizes");
    assert!(
        !stab.winnerset.contains(ProcessId::new(0)),
        "crashed p0 must leave the winnerset, got {}",
        stab.winnerset
    );
}

/// Outside `S^k_{t+1,n}`: under rotating starvation of every size-k set the
/// detector keeps flapping — no common winnerset in the same budget that
/// suffices amply above.
#[test]
fn keeps_flapping_under_rotating_starvation() {
    let n = 4;
    let k = 1;
    let t = 1;
    let universe = Universe::new(n).unwrap();
    let mut src = RotatingStarvation::new(universe, k);
    let report = run_fd(n, KAntiOmegaConfig::new(k, t), &mut src, 400_000);
    let correct = ProcSet::full(universe);
    // Either no common final winnerset, or late flapping is still visible:
    // some process changed its output in the last quarter of the run.
    let stab = winnerset_stabilization(&report, correct);
    let late_changes: usize = correct
        .iter()
        .map(|p| st_fd::convergence::changes_after(&report, p, 300_000))
        .sum();
    assert!(
        stab.is_none() || late_changes > 0,
        "unexpected convergence under starvation: {stab:?}, late_changes={late_changes}"
    );
}

/// The doubling ablation converges too (faster in iterations, same
/// destination).
#[test]
fn doubling_policy_also_converges() {
    let n = 4;
    let (k, t) = (1, 2);
    let universe = Universe::new(n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([0, 1, 2]);
    for policy in [TimeoutPolicy::Increment, TimeoutPolicy::Double] {
        let mut src = SetTimely::new(p, q, 6, SeededRandom::new(universe, 21));
        let report = run_fd(
            n,
            KAntiOmegaConfig::new(k, t).with_policy(policy),
            &mut src,
            400_000,
        );
        let stab = winnerset_stabilization(&report, ProcSet::full(universe));
        assert!(stab.is_some(), "policy {policy:?} failed to converge");
    }
}
