//! Differential tests for the width-generic detector: `KAntiOmega<W>` at
//! `W = 2` against the classic `W = 1` instance on identical schedules, and
//! the paper's Figure 2 machinery actually converging beyond the 64-process
//! wall.
//!
//! On shared ground (`n ≤ 64`) the two widths must be observationally
//! identical: same steps, same register traffic, same final register
//! contents, and probe sequences that decode to the same winnersets at the
//! same step indices (the payload *encoding* differs by design — bits at
//! `W = 1`, colex rank at `W > 1`; see [`st_fd::WINNERSET_PROBE`]).

use st_core::subsets::wide_unrank;
use st_core::{ProcSet, Schedule, StepSource, Universe};
use st_fd::convergence::wide_winnerset_stabilization;
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy, WINNERSET_PROBE};
use st_sched::SeededRandom;
use st_sim::{RunConfig, RunReport, Sim};

fn round_robin(n: usize, len: usize) -> Schedule {
    Schedule::from_indices((0..len).map(|s| s % n))
}

/// Runs a machine fleet of width `W` on the replay drive and returns the
/// report plus the final heartbeat/counter register contents and the final
/// per-process winnersets (as sorted member indices).
fn run_wide<const W: usize>(
    n: usize,
    config: KAntiOmegaConfig,
    schedule: &Schedule,
) -> (RunReport, Vec<u64>, Vec<Vec<usize>>) {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::<W>::alloc_wide(&mut sim, config);
    let mut fleet: Vec<_> = universe.processes().map(|_| fd.machine()).collect();
    sim.run_automata_replay(
        &mut fleet,
        schedule,
        RunConfig::steps(schedule.len() as u64),
    )
    .unwrap();
    let mut registers = Vec::new();
    for p in universe.processes() {
        registers.push(fd.peek_heartbeat(&sim, p));
    }
    for rank in 0..fd.set_count() {
        for q in universe.processes() {
            registers.push(fd.peek_counter(&sim, rank, q));
        }
    }
    let winnersets = fleet
        .iter()
        .map(|m| m.winnerset().iter().map(|p| p.index()).collect())
        .collect();
    (sim.report(), registers, winnersets)
}

/// W = 2 must replay W = 1 exactly, modulo the documented probe encoding.
fn assert_widths_identical(n: usize, k: usize, t: usize, schedule: Schedule, label: &str) {
    let universe = Universe::new(n).unwrap();
    for policy in [TimeoutPolicy::Increment, TimeoutPolicy::Double] {
        let config = KAntiOmegaConfig::new(k, t).with_policy(policy);
        let (rep1, regs1, ws1) = run_wide::<1>(n, config, &schedule);
        let (rep2, regs2, ws2) = run_wide::<2>(n, config, &schedule);

        assert_eq!(rep1.steps, rep2.steps, "{label}/{policy:?}: steps");
        assert_eq!(
            rep1.op_counts, rep2.op_counts,
            "{label}/{policy:?}: op counts"
        );
        assert_eq!(
            rep1.register_stats, rep2.register_stats,
            "{label}/{policy:?}: register access statistics"
        );
        assert_eq!(regs1, regs2, "{label}/{policy:?}: final register contents");
        assert_eq!(ws1, ws2, "{label}/{policy:?}: final winnersets");

        // Probe sequences: same (step, pid, key) skeleton; payloads decode
        // to the same set (bits at W = 1, colex rank at W = 2).
        let e1 = rep1.probes.events();
        let e2 = rep2.probes.events();
        assert_eq!(e1.len(), e2.len(), "{label}/{policy:?}: probe counts");
        for (a, b) in e1.iter().zip(e2.iter()) {
            assert_eq!(
                (a.step, a.pid, a.key),
                (b.step, b.pid, b.key),
                "{label}/{policy:?}: probe skeleton diverged"
            );
            assert_eq!(a.key, WINNERSET_PROBE);
            let narrow: Vec<usize> = ProcSet::from_bits(a.value)
                .iter()
                .map(|p| p.index())
                .collect();
            let wide: Vec<usize> = wide_unrank::<2>(universe, k, b.value)
                .iter()
                .map(|p| p.index())
                .collect();
            assert_eq!(
                narrow, wide,
                "{label}/{policy:?}: probe payloads decode to different sets"
            );
        }
    }
}

#[test]
fn w2_replays_w1_on_round_robin() {
    assert_widths_identical(3, 1, 1, round_robin(3, 30_000), "rr n=3 k=1 t=1");
    assert_widths_identical(5, 2, 3, round_robin(5, 50_000), "rr n=5 k=2 t=3");
}

#[test]
fn w2_replays_w1_on_seeded_random() {
    for seed in [1u64, 0xDEAD] {
        let u = Universe::new(4).unwrap();
        let s = SeededRandom::new(u, seed).take_schedule(40_000);
        assert_widths_identical(4, 1, 2, s.clone(), "rnd k=1 t=2");
        assert_widths_identical(4, 2, 3, s, "rnd k=2 t=3");
    }
}

#[test]
fn wide_detector_converges_beyond_64() {
    // The paper's detector past the ProcSet wall: n = 66 needs W = 2. On a
    // round-robin (synchronous) schedule the winnersets must stabilize to
    // one common singleton (k = 1), published in the rank encoding.
    let n = 66;
    let universe = Universe::new(n).unwrap();
    let config = KAntiOmegaConfig::new(1, 4);
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::<2>::alloc_wide(&mut sim, config);
    let mut fleet: Vec<_> = universe.processes().map(|_| fd.machine()).collect();
    // ~4 full rotations of one-iteration bursts: enough for the increment
    // policy to settle on round-robin.
    let iteration = fd.steps_per_iteration(0);
    let budget = 4 * n as u64 * iteration;
    let schedule = round_robin(n, budget as usize);
    sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(budget))
        .unwrap();

    let report = sim.report();
    let stab = wide_winnerset_stabilization(&report, universe.processes())
        .expect("round-robin at n=66 must stabilize");
    let winner = wide_unrank::<2>(universe, 1, stab.winnerset_rank);
    assert_eq!(winner.len(), 1, "k = 1 winnerset is a singleton");
    // Every machine's final local winnerset agrees with the published rank.
    for m in &fleet {
        assert_eq!(m.winnerset(), winner);
        assert_eq!(m.fd_output(), winner.complement(universe));
    }
    // The last probe of each process is the rank itself (wide encoding).
    for p in universe.processes() {
        assert_eq!(
            report.probes.last_value(p, WINNERSET_PROBE),
            Some(stab.winnerset_rank)
        );
    }
}
