//! Property tests for the Figure 2 algorithm: structural invariants that
//! must hold in **every** run, conforming or adversarial.

use proptest::prelude::*;
use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy, WINNERSET_PROBE};
use st_sim::{RunConfig, Sim};

prop_compose! {
    fn arb_schedule(n: usize)(steps in prop::collection::vec(0..n, 200..4_000)) -> Schedule {
        Schedule::from_indices(steps)
    }
}

fn run_fd(
    n: usize,
    k: usize,
    t: usize,
    policy: TimeoutPolicy,
    sched: Schedule,
) -> (Sim, KAntiOmega) {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t).with_policy(policy));
    for p in universe.processes() {
        let fd = fd.clone();
        sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
    }
    let len = sched.len() as u64;
    let mut src = ScheduleCursor::new(sched);
    sim.run(&mut src, RunConfig::steps(len)).unwrap();
    (sim, fd)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every published winnerset has exactly k members, all within Π_n —
    /// hence every fdOutput has exactly n − k members (line 5).
    #[test]
    fn winnersets_always_have_size_k(
        sched in arb_schedule(4),
        k in 1usize..=3,
        policy_double in any::<bool>(),
    ) {
        let n = 4;
        let t = 3;
        prop_assume!(k <= t);
        let policy = if policy_double { TimeoutPolicy::Double } else { TimeoutPolicy::Increment };
        let (sim, _fd) = run_fd(n, k, t, policy, sched);
        let report = sim.report();
        let full = ProcSet::full(Universe::new(n).unwrap());
        for p in (0..n).map(ProcessId::new) {
            for (_, bits) in report.probes.timeline(p, WINNERSET_PROBE) {
                let ws = ProcSet::from_bits(bits);
                prop_assert_eq!(ws.len(), k);
                prop_assert!(ws.is_subset(full));
            }
        }
    }

    /// Heartbeats are monotone and counters never decrease (Lemma 10), in
    /// any run.
    #[test]
    fn counters_are_monotone(sched in arb_schedule(3), k in 1usize..=2) {
        let n = 3;
        let t = 2;
        let universe = Universe::new(n).unwrap();
        let mut sim = Sim::new(universe);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
        for p in universe.processes() {
            let fd = fd.clone();
            sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
        }
        let mut src = ScheduleCursor::new(sched.clone());
        let mut prev_counters: Vec<Vec<u64>> = Vec::new();
        let mut prev_hb: Vec<u64> = vec![0; n];
        // Drive in chunks, checking monotonicity at each checkpoint.
        for _ in 0..8 {
            sim.run(&mut src, RunConfig::steps(sched.len() as u64 / 8)).unwrap();
            let counters: Vec<Vec<u64>> = (0..fd.set_count())
                .map(|rank| {
                    (0..n)
                        .map(|q| fd.peek_counter(&sim, rank, ProcessId::new(q)))
                        .collect()
                })
                .collect();
            if !prev_counters.is_empty() {
                for (rank, row) in counters.iter().enumerate() {
                    for (q, &v) in row.iter().enumerate() {
                        prop_assert!(v >= prev_counters[rank][q], "counter regressed");
                    }
                }
            }
            for (q, prev) in prev_hb.iter_mut().enumerate() {
                let hb = fd.peek_heartbeat(&sim, ProcessId::new(q));
                prop_assert!(hb >= *prev, "heartbeat regressed");
                *prev = hb;
            }
            prev_counters = counters;
        }
    }

    /// A process that never runs never writes: its heartbeat stays 0 and
    /// its counter column stays 0 (write discipline, Lemma 12 premise).
    #[test]
    fn silent_process_stays_silent(raw in prop::collection::vec(0..2usize, 500..2_000)) {
        // Only p0 and p1 ever scheduled; p2 silent.
        let sched = Schedule::from_indices(raw);
        let (sim, fd) = run_fd(3, 1, 2, TimeoutPolicy::Increment, sched);
        prop_assert_eq!(fd.peek_heartbeat(&sim, ProcessId::new(2)), 0);
        for rank in 0..fd.set_count() {
            prop_assert_eq!(fd.peek_counter(&sim, rank, ProcessId::new(2)), 0);
        }
    }

    /// Step accounting matches the published cost model: a full iteration
    /// with e expirations costs steps_per_iteration(e).
    #[test]
    fn iteration_cost_model(k in 1usize..=2) {
        let n = 3;
        let universe = Universe::new(n).unwrap();
        let mut sim = Sim::new(universe);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, 2));
        let fd2 = fd.clone();
        sim.spawn(ProcessId::new(0), move |ctx| async move {
            let mut local = fd2.local_state();
            fd2.iterate(&ctx, &mut local).await;
            ctx.probe("done", 1);
            loop { ctx.pause().await; }
        }).unwrap();
        // Run p0 solo until the iteration completes.
        let mut steps = 0u64;
        while sim.report().probes.last_value(ProcessId::new(0), "done").is_none() {
            sim.step_with(ProcessId::new(0));
            steps += 1;
            prop_assert!(steps < 10_000, "iteration never completed");
        }
        // First iteration: every set timer expires (timer=1 → 0), so
        // e = C(n,k) expirations... except sets containing p0, whose timer
        // was reset by p0's own heartbeat in the same iteration.
        let m = fd.set_count() as u64;
        let n_u = n as u64;
        let min_cost = fd.steps_per_iteration(0);
        let max_cost = fd.steps_per_iteration(m as usize);
        prop_assert!(steps >= min_cost && steps <= max_cost,
            "cost {steps} outside [{min_cost}, {max_cost}] (m={m}, n={n_u})");
    }
}
