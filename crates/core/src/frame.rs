//! Length-prefixed canonical-JSON frames: the wire unit of the `st-serve`
//! protocol (see `PROTOCOL.md` at the workspace root).
//!
//! A frame is a 4-byte **big-endian** unsigned length followed by exactly
//! that many bytes of UTF-8 [`Json`] text. The payload is always written
//! with [`Json::to_string`], so a frame's bytes are canonical: equal values
//! produce equal frames, and re-framing a parsed payload reproduces the
//! sender's bytes — the same property the outcome store leans on, carried
//! onto the socket.
//!
//! The codec is transport-agnostic: it reads from any [`Read`] and writes
//! to any [`Write`], so unit tests run it over in-memory buffers and the
//! daemon runs it over `TcpStream`s unchanged. Oversized lengths are
//! refused *before* allocation ([`MAX_FRAME_BYTES`]), a clean EOF before
//! the first length byte is the typed [`FrameError::Closed`] (a peer
//! hanging up between requests is not an error worth a stack trace), and
//! every other failure carries its cause.

use std::fmt;
use std::io::{Read, Write};

use crate::json::{Json, JsonError};

/// Hard cap on a frame's payload size (64 MiB). Large campaign stores fit
/// comfortably; a hostile or corrupt length prefix cannot convince the
/// reader to allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// A typed frame codec failure.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly before a frame started.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The declared payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// An I/O failure (includes truncation mid-frame).
    Io(std::io::Error),
    /// The payload is not UTF-8.
    Utf8(std::str::Utf8Error),
    /// The payload is not canonical JSON.
    Json(JsonError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed before a frame"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Utf8(e) => write!(f, "frame payload is not UTF-8: {e}"),
            FrameError::Json(e) => write!(f, "frame payload is not canonical JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes `payload` as one frame and flushes the writer.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> Result<(), FrameError> {
    let text = payload.to_string();
    let len = text.len();
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame and parses its payload.
///
/// A clean EOF *before any length byte* is [`FrameError::Closed`]; EOF
/// mid-prefix or mid-payload is a truncation and surfaces as
/// [`FrameError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Json, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Err(FrameError::Closed),
            0 => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid length prefix",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload).map_err(FrameError::Utf8)?;
    Json::parse(text).map_err(FrameError::Json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::obj([
            ("verb", Json::str("status")),
            ("ranks", Json::arr([Json::U64(0), Json::U64(7)])),
            ("ok", Json::Bool(true)),
        ])
    }

    #[test]
    fn round_trips_a_document() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc()).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, doc());
    }

    #[test]
    fn frames_are_canonical_bytes() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_frame(&mut a, &doc()).unwrap();
        let reparsed = read_frame(&mut a.as_slice()).unwrap();
        write_frame(&mut b, &reparsed).unwrap();
        assert_eq!(a, b, "re-framing a parsed payload reproduces the bytes");
    }

    #[test]
    fn consecutive_frames_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::U64(1)).unwrap();
        write_frame(&mut buf, &Json::str("two")).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Json::U64(1));
        assert_eq!(read_frame(&mut r).unwrap(), Json::str("two"));
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_length_prefix_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_payload_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn truncation_mid_prefix_is_an_io_error() {
        let buf = [0u8, 0u8];
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn non_json_payload_is_a_typed_error() {
        let mut buf = Vec::new();
        let body = b"{nope";
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Json(_))
        ));
    }

    #[test]
    fn non_utf8_payload_is_a_typed_error() {
        let mut buf = Vec::new();
        let body = [0xFFu8, 0xFE];
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(&body);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Utf8(_))
        ));
    }
}
