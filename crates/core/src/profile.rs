//! Synchrony profiles: the full `(i, j)` landscape of a schedule.
//!
//! For every pair of sizes `1 ≤ i ≤ j ≤ n`, the *profile* records the best
//! (smallest) empirical timeliness bound achieved by any pair `(P, Q)` with
//! `|P| = i`, `|Q| = j` — i.e., how good a witness the schedule can offer
//! for membership in `S^i_{j,n}`. The profile summarizes, in one matrix,
//! which systems of the family a schedule (prefix) belongs to and how
//! comfortably, and is the analysis behind the per-generator certificates
//! used in the experiments.

use std::fmt;

use crate::process::Universe;
use crate::procset::ProcSet;
use crate::schedule::Schedule;
use crate::subsets::KSubsets;
use crate::timeliness::TimelyPair;

/// The synchrony profile of a finite schedule.
#[derive(Clone, Debug)]
pub struct SynchronyProfile {
    n: usize,
    /// `best[i-1][j-i]`: the best pair for sizes `(i, j)`, if its bound is
    /// within the cap used at construction.
    best: Vec<Vec<Option<TimelyPair>>>,
    cap: usize,
}

impl SynchronyProfile {
    /// Analyzes `schedule`, capping the searched bound at `bound_cap`
    /// (pairs needing larger bounds are reported as `None`).
    ///
    /// Complexity is `Σ_{i≤j} C(n,i)·C(n,j)` bound computations; intended
    /// for `n ≤ 8` and the prefix lengths used in experiments.
    ///
    /// # Panics
    ///
    /// Panics if `bound_cap == 0`.
    pub fn analyze(schedule: &Schedule, universe: Universe, bound_cap: usize) -> Self {
        assert!(bound_cap > 0, "bound cap must be positive");
        let n = universe.n();
        let mut best: Vec<Vec<Option<TimelyPair>>> =
            (1..=n).map(|i| vec![None; n - i + 1]).collect();
        for i in 1..=n {
            for p in KSubsets::new(universe, i) {
                // Per-process counts of maximal P-free runs, pruned to runs
                // long enough to matter.
                let runs = p_free_runs(schedule, p, universe);
                for j in i..=n {
                    let slot = &mut best[i - 1][j - i];
                    for q in KSubsets::new(universe, j) {
                        let mut worst = 0usize;
                        for run in &runs {
                            let q_steps: usize = q.iter().map(|x| run[x.index()]).sum();
                            worst = worst.max(q_steps);
                        }
                        let bound = worst + 1;
                        if bound <= bound_cap && slot.is_none_or(|b: TimelyPair| bound < b.bound) {
                            *slot = Some(TimelyPair { p, q, bound });
                        }
                    }
                }
            }
        }
        SynchronyProfile {
            n,
            best,
            cap: bound_cap,
        }
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cap used during analysis.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The best witness for sizes `(i, j)`, if any within the cap.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ j ≤ n`.
    pub fn witness(&self, i: usize, j: usize) -> Option<TimelyPair> {
        assert!(1 <= i && i <= j && j <= self.n, "need 1 <= i <= j <= n");
        self.best[i - 1][j - i]
    }

    /// The best bound for sizes `(i, j)` (`None` if above the cap).
    pub fn bound(&self, i: usize, j: usize) -> Option<usize> {
        self.witness(i, j).map(|w| w.bound)
    }

    /// Whether the schedule offers a witness for membership in `S^i_{j,n}`
    /// within the cap.
    pub fn supports(&self, i: usize, j: usize) -> bool {
        self.witness(i, j).is_some()
    }

    /// The *frontier*: for each `j`, the smallest `i` with a witness — the
    /// strongest system claims this prefix supports.
    pub fn frontier(&self) -> Vec<(usize, usize)> {
        (1..=self.n)
            .filter_map(|j| (1..=j).find(|&i| self.supports(i, j)).map(|i| (i, j)))
            .collect()
    }
}

fn p_free_runs(schedule: &Schedule, p: ProcSet, universe: Universe) -> Vec<Vec<usize>> {
    let n = universe.n();
    let mut runs = Vec::new();
    let mut current = vec![0usize; n];
    let mut nonzero = false;
    for step in schedule.iter() {
        if p.contains(step) {
            if nonzero {
                runs.push(std::mem::replace(&mut current, vec![0usize; n]));
                nonzero = false;
            }
        } else if step.index() < n {
            current[step.index()] += 1;
            nonzero = true;
        }
    }
    if nonzero {
        runs.push(current);
    }
    runs
}

impl fmt::Display for SynchronyProfile {
    /// Renders as a lower-triangular matrix of bounds (rows `i`, columns
    /// `j`; `·` above the cap).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i\\j ")?;
        for j in 1..=self.n {
            write!(f, "{j:>6}")?;
        }
        writeln!(f)?;
        for i in 1..=self.n {
            write!(f, "{i:>3} ")?;
            for j in 1..=self.n {
                if j < i {
                    write!(f, "{:>6}", "")?;
                } else {
                    match self.bound(i, j) {
                        Some(b) => write!(f, "{b:>6}")?,
                        None => write!(f, "{:>6}", "·")?,
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn round_robin_profile_is_fully_supported() {
        let s = Schedule::from_indices((0..300).map(|i| i % 3));
        let prof = SynchronyProfile::analyze(&s, u(3), 4);
        for i in 1..=3 {
            for j in i..=3 {
                assert!(prof.supports(i, j), "({i},{j}) must be supported");
            }
        }
        // Round robin: a singleton is timely wrt Π_3 with bound 3.
        assert_eq!(prof.bound(1, 3), Some(3));
        // Diagonal is always bound 1 (self-timeliness).
        for i in 1..=3 {
            assert_eq!(prof.bound(i, i), Some(1));
        }
    }

    #[test]
    fn figure1_profile_shows_the_set_gap() {
        // Figure 1 prefix: {p0,p1} timely wrt {p2}, singletons not.
        let mut idx = Vec::new();
        for e in 1..=40usize {
            for _ in 0..e {
                idx.extend([0, 2]);
            }
            for _ in 0..e {
                idx.extend([1, 2]);
            }
        }
        let s = Schedule::from_indices(idx);
        let prof = SynchronyProfile::analyze(&s, u(3), 5);
        // i = 2, j = 3: {p0,p1} wrt everything — supported with small bound.
        assert!(prof.supports(2, 3), "{prof}");
        // i = 1, j = 3: no singleton is timely wrt Π_3 within cap 5…
        // (p2 is timely wrt {p2} but the bound wrt sets containing the
        // starved singletons grows). p2 appears every other step though, so
        // {p2} IS timely wrt Π_3 with bound 3. The gap shows at (1, j)
        // restricted to the *flapping* processes; the profile reports the
        // best pair, so check the full matrix stays consistent instead:
        assert!(prof.bound(2, 3).unwrap() <= prof.bound(1, 3).map_or(usize::MAX, |b| b));
    }

    #[test]
    fn starved_schedule_has_unsupported_cells() {
        // p0 once, then p1 solo: {p0} cannot witness anything with Q ∋ p1
        // within a small cap; the only size-1 witnesses involve p1 or Q={p0}.
        let mut idx = vec![0usize];
        idx.extend(std::iter::repeat_n(1, 400));
        let s = Schedule::from_indices(idx);
        let prof = SynchronyProfile::analyze(&s, u(2), 3);
        // (1,2): {p1} wrt {p0,p1}: p0 steps once before any p1 step — the
        // p1-free prefix has 1 step of Q. Bound 2 ≤ cap. Supported.
        assert!(prof.supports(1, 2));
        let w = prof.witness(1, 2).unwrap();
        assert_eq!(w.p, ProcSet::from_indices([1]));
    }

    #[test]
    fn frontier_is_monotone() {
        let s = Schedule::from_indices((0..400).map(|i| (i * 7 + i / 13) % 5));
        let prof = SynchronyProfile::analyze(&s, u(5), 10);
        let frontier = prof.frontier();
        // For each j the frontier i is defined and ≤ j.
        for &(i, j) in &frontier {
            assert!(i <= j);
            assert!(prof.supports(i, j));
            if i > 1 {
                assert!(!prof.supports(i - 1, j));
            }
        }
    }

    #[test]
    fn display_renders_matrix() {
        let s = Schedule::from_indices([0, 1, 0, 1]);
        let prof = SynchronyProfile::analyze(&s, u(2), 3);
        let text = prof.to_string();
        assert!(text.contains("i\\j"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn profile_agrees_with_direct_bounds() {
        use crate::timeliness::empirical_bound;
        let s = Schedule::from_indices((0..600).map(|i| (i * 11 + i / 7) % 4));
        let prof = SynchronyProfile::analyze(&s, u(4), 8);
        for i in 1..=4 {
            for j in i..=4 {
                if let Some(w) = prof.witness(i, j) {
                    assert_eq!(empirical_bound(&s, w.p, w.q), w.bound, "({i},{j})");
                }
            }
        }
    }
}
