//! Shared worker-pool machinery: worker-count resolution and deterministic
//! work-stealing over rank ranges.
//!
//! Two independent engines need the same two ingredients — the timeliness
//! matrix sweep ([`crate::timeliness::sweep_matrix`]) and the scenario
//! campaign engine (`st-campaign`):
//!
//! 1. **Worker resolution** ([`resolve_workers`]): turn a caller's thread
//!    request into a concrete worker count, with `usize::MAX` meaning "one
//!    per hardware thread".
//! 2. **Deterministic stealing** ([`steal_chunks`]): split a `0..total` rank
//!    space into fixed-size chunks handed out by a shared atomic counter, so
//!    a worker that drew cheap items loops back for more while a slow worker
//!    is still grinding. Results come back **sorted by first rank**, so any
//!    merge that folds them in that order reproduces the sequential
//!    enumeration exactly — the output is identical for every worker count,
//!    including oversubscribed ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Resolves the caller's thread request: `usize::MAX` means "one worker per
/// hardware thread"; any other value is honored as given (oversubscribing
/// the hardware is allowed — it is how the stealing machinery is exercised
/// on small hosts), bounded only by a sanity cap.
pub fn resolve_workers(threads: usize) -> usize {
    if threads == usize::MAX {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads.clamp(1, 64)
    }
}

/// Runs `run_chunk` over the rank space `0..total` in chunks of `chunk`
/// ranks, stolen off a shared atomic counter by `workers` OS threads, and
/// returns the per-chunk results **sorted by the chunk's first rank**.
///
/// `init` builds one per-worker scratch state (an analyzer, a simulator
/// pool, `()` if none is needed); `run_chunk(state, first, last)` processes
/// the half-open rank interval `[first, last)`.
///
/// Chunks are disjoint intervals covering `0..total`, so folding the
/// returned parts in order is exactly the sequential left-to-right fold —
/// deterministic in `workers`, which only affects wall-clock. With
/// `workers <= 1` (or nothing to do) no thread is spawned: the chunks run
/// inline, in order, on one scratch state.
///
/// # Panics
///
/// Panics if `chunk == 0`, or if a worker thread panics.
pub fn steal_chunks<W, T, FInit, FChunk>(
    total: u64,
    workers: usize,
    chunk: u64,
    init: FInit,
    run_chunk: FChunk,
) -> Vec<(u64, T)>
where
    T: Send,
    FInit: Fn() -> W + Sync,
    FChunk: Fn(&mut W, u64, u64) -> T + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if total == 0 {
        return Vec::new();
    }
    let n_chunks = total.div_ceil(chunk);
    let workers = workers.clamp(1, n_chunks.min(usize::MAX as u64) as usize);
    if workers == 1 {
        let mut state = init();
        let mut parts = Vec::with_capacity(n_chunks as usize);
        let mut first = 0u64;
        while first < total {
            let last = (first + chunk).min(total);
            parts.push((first, run_chunk(&mut state, first, last)));
            first = last;
        }
        return parts;
    }
    let next_rank = AtomicU64::new(0);
    let parts: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(n_chunks as usize));
    std::thread::scope(|scope| {
        let (next_rank, parts, init, run_chunk) = (&next_rank, &parts, &init, &run_chunk);
        for _ in 0..workers {
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let first = next_rank.fetch_add(chunk, Ordering::Relaxed);
                    if first >= total {
                        break;
                    }
                    let last = (first + chunk).min(total);
                    let out = run_chunk(&mut state, first, last);
                    parts.lock().expect("worker panicked").push((first, out));
                }
            });
        }
    });
    let mut parts = parts.into_inner().expect("worker panicked");
    parts.sort_unstable_by_key(|&(first, _)| first);
    parts
}

/// The steal granularity [`crate::timeliness::sweep_matrix`] uses: several
/// grabs per worker so the tail imbalance is one chunk rather than one
/// static share, floored so the shared counter is not contended for trivial
/// work items.
pub fn sweep_chunk_size(total: u64, workers: usize) -> u64 {
    (total / (workers as u64 * 8)).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honors_explicit_counts() {
        assert_eq!(resolve_workers(1), 1);
        assert_eq!(resolve_workers(7), 7);
        assert_eq!(resolve_workers(0), 1);
        assert_eq!(resolve_workers(1000), 64);
        assert!(resolve_workers(usize::MAX) >= 1);
    }

    #[test]
    fn chunks_cover_and_sort() {
        for workers in [1usize, 2, 5, 16] {
            let parts = steal_chunks(103, workers, 10, || 0u64, |_, first, last| (first, last));
            let firsts: Vec<u64> = parts.iter().map(|&(f, _)| f).collect();
            assert_eq!(firsts, (0..11).map(|c| c * 10).collect::<Vec<_>>());
            assert!(parts
                .iter()
                .all(|&(f, (a, b))| a == f && b == (f + 10).min(103)));
        }
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let run = |workers| {
            steal_chunks(
                1000,
                workers,
                7,
                || (),
                |_, first, last| (first..last).map(|r| r * r % 97).sum::<u64>(),
            )
        };
        let seq = run(1);
        for workers in [2usize, 4, 33] {
            assert_eq!(run(workers), seq, "workers = {workers}");
        }
    }

    #[test]
    fn empty_total_yields_nothing() {
        let parts = steal_chunks(0, 4, 16, || (), |_, _, _| 0u8);
        assert!(parts.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        let _ = steal_chunks(10, 2, 0, || (), |_, _, _| ());
    }
}
