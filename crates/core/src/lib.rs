//! Model layer for *Partial Synchrony Based on Set Timeliness*
//! (Aguilera, Delporte-Gallet, Fauconnier, Toueg — PODC 2009).
//!
//! This crate holds the paper's conceptual core, independent of any
//! simulator:
//!
//! - processes and process sets ([`ProcessId`], [`ProcSet`], [`Universe`]);
//! - enumeration of `Π^k_n` ([`subsets`]);
//! - finite [`Schedule`]s and the **set timeliness** analyzer
//!   ([`timeliness`], Definition 1);
//! - the partially synchronous system family `S^i_{j,n}` ([`SystemSpec`],
//!   Section 2.2) with Observations 4–5;
//! - the `(t,k,n)`-agreement task and outcome checkers ([`AgreementTask`],
//!   Section 3);
//! - the main characterization, Theorem 27, as the executable
//!   [`solvability()`] predicate.
//!
//! # Example: the Figure 1 phenomenon
//!
//! A set can be timely even when none of its members is:
//!
//! ```
//! use st_core::{Schedule, ProcSet, timeliness::empirical_bound};
//!
//! // Prefix of [(p0·q)^i (p1·q)^i] with q = p2 and growing i.
//! let mut steps = Vec::new();
//! for i in 1..=6usize {
//!     for _ in 0..i { steps.extend([0, 2]); }
//!     for _ in 0..i { steps.extend([1, 2]); }
//! }
//! let s = Schedule::from_indices(steps);
//!
//! let p0 = ProcSet::from_indices([0]);
//! let p1 = ProcSet::from_indices([1]);
//! let pair = ProcSet::from_indices([0, 1]);
//! let q = ProcSet::from_indices([2]);
//!
//! // Individually, the bound grows with the prefix (not timely in the limit)…
//! assert!(empirical_bound(&s, p0, q) >= 6);
//! assert!(empirical_bound(&s, p1, q) >= 6);
//! // …but as a set the two are timely with bound 2.
//! assert_eq!(empirical_bound(&s, pair, q), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreementspec;
pub mod error;
pub mod frame;
pub mod json;
pub mod parallel;
pub mod process;
pub mod procset;
pub mod profile;
pub mod schedule;
pub mod solvability;
pub mod stepsource;
pub mod subsets;
pub mod system;
pub mod timeliness;

pub use agreementspec::{
    check_outcome, AgreementOutcome, AgreementTask, AgreementViolation, Value,
};
pub use error::ModelError;
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use json::{Json, JsonError};
pub use process::{ProcessId, Universe, MAX_PROCESSES, PROCSET_CAPACITY};
pub use procset::{words_for, ProcSet, WideProcSet};
pub use profile::SynchronyProfile;
pub use schedule::Schedule;
pub use solvability::{matching_system, solvability, Solvability, UnsolvableReason};
pub use stepsource::{ScheduleCursor, StepSource};
pub use system::SystemSpec;
pub use timeliness::TimelyPair;
