//! Systems and the partially synchronous family `S^i_{j,n}` (Section 2.2).
//!
//! A system is a set of allowed schedules. `S^i_{j,n}` is the system of `n`
//! processes whose schedules each contain at least one set of `i` processes
//! that is timely with respect to at least one set of `j` processes.
//! `S^i_{i,n}` is the fully asynchronous system (Observation 5), and
//! containment is monotone: smaller `i` and larger `j` give smaller (more
//! synchronous) systems (Observation 4).

use std::fmt;

use crate::error::ModelError;
use crate::process::Universe;
use crate::schedule::Schedule;
use crate::timeliness::{find_timely_pair, TimelyPair};

/// Descriptor of the partially synchronous system `S^i_{j,n}`.
///
/// # Examples
///
/// ```
/// use st_core::SystemSpec;
///
/// let s = SystemSpec::new(2, 4, 6).unwrap();
/// assert_eq!(s.to_string(), "S^2_{4,6}");
/// assert!(!s.is_asynchronous());
/// assert!(SystemSpec::new(3, 3, 6).unwrap().is_asynchronous());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SystemSpec {
    i: usize,
    j: usize,
    n: usize,
}

impl SystemSpec {
    /// Creates `S^i_{j,n}`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSystem`] unless `1 ≤ i ≤ j ≤ n` (the
    /// constraint under which the family is defined in Section 2.2).
    pub fn new(i: usize, j: usize, n: usize) -> Result<Self, ModelError> {
        if !(1 <= i && i <= j && j <= n) {
            return Err(ModelError::InvalidSystem { i, j, n });
        }
        Ok(SystemSpec { i, j, n })
    }

    /// The asynchronous system of `n` processes, `S_n = S^n_{n,n}`
    /// (any `S^i_{i,n}` works; we use `i = n`).
    pub fn asynchronous(n: usize) -> Result<Self, ModelError> {
        SystemSpec::new(n, n, n)
    }

    /// Size `i` of the timely set.
    pub fn i(&self) -> usize {
        self.i
    }

    /// Size `j` of the observed set.
    pub fn j(&self) -> usize {
        self.j
    }

    /// Number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The process universe `Π_n`.
    pub fn universe(&self) -> Universe {
        Universe::new(self.n).expect("validated at construction")
    }

    /// Observation 5: `S^i_{i,n}` equals the asynchronous system — every set
    /// is timely with respect to itself, so the timeliness requirement is
    /// vacuous.
    pub fn is_asynchronous(&self) -> bool {
        self.i == self.j
    }

    /// Observation 4 (containment): `other ⊆ self` iff they have the same
    /// `n`, `other.i ≤ self.i`, and `other.j ≥ self.j`.
    ///
    /// Intuitively `other` demands a *smaller* timely set observed against a
    /// *larger* set, which is a stronger synchrony requirement, so all its
    /// schedules also satisfy `self`'s requirement (via Observation 3).
    pub fn contains(&self, other: &SystemSpec) -> bool {
        self.n == other.n && other.i <= self.i && other.j >= self.j
    }

    /// Finite-prefix membership evidence: searches the prefix for a size-`i`
    /// set timely wrt a size-`j` set with empirical bound at most
    /// `bound_cap`.
    ///
    /// Membership of an infinite schedule in `S^i_{j,n}` is a limit property;
    /// a witness pair on a long prefix with a small bound is the evidence our
    /// experiments use (and generators in `st-sched` guarantee the witness by
    /// construction).
    pub fn witness_on_prefix(&self, s: &Schedule, bound_cap: usize) -> Option<TimelyPair> {
        find_timely_pair(s, self.universe(), self.i, self.j, bound_cap)
    }
}

impl fmt::Display for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S^{}_{{{},{}}}", self.i, self.j, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SystemSpec::new(0, 1, 3).is_err());
        assert!(SystemSpec::new(2, 1, 3).is_err());
        assert!(SystemSpec::new(1, 4, 3).is_err());
        assert!(SystemSpec::new(1, 1, 1).is_ok());
        assert!(SystemSpec::new(2, 3, 5).is_ok());
    }

    #[test]
    fn observation5_asynchronous() {
        for n in 1..=6 {
            for i in 1..=n {
                let s = SystemSpec::new(i, i, n).unwrap();
                assert!(s.is_asynchronous());
            }
        }
        assert!(!SystemSpec::new(1, 2, 3).unwrap().is_asynchronous());
        assert!(SystemSpec::asynchronous(4).unwrap().is_asynchronous());
    }

    #[test]
    fn observation4_containment() {
        let big = SystemSpec::new(3, 4, 6).unwrap(); // weaker requirement
        let small = SystemSpec::new(2, 5, 6).unwrap(); // stronger requirement
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        // Reflexive.
        assert!(big.contains(&big));
        // Different n never contains.
        let other_n = SystemSpec::new(2, 5, 5).unwrap();
        assert!(!big.contains(&other_n));
    }

    #[test]
    fn containment_is_transitive_on_family() {
        let a = SystemSpec::new(1, 5, 6).unwrap();
        let b = SystemSpec::new(2, 4, 6).unwrap();
        let c = SystemSpec::new(3, 3, 6).unwrap();
        assert!(c.contains(&b) && b.contains(&a));
        assert!(c.contains(&a));
    }

    #[test]
    fn witness_on_round_robin_prefix() {
        let spec = SystemSpec::new(1, 3, 3).unwrap();
        let s = Schedule::from_indices((0..120).map(|i| i % 3));
        let w = spec
            .witness_on_prefix(&s, 4)
            .expect("round robin is in S^1_{3,3}");
        assert_eq!(w.p.len(), 1);
        assert_eq!(w.q.len(), 3);
    }

    #[test]
    fn no_witness_under_starvation() {
        // p2 runs alone for a long time: no singleton containing p0/p1 can be
        // timely wrt {p2} with a small cap, and {p2} itself is not size-2.
        let mut idx = vec![0, 1];
        idx.extend(std::iter::repeat_n(2, 100));
        let s = Schedule::from_indices(idx);
        let spec = SystemSpec::new(2, 3, 3).unwrap();
        // With cap 3, the only P candidates of size 2 not containing p2 fail;
        // those containing p2 are timely wrt everything (p2 steps constantly),
        // so a witness DOES exist here.
        assert!(spec.witness_on_prefix(&s, 3).is_some());
        // But requiring P to be {p0,p1} (i = 2) against all three (j = 3)
        // with p0, p1 silent fails under a small cap... construct the check
        // directly:
        let w = spec.witness_on_prefix(&s, 3).unwrap();
        assert!(w.p.contains(crate::process::ProcessId::new(2)));
    }

    #[test]
    fn display_form() {
        assert_eq!(SystemSpec::new(2, 4, 6).unwrap().to_string(), "S^2_{4,6}");
    }
}
