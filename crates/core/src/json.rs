//! Minimal canonical JSON: the on-disk language of this workspace's
//! artifacts (`BENCH_timeliness.json`, the `st-campaign` outcome store).
//!
//! The container that builds this workspace has no registry access, so
//! there is no serde — artifacts are hand-rolled JSON. This module holds
//! the one value type, writer, and parser those artifacts share, with two
//! properties the campaign store's resume guarantee leans on:
//!
//! - **Canonical writing**: [`Json::to_string`] emits object members in
//!   insertion order with fixed spacing, so equal values serialize to equal
//!   bytes. Re-serializing a parsed document reproduces the writer's bytes
//!   (`to_string ∘ parse ∘ to_string = to_string`), which is what lets an
//!   interrupted-and-resumed sweep rewrite a store file byte-identically.
//! - **Exact numbers**: the only number shape is the unsigned 64-bit
//!   integer — every quantity in the paper's artifacts (steps, seeds,
//!   bounds, ranks, process bitmasks) is one. Floats are rejected at parse
//!   time, so a round-trip can never perturb a value.
//!
//! The parser is a plain recursive-descent over the full JSON grammar
//! (minus floats/negatives, plus a depth cap), returning byte-offset
//! errors; it accepts any whitespace, so hand-edited stores still load.

use std::fmt;

/// Maximum nesting depth the parser accepts (generator specs recurse, but
/// shallowly; this is a guard against stack exhaustion on garbage input).
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve insertion order (canonical writing).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number shape artifacts use).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(members: I) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience: an array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object; `None` on other shapes or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes canonically: members in insertion order, `", "` / `": "`
    /// separators, no trailing whitespace, strings escaped minimally
    /// (`\"`, `\\`, and `\u00XX` for control characters).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (one value, optionally surrounded by
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing content after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::at(*pos, "nesting too deep"));
    }
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b'-') => Err(JsonError::at(
            *pos,
            "negative numbers are not used by this workspace's artifacts",
        )),
        Some(&c) => Err(JsonError::at(
            *pos,
            format!("unexpected character '{}'", c as char),
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected '{literal}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(JsonError::at(
            *pos,
            "floating-point numbers are not exact; artifacts use integers only",
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<u64>()
        .map(Json::U64)
        .map_err(|_| JsonError::at(start, "integer out of u64 range"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        // Bulk-copy the run up to the next quote or escape. The input is a
        // `&str` and the delimiters are ASCII, so the run is valid UTF-8.
        let run_start = *pos;
        while matches!(bytes.get(*pos), Some(b) if *b != b'"' && *b != b'\\') {
            *pos += 1;
        }
        if *pos > run_start {
            out.push_str(
                std::str::from_utf8(&bytes[run_start..*pos])
                    .expect("ASCII-delimited slice of a str"),
            );
        }
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        let c = char::from_u32(code).ok_or_else(|| {
                            // Surrogate halves: the writer never emits them.
                            JsonError::at(*pos, "unsupported \\u escape (surrogate)")
                        })?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => unreachable!("bulk copy stops only at quote, escape, or end"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_round_trip() {
        let v = Json::obj([
            ("schema", Json::str("demo-v1")),
            ("count", Json::U64(42)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::arr([Json::U64(0), Json::str("a\"b\\c\nd"), Json::arr([])]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, v);
        // Canonical: re-serialization is byte-identical.
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn parses_foreign_whitespace() {
        let v = Json::parse(" {\n  \"a\" : [ 1 , 2 ] ,\n  \"b\" : null\n} ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_floats_negatives_and_trailers() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("-1").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("18446744073709551616").is_err()); // u64::MAX + 1
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
    }

    #[test]
    fn depth_guard_fires() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn control_characters_escape_and_return() {
        let v = Json::str("line\nbreak\u{1}end");
        let text = v.to_string();
        assert_eq!(text, "\"line\\nbreak\\u0001end\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\": 1.5}").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.message.contains("integers"));
    }
}
