//! Process identities and the process universe `Π_n`.
//!
//! The paper considers a shared-memory system with `n` processes
//! `Π_n = {1, ..., n}`. We index processes from `0` to `n − 1` internally and
//! render them as `p0, p1, ...` for display.

use std::fmt;

use crate::error::ModelError;

/// Maximum number of processes in a simulated universe.
///
/// Raised from 64 to 1024 for the large-n workload regime (phase-batched
/// SoA execution). Note that [`ProcSet`](crate::ProcSet) — the *set
/// analysis* type — stays a 64-bit bitset and can only hold members with
/// index below [`PROCSET_CAPACITY`]: universes larger than 64 are for the
/// lean, index-based protocol family, whose combinatorial analyses
/// (`Π^k_n` enumeration, timeliness sweeps) remain gated to `n ≤ 64`.
pub const MAX_PROCESSES: usize = 1024;

/// Maximum process index representable in a [`ProcSet`](crate::ProcSet)
/// bitset (bit positions `0..64`).
pub const PROCSET_CAPACITY: usize = 64;

/// The identity of a process in `Π_n`.
///
/// A `ProcessId` is a plain index; it carries no reference to a particular
/// universe, so the same id can be used across simulations of the same size.
///
/// # Examples
///
/// ```
/// use st_core::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PROCESSES`. Indices at or above
    /// [`PROCSET_CAPACITY`] are valid process ids but cannot be members of
    /// a [`ProcSet`](crate::ProcSet).
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_PROCESSES,
            "process index {index} exceeds MAX_PROCESSES ({MAX_PROCESSES})"
        );
        ProcessId(index as u32)
    }

    /// Returns the zero-based index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(p: ProcessId) -> usize {
        p.index()
    }
}

/// The process universe `Π_n`: the set of all `n` processes of a system.
///
/// # Examples
///
/// ```
/// use st_core::Universe;
///
/// let u = Universe::new(4).unwrap();
/// assert_eq!(u.n(), 4);
/// let ids: Vec<_> = u.processes().map(|p| p.index()).collect();
/// assert_eq!(ids, vec![0, 1, 2, 3]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Universe {
    n: u32,
}

impl Universe {
    /// Creates a universe of `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidUniverse`] if `n == 0` or
    /// `n > MAX_PROCESSES`.
    pub fn new(n: usize) -> Result<Self, ModelError> {
        if n == 0 || n > MAX_PROCESSES {
            return Err(ModelError::InvalidUniverse { n });
        }
        Ok(Universe { n: n as u32 })
    }

    /// Number of processes in the universe.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Iterates over all process ids `p0 .. p(n-1)` in index order.
    pub fn processes(&self) -> impl DoubleEndedIterator<Item = ProcessId> + ExactSizeIterator {
        (0..self.n).map(ProcessId)
    }

    /// Returns `true` if `p` belongs to this universe.
    pub fn contains(&self, p: ProcessId) -> bool {
        p.0 < self.n
    }

    /// Returns the process with the given index.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ProcessOutOfRange`] if `index >= n`.
    pub fn process(&self, index: usize) -> Result<ProcessId, ModelError> {
        if index >= self.n() {
            return Err(ModelError::ProcessOutOfRange { index, n: self.n() });
        }
        Ok(ProcessId(index as u32))
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Π_{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        for i in 0..MAX_PROCESSES {
            let p = ProcessId::new(i);
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PROCESSES")]
    fn process_id_too_large_panics() {
        let _ = ProcessId::new(MAX_PROCESSES);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId::new(0).to_string(), "p0");
        assert_eq!(ProcessId::new(12).to_string(), "p12");
        assert_eq!(Universe::new(5).unwrap().to_string(), "Π_5");
    }

    #[test]
    fn universe_bounds() {
        assert!(Universe::new(0).is_err());
        assert!(Universe::new(MAX_PROCESSES + 1).is_err());
        assert!(Universe::new(1).is_ok());
        assert!(Universe::new(MAX_PROCESSES).is_ok());
    }

    #[test]
    fn universe_iteration_and_membership() {
        let u = Universe::new(3).unwrap();
        let all: Vec<_> = u.processes().collect();
        assert_eq!(all.len(), 3);
        assert!(u.contains(ProcessId::new(2)));
        assert!(!u.contains(ProcessId::new(3)));
        assert!(u.process(2).is_ok());
        assert!(u.process(3).is_err());
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
    }
}
