//! Sets of processes, represented as 64-bit bitsets.
//!
//! Set timeliness (Definition 1 of the paper) compares *sets* of processes,
//! and the Figure 2 algorithm enumerates `Π^k_n` — all subsets of size `k` —
//! so set operations must be cheap. A `ProcSet` packs membership into a `u64`,
//! which also gives us the "arbitrary total order on `Π^k_n`" the paper uses
//! for tie-breaking (we order by the bitset value; see [`ProcSet::cmp`]).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Sub};

use crate::process::{ProcessId, Universe, PROCSET_CAPACITY};

/// A set of processes drawn from `Π_n` (`n ≤ 64`), stored as a bitmask.
///
/// Bit `i` set means process `p_i` is a member. With universes now allowed
/// to exceed 64 processes (see [`MAX_PROCESSES`](crate::MAX_PROCESSES)),
/// `ProcSet` remains the *set analysis* type of the small-universe regime:
/// every membership operation asserts its index is below
/// [`PROCSET_CAPACITY`], and large-n protocol code tracks processes by
/// plain index instead.
///
/// # Examples
///
/// ```
/// use st_core::{ProcSet, ProcessId};
///
/// let p = ProcSet::from_indices([0, 2]);
/// assert!(p.contains(ProcessId::new(0)));
/// assert!(!p.contains(ProcessId::new(1)));
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.to_string(), "{p0,p2}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcSet(u64);

impl ProcSet {
    /// The empty set.
    pub const EMPTY: ProcSet = ProcSet(0);

    /// Creates a set from a raw bitmask (bit `i` ⇒ process `i`).
    pub fn from_bits(bits: u64) -> Self {
        ProcSet(bits)
    }

    /// Returns the raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Creates a singleton set `{p}`.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= 64`.
    pub fn singleton(p: ProcessId) -> Self {
        ProcSet(1u64 << Self::bit(p))
    }

    /// Bounds-checks a process index against the bitset capacity. Every
    /// membership operation funnels through this: an out-of-capacity index
    /// would otherwise be a masked shift (silently wrong membership) in
    /// release builds.
    #[inline]
    fn bit(p: ProcessId) -> u32 {
        let i = p.index();
        assert!(
            i < PROCSET_CAPACITY,
            "process index {i} exceeds the ProcSet capacity ({PROCSET_CAPACITY}); \
             universes beyond 64 processes use index-based tracking"
        );
        i as u32
    }

    /// Creates a set from an iterator of process indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= 64`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut bits = 0u64;
        for i in indices {
            assert!(i < PROCSET_CAPACITY, "process index {i} out of range");
            bits |= 1u64 << i;
        }
        ProcSet(bits)
    }

    /// The full set `Π_n` for a universe of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` (the bitset capacity; large universes have no
    /// `ProcSet` of all processes).
    pub fn full(universe: Universe) -> Self {
        let n = universe.n();
        assert!(
            n <= PROCSET_CAPACITY,
            "Π_{n} exceeds the ProcSet capacity ({PROCSET_CAPACITY})"
        );
        if n == PROCSET_CAPACITY {
            ProcSet(u64::MAX)
        } else {
            ProcSet((1u64 << n) - 1)
        }
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= 64` (as for every membership operation).
    pub fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u64 << Self::bit(p)) != 0
    }

    /// Returns a copy with `p` inserted.
    pub fn with(self, p: ProcessId) -> Self {
        ProcSet(self.0 | (1u64 << Self::bit(p)))
    }

    /// Returns a copy with `p` removed.
    pub fn without(self, p: ProcessId) -> Self {
        ProcSet(self.0 & !(1u64 << Self::bit(p)))
    }

    /// Inserts `p` in place; returns whether the set changed.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let before = self.0;
        self.0 |= 1u64 << Self::bit(p);
        self.0 != before
    }

    /// Removes `p` in place; returns whether the set changed.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let before = self.0;
        self.0 &= !(1u64 << Self::bit(p));
        self.0 != before
    }

    /// Set union.
    pub fn union(self, other: ProcSet) -> Self {
        ProcSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: ProcSet) -> Self {
        ProcSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(self, other: ProcSet) -> Self {
        ProcSet(self.0 & !other.0)
    }

    /// Complement within the universe `Π_n`.
    pub fn complement(self, universe: Universe) -> Self {
        ProcSet(!self.0).intersection(ProcSet::full(universe))
    }

    /// Subset test: `self ⊆ other`.
    pub fn is_subset(self, other: ProcSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Disjointness test.
    pub fn is_disjoint(self, other: ProcSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Smallest member, if any.
    pub fn min(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Largest member, if any.
    pub fn max(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId::new(63 - self.0.leading_zeros() as usize))
        }
    }

    /// The `r`-th smallest member (zero-based rank), if it exists.
    ///
    /// This is the selection rule used by the k-parallel-Paxos construction:
    /// instance `r` is led by `winnerset.nth(r)`.
    pub fn nth(self, r: usize) -> Option<ProcessId> {
        self.iter().nth(r)
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter { bits: self.0 }
    }

    /// Collects members into a vector, in increasing index order.
    pub fn to_vec(self) -> Vec<ProcessId> {
        self.iter().collect()
    }
}

/// Iterator over the members of a [`ProcSet`], in increasing index order.
#[derive(Clone, Debug)]
pub struct Iter {
    bits: u64,
}

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.bits == 0 {
            return None;
        }
        let idx = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(ProcessId::new(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let c = self.bits.count_ones() as usize;
        (c, Some(c))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ProcSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl BitOr for ProcSet {
    type Output = ProcSet;
    fn bitor(self, rhs: ProcSet) -> ProcSet {
        self.union(rhs)
    }
}

impl BitAnd for ProcSet {
    type Output = ProcSet;
    fn bitand(self, rhs: ProcSet) -> ProcSet {
        self.intersection(rhs)
    }
}

impl BitXor for ProcSet {
    type Output = ProcSet;
    fn bitxor(self, rhs: ProcSet) -> ProcSet {
        ProcSet(self.0 ^ rhs.0)
    }
}

impl Sub for ProcSet {
    type Output = ProcSet;
    fn sub(self, rhs: ProcSet) -> ProcSet {
        self.difference(rhs)
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcSet")?;
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn basic_membership() {
        let s = ProcSet::from_indices([1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(ProcessId::new(3)));
        assert!(!s.contains(ProcessId::new(2)));
        assert!(!s.is_empty());
        assert!(ProcSet::EMPTY.is_empty());
    }

    #[test]
    fn insert_remove() {
        let mut s = ProcSet::EMPTY;
        assert!(s.insert(ProcessId::new(7)));
        assert!(!s.insert(ProcessId::new(7)));
        assert!(s.remove(ProcessId::new(7)));
        assert!(!s.remove(ProcessId::new(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn with_without_are_pure() {
        let s = ProcSet::from_indices([0]);
        let t = s.with(ProcessId::new(1));
        assert_eq!(s.len(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.without(ProcessId::new(0)), ProcSet::from_indices([1]));
    }

    #[test]
    fn set_algebra() {
        let a = ProcSet::from_indices([0, 1, 2]);
        let b = ProcSet::from_indices([2, 3]);
        assert_eq!(a.union(b), ProcSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersection(b), ProcSet::from_indices([2]));
        assert_eq!(a.difference(b), ProcSet::from_indices([0, 1]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
        assert_eq!(a ^ b, ProcSet::from_indices([0, 1, 3]));
    }

    #[test]
    fn complement_in_universe() {
        let a = ProcSet::from_indices([0, 2]);
        assert_eq!(a.complement(u(4)), ProcSet::from_indices([1, 3]));
        assert_eq!(ProcSet::EMPTY.complement(u(3)), ProcSet::full(u(3)));
    }

    #[test]
    fn full_set_of_64() {
        let s = ProcSet::full(u(64));
        assert_eq!(s.len(), 64);
        assert_eq!(s.complement(u(64)), ProcSet::EMPTY);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = ProcSet::from_indices([1, 2]);
        let b = ProcSet::from_indices([0, 1, 2, 3]);
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert!(ProcSet::EMPTY.is_subset(a));
        assert!(a.is_disjoint(ProcSet::from_indices([0, 3])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn min_max_nth() {
        let s = ProcSet::from_indices([5, 9, 17]);
        assert_eq!(s.min(), Some(ProcessId::new(5)));
        assert_eq!(s.max(), Some(ProcessId::new(17)));
        assert_eq!(s.nth(0), Some(ProcessId::new(5)));
        assert_eq!(s.nth(1), Some(ProcessId::new(9)));
        assert_eq!(s.nth(2), Some(ProcessId::new(17)));
        assert_eq!(s.nth(3), None);
        assert_eq!(ProcSet::EMPTY.min(), None);
        assert_eq!(ProcSet::EMPTY.max(), None);
    }

    #[test]
    fn iter_in_order() {
        let s = ProcSet::from_indices([3, 0, 11]);
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![0, 3, 11]);
        let rebuilt: ProcSet = s.iter().collect();
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn display_form() {
        assert_eq!(ProcSet::EMPTY.to_string(), "{}");
        assert_eq!(ProcSet::from_indices([0, 2]).to_string(), "{p0,p2}");
        assert_eq!(format!("{:?}", ProcSet::from_indices([1])), "ProcSet{p1}");
    }

    #[test]
    fn total_order_is_consistent() {
        // The order used for tie-breaking in Figure 2 (any total order works;
        // ours is by bitmask value).
        let a = ProcSet::from_indices([0]);
        let b = ProcSet::from_indices([1]);
        let c = ProcSet::from_indices([0, 1]);
        assert!(a < b && b < c);
    }
}
