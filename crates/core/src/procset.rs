//! Sets of processes, represented as multi-word bitsets.
//!
//! Set timeliness (Definition 1 of the paper) compares *sets* of processes,
//! and the Figure 2 algorithm enumerates `Π^k_n` — all subsets of size `k` —
//! so set operations must be cheap. A [`WideProcSet<W>`] packs membership
//! into `W` machine words, which also gives us the "arbitrary total order on
//! `Π^k_n`" the paper uses for tie-breaking (we order by the bitset value,
//! most significant word first; see [`WideProcSet::cmp`]).
//!
//! [`ProcSet`] is the single-word (`W = 1`, `n ≤ 64`) specialization that
//! the small-universe protocol and analysis code uses; it keeps the raw
//! `u64` accessors ([`ProcSet::bits`] / [`ProcSet::from_bits`]) and the
//! codegen of a plain `u64` bitmask. Universes beyond 64 processes pick a
//! wider `W` via [`words_for`] and run the same API.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Sub};

use crate::process::{ProcessId, Universe};

/// Number of 64-bit words a bitset needs to cover a universe of `n`
/// processes. This is the value dispatch code matches on when choosing a
/// concrete `W` for [`WideProcSet`].
///
/// # Examples
///
/// ```
/// use st_core::procset::words_for;
///
/// assert_eq!(words_for(1), 1);
/// assert_eq!(words_for(64), 1);
/// assert_eq!(words_for(65), 2);
/// assert_eq!(words_for(256), 4);
/// ```
pub fn words_for(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// A set of processes drawn from `Π_n` (`n ≤ 64·W`), stored as a `W`-word
/// bitmask.
///
/// Bit `i % 64` of word `i / 64` set means process `p_i` is a member. The
/// type carries the full set API at every width — membership, algebra,
/// popcount, a total order for `Π^k_n` tie-breaking, iteration — and
/// [`ProcSet`] (`W = 1`) is the specialization the `n ≤ 64` regime uses,
/// keeping its current single-`u64` codegen. Every membership operation
/// asserts its index is below [`Self::CAPACITY`].
///
/// # Examples
///
/// ```
/// use st_core::{ProcessId, WideProcSet};
///
/// let p = WideProcSet::<2>::from_indices([0, 100]);
/// assert!(p.contains(ProcessId::new(100)));
/// assert!(!p.contains(ProcessId::new(1)));
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.to_string(), "{p0,p100}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideProcSet<const W: usize>([u64; W]);

/// A set of processes drawn from `Π_n` (`n ≤ 64`), stored as a single
/// `u64` bitmask — the `W = 1` specialization of [`WideProcSet`].
///
/// With universes allowed to exceed 64 processes (see
/// [`MAX_PROCESSES`](crate::MAX_PROCESSES)), `ProcSet` remains the *set
/// analysis* type of the small-universe regime: every membership operation
/// asserts its index is below [`PROCSET_CAPACITY`](crate::PROCSET_CAPACITY),
/// and large-n protocol code either tracks processes by plain index or uses
/// a wider [`WideProcSet`].
///
/// # Examples
///
/// ```
/// use st_core::{ProcSet, ProcessId};
///
/// let p = ProcSet::from_indices([0, 2]);
/// assert!(p.contains(ProcessId::new(0)));
/// assert!(!p.contains(ProcessId::new(1)));
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.to_string(), "{p0,p2}");
/// ```
pub type ProcSet = WideProcSet<1>;

impl ProcSet {
    /// Creates a set from a raw bitmask (bit `i` ⇒ process `i`).
    pub fn from_bits(bits: u64) -> Self {
        WideProcSet([bits])
    }

    /// Returns the raw bitmask.
    pub fn bits(self) -> u64 {
        self.0[0]
    }
}

impl<const W: usize> WideProcSet<W> {
    /// The empty set.
    pub const EMPTY: Self = WideProcSet([0; W]);

    /// Largest process index this width can represent, plus one. Equals
    /// [`PROCSET_CAPACITY`](crate::PROCSET_CAPACITY) for `W = 1`.
    pub const CAPACITY: usize = 64 * W;

    /// Creates a set from its raw words (bit `i % 64` of word `i / 64` ⇒
    /// process `i`).
    pub fn from_words(words: [u64; W]) -> Self {
        WideProcSet(words)
    }

    /// Returns the raw words.
    pub fn words(self) -> [u64; W] {
        self.0
    }

    /// Creates a singleton set `{p}`.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= Self::CAPACITY`.
    pub fn singleton(p: ProcessId) -> Self {
        let (w, b) = Self::bit(p);
        let mut words = [0u64; W];
        words[w] = 1u64 << b;
        WideProcSet(words)
    }

    /// Bounds-checks a process index against the bitset capacity and splits
    /// it into a (word, bit) address. Every membership operation funnels
    /// through this: an out-of-capacity index would otherwise be an
    /// out-of-bounds word access or a masked shift (silently wrong
    /// membership).
    #[inline]
    fn bit(p: ProcessId) -> (usize, u32) {
        let i = p.index();
        assert!(
            i < Self::CAPACITY,
            "process index {i} exceeds the bitset capacity ({cap}); \
             universes beyond {cap} processes need a wider WideProcSet",
            cap = Self::CAPACITY,
        );
        (i / 64, (i % 64) as u32)
    }

    /// Creates a set from an iterator of process indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= Self::CAPACITY`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut words = [0u64; W];
        for i in indices {
            assert!(i < Self::CAPACITY, "process index {i} out of range");
            words[i / 64] |= 1u64 << (i % 64);
        }
        WideProcSet(words)
    }

    /// The full set `Π_n` for a universe of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > Self::CAPACITY` (the bitset capacity at this width;
    /// larger universes need a wider `W`).
    pub fn full(universe: Universe) -> Self {
        let n = universe.n();
        assert!(
            n <= Self::CAPACITY,
            "Π_{n} exceeds the bitset capacity ({cap})",
            cap = Self::CAPACITY,
        );
        let mut words = [0u64; W];
        for (w, word) in words.iter_mut().enumerate() {
            let filled = n.saturating_sub(w * 64).min(64);
            *word = match filled {
                0 => 0,
                64 => u64::MAX,
                f => (1u64 << f) - 1,
            };
        }
        WideProcSet(words)
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= Self::CAPACITY` (as for every membership
    /// operation).
    pub fn contains(self, p: ProcessId) -> bool {
        let (w, b) = Self::bit(p);
        self.0[w] & (1u64 << b) != 0
    }

    /// Returns a copy with `p` inserted.
    pub fn with(self, p: ProcessId) -> Self {
        let (w, b) = Self::bit(p);
        let mut words = self.0;
        words[w] |= 1u64 << b;
        WideProcSet(words)
    }

    /// Returns a copy with `p` removed.
    pub fn without(self, p: ProcessId) -> Self {
        let (w, b) = Self::bit(p);
        let mut words = self.0;
        words[w] &= !(1u64 << b);
        WideProcSet(words)
    }

    /// Inserts `p` in place; returns whether the set changed.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let (w, b) = Self::bit(p);
        let before = self.0[w];
        self.0[w] |= 1u64 << b;
        self.0[w] != before
    }

    /// Removes `p` in place; returns whether the set changed.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let (w, b) = Self::bit(p);
        let before = self.0[w];
        self.0[w] &= !(1u64 << b);
        self.0[w] != before
    }

    /// Set union.
    pub fn union(self, other: Self) -> Self {
        let mut words = self.0;
        for (w, o) in words.iter_mut().zip(other.0) {
            *w |= o;
        }
        WideProcSet(words)
    }

    /// Set intersection.
    pub fn intersection(self, other: Self) -> Self {
        let mut words = self.0;
        for (w, o) in words.iter_mut().zip(other.0) {
            *w &= o;
        }
        WideProcSet(words)
    }

    /// Set difference `self \ other`.
    pub fn difference(self, other: Self) -> Self {
        let mut words = self.0;
        for (w, o) in words.iter_mut().zip(other.0) {
            *w &= !o;
        }
        WideProcSet(words)
    }

    /// Complement within the universe `Π_n`.
    pub fn complement(self, universe: Universe) -> Self {
        let mut words = self.0;
        for w in words.iter_mut() {
            *w = !*w;
        }
        WideProcSet(words).intersection(Self::full(universe))
    }

    /// Subset test: `self ⊆ other`.
    pub fn is_subset(self, other: Self) -> bool {
        self.0.iter().zip(other.0).all(|(&w, o)| w & !o == 0)
    }

    /// Disjointness test.
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0.iter().zip(other.0).all(|(&w, o)| w & o == 0)
    }

    /// Smallest member, if any.
    pub fn min(self) -> Option<ProcessId> {
        for (w, &word) in self.0.iter().enumerate() {
            if word != 0 {
                return Some(ProcessId::new(w * 64 + word.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Largest member, if any.
    pub fn max(self) -> Option<ProcessId> {
        for (w, &word) in self.0.iter().enumerate().rev() {
            if word != 0 {
                return Some(ProcessId::new(w * 64 + 63 - word.leading_zeros() as usize));
            }
        }
        None
    }

    /// The `r`-th smallest member (zero-based rank), if it exists.
    ///
    /// This is the selection rule used by the k-parallel-Paxos construction:
    /// instance `r` is led by `winnerset.nth(r)`.
    pub fn nth(self, r: usize) -> Option<ProcessId> {
        self.iter().nth(r)
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> Iter<W> {
        Iter {
            words: self.0,
            word: 0,
        }
    }

    /// Collects members into a vector, in increasing index order.
    pub fn to_vec(self) -> Vec<ProcessId> {
        self.iter().collect()
    }
}

impl<const W: usize> Default for WideProcSet<W> {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl<const W: usize> Ord for WideProcSet<W> {
    /// Total order by bitset value, most significant word first. For
    /// `W = 1` this is the plain `u64` order the Figure 2 tie-breaking has
    /// always used; wider widths extend it consistently (within a fixed
    /// popcount it is colexicographic order on member lists at every `W`).
    fn cmp(&self, other: &Self) -> Ordering {
        for w in (0..W).rev() {
            match self.0[w].cmp(&other.0[w]) {
                Ordering::Equal => continue,
                unequal => return unequal,
            }
        }
        Ordering::Equal
    }
}

impl<const W: usize> PartialOrd for WideProcSet<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Iterator over the members of a [`WideProcSet`], in increasing index
/// order.
#[derive(Clone, Debug)]
pub struct Iter<const W: usize> {
    words: [u64; W],
    word: usize,
}

impl<const W: usize> Iterator for Iter<W> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        while self.word < W {
            let bits = self.words[self.word];
            if bits == 0 {
                self.word += 1;
                continue;
            }
            let idx = bits.trailing_zeros() as usize;
            self.words[self.word] &= bits - 1;
            return Some(ProcessId::new(self.word * 64 + idx));
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let c = self.words[self.word..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (c, Some(c))
    }
}

impl<const W: usize> ExactSizeIterator for Iter<W> {}

impl<const W: usize> IntoIterator for WideProcSet<W> {
    type Item = ProcessId;
    type IntoIter = Iter<W>;

    fn into_iter(self) -> Iter<W> {
        self.iter()
    }
}

impl<const W: usize> FromIterator<ProcessId> for WideProcSet<W> {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = Self::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl<const W: usize> Extend<ProcessId> for WideProcSet<W> {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl<const W: usize> BitOr for WideProcSet<W> {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl<const W: usize> BitAnd for WideProcSet<W> {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl<const W: usize> BitXor for WideProcSet<W> {
    type Output = Self;
    fn bitxor(self, rhs: Self) -> Self {
        let mut words = self.0;
        for (w, o) in words.iter_mut().zip(rhs.0) {
            *w ^= o;
        }
        WideProcSet(words)
    }
}

impl<const W: usize> Sub for WideProcSet<W> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl<const W: usize> fmt::Debug for WideProcSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if W == 1 {
            write!(f, "ProcSet")?;
        } else {
            write!(f, "WideProcSet<{W}>")?;
        }
        fmt::Display::fmt(self, f)
    }
}

impl<const W: usize> fmt::Display for WideProcSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn basic_membership() {
        let s = ProcSet::from_indices([1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(ProcessId::new(3)));
        assert!(!s.contains(ProcessId::new(2)));
        assert!(!s.is_empty());
        assert!(ProcSet::EMPTY.is_empty());
    }

    #[test]
    fn insert_remove() {
        let mut s = ProcSet::EMPTY;
        assert!(s.insert(ProcessId::new(7)));
        assert!(!s.insert(ProcessId::new(7)));
        assert!(s.remove(ProcessId::new(7)));
        assert!(!s.remove(ProcessId::new(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn with_without_are_pure() {
        let s = ProcSet::from_indices([0]);
        let t = s.with(ProcessId::new(1));
        assert_eq!(s.len(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.without(ProcessId::new(0)), ProcSet::from_indices([1]));
    }

    #[test]
    fn set_algebra() {
        let a = ProcSet::from_indices([0, 1, 2]);
        let b = ProcSet::from_indices([2, 3]);
        assert_eq!(a.union(b), ProcSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersection(b), ProcSet::from_indices([2]));
        assert_eq!(a.difference(b), ProcSet::from_indices([0, 1]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
        assert_eq!(a ^ b, ProcSet::from_indices([0, 1, 3]));
    }

    #[test]
    fn complement_in_universe() {
        let a = ProcSet::from_indices([0, 2]);
        assert_eq!(a.complement(u(4)), ProcSet::from_indices([1, 3]));
        assert_eq!(ProcSet::EMPTY.complement(u(3)), ProcSet::full(u(3)));
    }

    #[test]
    fn full_set_of_64() {
        let s = ProcSet::full(u(64));
        assert_eq!(s.len(), 64);
        assert_eq!(s.complement(u(64)), ProcSet::EMPTY);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = ProcSet::from_indices([1, 2]);
        let b = ProcSet::from_indices([0, 1, 2, 3]);
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert!(ProcSet::EMPTY.is_subset(a));
        assert!(a.is_disjoint(ProcSet::from_indices([0, 3])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn min_max_nth() {
        let s = ProcSet::from_indices([5, 9, 17]);
        assert_eq!(s.min(), Some(ProcessId::new(5)));
        assert_eq!(s.max(), Some(ProcessId::new(17)));
        assert_eq!(s.nth(0), Some(ProcessId::new(5)));
        assert_eq!(s.nth(1), Some(ProcessId::new(9)));
        assert_eq!(s.nth(2), Some(ProcessId::new(17)));
        assert_eq!(s.nth(3), None);
        assert_eq!(ProcSet::EMPTY.min(), None);
        assert_eq!(ProcSet::EMPTY.max(), None);
    }

    #[test]
    fn iter_in_order() {
        let s = ProcSet::from_indices([3, 0, 11]);
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![0, 3, 11]);
        let rebuilt: ProcSet = s.iter().collect();
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn display_form() {
        assert_eq!(ProcSet::EMPTY.to_string(), "{}");
        assert_eq!(ProcSet::from_indices([0, 2]).to_string(), "{p0,p2}");
        assert_eq!(format!("{:?}", ProcSet::from_indices([1])), "ProcSet{p1}");
    }

    #[test]
    fn total_order_is_consistent() {
        // The order used for tie-breaking in Figure 2 (any total order works;
        // ours is by bitmask value).
        let a = ProcSet::from_indices([0]);
        let b = ProcSet::from_indices([1]);
        let c = ProcSet::from_indices([0, 1]);
        assert!(a < b && b < c);
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
        assert_eq!(words_for(1024), 16);
    }

    #[test]
    fn wide_membership_across_words() {
        let s = WideProcSet::<2>::from_indices([0, 63, 64, 100, 127]);
        assert_eq!(s.len(), 5);
        assert!(s.contains(ProcessId::new(64)));
        assert!(s.contains(ProcessId::new(127)));
        assert!(!s.contains(ProcessId::new(65)));
        assert_eq!(s.min(), Some(ProcessId::new(0)));
        assert_eq!(s.max(), Some(ProcessId::new(127)));
        assert_eq!(s.nth(2), Some(ProcessId::new(64)));
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![0, 63, 64, 100, 127]);
    }

    #[test]
    fn wide_full_and_complement() {
        let universe = u(100);
        let full = WideProcSet::<2>::full(universe);
        assert_eq!(full.len(), 100);
        assert_eq!(full.max(), Some(ProcessId::new(99)));
        let a = WideProcSet::<2>::from_indices([0, 99]);
        let c = a.complement(universe);
        assert_eq!(c.len(), 98);
        assert!(c.is_disjoint(a));
        assert_eq!(c.union(a), full);
        // Word-aligned universes fill whole words exactly.
        assert_eq!(WideProcSet::<2>::full(u(128)).len(), 128);
        assert_eq!(WideProcSet::<4>::full(u(256)).len(), 256);
    }

    #[test]
    fn wide_order_is_most_significant_word_first() {
        // {p64} > {p0..p63}: the higher word dominates, exactly as a wide
        // integer compare would — consistent with the W = 1 u64 order.
        let low = WideProcSet::<2>::full(u(64));
        let high = WideProcSet::<2>::from_indices([64]);
        assert!(low < high);
        let a = WideProcSet::<2>::from_indices([64, 0]);
        let b = WideProcSet::<2>::from_indices([64, 1]);
        assert!(a < b);
    }

    #[test]
    fn wide_debug_display() {
        let s = WideProcSet::<2>::from_indices([1, 64]);
        assert_eq!(s.to_string(), "{p1,p64}");
        assert_eq!(format!("{s:?}"), "WideProcSet<2>{p1,p64}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wide_capacity_is_enforced() {
        let _ = WideProcSet::<2>::from_indices([128]);
    }

    #[test]
    fn words_roundtrip() {
        let s = WideProcSet::<3>::from_indices([5, 70, 130]);
        assert_eq!(WideProcSet::from_words(s.words()), s);
        assert_eq!(ProcSet::from_bits(0b101).words(), [0b101]);
    }
}
