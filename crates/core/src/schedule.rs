//! Schedules: sequences of process steps.
//!
//! A schedule `S` in `Π_n` is a finite or infinite sequence of processes; a
//! *step* of `S` is one element (Section 2 of the paper). This module holds
//! the finite representation used for analysis: infinite schedules live in
//! `st-sched` as generators and are analyzed through their finite prefixes.

use std::fmt;

use crate::process::{ProcessId, Universe};
use crate::procset::ProcSet;

/// A finite schedule: a sequence of process steps.
///
/// # Examples
///
/// ```
/// use st_core::{Schedule, ProcessId};
///
/// let s = Schedule::from_indices([0, 1, 0, 2]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.occurrences(ProcessId::new(0)), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Schedule {
    steps: Vec<ProcessId>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule { steps: Vec::new() }
    }

    /// Creates a schedule from explicit steps.
    pub fn from_steps(steps: Vec<ProcessId>) -> Self {
        Schedule { steps }
    }

    /// Creates a schedule from process indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        Schedule {
            steps: indices.into_iter().map(ProcessId::new).collect(),
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The process taking step `i` (zero-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn step(&self, i: usize) -> ProcessId {
        self.steps[i]
    }

    /// Iterates over steps in order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, ProcessId>> {
        self.steps.iter().copied()
    }

    /// View of the underlying steps.
    pub fn as_slice(&self) -> &[ProcessId] {
        &self.steps
    }

    /// Appends one step.
    pub fn push(&mut self, p: ProcessId) {
        self.steps.push(p);
    }

    /// Concatenation `S · S'` (paper notation).
    pub fn concat(&self, other: &Schedule) -> Schedule {
        let mut steps = self.steps.clone();
        steps.extend_from_slice(&other.steps);
        Schedule { steps }
    }

    /// The prefix consisting of the first `len` steps (clamped to the
    /// schedule length).
    pub fn prefix(&self, len: usize) -> Schedule {
        Schedule {
            steps: self.steps[..len.min(self.steps.len())].to_vec(),
        }
    }

    /// The suffix starting at step `from` (clamped).
    pub fn suffix(&self, from: usize) -> Schedule {
        Schedule {
            steps: self.steps[from.min(self.steps.len())..].to_vec(),
        }
    }

    /// Number of occurrences of process `p`.
    pub fn occurrences(&self, p: ProcessId) -> usize {
        self.steps.iter().filter(|&&q| q == p).count()
    }

    /// Number of steps taken by members of `set`.
    pub fn occurrences_of_set(&self, set: ProcSet) -> usize {
        self.steps.iter().filter(|&&q| set.contains(q)).count()
    }

    /// The set of processes that appear at least once.
    pub fn participants(&self) -> ProcSet {
        self.steps.iter().copied().collect()
    }

    /// The set of processes that appear at least once **after** step index
    /// `from` (inclusive).
    ///
    /// For a finite prefix of an infinite schedule this approximates the set
    /// of *correct* processes: a process correct in the infinite schedule
    /// appears in every sufficiently late window, whereas a crashed process
    /// eventually disappears.
    pub fn active_after(&self, from: usize) -> ProcSet {
        self.steps[from.min(self.steps.len())..]
            .iter()
            .copied()
            .collect()
    }

    /// Step index of the last occurrence of `p`, if any.
    pub fn last_occurrence(&self, p: ProcessId) -> Option<usize> {
        self.steps.iter().rposition(|&q| q == p)
    }

    /// Per-process step counts, indexed by process index.
    pub fn step_counts(&self, universe: Universe) -> Vec<usize> {
        let mut counts = vec![0usize; universe.n()];
        for &p in &self.steps {
            if p.index() < counts.len() {
                counts[p.index()] += 1;
            }
        }
        counts
    }

    /// Checks that every step is a process of `universe`.
    pub fn is_within(&self, universe: Universe) -> bool {
        self.steps.iter().all(|&p| universe.contains(p))
    }
}

impl FromIterator<ProcessId> for Schedule {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        Schedule {
            steps: iter.into_iter().collect(),
        }
    }
}

impl Extend<ProcessId> for Schedule {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schedule[{} steps]", self.steps.len())
    }
}

impl fmt::Display for Schedule {
    /// Renders short schedules step-by-step; long ones are summarized.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHOWN: usize = 32;
        for (i, p) in self.steps.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{p}")?;
        }
        if self.steps.len() > SHOWN {
            write!(f, "·… ({} steps)", self.steps.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let s = Schedule::from_indices([0, 1, 0, 2, 0]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.occurrences(ProcessId::new(0)), 3);
        assert_eq!(s.occurrences(ProcessId::new(9)), 0);
        assert_eq!(s.occurrences_of_set(ProcSet::from_indices([1, 2])), 2);
        assert_eq!(s.participants(), ProcSet::from_indices([0, 1, 2]));
    }

    #[test]
    fn concat_prefix_suffix() {
        let a = Schedule::from_indices([0, 1]);
        let b = Schedule::from_indices([2]);
        let c = a.concat(&b);
        assert_eq!(
            c.as_slice(),
            &[ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]
        );
        assert_eq!(c.prefix(2), a);
        assert_eq!(c.suffix(2), b);
        assert_eq!(c.prefix(99), c);
        assert!(c.suffix(99).is_empty());
    }

    #[test]
    fn active_after_window() {
        let s = Schedule::from_indices([0, 0, 1, 2, 1, 2]);
        assert_eq!(s.active_after(2), ProcSet::from_indices([1, 2]));
        assert_eq!(s.active_after(0), ProcSet::from_indices([0, 1, 2]));
        assert_eq!(s.active_after(100), ProcSet::EMPTY);
    }

    #[test]
    fn last_occurrence() {
        let s = Schedule::from_indices([0, 1, 0]);
        assert_eq!(s.last_occurrence(ProcessId::new(0)), Some(2));
        assert_eq!(s.last_occurrence(ProcessId::new(1)), Some(1));
        assert_eq!(s.last_occurrence(ProcessId::new(5)), None);
    }

    #[test]
    fn step_counts_and_universe() {
        let u = Universe::new(3).unwrap();
        let s = Schedule::from_indices([0, 2, 2]);
        assert_eq!(s.step_counts(u), vec![1, 0, 2]);
        assert!(s.is_within(u));
        let t = Schedule::from_indices([3]);
        assert!(!t.is_within(u));
    }

    #[test]
    fn display_forms() {
        let s = Schedule::from_indices([0, 1]);
        assert_eq!(s.to_string(), "p0·p1");
        let long = Schedule::from_indices((0..40).map(|i| i % 3));
        assert!(long.to_string().contains("(40 steps)"));
        assert_eq!(format!("{long:?}"), "Schedule[40 steps]");
    }

    #[test]
    fn collect_and_extend() {
        let mut s: Schedule = [ProcessId::new(1)].into_iter().collect();
        s.extend([ProcessId::new(2)]);
        assert_eq!(s.len(), 2);
    }
}
