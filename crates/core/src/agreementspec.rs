//! The `(t,k,n)`-agreement problem (Section 3) and outcome checkers.
//!
//! Each of `n` processes has an initial value and must decide a value such
//! that:
//!
//! - **Uniform k-agreement** — processes decide at most `k` distinct values;
//! - **Uniform validity** — every decision is some process's initial value;
//! - **Termination** — if at most `t` processes are faulty, every correct
//!   process eventually decides.
//!
//! The checkers here are *uniform*: agreement and validity are checked over
//! the decisions of all processes (including ones that later crash), exactly
//! as the problem statement requires.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::ModelError;
use crate::process::Universe;
use crate::procset::ProcSet;

/// Values proposed and decided by processes.
///
/// The model only needs equality and a total order (for deterministic
/// reporting); `u64` keeps registers compact. Binary tasks use `{0, 1}`.
pub type Value = u64;

/// The `(t, k, n)`-agreement task descriptor.
///
/// # Examples
///
/// ```
/// use st_core::AgreementTask;
///
/// let task = AgreementTask::new(2, 1, 5).unwrap(); // 2-resilient consensus
/// assert!(task.is_consensus());
/// assert_eq!(task.to_string(), "(2,1,5)-agreement");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AgreementTask {
    t: usize,
    k: usize,
    n: usize,
}

impl AgreementTask {
    /// Creates a `(t,k,n)`-agreement task.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTask`] unless `1 ≤ t ≤ n − 1` and
    /// `1 ≤ k ≤ n` (the ranges of Section 3).
    pub fn new(t: usize, k: usize, n: usize) -> Result<Self, ModelError> {
        if n < 2 || t == 0 || t > n - 1 || k == 0 || k > n {
            return Err(ModelError::InvalidTask { t, k, n });
        }
        Ok(AgreementTask { t, k, n })
    }

    /// Resilience: the number of crashes that must be tolerated.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Agreement degree: the maximum number of distinct decisions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The process universe `Π_n`.
    pub fn universe(&self) -> Universe {
        Universe::new(self.n).expect("validated at construction")
    }

    /// `(t, 1, n)`-agreement is t-resilient consensus.
    pub fn is_consensus(&self) -> bool {
        self.k == 1
    }

    /// `(n−1, k, n)`-agreement is the wait-free version.
    pub fn is_wait_free(&self) -> bool {
        self.t == self.n - 1
    }

    /// `(t, n−1, n)`-agreement is t-resilient set agreement.
    pub fn is_set_agreement(&self) -> bool {
        self.k == self.n - 1
    }

    /// `t < k` makes the task solvable in the asynchronous system by the
    /// trivial first-`k`-decide algorithm (Section 4.3's closing remark).
    pub fn is_trivially_solvable(&self) -> bool {
        self.t < self.k
    }
}

impl fmt::Display for AgreementTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})-agreement", self.t, self.k, self.n)
    }
}

/// The outcome of one run of an agreement protocol: per-process inputs and
/// decisions (indexed by process index; `None` = undecided).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgreementOutcome {
    /// Initial value of each process.
    pub inputs: Vec<Value>,
    /// Decision of each process, if it decided during the run.
    pub decisions: Vec<Option<Value>>,
    /// Processes that were correct in the run (never crashed).
    pub correct: ProcSet,
}

/// A violation of the agreement task's properties found by [`check_outcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AgreementViolation {
    /// More than `k` distinct values decided.
    KAgreement {
        /// The distinct decided values.
        values: Vec<Value>,
        /// Maximum allowed count `k`.
        k: usize,
    },
    /// A process decided a value nobody proposed.
    Validity {
        /// Index of the deciding process.
        process: usize,
        /// The invalid decided value.
        value: Value,
    },
    /// A correct process failed to decide although at most `t` crashed.
    Termination {
        /// Indexes of correct processes that did not decide.
        undecided: Vec<usize>,
    },
}

impl fmt::Display for AgreementViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgreementViolation::KAgreement { values, k } => {
                write!(
                    f,
                    "k-agreement violated: {} distinct values (k = {k})",
                    values.len()
                )
            }
            AgreementViolation::Validity { process, value } => {
                write!(
                    f,
                    "validity violated: p{process} decided unproposed value {value}"
                )
            }
            AgreementViolation::Termination { undecided } => {
                write!(
                    f,
                    "termination violated: {} correct processes undecided",
                    undecided.len()
                )
            }
        }
    }
}

/// Checks one run outcome against the task.
///
/// Safety (k-agreement, validity) is checked unconditionally; termination is
/// checked only when the number of faulty processes is at most `t`, exactly
/// as the problem statement conditions it. Returns all violations found.
///
/// # Panics
///
/// Panics if `inputs`/`decisions` lengths differ from `n`.
pub fn check_outcome(task: &AgreementTask, outcome: &AgreementOutcome) -> Vec<AgreementViolation> {
    assert_eq!(outcome.inputs.len(), task.n(), "inputs length must be n");
    assert_eq!(
        outcome.decisions.len(),
        task.n(),
        "decisions length must be n"
    );
    let mut violations = Vec::new();

    // Uniform validity.
    let proposed: BTreeSet<Value> = outcome.inputs.iter().copied().collect();
    for (idx, d) in outcome.decisions.iter().enumerate() {
        if let Some(v) = d {
            if !proposed.contains(v) {
                violations.push(AgreementViolation::Validity {
                    process: idx,
                    value: *v,
                });
            }
        }
    }

    // Uniform k-agreement.
    let decided: BTreeSet<Value> = outcome.decisions.iter().flatten().copied().collect();
    if decided.len() > task.k() {
        violations.push(AgreementViolation::KAgreement {
            values: decided.into_iter().collect(),
            k: task.k(),
        });
    }

    // Termination (conditional on the fault bound).
    let faulty = task.n() - outcome.correct.len();
    if faulty <= task.t() {
        let undecided: Vec<usize> = outcome
            .correct
            .iter()
            .map(|p| p.index())
            .filter(|&idx| outcome.decisions[idx].is_none())
            .collect();
        if !undecided.is_empty() {
            violations.push(AgreementViolation::Termination { undecided });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(t: usize, k: usize, n: usize) -> AgreementTask {
        AgreementTask::new(t, k, n).unwrap()
    }

    fn outcome(
        inputs: &[Value],
        decisions: &[Option<Value>],
        correct: &[usize],
    ) -> AgreementOutcome {
        AgreementOutcome {
            inputs: inputs.to_vec(),
            decisions: decisions.to_vec(),
            correct: ProcSet::from_indices(correct.iter().copied()),
        }
    }

    #[test]
    fn construction_validates() {
        assert!(AgreementTask::new(0, 1, 3).is_err());
        assert!(AgreementTask::new(3, 1, 3).is_err());
        assert!(AgreementTask::new(1, 0, 3).is_err());
        assert!(AgreementTask::new(1, 4, 3).is_err());
        assert!(AgreementTask::new(2, 3, 3).is_ok());
    }

    #[test]
    fn special_cases() {
        assert!(task(2, 1, 4).is_consensus());
        assert!(task(3, 2, 4).is_wait_free());
        assert!(task(1, 3, 4).is_set_agreement());
        assert!(task(1, 2, 4).is_trivially_solvable());
        assert!(!task(2, 2, 4).is_trivially_solvable());
    }

    #[test]
    fn clean_outcome_passes() {
        let t = task(1, 2, 3);
        let o = outcome(&[10, 20, 30], &[Some(10), Some(20), Some(10)], &[0, 1, 2]);
        assert!(check_outcome(&t, &o).is_empty());
    }

    #[test]
    fn detects_k_agreement_violation() {
        let t = task(1, 1, 3);
        let o = outcome(&[10, 20, 30], &[Some(10), Some(20), None], &[0, 1]);
        let v = check_outcome(&t, &o);
        assert!(v
            .iter()
            .any(|x| matches!(x, AgreementViolation::KAgreement { .. })));
    }

    #[test]
    fn detects_validity_violation() {
        let t = task(1, 2, 3);
        let o = outcome(&[10, 20, 30], &[Some(99), None, None], &[0, 1, 2]);
        let v = check_outcome(&t, &o);
        assert!(matches!(
            v.as_slice(),
            [
                AgreementViolation::Validity {
                    process: 0,
                    value: 99
                },
                ..
            ]
        ));
    }

    #[test]
    fn detects_termination_violation_within_fault_budget() {
        let t = task(1, 1, 3);
        // One crash (within t = 1): correct p2 undecided → violation.
        let o = outcome(&[1, 2, 3], &[Some(1), None, None], &[0, 2]);
        let v = check_outcome(&t, &o);
        assert!(v.iter().any(
            |x| matches!(x, AgreementViolation::Termination { undecided } if undecided == &vec![2])
        ));
    }

    #[test]
    fn no_termination_check_beyond_fault_budget() {
        let t = task(1, 1, 3);
        // Two crashes (> t = 1): undecided correct process is allowed.
        let o = outcome(&[1, 2, 3], &[None, None, None], &[0]);
        assert!(check_outcome(&t, &o).is_empty());
    }

    #[test]
    fn uniform_agreement_counts_crashed_decisions() {
        // A process that decided then crashed still counts for k-agreement.
        let t = task(2, 1, 3);
        let o = outcome(&[5, 6, 7], &[Some(5), Some(6), None], &[2]);
        let v = check_outcome(&t, &o);
        assert!(v
            .iter()
            .any(|x| matches!(x, AgreementViolation::KAgreement { .. })));
    }

    #[test]
    fn display_forms() {
        assert_eq!(task(2, 1, 5).to_string(), "(2,1,5)-agreement");
        let viol = AgreementViolation::Validity {
            process: 1,
            value: 9,
        };
        assert!(viol.to_string().contains("validity"));
    }
}
