//! Enumeration of `Π^k_n` — all size-`k` subsets of the process universe.
//!
//! The Figure 2 algorithm keeps a timer and a shared counter row per set
//! `A ∈ Π^k_n`, so we need a deterministic enumeration with ranking and
//! unranking (sets are addressed by rank in register arrays). Enumeration is
//! in *colexicographic bitmask order* (ascending `u64` value), produced with
//! Gosper's hack; ranking uses the combinatorial number system.

use crate::process::Universe;
use crate::procset::{ProcSet, WideProcSet};

/// Binomial coefficient `C(n, k)` computed without overflow for the sizes used
/// here (`n ≤ 64`); saturates at `u64::MAX` if the true value would overflow.
///
/// # Examples
///
/// ```
/// use st_core::subsets::binomial;
///
/// assert_eq!(binomial(5, 2), 10);
/// assert_eq!(binomial(6, 0), 1);
/// assert_eq!(binomial(4, 5), 0);
/// ```
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// Iterator over all size-`k` subsets of `Π_n`, in ascending bitmask order.
///
/// This order coincides with the "arbitrary total order on `Π^k_n`" used for
/// tie-breaking in Figure 2 (see [`ProcSet`]'s `Ord`).
#[derive(Clone, Debug)]
pub struct KSubsets {
    n: usize,
    current: Option<u64>,
    limit: u64,
}

impl KSubsets {
    /// Creates the iterator over `Π^k_n`.
    ///
    /// For `k == 0` the iterator yields exactly the empty set; for `k > n` it
    /// is empty.
    pub fn new(universe: Universe, k: usize) -> Self {
        let n = universe.n();
        let limit = if n == 64 { u64::MAX } else { 1u64 << n };
        let current = if k > n {
            None
        } else if k == 0 {
            Some(0)
        } else {
            // `u64::MAX >> (64 - k)` is the lowest k-bit mask; the plain
            // `(1u64 << k) - 1` overflows for the full set Π^64_64.
            Some(u64::MAX >> (64 - k))
        };
        KSubsets { n, current, limit }
    }

    /// Creates the iterator over `Π^k_n` starting at the subset of the given
    /// rank — the tail of the enumeration a chunked (e.g. multi-threaded)
    /// sweep hands to one worker. `starting_at_rank(u, k, 0)` equals
    /// `new(u, k)`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= C(n, k)` (via [`unrank`]) — except `rank == 0`,
    /// which is always valid and yields the empty iterator when `k > n`.
    pub fn starting_at_rank(universe: Universe, k: usize, rank: u64) -> Self {
        if rank == 0 {
            return KSubsets::new(universe, k);
        }
        let n = universe.n();
        let limit = if n == 64 { u64::MAX } else { 1u64 << n };
        KSubsets {
            n,
            current: Some(unrank(universe, k, rank).bits()),
            limit,
        }
    }
}

impl Iterator for KSubsets {
    type Item = ProcSet;

    fn next(&mut self) -> Option<ProcSet> {
        let v = self.current?;
        // Advance with Gosper's hack to the next bitmask with the same
        // population count.
        self.current = if v == 0 {
            None
        } else {
            let c = v & v.wrapping_neg();
            let r = v.wrapping_add(c);
            if r == 0 {
                None // overflow past 64 bits
            } else {
                let next = (((r ^ v) >> 2) / c) | r;
                // `limit` is a power of two (or MAX for n = 64); masks with a
                // set bit at or beyond position n are out of the universe.
                if self.n < 64 && next >= self.limit {
                    None
                } else {
                    Some(next)
                }
            }
        };
        Some(ProcSet::from_bits(v))
    }
}

/// Enumerates `Π^k_n` into a vector, in ascending bitmask order.
///
/// # Examples
///
/// ```
/// use st_core::{subsets::k_subsets, Universe, ProcSet};
///
/// let u = Universe::new(4).unwrap();
/// let all = k_subsets(u, 2);
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0], ProcSet::from_indices([0, 1]));
/// ```
pub fn k_subsets(universe: Universe, k: usize) -> Vec<ProcSet> {
    KSubsets::new(universe, k).collect()
}

/// Returns the rank of `set` within the ascending-bitmask enumeration of
/// `Π^k_n`, where `k = set.len()`.
///
/// Ranks are the indices used to address per-set register rows in Figure 2.
///
/// # Examples
///
/// ```
/// use st_core::{subsets::{k_subsets, rank}, Universe};
///
/// let u = Universe::new(5).unwrap();
/// for (i, s) in k_subsets(u, 3).iter().enumerate() {
///     assert_eq!(rank(*s) as usize, i);
/// }
/// ```
pub fn rank(set: ProcSet) -> u64 {
    // Combinatorial number system: for members m_1 < m_2 < ... < m_k,
    // rank = Σ C(m_i, i). This matches ascending-bitmask order because for
    // fixed popcount, bitmask order equals colex order on member lists.
    let mut r = 0u64;
    for (i, p) in set.iter().enumerate() {
        r += binomial(p.index(), i + 1);
    }
    r
}

/// Inverse of [`rank`]: returns the `rank`-th size-`k` subset of `Π_n`.
///
/// # Panics
///
/// Panics if `rank >= C(n, k)`.
pub fn unrank(universe: Universe, k: usize, rank: u64) -> ProcSet {
    let n = universe.n();
    assert!(
        rank < binomial(n, k),
        "rank {rank} out of range for C({n},{k})"
    );
    let mut remaining = rank;
    let mut set = ProcSet::EMPTY;
    let mut kk = k;
    // Choose members from the largest down: the largest member m is the
    // greatest value with C(m, k) <= remaining.
    while kk > 0 {
        let mut m = kk - 1;
        while binomial(m + 1, kk) <= remaining {
            m += 1;
        }
        remaining -= binomial(m, kk);
        set.insert(crate::process::ProcessId::new(m));
        kk -= 1;
    }
    set
}

/// Iterator over all size-`k` subsets of `Π_n` at bitset width `W`, in the
/// same colexicographic (ascending-bitmask) order as [`KSubsets`].
///
/// [`KSubsets`] stays the single-`u64` Gosper's-hack enumerator of the
/// `n ≤ 64` regime; this iterator walks the member-index list directly
/// (colex successor), which works at any width and any `n ≤ 64·W`. For
/// `W = 1` the two enumerations are element-for-element identical (a
/// standing differential test in `crates/core/tests`).
#[derive(Clone, Debug)]
pub struct WideKSubsets<const W: usize> {
    n: usize,
    /// Member indices of the current subset, strictly ascending; `None`
    /// once the enumeration is exhausted.
    current: Option<Vec<usize>>,
}

impl<const W: usize> WideKSubsets<W> {
    /// Creates the iterator over `Π^k_n`.
    ///
    /// For `k == 0` the iterator yields exactly the empty set; for `k > n`
    /// it is empty.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64·W` (the bitset capacity at this width).
    pub fn new(universe: Universe, k: usize) -> Self {
        let n = universe.n();
        assert!(
            n <= WideProcSet::<W>::CAPACITY,
            "Π^k_{n} exceeds the bitset capacity ({})",
            WideProcSet::<W>::CAPACITY,
        );
        let current = if k > n { None } else { Some((0..k).collect()) };
        WideKSubsets { n, current }
    }

    /// Creates the iterator over `Π^k_n` starting at the subset of the
    /// given rank, like [`KSubsets::starting_at_rank`].
    ///
    /// # Panics
    ///
    /// Panics if `rank >= C(n, k)` (via [`wide_unrank`]) — except
    /// `rank == 0`, which is always valid and yields the empty iterator
    /// when `k > n`.
    pub fn starting_at_rank(universe: Universe, k: usize, rank: u64) -> Self {
        if rank == 0 {
            return WideKSubsets::new(universe, k);
        }
        let start: WideProcSet<W> = wide_unrank(universe, k, rank);
        WideKSubsets {
            n: universe.n(),
            current: Some(start.iter().map(|p| p.index()).collect()),
        }
    }
}

impl<const W: usize> Iterator for WideKSubsets<W> {
    type Item = WideProcSet<W>;

    fn next(&mut self) -> Option<WideProcSet<W>> {
        let idx = self.current.as_mut()?;
        let set = WideProcSet::from_indices(idx.iter().copied());
        // Colex successor: bump the first member with headroom below its
        // successor (or below n for the last member) and reset everything
        // beneath it to the lowest positions. This visits subsets in
        // ascending-bitmask order, matching Gosper's hack for W = 1.
        let k = idx.len();
        let mut advanced = false;
        for i in 0..k {
            let ceiling = if i + 1 < k { idx[i + 1] } else { self.n };
            if idx[i] + 1 < ceiling {
                idx[i] += 1;
                for (j, slot) in idx.iter_mut().enumerate().take(i) {
                    *slot = j;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            self.current = None;
        }
        Some(set)
    }
}

/// Enumerates `Π^k_n` at width `W` into a vector, in ascending bitmask
/// order — the wide analogue of [`k_subsets`]. The vector index of each
/// subset equals its [`wide_rank`].
///
/// # Examples
///
/// ```
/// use st_core::{subsets::wide_k_subsets, Universe, WideProcSet};
///
/// let u = Universe::new(100).unwrap();
/// let all: Vec<WideProcSet<2>> = wide_k_subsets(u, 1);
/// assert_eq!(all.len(), 100);
/// assert_eq!(all[99], WideProcSet::from_indices([99]));
/// ```
pub fn wide_k_subsets<const W: usize>(universe: Universe, k: usize) -> Vec<WideProcSet<W>> {
    WideKSubsets::new(universe, k).collect()
}

/// Returns the rank of `set` within the ascending-bitmask enumeration of
/// `Π^k_n` at width `W`, where `k = set.len()` — the wide analogue of
/// [`rank`], and equal to it for `W = 1`.
pub fn wide_rank<const W: usize>(set: WideProcSet<W>) -> u64 {
    let mut r = 0u64;
    for (i, p) in set.iter().enumerate() {
        r = r.saturating_add(binomial(p.index(), i + 1));
    }
    r
}

/// Inverse of [`wide_rank`]: returns the `rank`-th size-`k` subset of
/// `Π_n` at width `W`.
///
/// # Panics
///
/// Panics if `rank >= C(n, k)`.
pub fn wide_unrank<const W: usize>(universe: Universe, k: usize, rank: u64) -> WideProcSet<W> {
    let n = universe.n();
    assert!(
        rank < binomial(n, k),
        "rank {rank} out of range for C({n},{k})"
    );
    let mut remaining = rank;
    let mut set = WideProcSet::EMPTY;
    let mut kk = k;
    // Choose members from the largest down: the largest member m is the
    // greatest value with C(m, k) <= remaining.
    while kk > 0 {
        let mut m = kk - 1;
        while binomial(m + 1, kk) <= remaining {
            m += 1;
        }
        remaining -= binomial(m, kk);
        set.insert(crate::process::ProcessId::new(m));
        kk -= 1;
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Universe;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(10, 1), 10);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(52, 5), 2_598_960);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
        assert_eq!(binomial(3, 4), 0);
    }

    #[test]
    fn enumeration_counts() {
        for n in 1..=8 {
            for k in 0..=n {
                let v = k_subsets(u(n), k);
                assert_eq!(v.len() as u64, binomial(n, k), "n={n} k={k}");
                for s in &v {
                    assert_eq!(s.len(), k);
                }
            }
        }
    }

    #[test]
    fn enumeration_is_sorted_and_unique() {
        let v = k_subsets(u(7), 3);
        for w in v.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn k_zero_yields_empty_set() {
        let v = k_subsets(u(4), 0);
        assert_eq!(v, vec![ProcSet::EMPTY]);
    }

    #[test]
    fn k_equals_n_yields_full_set() {
        let v = k_subsets(u(5), 5);
        assert_eq!(v, vec![ProcSet::full(u(5))]);
    }

    #[test]
    fn k_greater_than_n_is_empty() {
        assert!(k_subsets(u(3), 4).is_empty());
    }

    #[test]
    fn rank_unrank_roundtrip() {
        for n in 1..=9 {
            for k in 1..=n {
                for (i, s) in KSubsets::new(u(n), k).enumerate() {
                    assert_eq!(rank(s), i as u64, "n={n} k={k} s={s}");
                    assert_eq!(unrank(u(n), k, i as u64), s);
                }
            }
        }
    }

    #[test]
    fn full_set_of_64_is_enumerable() {
        // Regression: k == 64 used to compute `(1u64 << 64) - 1`, a shift
        // overflow (debug panic, empty iterator in release). Π^64_64 is the
        // single full set.
        let v = k_subsets(u(64), 64);
        assert_eq!(v, vec![ProcSet::full(u(64))]);
        assert_eq!(rank(v[0]), 0);
    }

    #[test]
    fn starting_at_rank_resumes_enumeration() {
        for n in [5, 7] {
            for k in 1..=n {
                let all = k_subsets(u(n), k);
                let starts = [0u64, 1, all.len() as u64 / 2, all.len() as u64 - 1];
                for start in starts.into_iter().filter(|&r| r < all.len() as u64) {
                    let tail: Vec<ProcSet> = KSubsets::starting_at_rank(u(n), k, start).collect();
                    assert_eq!(tail, all[start as usize..], "n={n} k={k} start={start}");
                }
            }
        }
        // Rank 0 with k > n is the empty enumeration, like `new`.
        assert_eq!(KSubsets::starting_at_rank(u(3), 4, 0).count(), 0);
    }

    #[test]
    fn full_width_subsets() {
        // n = 64 exercises the overflow-guarded Gosper step.
        let mut it = KSubsets::new(u(64), 63);
        let mut count = 0;
        while it.next().is_some() {
            count += 1;
        }
        assert_eq!(count, 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_out_of_range_panics() {
        let _ = unrank(u(4), 2, 6);
    }

    #[test]
    fn wide_matches_gosper_at_w1() {
        // The wide colex-successor enumeration must be element-for-element
        // identical to the Gosper's-hack enumeration on shared ground.
        for n in 1..=8 {
            for k in 0..=n + 1 {
                let narrow = k_subsets(u(n), k);
                let wide: Vec<WideProcSet<1>> = wide_k_subsets(u(n), k);
                assert_eq!(narrow, wide, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn wide_enumeration_beyond_64() {
        let universe = u(100);
        let singles: Vec<WideProcSet<2>> = wide_k_subsets(universe, 1);
        assert_eq!(singles.len(), 100);
        assert_eq!(singles[0], WideProcSet::from_indices([0]));
        assert_eq!(singles[99], WideProcSet::from_indices([99]));

        let pairs: Vec<WideProcSet<2>> = wide_k_subsets(u(66), 2);
        assert_eq!(pairs.len() as u64, binomial(66, 2));
        for w in pairs.windows(2) {
            assert!(w[0] < w[1], "colex order must be ascending-bitmask order");
        }
    }

    #[test]
    fn wide_rank_unrank_roundtrip() {
        for (i, s) in WideKSubsets::<2>::new(u(66), 2).enumerate() {
            assert_eq!(wide_rank(s), i as u64);
            assert_eq!(wide_unrank::<2>(u(66), 2, i as u64), s);
        }
    }

    #[test]
    fn wide_starting_at_rank_resumes() {
        let all: Vec<WideProcSet<2>> = wide_k_subsets(u(70), 2);
        for start in [0u64, 1, all.len() as u64 / 2, all.len() as u64 - 1] {
            let tail: Vec<WideProcSet<2>> =
                WideKSubsets::starting_at_rank(u(70), 2, start).collect();
            assert_eq!(tail, all[start as usize..], "start={start}");
        }
        assert_eq!(WideKSubsets::<1>::starting_at_rank(u(3), 4, 0).count(), 0);
    }

    #[test]
    fn wide_k_zero_and_k_equals_n() {
        assert_eq!(wide_k_subsets::<2>(u(80), 0), vec![WideProcSet::<2>::EMPTY]);
        let full: Vec<WideProcSet<2>> = wide_k_subsets(u(80), 80);
        assert_eq!(full, vec![WideProcSet::<2>::full(u(80))]);
        assert!(wide_k_subsets::<1>(u(3), 4).is_empty());
    }
}
