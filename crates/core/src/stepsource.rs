//! Abstraction over (possibly infinite) schedules as step streams.
//!
//! Finite [`Schedule`]s are analysis objects; *runs* are driven by a
//! [`StepSource`], which may be an infinite generator (see the `st-sched`
//! crate) or a replay of a finite schedule. The simulator pulls one process
//! id per step until the source is exhausted or a stop condition fires.

use crate::process::ProcessId;
use crate::schedule::Schedule;

/// A stream of scheduled steps.
///
/// Implementors may be infinite (always `Some`) or finite (eventually
/// `None`); the simulator additionally enforces its own step cap.
pub trait StepSource {
    /// Produces the process taking the next step, or `None` if the schedule
    /// is over.
    fn next_step(&mut self) -> Option<ProcessId>;

    /// Collects the next `len` steps into a finite [`Schedule`] (shorter if
    /// the source ends first). Useful for analyzing a generator's output
    /// with the timeliness analyzer.
    fn take_schedule(&mut self, len: usize) -> Schedule
    where
        Self: Sized,
    {
        let mut s = Schedule::new();
        for _ in 0..len {
            match self.next_step() {
                Some(p) => s.push(p),
                None => break,
            }
        }
        s
    }
}

/// Replays a finite [`Schedule`] as a [`StepSource`].
///
/// # Examples
///
/// ```
/// use st_core::{Schedule, stepsource::{ScheduleCursor, StepSource}};
///
/// let s = Schedule::from_indices([0, 1, 2]);
/// let mut cur = ScheduleCursor::new(s.clone());
/// assert_eq!(cur.take_schedule(10), s);
/// assert!(cur.next_step().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ScheduleCursor {
    schedule: Schedule,
    pos: usize,
}

impl ScheduleCursor {
    /// Creates a cursor at the start of `schedule`.
    pub fn new(schedule: Schedule) -> Self {
        ScheduleCursor { schedule, pos: 0 }
    }

    /// Steps remaining.
    pub fn remaining(&self) -> usize {
        self.schedule.len() - self.pos
    }
}

impl StepSource for ScheduleCursor {
    fn next_step(&mut self) -> Option<ProcessId> {
        if self.pos < self.schedule.len() {
            let p = self.schedule.step(self.pos);
            self.pos += 1;
            Some(p)
        } else {
            None
        }
    }
}

/// Adapts a closure into a [`StepSource`].
pub struct FromFn<F>(pub F);

impl<F: FnMut() -> Option<ProcessId>> StepSource for FromFn<F> {
    fn next_step(&mut self) -> Option<ProcessId> {
        (self.0)()
    }
}

impl<S: StepSource + ?Sized> StepSource for &mut S {
    fn next_step(&mut self) -> Option<ProcessId> {
        (**self).next_step()
    }
}

impl<S: StepSource + ?Sized> StepSource for Box<S> {
    fn next_step(&mut self) -> Option<ProcessId> {
        (**self).next_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_replays_exactly() {
        let s = Schedule::from_indices([2, 0, 1, 0]);
        let mut c = ScheduleCursor::new(s.clone());
        let mut collected = Vec::new();
        while let Some(p) = c.next_step() {
            collected.push(p);
        }
        assert_eq!(Schedule::from_steps(collected), s);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn take_schedule_stops_at_end() {
        let mut c = ScheduleCursor::new(Schedule::from_indices([0, 1]));
        assert_eq!(c.take_schedule(1).len(), 1);
        assert_eq!(c.remaining(), 1);
        assert_eq!(c.take_schedule(10).len(), 1);
    }

    #[test]
    fn from_fn_adapter() {
        let mut count = 0;
        let mut src = FromFn(move || {
            count += 1;
            if count <= 3 {
                Some(ProcessId::new(count % 2))
            } else {
                None
            }
        });
        assert_eq!(src.take_schedule(10), Schedule::from_indices([1, 0, 1]));
    }

    #[test]
    fn heterogeneous_boxed_sources_drive_without_generics() {
        // The campaign engine's shape: a grid of differently-typed
        // generators behind one trait object, driven (and `take_schedule`d —
        // `Box<dyn StepSource>` is `Sized`) with no generic parameter.
        let mut grid: Vec<Box<dyn StepSource>> = vec![
            Box::new(ScheduleCursor::new(Schedule::from_indices([0, 1]))),
            Box::new(FromFn({
                let mut left = 2;
                move || {
                    left -= 1;
                    (left >= 0).then(|| ProcessId::new(2))
                }
            })),
        ];
        let taken: Vec<Schedule> = grid.iter_mut().map(|g| g.take_schedule(8)).collect();
        assert_eq!(taken[0], Schedule::from_indices([0, 1]));
        assert_eq!(taken[1], Schedule::from_indices([2, 2]));
    }

    #[test]
    fn mut_ref_and_box_forward() {
        let mut c = ScheduleCursor::new(Schedule::from_indices([0, 1, 2]));
        {
            let r = &mut c;
            assert_eq!(r.next_step(), Some(ProcessId::new(0)));
        }
        let mut b: Box<ScheduleCursor> = Box::new(c);
        assert_eq!(b.next_step(), Some(ProcessId::new(1)));
    }
}
