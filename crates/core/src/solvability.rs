//! The paper's main result, Theorem 27, as an executable predicate.
//!
//! > **Theorem 27.** For every `t, k, n` such that `1 ≤ k ≤ t ≤ n − 1` and
//! > every `i, j` such that `1 ≤ i ≤ j ≤ n`, the `(t,k,n)`-agreement problem
//! > can be solved in system `S^i_{j,n}` **iff** `i ≤ k` and
//! > `j − i ≥ t + 1 − k`.
//!
//! Together with the trivial-solvability regime `t < k` (Corollary 25's
//! remark), this classifies every cell of the `(i, j, t, k, n)` grid. The
//! experiment harness (E5) compares this predicate against observed protocol
//! behaviour on every cell.

use std::fmt;

use crate::agreementspec::AgreementTask;
use crate::error::ModelError;
use crate::system::SystemSpec;

/// Why a task is unsolvable in a system (the two failing constraints of
/// Theorem 27; both may fail at once, in which case the `i > k` branch is
/// reported, matching the case analysis in the paper's proof).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnsolvableReason {
    /// `i > k`: the guaranteed timely set is larger than the agreement
    /// degree. Proved impossible by the BG-simulation reduction
    /// (Theorem 26 part 2).
    TimelySetTooLarge,
    /// `j − i < t + 1 − k`: the synchrony "spread" is too small for the
    /// resilience demanded. Proved impossible by the fictitious-crash
    /// reduction (Theorem 27 case 2b).
    SpreadTooSmall,
}

impl fmt::Display for UnsolvableReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsolvableReason::TimelySetTooLarge => {
                write!(f, "i > k (timely set larger than agreement degree)")
            }
            UnsolvableReason::SpreadTooSmall => {
                write!(f, "j - i < t + 1 - k (synchrony spread too small)")
            }
        }
    }
}

/// Verdict of the Theorem 27 predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Solvability {
    /// Solvable; if `trivially` is set, `t < k` makes the task solvable even
    /// in the fully asynchronous system (no synchrony needed).
    Solvable {
        /// `true` iff `t < k` (asynchronously solvable).
        trivially: bool,
    },
    /// Unsolvable, with the violated constraint.
    Unsolvable(UnsolvableReason),
}

impl Solvability {
    /// Returns `true` for either solvable variant.
    pub fn is_solvable(&self) -> bool {
        matches!(self, Solvability::Solvable { .. })
    }
}

impl fmt::Display for Solvability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Solvability::Solvable { trivially: true } => write!(f, "solvable (trivially, t < k)"),
            Solvability::Solvable { trivially: false } => write!(f, "solvable"),
            Solvability::Unsolvable(r) => write!(f, "unsolvable: {r}"),
        }
    }
}

/// Decides whether `(t,k,n)`-agreement is solvable in `S^i_{j,n}`
/// (Theorem 27, extended with the trivial `t < k` regime).
///
/// # Errors
///
/// Returns [`ModelError::MismatchedUniverse`] if the task and system disagree
/// on `n`.
///
/// # Examples
///
/// ```
/// use st_core::{solvability, AgreementTask, SystemSpec};
///
/// let task = AgreementTask::new(2, 2, 5).unwrap(); // (t=2, k=2, n=5)
/// let sys = SystemSpec::new(2, 3, 5).unwrap();     // S^2_{3,5}
/// assert!(solvability(&task, &sys).unwrap().is_solvable());
///
/// // Strengthening resilience by one flips the verdict (the separation the
/// // paper is about): (3,2,5) is NOT solvable in S^2_{3,5}.
/// let harder = AgreementTask::new(3, 2, 5).unwrap();
/// assert!(!solvability(&harder, &sys).unwrap().is_solvable());
/// ```
pub fn solvability(task: &AgreementTask, sys: &SystemSpec) -> Result<Solvability, ModelError> {
    if task.n() != sys.n() {
        return Err(ModelError::MismatchedUniverse {
            task_n: task.n(),
            system_n: sys.n(),
        });
    }
    if task.t() < task.k() {
        // t < k: solvable in the asynchronous system (footnote to
        // Corollary 25), hence in every S^i_{j,n}.
        return Ok(Solvability::Solvable { trivially: true });
    }
    let (i, j, t, k) = (sys.i(), sys.j(), task.t(), task.k());
    if i > k {
        Ok(Solvability::Unsolvable(UnsolvableReason::TimelySetTooLarge))
    } else if j - i < (t + 1) - k {
        Ok(Solvability::Unsolvable(UnsolvableReason::SpreadTooSmall))
    } else {
        Ok(Solvability::Solvable { trivially: false })
    }
}

/// The canonical system that "closely matches" a task: `S^k_{t+1,n}`
/// (Theorem 24: `(t,k,n)`-agreement is solvable there; Theorem 27: neither
/// `(t+1,k,n)` nor `(t,k−1,n)` is).
///
/// # Errors
///
/// Returns an error when `t + 1 > n` would make the spec ill-formed, which
/// cannot happen for valid tasks (`t ≤ n − 1`), or when `k > t + 1` (the
/// trivial regime, where no matching system is defined).
pub fn matching_system(task: &AgreementTask) -> Result<SystemSpec, ModelError> {
    SystemSpec::new(task.k(), task.t() + 1, task.n())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(t: usize, k: usize, n: usize) -> AgreementTask {
        AgreementTask::new(t, k, n).unwrap()
    }

    fn sys(i: usize, j: usize, n: usize) -> SystemSpec {
        SystemSpec::new(i, j, n).unwrap()
    }

    #[test]
    fn theorem24_region_is_solvable() {
        // (t,k,n)-agreement solvable in S^k_{t+1,n} for all 1 ≤ k ≤ t ≤ n−1.
        for n in 2..=8 {
            for t in 1..n {
                for k in 1..=t {
                    let s = matching_system(&task(t, k, n)).unwrap();
                    assert!(
                        solvability(&task(t, k, n), &s).unwrap().is_solvable(),
                        "t={t} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn separation_from_stronger_resilience() {
        // S^k_{t+1,n} does NOT solve (t+1, k, n)-agreement (needs t+1 ≤ n−1).
        for n in 3..=8 {
            for t in 1..n - 1 {
                for k in 1..=t {
                    let s = sys(k, t + 1, n);
                    let v = solvability(&task(t + 1, k, n), &s).unwrap();
                    assert_eq!(
                        v,
                        Solvability::Unsolvable(UnsolvableReason::SpreadTooSmall),
                        "t={t} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn separation_from_stronger_agreement() {
        // S^k_{t+1,n} does NOT solve (t, k−1, n)-agreement (needs k ≥ 2).
        for n in 3..=8 {
            for t in 2..n {
                for k in 2..=t {
                    let s = sys(k, t + 1, n);
                    let v = solvability(&task(t, k - 1, n), &s).unwrap();
                    assert_eq!(
                        v,
                        Solvability::Unsolvable(UnsolvableReason::TimelySetTooLarge),
                        "t={t} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem26_boundary() {
        // (k,k,n) solvable in S^k_{n,n}, unsolvable in S^{k+1}_{n,n}.
        for n in 2..=8 {
            for k in 1..n {
                assert!(solvability(&task(k, k, n), &sys(k, n, n))
                    .unwrap()
                    .is_solvable());
                if k < n {
                    assert!(!solvability(&task(k, k, n), &sys(k + 1, n, n))
                        .unwrap()
                        .is_solvable());
                }
            }
        }
    }

    #[test]
    fn asynchronous_system_solves_only_trivial() {
        // In S^i_{i,n} (asynchronous), (t,k,n) with k ≤ t is unsolvable:
        // j − i = 0 < t + 1 − k.
        for n in 2..=6 {
            for i in 1..=n {
                for t in 1..n {
                    for k in 1..=t {
                        assert!(!solvability(&task(t, k, n), &sys(i, i, n))
                            .unwrap()
                            .is_solvable());
                    }
                }
            }
        }
        // ...while t < k is trivially solvable everywhere.
        assert_eq!(
            solvability(&task(1, 2, 4), &sys(3, 3, 4)).unwrap(),
            Solvability::Solvable { trivially: true }
        );
    }

    #[test]
    fn mismatched_universe_is_an_error() {
        assert!(matches!(
            solvability(&task(1, 1, 4), &sys(1, 2, 5)),
            Err(ModelError::MismatchedUniverse { .. })
        ));
    }

    #[test]
    fn exhaustive_iff_matches_inequalities() {
        // Cross-check the predicate against the raw inequalities on the full
        // grid for n = 6.
        let n = 6;
        for t in 1..n {
            for k in 1..=t {
                for i in 1..=n {
                    for j in i..=n {
                        let v = solvability(&task(t, k, n), &sys(i, j, n)).unwrap();
                        let expected = i <= k && j - i >= t + 1 - k;
                        assert_eq!(v.is_solvable(), expected, "t={t} k={k} i={i} j={j}");
                    }
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Solvability::Solvable { trivially: false }.to_string(),
            "solvable"
        );
        assert!(Solvability::Unsolvable(UnsolvableReason::SpreadTooSmall)
            .to_string()
            .contains("spread"));
    }
}
