//! Error types for the model layer.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing model objects with invalid parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// Universe size out of range (`n == 0` or `n > 64`).
    InvalidUniverse {
        /// Requested universe size.
        n: usize,
    },
    /// Process index outside the universe.
    ProcessOutOfRange {
        /// Requested index.
        index: usize,
        /// Universe size.
        n: usize,
    },
    /// System parameters violating `1 ≤ i ≤ j ≤ n`.
    InvalidSystem {
        /// Timely-set size.
        i: usize,
        /// Observed-set size.
        j: usize,
        /// Universe size.
        n: usize,
    },
    /// Task parameters violating `1 ≤ t ≤ n−1` or `1 ≤ k ≤ n`.
    InvalidTask {
        /// Resilience.
        t: usize,
        /// Agreement degree.
        k: usize,
        /// Universe size.
        n: usize,
    },
    /// A task and a system with different universe sizes were combined.
    MismatchedUniverse {
        /// The task's `n`.
        task_n: usize,
        /// The system's `n`.
        system_n: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidUniverse { n } => {
                write!(f, "invalid universe size {n} (must be 1..=64)")
            }
            ModelError::ProcessOutOfRange { index, n } => {
                write!(f, "process index {index} out of range for universe of {n}")
            }
            ModelError::InvalidSystem { i, j, n } => {
                write!(
                    f,
                    "invalid system S^{i}_{{{j},{n}}}: requires 1 <= i <= j <= n"
                )
            }
            ModelError::InvalidTask { t, k, n } => {
                write!(
                    f,
                    "invalid task ({t},{k},{n})-agreement: requires 1 <= t <= n-1 and 1 <= k <= n"
                )
            }
            ModelError::MismatchedUniverse { task_n, system_n } => {
                write!(f, "task has n = {task_n} but system has n = {system_n}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ModelError::InvalidSystem { i: 3, j: 2, n: 4 };
        assert!(e.to_string().contains("S^3_{2,4}"));
        let e = ModelError::InvalidTask { t: 0, k: 1, n: 3 };
        assert!(e.to_string().contains("(0,1,3)"));
        let e = ModelError::MismatchedUniverse {
            task_n: 3,
            system_n: 4,
        };
        assert!(e.to_string().contains("n = 3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error>() {}
        assert_err::<ModelError>();
    }
}
