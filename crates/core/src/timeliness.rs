//! Set timeliness: Definition 1 of the paper, and its analyzer.
//!
//! > **Definition 1.** `P` is timely with respect to `Q` in `S` if there is an
//! > integer `i` such that every sequence of consecutive steps of `S` that
//! > contains `i` occurrences of processes in `Q` contains a process in `P`.
//!
//! On a finite schedule the property is characterized by the *maximal P-free
//! intervals*: contiguous runs of steps containing no member of `P`. `P` is
//! timely wrt `Q` with bound `b` iff no `P`-free interval contains `b` or more
//! `Q`-steps, so the least valid bound is
//! `1 + max_{P-free interval} (#Q-steps in the interval)`.
//!
//! For an *infinite* schedule, timeliness holds iff that quantity is bounded
//! over all prefixes. Experiments therefore measure the *empirical bound* on
//! growing prefixes: a timely pair plateaus, a non-timely pair grows without
//! bound (this is exactly the Figure 1 phenomenon, reproduced in experiment
//! E1).
//!
//! # The sweep engine and its complexity
//!
//! Sweeping `Π^i_n × Π^j_n` over a schedule of length `L` is the hot path of
//! the Figure 1 and Theorem 27 experiments. The naive loop (kept in
//! [`naive`] as the differential-testing reference) costs
//!
//! ```text
//! O( C(n,i) · [ L  +  C(n,j) · (R·j + L) ] )
//! ```
//!
//! per `(i, j)` cell — the trailing `L` is a full-schedule rescan per
//! *accepted* `Q` (to compute its exact bound), and every `P` re-allocates
//! its run table. [`TimelinessAnalyzer`] removes both: it decomposes the
//! schedule into its maximal `P`-free **run histograms** once per `P`, into
//! flat scratch buffers that are reused across the whole sweep (zero
//! allocations at steady state), deduplicates identical histograms, and
//! answers every `Q`-query — cap test *and* exact bound — from the
//! decomposition:
//!
//! ```text
//! O( C(n,i) · [ L + R·log R  +  C(n,j) · U'·j ] )
//! ```
//!
//! where `R` is the number of maximal `P`-free runs, `U ≤ R` the number of
//! *distinct* run histograms, and `U' ≤ U` the prefix actually inspected:
//! histograms are kept sorted by descending total step count, so both
//! queries stop at the first histogram whose total cannot beat the running
//! answer (`Σ_{q∈Q} h[q] ≤ Σ h`). On periodic or near-synchronous schedules
//! `U` is a small constant and the per-`Q` cost collapses to `O(j)`.
//! A matrix sweep ([`sweep_matrix`]) additionally shares each `P`
//! decomposition across **all** `j` columns and spreads the `Π^i_n` outer
//! loop over threads ([`std::thread::scope`]; this environment has no
//! external dependencies, so no rayon). Workers pull fixed-size rank chunks
//! from a shared atomic counter — work stealing, since per-`P` cost varies
//! wildly with how early the descending-total scan exits — and chunk
//! results merge in ascending rank order, so the output is deterministic
//! and identical to the sequential sweep. The pre-work-stealing static
//! split is kept as [`sweep_matrix_static_split`] for the recorded bench
//! trajectory.

use crate::process::Universe;
use crate::procset::ProcSet;
use crate::schedule::Schedule;
use crate::subsets::{binomial, KSubsets};

/// Largest number of `Q`-steps found in any maximal `P`-free interval of `s`.
///
/// This is the witness quantity for Definition 1: `P` is timely wrt `Q` with
/// bound `b` iff this value is `< b`. Steps by processes in `P ∩ Q` terminate
/// a `P`-free interval (they are `P`-steps).
///
/// # Examples
///
/// ```
/// use st_core::{timeliness::max_q_steps_in_p_free_interval, Schedule, ProcSet};
///
/// // q q p q — the leading P-free interval has two Q-steps.
/// let s = Schedule::from_indices([1, 1, 0, 1]);
/// let p = ProcSet::from_indices([0]);
/// let q = ProcSet::from_indices([1]);
/// assert_eq!(max_q_steps_in_p_free_interval(&s, p, q), 2);
/// ```
pub fn max_q_steps_in_p_free_interval(s: &Schedule, p: ProcSet, q: ProcSet) -> usize {
    let mut max_run = 0usize;
    let mut current = 0usize;
    for step in s.iter() {
        if p.contains(step) {
            current = 0;
        } else if q.contains(step) {
            current += 1;
            if current > max_run {
                max_run = current;
            }
        }
    }
    max_run
}

/// Tests Definition 1 with an explicit bound on a finite schedule: every
/// contiguous interval containing `bound` `Q`-steps must contain a `P`-step.
///
/// # Panics
///
/// Panics if `bound == 0` (Definition 1 quantifies over positive integers).
pub fn is_timely_with_bound(s: &Schedule, p: ProcSet, q: ProcSet, bound: usize) -> bool {
    assert!(bound > 0, "timeliness bound must be positive");
    max_q_steps_in_p_free_interval(s, p, q) < bound
}

/// The least bound `b` for which `P` is timely wrt `Q` on this finite
/// schedule (the *empirical bound*).
///
/// On a prefix of an infinite schedule this is a lower estimate of the true
/// bound; it is exact in the limit. A pair whose empirical bound keeps growing
/// with the prefix length is not timely in the infinite schedule.
///
/// # Examples
///
/// ```
/// use st_core::{timeliness::empirical_bound, Schedule, ProcSet};
///
/// let s = Schedule::from_indices([0, 1, 0, 1, 0, 1]);
/// let p = ProcSet::from_indices([0]);
/// let q = ProcSet::from_indices([1]);
/// assert_eq!(empirical_bound(&s, p, q), 2);
/// ```
pub fn empirical_bound(s: &Schedule, p: ProcSet, q: ProcSet) -> usize {
    max_q_steps_in_p_free_interval(s, p, q) + 1
}

/// Empirical bounds of several `(P, Q)` pairs on several growing prefixes of
/// one schedule, in a **single pass** over the steps.
///
/// `checkpoints` must be ascending; each entry is clamped to `s.len()`.
/// Returns one row per checkpoint, each row holding the bound of every pair
/// on that prefix — `result[c][k] == empirical_bound(&s.prefix(checkpoints[c]),
/// pairs[k].0, pairs[k].1)`. This is the E1 (Figure 1) access pattern: the
/// naive form rescans the schedule `pairs × checkpoints` times, this scans it
/// once with `O(pairs)` state.
///
/// # Panics
///
/// Panics if `checkpoints` is not ascending.
pub fn prefix_bounds(
    s: &Schedule,
    pairs: &[(ProcSet, ProcSet)],
    checkpoints: &[usize],
) -> Vec<Vec<usize>> {
    assert!(
        checkpoints.windows(2).all(|w| w[0] <= w[1]),
        "checkpoints must be ascending"
    );
    let mut current = vec![0usize; pairs.len()];
    let mut max = vec![0usize; pairs.len()];
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut next_cp = checkpoints.iter().copied().peekable();
    let emit = |max: &[usize], out: &mut Vec<Vec<usize>>| {
        out.push(max.iter().map(|&m| m + 1).collect());
    };
    for (pos, step) in s.iter().enumerate() {
        while next_cp.peek().is_some_and(|&cp| cp.min(s.len()) <= pos) {
            next_cp.next();
            emit(&max, &mut out);
        }
        for (k, &(p, q)) in pairs.iter().enumerate() {
            if p.contains(step) {
                current[k] = 0;
            } else if q.contains(step) {
                current[k] += 1;
                if current[k] > max[k] {
                    max[k] = current[k];
                }
            }
        }
    }
    for _ in next_cp {
        emit(&max, &mut out);
    }
    out
}

/// Evidence that a pair is (empirically) timely: the pair plus its bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelyPair {
    /// The timely set `P`.
    pub p: ProcSet,
    /// The observed set `Q`.
    pub q: ProcSet,
    /// Empirical bound on the analyzed prefix.
    pub bound: usize,
}

/// The zero-allocation timeliness sweep engine.
///
/// Holds the maximal-`P`-free-run decomposition of one schedule for one `P`
/// at a time, in flat buffers that are reused across calls: after the first
/// [`decompose`](Self::decompose) at a given schedule size, subsequent
/// decompositions allocate nothing. All queries
/// ([`max_q_steps`](Self::max_q_steps), [`bound`](Self::bound),
/// [`within_cap`](Self::within_cap)) are answered from the decomposition —
/// the schedule is never rescanned.
///
/// # Decomposition invariants
///
/// After `decompose(s, p)`:
///
/// - every maximal `P`-free interval of `s` with at least one in-universe
///   step is recorded as a **histogram**: per-process step counts over the
///   interval (intervals with zero countable steps carry no information for
///   any `Q` and are dropped);
/// - identical histograms are stored **once**; [`runs`](Self::runs) is the
///   number of distinct histograms, [`raw_runs`](Self::raw_runs) the number
///   of recorded intervals (`Σ` multiplicities);
/// - histograms are ordered by **descending total** step count, which makes
///   both query loops early-exit sound: for any `Q`,
///   `Σ_{q∈Q} h[q] ≤ total(h)`, so once `total` drops to the running
///   maximum (or below the cap) no later histogram can change the answer;
/// - for every histogram, `total` equals the sum of its per-process counts.
///
/// # Examples
///
/// ```
/// use st_core::{timeliness::TimelinessAnalyzer, Schedule, ProcSet, Universe};
///
/// let u = Universe::new(3).unwrap();
/// let s = Schedule::from_indices([0, 1, 2, 0, 1, 2]);
/// let mut az = TimelinessAnalyzer::new(u);
/// az.decompose(&s, ProcSet::from_indices([0]));
/// let q = ProcSet::from_indices([1, 2]);
/// assert_eq!(az.bound(q), 3);
/// assert!(az.within_cap(q, 3));
/// assert!(!az.within_cap(q, 2));
/// ```
#[derive(Clone, Debug)]
pub struct TimelinessAnalyzer {
    universe: Universe,
    n: usize,
    /// Flat histogram storage: slot `r` is `counts[r*n .. (r+1)*n]`.
    counts: Vec<u32>,
    /// Total in-universe steps per slot (parallel to slots).
    totals: Vec<u64>,
    /// Distinct-histogram access path: slot ids sorted by descending total.
    uniq: Vec<u32>,
    /// Multiplicity per distinct histogram (parallel to `uniq`).
    mult: Vec<u32>,
    /// Scratch for the sort.
    order: Vec<u32>,
    /// The `P` of the current decomposition.
    decomposed_p: Option<ProcSet>,
}

impl TimelinessAnalyzer {
    /// Creates an analyzer for schedules over `universe`.
    pub fn new(universe: Universe) -> Self {
        TimelinessAnalyzer {
            universe,
            n: universe.n(),
            counts: Vec::new(),
            totals: Vec::new(),
            uniq: Vec::new(),
            mult: Vec::new(),
            order: Vec::new(),
            decomposed_p: None,
        }
    }

    /// The universe this analyzer sweeps over.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// The `P` of the current decomposition, if any.
    pub fn decomposed_p(&self) -> Option<ProcSet> {
        self.decomposed_p
    }

    /// Number of **distinct** run histograms in the current decomposition.
    pub fn runs(&self) -> usize {
        self.uniq.len()
    }

    /// Number of recorded maximal `P`-free intervals before deduplication.
    pub fn raw_runs(&self) -> usize {
        self.totals.len()
    }

    /// Decomposes `s` into its maximal `P`-free run histograms (see the type
    /// docs for the invariants). One `O(L)` pass plus an `O(R log R)` sort;
    /// reuses all internal buffers.
    pub fn decompose(&mut self, s: &Schedule, p: ProcSet) {
        let n = self.n;
        self.counts.clear();
        self.totals.clear();
        let mut base = usize::MAX; // no open run
        let mut total = 0u64;
        for step in s.iter() {
            if p.contains(step) {
                if base != usize::MAX {
                    self.totals.push(total);
                    base = usize::MAX;
                    total = 0;
                }
            } else {
                let idx = step.index();
                if idx < n {
                    if base == usize::MAX {
                        base = self.counts.len();
                        self.counts.resize(base + n, 0);
                    }
                    self.counts[base + idx] += 1;
                    total += 1;
                }
            }
        }
        if base != usize::MAX {
            self.totals.push(total);
        }

        // Order slots by descending total (ties by histogram content so that
        // duplicates become adjacent), then collapse duplicates.
        let Self {
            counts,
            totals,
            uniq,
            mult,
            order,
            ..
        } = self;
        order.clear();
        order.extend(0..totals.len() as u32);
        let hist = |slot: u32| &counts[slot as usize * n..(slot as usize + 1) * n];
        order.sort_unstable_by(|&a, &b| {
            totals[b as usize]
                .cmp(&totals[a as usize])
                .then_with(|| hist(a).cmp(hist(b)))
        });
        uniq.clear();
        mult.clear();
        for &slot in order.iter() {
            match uniq.last() {
                Some(&prev)
                    if totals[prev as usize] == totals[slot as usize]
                        && hist(prev) == hist(slot) =>
                {
                    *mult.last_mut().expect("mult parallel to uniq") += 1;
                }
                _ => {
                    uniq.push(slot);
                    mult.push(1);
                }
            }
        }
        self.decomposed_p = Some(p);
    }

    #[inline]
    fn q_sum(&self, slot: u32, q: ProcSet) -> u64 {
        let base = slot as usize * self.n;
        let mut bits = q.bits();
        let mut sum = 0u64;
        while bits != 0 {
            let idx = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if idx < self.n {
                sum += self.counts[base + idx] as u64;
            }
        }
        sum
    }

    /// Largest number of `Q`-steps in any maximal `P`-free interval —
    /// [`max_q_steps_in_p_free_interval`] answered from the decomposition.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been decomposed yet.
    pub fn max_q_steps(&self, q: ProcSet) -> usize {
        assert!(self.decomposed_p.is_some(), "decompose a schedule first");
        let mut best = 0u64;
        for &slot in &self.uniq {
            if self.totals[slot as usize] <= best {
                break; // descending totals: no later histogram can win
            }
            best = best.max(self.q_sum(slot, q));
        }
        best as usize
    }

    /// Empirical bound of `(P, Q)` for the decomposed `P` — equals
    /// [`empirical_bound`] without rescanning the schedule.
    pub fn bound(&self, q: ProcSet) -> usize {
        self.max_q_steps(q) + 1
    }

    /// `true` iff `P` is timely wrt `Q` with a bound `≤ cap` — i.e., no run
    /// contains `cap` or more `Q`-steps. Inspects only histograms with
    /// `total ≥ cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` or nothing has been decomposed yet.
    pub fn within_cap(&self, q: ProcSet, cap: usize) -> bool {
        assert!(cap > 0, "bound cap must be positive");
        assert!(self.decomposed_p.is_some(), "decompose a schedule first");
        let cap = cap as u64;
        for &slot in &self.uniq {
            if self.totals[slot as usize] < cap {
                break;
            }
            if self.q_sum(slot, q) >= cap {
                return false;
            }
        }
        true
    }

    /// [`find_timely_pair`] on this analyzer: first pair of the
    /// deterministic `Π^i_n × Π^j_n` enumeration whose empirical bound is at
    /// most `bound_cap`, with every `P` decomposed exactly once.
    pub fn find_timely_pair(
        &mut self,
        s: &Schedule,
        i: usize,
        j: usize,
        bound_cap: usize,
    ) -> Option<TimelyPair> {
        assert!(bound_cap > 0, "bound cap must be positive");
        for p in KSubsets::new(self.universe, i) {
            self.decompose(s, p);
            for q in KSubsets::new(self.universe, j) {
                if self.within_cap(q, bound_cap) {
                    let bound = self.bound(q);
                    debug_assert!(bound <= bound_cap);
                    return Some(TimelyPair { p, q, bound });
                }
            }
        }
        None
    }

    /// [`all_timely_pairs`] on this analyzer, appending into a caller-owned
    /// vector so sweeps can reuse it.
    pub fn all_timely_pairs_into(
        &mut self,
        s: &Schedule,
        i: usize,
        j: usize,
        bound_cap: usize,
        out: &mut Vec<TimelyPair>,
    ) {
        assert!(bound_cap > 0, "bound cap must be positive");
        for p in KSubsets::new(self.universe, i) {
            self.decompose(s, p);
            for q in KSubsets::new(self.universe, j) {
                if self.within_cap(q, bound_cap) {
                    out.push(TimelyPair {
                        p,
                        q,
                        bound: self.bound(q),
                    });
                }
            }
        }
    }

    /// Sweeps one `Π^i_n` row against several `j` columns, sharing each `P`
    /// decomposition across all of them. Returns one [`MatrixCell`] per
    /// entry of `js`.
    pub fn sweep_row(
        &mut self,
        s: &Schedule,
        i: usize,
        js: &[usize],
        bound_cap: usize,
    ) -> Vec<MatrixCell> {
        self.sweep_row_ranked(s, i, js, bound_cap, 0, binomial(self.n, i))
    }

    /// [`sweep_row`](Self::sweep_row) over the rank interval
    /// `[first_rank, last_rank)` of `Π^i_n` — the unit of work a parallel
    /// sweep hands to one thread.
    pub fn sweep_row_ranked(
        &mut self,
        s: &Schedule,
        i: usize,
        js: &[usize],
        bound_cap: usize,
        first_rank: u64,
        last_rank: u64,
    ) -> Vec<MatrixCell> {
        assert!(bound_cap > 0, "bound cap must be positive");
        let mut cells: Vec<MatrixCell> = js.iter().map(|&j| MatrixCell::empty(i, j)).collect();
        if first_rank >= last_rank {
            return cells;
        }
        let subsets = KSubsets::starting_at_rank(self.universe, i, first_rank)
            .take((last_rank - first_rank) as usize);
        for p in subsets {
            self.decompose(s, p);
            for (cell, &j) in cells.iter_mut().zip(js) {
                for q in KSubsets::new(self.universe, j) {
                    if self.within_cap(q, bound_cap) {
                        let bound = self.bound(q);
                        cell.timely_pairs += 1;
                        cell.min_bound = Some(cell.min_bound.map_or(bound, |b| b.min(bound)));
                        if cell.first.is_none() {
                            cell.first = Some(TimelyPair { p, q, bound });
                        }
                    }
                }
            }
        }
        cells
    }
}

/// Summary of one `(i, j)` cell of a matrix sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixCell {
    /// `|P|` of the swept row.
    pub i: usize,
    /// `|Q|` of the swept column.
    pub j: usize,
    /// Number of pairs within the cap.
    pub timely_pairs: u64,
    /// First such pair in enumeration order.
    pub first: Option<TimelyPair>,
    /// Smallest empirical bound over the cell.
    pub min_bound: Option<usize>,
}

impl MatrixCell {
    fn empty(i: usize, j: usize) -> Self {
        MatrixCell {
            i,
            j,
            timely_pairs: 0,
            first: None,
            min_bound: None,
        }
    }

    fn merge(&mut self, other: &MatrixCell) {
        debug_assert_eq!((self.i, self.j), (other.i, other.j));
        self.timely_pairs += other.timely_pairs;
        self.min_bound = match (self.min_bound, other.min_bound) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // Chunks are merged in ascending rank order, so the first Some wins.
        if self.first.is_none() {
            self.first = other.first;
        }
    }
}

/// The full `(i, j)` solvability-experiment matrix of one schedule: for
/// every `1 ≤ i, j ≤ n`, the number of timely `Π^i_n × Π^j_n` pairs within
/// the cap, the first such pair, and the least bound.
#[derive(Clone, Debug)]
pub struct SweepMatrix {
    n: usize,
    cells: Vec<MatrixCell>,
}

impl SweepMatrix {
    /// The cell for `(i, j)` (`1 ≤ i, j ≤ n`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn cell(&self, i: usize, j: usize) -> &MatrixCell {
        assert!(i >= 1 && i <= self.n && j >= 1 && j <= self.n);
        &self.cells[(i - 1) * self.n + (j - 1)]
    }

    /// All cells in row-major `(i, j)` order.
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }
}

use crate::parallel::resolve_workers;

/// Sweeps **every** `(i, j)` cell (`1 ≤ i, j ≤ n`) of `s` with one shared
/// decomposition per `P` and the `Π^i_n` loop spread across `threads` OS
/// worker threads (pass `1` to force the sequential path, `usize::MAX` for
/// one worker per hardware thread).
///
/// Workers **steal work** instead of owning a static slice: a shared atomic
/// rank counter hands out fixed-size chunks of `Π^i_n`, so a worker that
/// drew cheap subsets (early-exit decompositions) loops back for more while
/// a slow worker is still grinding — the imbalance a static
/// `total_ranks / workers` split cannot absorb. Results are **identical to
/// the sequential sweep**: chunk results are merged in ascending rank
/// order, so counts, first-pair, and min-bound are deterministic
/// (differential-tested against [`sweep_matrix_static_split`] and
/// [`naive`]).
pub fn sweep_matrix(
    s: &Schedule,
    universe: Universe,
    bound_cap: usize,
    threads: usize,
) -> SweepMatrix {
    assert!(bound_cap > 0, "bound cap must be positive");
    let n = universe.n();
    let js: Vec<usize> = (1..=n).collect();
    let workers = resolve_workers(threads);
    let mut cells = Vec::with_capacity(n * n);
    for i in 1..=n {
        let total_ranks = binomial(n, i);
        // Spawning threads costs more than small rows; keep those inline.
        if workers == 1 || total_ranks < 64 {
            let mut az = TimelinessAnalyzer::new(universe);
            cells.extend(az.sweep_row(s, i, &js, bound_cap));
            continue;
        }
        let workers = workers.min(total_ranks as usize);
        let chunk = crate::parallel::sweep_chunk_size(total_ranks, workers);
        // Chunks come back as disjoint rank intervals sorted by first rank:
        // merging in that order reproduces the sequential enumeration
        // exactly.
        let parts = crate::parallel::steal_chunks(
            total_ranks,
            workers,
            chunk,
            || TimelinessAnalyzer::new(universe),
            |az, first, last| az.sweep_row_ranked(s, i, &js, bound_cap, first, last),
        );
        let mut row: Vec<MatrixCell> = js.iter().map(|&j| MatrixCell::empty(i, j)).collect();
        for (_, part) in &parts {
            for (cell, partial) in row.iter_mut().zip(part) {
                cell.merge(partial);
            }
        }
        cells.extend(row);
    }
    SweepMatrix { n, cells }
}

/// The pre-work-stealing parallel sweep: a static `total_ranks / workers`
/// rank split, one slice per thread. Kept (like [`naive`]) as the
/// comparison baseline for the recorded bench trajectory and as a
/// differential-testing reference for [`sweep_matrix`]; results are
/// identical, only the load balancing differs.
pub fn sweep_matrix_static_split(
    s: &Schedule,
    universe: Universe,
    bound_cap: usize,
    threads: usize,
) -> SweepMatrix {
    assert!(bound_cap > 0, "bound cap must be positive");
    let n = universe.n();
    let js: Vec<usize> = (1..=n).collect();
    let workers = resolve_workers(threads);
    let mut cells = Vec::with_capacity(n * n);
    for i in 1..=n {
        let total_ranks = binomial(n, i);
        let workers = if total_ranks < 64 {
            1
        } else {
            workers.min(total_ranks as usize)
        };
        if workers == 1 {
            let mut az = TimelinessAnalyzer::new(universe);
            cells.extend(az.sweep_row(s, i, &js, bound_cap));
            continue;
        }
        let chunk = total_ranks.div_ceil(workers as u64);
        let row = std::thread::scope(|scope| {
            let js = &js;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let first = chunk * w as u64;
                    let last = (first + chunk).min(total_ranks);
                    scope.spawn(move || {
                        let mut az = TimelinessAnalyzer::new(universe);
                        az.sweep_row_ranked(s, i, js, bound_cap, first, last)
                    })
                })
                .collect();
            let mut row: Vec<MatrixCell> = js.iter().map(|&j| MatrixCell::empty(i, j)).collect();
            for handle in handles {
                let part = handle.join().expect("sweep worker panicked");
                for (cell, partial) in row.iter_mut().zip(&part) {
                    cell.merge(partial);
                }
            }
            row
        });
        cells.extend(row);
    }
    SweepMatrix { n, cells }
}

/// Searches for a pair `(P, Q)` with `|P| = i`, `|Q| = j` whose empirical
/// bound on `s` is at most `bound_cap`. Returns the first such pair in the
/// deterministic `Π^i_n × Π^j_n` enumeration order, or `None`.
///
/// This is the finite-prefix membership test for the system `S^i_{j,n}`
/// (Section 2.2): a schedule of `S^i_{j,n}` must exhibit such a pair with
/// *some* bound; on a prefix we test with an explicit cap.
///
/// Convenience wrapper over [`TimelinessAnalyzer::find_timely_pair`]; for
/// repeated sweeps, hold an analyzer and reuse its buffers.
pub fn find_timely_pair(
    s: &Schedule,
    universe: Universe,
    i: usize,
    j: usize,
    bound_cap: usize,
) -> Option<TimelyPair> {
    TimelinessAnalyzer::new(universe).find_timely_pair(s, i, j, bound_cap)
}

/// Lists **all** pairs `(P, Q)` with `|P| = i`, `|Q| = j` and empirical bound
/// at most `bound_cap` on `s`.
///
/// Convenience wrapper over [`TimelinessAnalyzer::all_timely_pairs_into`].
pub fn all_timely_pairs(
    s: &Schedule,
    universe: Universe,
    i: usize,
    j: usize,
    bound_cap: usize,
) -> Vec<TimelyPair> {
    let mut out = Vec::new();
    TimelinessAnalyzer::new(universe).all_timely_pairs_into(s, i, j, bound_cap, &mut out);
    out
}

/// The pre-engine sweep loops, kept verbatim as the differential-testing
/// reference for [`TimelinessAnalyzer`] (and as the baseline of the
/// `timeliness` criterion bench). Semantics are the contract; performance is
/// not: every `P` allocates a fresh run table and every accepted `Q` rescans
/// the schedule.
pub mod naive {
    use super::{empirical_bound, TimelyPair};
    use crate::process::Universe;
    use crate::procset::ProcSet;
    use crate::schedule::Schedule;
    use crate::subsets::KSubsets;

    /// Reference implementation of [`find_timely_pair`](super::find_timely_pair).
    pub fn find_timely_pair(
        s: &Schedule,
        universe: Universe,
        i: usize,
        j: usize,
        bound_cap: usize,
    ) -> Option<TimelyPair> {
        assert!(bound_cap > 0, "bound cap must be positive");
        for p in KSubsets::new(universe, i) {
            let runs = collect_p_free_runs(s, p, universe, bound_cap);
            'q_loop: for q in KSubsets::new(universe, j) {
                for run in &runs {
                    let q_steps: usize = q.iter().map(|x| run[x.index()]).sum();
                    if q_steps >= bound_cap {
                        continue 'q_loop;
                    }
                }
                let bound = empirical_bound(s, p, q);
                debug_assert!(bound <= bound_cap);
                return Some(TimelyPair { p, q, bound });
            }
        }
        None
    }

    /// Reference implementation of [`all_timely_pairs`](super::all_timely_pairs).
    pub fn all_timely_pairs(
        s: &Schedule,
        universe: Universe,
        i: usize,
        j: usize,
        bound_cap: usize,
    ) -> Vec<TimelyPair> {
        assert!(bound_cap > 0, "bound cap must be positive");
        let mut out = Vec::new();
        for p in KSubsets::new(universe, i) {
            let runs = collect_p_free_runs(s, p, universe, bound_cap);
            'q_loop: for q in KSubsets::new(universe, j) {
                for run in &runs {
                    let q_steps: usize = q.iter().map(|x| run[x.index()]).sum();
                    if q_steps >= bound_cap {
                        continue 'q_loop;
                    }
                }
                out.push(TimelyPair {
                    p,
                    q,
                    bound: empirical_bound(s, p, q),
                });
            }
        }
        out
    }

    /// Per-process step counts of each maximal `P`-free run of `s` that
    /// contains at least `min_total` steps (shorter runs cannot push any `Q`
    /// to the cap).
    fn collect_p_free_runs(
        s: &Schedule,
        p: ProcSet,
        universe: Universe,
        min_total: usize,
    ) -> Vec<Vec<usize>> {
        let n = universe.n();
        let mut runs = Vec::new();
        let mut current = vec![0usize; n];
        let mut total = 0usize;
        for step in s.iter() {
            if p.contains(step) {
                if total >= min_total {
                    runs.push(std::mem::replace(&mut current, vec![0usize; n]));
                } else {
                    current.iter_mut().for_each(|c| *c = 0);
                }
                total = 0;
            } else if step.index() < n {
                current[step.index()] += 1;
                total += 1;
            }
        }
        if total >= min_total {
            runs.push(current);
        }
        runs
    }
}

/// Observation 2 (checkable form): if `P` is timely wrt `Q` with bound `b1`
/// and `P'` timely wrt `Q'` with bound `b2`, then `P ∪ P'` is timely wrt
/// `Q ∪ Q'` with bound `b1 + b2 − 1`.
///
/// Returns the combined pair with the guaranteed bound; the empirical bound
/// on any given schedule may of course be smaller.
pub fn observation2_combine(a: TimelyPair, b: TimelyPair) -> TimelyPair {
    TimelyPair {
        p: a.p.union(b.p),
        q: a.q.union(b.q),
        bound: a.bound + b.bound - 1,
    }
}

/// Observation 3 (checkable form): growing `P` and shrinking `Q` preserves
/// timeliness with the same bound. Returns the weakened pair.
///
/// # Panics
///
/// Panics if `p_sup` is not a superset of `pair.p` or `q_sub` is not a subset
/// of `pair.q`.
pub fn observation3_weaken(pair: TimelyPair, p_sup: ProcSet, q_sub: ProcSet) -> TimelyPair {
    assert!(pair.p.is_subset(p_sup), "P must grow");
    assert!(q_sub.is_subset(pair.q), "Q must shrink");
    TimelyPair {
        p: p_sup,
        q: q_sub,
        bound: pair.bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    fn set(ix: &[usize]) -> ProcSet {
        ProcSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn perfectly_alternating_schedule_has_bound_two() {
        let s = Schedule::from_indices([0, 1, 0, 1, 0, 1, 0, 1]);
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 2);
        assert!(is_timely_with_bound(&s, set(&[0]), set(&[1]), 2));
        assert!(!is_timely_with_bound(&s, set(&[0]), set(&[1]), 1));
    }

    #[test]
    fn starved_process_gets_growing_bound() {
        // p0 appears once, then p1 runs alone.
        let mut idx = vec![0usize];
        idx.extend(std::iter::repeat_n(1, 50));
        let s = Schedule::from_indices(idx);
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 51);
    }

    #[test]
    fn q_subset_of_p_gives_bound_one() {
        // Every Q-step is a P-step, so no P-free interval has any Q-step.
        let s = Schedule::from_indices([0, 1, 2, 0, 1, 2]);
        assert_eq!(empirical_bound(&s, set(&[0, 1]), set(&[1])), 1);
    }

    #[test]
    fn empty_schedule_bound_is_one() {
        let s = Schedule::new();
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 1);
    }

    #[test]
    fn q_absent_gives_bound_one() {
        let s = Schedule::from_indices([0, 0, 0]);
        assert_eq!(empirical_bound(&s, set(&[1]), set(&[2])), 1);
    }

    #[test]
    fn trailing_p_free_interval_counts() {
        // p then many q: the trailing run must be counted.
        let s = Schedule::from_indices([0, 1, 1, 1]);
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 4);
    }

    #[test]
    fn figure1_example_pairs() {
        // Schedule [(p1·q)^i (p2·q)^i] for i = 1..4 with p1=0, p2=1, q=2.
        let mut idx = Vec::new();
        for i in 1..=4usize {
            for _ in 0..i {
                idx.extend([0, 2]);
            }
            for _ in 0..i {
                idx.extend([1, 2]);
            }
        }
        let s = Schedule::from_indices(idx);
        // Neither singleton is timely with a small bound...
        assert!(empirical_bound(&s, set(&[0]), set(&[2])) >= 4);
        assert!(empirical_bound(&s, set(&[1]), set(&[2])) >= 4);
        // ...but the pair is timely with bound 2.
        assert_eq!(empirical_bound(&s, set(&[0, 1]), set(&[2])), 2);
    }

    #[test]
    fn analyzer_matches_streaming_bound() {
        let s = Schedule::from_indices([0, 2, 1, 1, 2, 0, 2, 2, 1, 0, 0, 1]);
        let mut az = TimelinessAnalyzer::new(u(3));
        for pb in 1u64..8 {
            let p = ProcSet::from_bits(pb);
            az.decompose(&s, p);
            for qb in 1u64..8 {
                let q = ProcSet::from_bits(qb);
                assert_eq!(
                    az.max_q_steps(q),
                    max_q_steps_in_p_free_interval(&s, p, q),
                    "p={p} q={q}"
                );
                assert_eq!(az.bound(q), empirical_bound(&s, p, q));
                for cap in 1..6 {
                    assert_eq!(
                        az.within_cap(q, cap),
                        is_timely_with_bound(&s, p, q, cap),
                        "p={p} q={q} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn analyzer_dedupes_periodic_runs() {
        // Round-robin: every P-free run of a fixed P has the same histogram.
        let s = Schedule::from_indices((0..3000).map(|i| i % 3));
        let mut az = TimelinessAnalyzer::new(u(3));
        az.decompose(&s, set(&[0]));
        assert_eq!(az.raw_runs(), 1000);
        assert!(az.runs() <= 2, "distinct histograms: {}", az.runs());
    }

    #[test]
    fn analyzer_empty_and_absent_cases() {
        let mut az = TimelinessAnalyzer::new(u(3));
        az.decompose(&Schedule::new(), set(&[0]));
        assert_eq!(az.runs(), 0);
        assert_eq!(az.bound(set(&[1])), 1);
        assert!(az.within_cap(set(&[1]), 1));
        // P covering every step: no P-free run survives.
        az.decompose(&Schedule::from_indices([0, 0, 1]), set(&[0, 1]));
        assert_eq!(az.runs(), 0);
        assert_eq!(az.bound(set(&[2])), 1);
    }

    #[test]
    fn prefix_bounds_matches_per_prefix_scans() {
        let s = Schedule::from_indices([0, 2, 2, 1, 2, 2, 2, 0, 1, 2]);
        let pairs = [
            (set(&[0]), set(&[2])),
            (set(&[1]), set(&[2])),
            (set(&[0, 1]), set(&[2])),
        ];
        let checkpoints = [0, 3, 5, 10, 99];
        let rows = prefix_bounds(&s, &pairs, &checkpoints);
        assert_eq!(rows.len(), checkpoints.len());
        for (row, &cp) in rows.iter().zip(&checkpoints) {
            let prefix = s.prefix(cp);
            for (k, &(p, q)) in pairs.iter().enumerate() {
                assert_eq!(row[k], empirical_bound(&prefix, p, q), "cp={cp} k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn prefix_bounds_rejects_unsorted_checkpoints() {
        let _ = prefix_bounds(&Schedule::new(), &[], &[5, 3]);
    }

    #[test]
    fn find_timely_pair_on_round_robin() {
        let s = Schedule::from_indices((0..300).map(|i| i % 3));
        let found = find_timely_pair(&s, u(3), 1, 2, 4).expect("round robin is timely");
        assert!(found.bound <= 4);
        // Every singleton is timely wrt everything in round-robin: an
        // interval with 3 steps of any Q must wrap past every process.
        assert_eq!(found.p.len(), 1);
        assert_eq!(found.q.len(), 2);
    }

    #[test]
    fn find_timely_pair_respects_cap() {
        // p1 heavily starved: only pair {p0} wrt sets not reaching cap.
        let mut idx = vec![0usize; 20];
        idx.push(1);
        let s = Schedule::from_indices(idx);
        // {p1} wrt {p0} needs bound 21; cap 5 must reject it.
        assert!(find_timely_pair(&s, u(2), 1, 1, 5)
            .map(|tp| tp.p != set(&[1]))
            .unwrap_or(true));
        // {p0} wrt {p1}: p0 steps everywhere, bound small.
        let found = find_timely_pair(&s, u(2), 1, 1, 5).unwrap();
        assert_eq!(found.p, set(&[0]));
    }

    #[test]
    fn all_timely_pairs_counts() {
        let s = Schedule::from_indices((0..120).map(|i| i % 4));
        let pairs = all_timely_pairs(&s, u(4), 1, 2, 5);
        // Round robin: every (singleton, 2-set) pair is timely with bound ≤ 5:
        // 4 singletons × C(4,2) = 24 pairs.
        assert_eq!(pairs.len(), 24);
        for tp in pairs {
            assert!(tp.bound <= 5);
            assert!(is_timely_with_bound(&s, tp.p, tp.q, tp.bound));
        }
    }

    #[test]
    fn engine_agrees_with_naive_on_a_mixed_schedule() {
        // A schedule with starvation, bursts, and periodic phases.
        let mut idx: Vec<usize> = (0..200).map(|i| i % 4).collect();
        idx.extend(vec![0; 37]);
        idx.extend((0..100).map(|i| (i % 3) + 1));
        idx.extend([2, 2, 2, 3, 3, 0, 1, 0, 1]);
        let s = Schedule::from_indices(idx);
        for i in 1..=3 {
            for j in 1..=3 {
                for cap in [1, 2, 5, 40] {
                    assert_eq!(
                        all_timely_pairs(&s, u(4), i, j, cap),
                        naive::all_timely_pairs(&s, u(4), i, j, cap),
                        "i={i} j={j} cap={cap}"
                    );
                    assert_eq!(
                        find_timely_pair(&s, u(4), i, j, cap),
                        naive::find_timely_pair(&s, u(4), i, j, cap),
                        "i={i} j={j} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_matrix_matches_cellwise_scans() {
        let s = Schedule::from_indices((0..240).map(|i| (i * 7 + i / 5) % 4));
        for threads in [1, 4] {
            let m = sweep_matrix(&s, u(4), 5, threads);
            for i in 1..=4 {
                for j in 1..=4 {
                    let cell = m.cell(i, j);
                    let pairs = naive::all_timely_pairs(&s, u(4), i, j, 5);
                    assert_eq!(cell.timely_pairs as usize, pairs.len(), "i={i} j={j}");
                    assert_eq!(cell.first, pairs.first().copied());
                    assert_eq!(cell.min_bound, pairs.iter().map(|t| t.bound).min());
                }
            }
        }
    }

    #[test]
    fn work_stealing_sweep_matches_sequential_and_static_split() {
        // n = 10, so rows with C(10, i) ≥ 64 genuinely enter the stealing
        // path (chunk = 16 ⇒ several grabs per worker); thread counts above
        // the hardware are honored, so this exercises real interleaving
        // even on a single-core host.
        let n = 10;
        let s = Schedule::from_indices((0..2_000).map(|i| (i * 13 + i / 7) % n));
        let sequential = sweep_matrix(&s, u(n), 6, 1);
        for threads in [3, 8] {
            let stolen = sweep_matrix(&s, u(n), 6, threads);
            let static_split = sweep_matrix_static_split(&s, u(n), 6, threads);
            for i in 1..=n {
                for j in 1..=n {
                    assert_eq!(
                        stolen.cell(i, j),
                        sequential.cell(i, j),
                        "steal vs sequential i={i} j={j} threads={threads}"
                    );
                    assert_eq!(
                        static_split.cell(i, j),
                        sequential.cell(i, j),
                        "static vs sequential i={i} j={j} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn observation2_bound_is_sound() {
        // Figure 1 prefix: {p0} wrt {p0} bound 1; {p1} wrt {p2} some bound b.
        let s = Schedule::from_indices([0, 2, 1, 2, 0, 2, 1, 2]);
        let a = TimelyPair {
            p: set(&[0]),
            q: set(&[0]),
            bound: empirical_bound(&s, set(&[0]), set(&[0])),
        };
        let b = TimelyPair {
            p: set(&[1]),
            q: set(&[2]),
            bound: empirical_bound(&s, set(&[1]), set(&[2])),
        };
        let c = observation2_combine(a, b);
        assert!(is_timely_with_bound(&s, c.p, c.q, c.bound));
    }

    #[test]
    fn observation3_weakening_is_sound() {
        let s = Schedule::from_indices([0, 1, 0, 1, 2, 0, 1]);
        let pair = TimelyPair {
            p: set(&[0]),
            q: set(&[1, 2]),
            bound: empirical_bound(&s, set(&[0]), set(&[1, 2])),
        };
        let w = observation3_weaken(pair, set(&[0, 2]), set(&[1]));
        assert!(is_timely_with_bound(&s, w.p, w.q, w.bound));
    }

    #[test]
    #[should_panic(expected = "P must grow")]
    fn observation3_rejects_shrinking_p() {
        let pair = TimelyPair {
            p: set(&[0, 1]),
            q: set(&[2]),
            bound: 3,
        };
        let _ = observation3_weaken(pair, set(&[0]), set(&[2]));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        let s = Schedule::new();
        let _ = is_timely_with_bound(&s, set(&[0]), set(&[1]), 0);
    }
}
