//! Set timeliness: Definition 1 of the paper, and its analyzer.
//!
//! > **Definition 1.** `P` is timely with respect to `Q` in `S` if there is an
//! > integer `i` such that every sequence of consecutive steps of `S` that
//! > contains `i` occurrences of processes in `Q` contains a process in `P`.
//!
//! On a finite schedule the property is characterized by the *maximal P-free
//! intervals*: contiguous runs of steps containing no member of `P`. `P` is
//! timely wrt `Q` with bound `b` iff no `P`-free interval contains `b` or more
//! `Q`-steps, so the least valid bound is
//! `1 + max_{P-free interval} (#Q-steps in the interval)`.
//!
//! For an *infinite* schedule, timeliness holds iff that quantity is bounded
//! over all prefixes. Experiments therefore measure the *empirical bound* on
//! growing prefixes: a timely pair plateaus, a non-timely pair grows without
//! bound (this is exactly the Figure 1 phenomenon, reproduced in experiment
//! E1).

use crate::procset::ProcSet;
use crate::schedule::Schedule;
use crate::subsets::KSubsets;
use crate::process::Universe;

/// Largest number of `Q`-steps found in any maximal `P`-free interval of `s`.
///
/// This is the witness quantity for Definition 1: `P` is timely wrt `Q` with
/// bound `b` iff this value is `< b`. Steps by processes in `P ∩ Q` terminate
/// a `P`-free interval (they are `P`-steps).
///
/// # Examples
///
/// ```
/// use st_core::{timeliness::max_q_steps_in_p_free_interval, Schedule, ProcSet};
///
/// // q q p q — the leading P-free interval has two Q-steps.
/// let s = Schedule::from_indices([1, 1, 0, 1]);
/// let p = ProcSet::from_indices([0]);
/// let q = ProcSet::from_indices([1]);
/// assert_eq!(max_q_steps_in_p_free_interval(&s, p, q), 2);
/// ```
pub fn max_q_steps_in_p_free_interval(s: &Schedule, p: ProcSet, q: ProcSet) -> usize {
    let mut max_run = 0usize;
    let mut current = 0usize;
    for step in s.iter() {
        if p.contains(step) {
            current = 0;
        } else if q.contains(step) {
            current += 1;
            if current > max_run {
                max_run = current;
            }
        }
    }
    max_run
}

/// Tests Definition 1 with an explicit bound on a finite schedule: every
/// contiguous interval containing `bound` `Q`-steps must contain a `P`-step.
///
/// # Panics
///
/// Panics if `bound == 0` (Definition 1 quantifies over positive integers).
pub fn is_timely_with_bound(s: &Schedule, p: ProcSet, q: ProcSet, bound: usize) -> bool {
    assert!(bound > 0, "timeliness bound must be positive");
    max_q_steps_in_p_free_interval(s, p, q) < bound
}

/// The least bound `b` for which `P` is timely wrt `Q` on this finite
/// schedule (the *empirical bound*).
///
/// On a prefix of an infinite schedule this is a lower estimate of the true
/// bound; it is exact in the limit. A pair whose empirical bound keeps growing
/// with the prefix length is not timely in the infinite schedule.
///
/// # Examples
///
/// ```
/// use st_core::{timeliness::empirical_bound, Schedule, ProcSet};
///
/// let s = Schedule::from_indices([0, 1, 0, 1, 0, 1]);
/// let p = ProcSet::from_indices([0]);
/// let q = ProcSet::from_indices([1]);
/// assert_eq!(empirical_bound(&s, p, q), 2);
/// ```
pub fn empirical_bound(s: &Schedule, p: ProcSet, q: ProcSet) -> usize {
    max_q_steps_in_p_free_interval(s, p, q) + 1
}

/// Evidence that a pair is (empirically) timely: the pair plus its bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelyPair {
    /// The timely set `P`.
    pub p: ProcSet,
    /// The observed set `Q`.
    pub q: ProcSet,
    /// Empirical bound on the analyzed prefix.
    pub bound: usize,
}

/// Searches for a pair `(P, Q)` with `|P| = i`, `|Q| = j` whose empirical
/// bound on `s` is at most `bound_cap`. Returns the first such pair in the
/// deterministic `Π^i_n × Π^j_n` enumeration order, or `None`.
///
/// This is the finite-prefix membership test for the system `S^i_{j,n}`
/// (Section 2.2): a schedule of `S^i_{j,n}` must exhibit such a pair with
/// *some* bound; on a prefix we test with an explicit cap.
///
/// The search prunes by `P`-free runs: for a fixed `P` only runs containing at
/// least `bound_cap` total steps can disqualify a `Q`, so schedules that are
/// actually timely are scanned quickly.
pub fn find_timely_pair(
    s: &Schedule,
    universe: Universe,
    i: usize,
    j: usize,
    bound_cap: usize,
) -> Option<TimelyPair> {
    assert!(bound_cap > 0, "bound cap must be positive");
    for p in KSubsets::new(universe, i) {
        // Collect per-process step counts of each maximal P-free run that
        // could possibly violate the cap.
        let runs = collect_p_free_runs(s, p, universe, bound_cap);
        'q_loop: for q in KSubsets::new(universe, j) {
            for run in &runs {
                let q_steps: usize = q.iter().map(|x| run[x.index()]).sum();
                if q_steps >= bound_cap {
                    continue 'q_loop;
                }
            }
            let bound = empirical_bound(s, p, q);
            debug_assert!(bound <= bound_cap);
            return Some(TimelyPair { p, q, bound });
        }
    }
    None
}

/// Lists **all** pairs `(P, Q)` with `|P| = i`, `|Q| = j` and empirical bound
/// at most `bound_cap` on `s`.
pub fn all_timely_pairs(
    s: &Schedule,
    universe: Universe,
    i: usize,
    j: usize,
    bound_cap: usize,
) -> Vec<TimelyPair> {
    assert!(bound_cap > 0, "bound cap must be positive");
    let mut out = Vec::new();
    for p in KSubsets::new(universe, i) {
        let runs = collect_p_free_runs(s, p, universe, bound_cap);
        'q_loop: for q in KSubsets::new(universe, j) {
            for run in &runs {
                let q_steps: usize = q.iter().map(|x| run[x.index()]).sum();
                if q_steps >= bound_cap {
                    continue 'q_loop;
                }
            }
            out.push(TimelyPair {
                p,
                q,
                bound: empirical_bound(s, p, q),
            });
        }
    }
    out
}

/// Per-process step counts of each maximal `P`-free run of `s` that contains
/// at least `min_total` steps (shorter runs cannot push any `Q` to the cap).
fn collect_p_free_runs(
    s: &Schedule,
    p: ProcSet,
    universe: Universe,
    min_total: usize,
) -> Vec<Vec<usize>> {
    let n = universe.n();
    let mut runs = Vec::new();
    let mut current = vec![0usize; n];
    let mut total = 0usize;
    for step in s.iter() {
        if p.contains(step) {
            if total >= min_total {
                runs.push(std::mem::replace(&mut current, vec![0usize; n]));
            } else {
                current.iter_mut().for_each(|c| *c = 0);
            }
            total = 0;
        } else if step.index() < n {
            current[step.index()] += 1;
            total += 1;
        }
    }
    if total >= min_total {
        runs.push(current);
    }
    runs
}

/// Observation 2 (checkable form): if `P` is timely wrt `Q` with bound `b1`
/// and `P'` timely wrt `Q'` with bound `b2`, then `P ∪ P'` is timely wrt
/// `Q ∪ Q'` with bound `b1 + b2 − 1`.
///
/// Returns the combined pair with the guaranteed bound; the empirical bound
/// on any given schedule may of course be smaller.
pub fn observation2_combine(a: TimelyPair, b: TimelyPair) -> TimelyPair {
    TimelyPair {
        p: a.p.union(b.p),
        q: a.q.union(b.q),
        bound: a.bound + b.bound - 1,
    }
}

/// Observation 3 (checkable form): growing `P` and shrinking `Q` preserves
/// timeliness with the same bound. Returns the weakened pair.
///
/// # Panics
///
/// Panics if `p_sup` is not a superset of `pair.p` or `q_sub` is not a subset
/// of `pair.q`.
pub fn observation3_weaken(pair: TimelyPair, p_sup: ProcSet, q_sub: ProcSet) -> TimelyPair {
    assert!(pair.p.is_subset(p_sup), "P must grow");
    assert!(q_sub.is_subset(pair.q), "Q must shrink");
    TimelyPair {
        p: p_sup,
        q: q_sub,
        bound: pair.bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    fn set(ix: &[usize]) -> ProcSet {
        ProcSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn perfectly_alternating_schedule_has_bound_two() {
        let s = Schedule::from_indices([0, 1, 0, 1, 0, 1, 0, 1]);
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 2);
        assert!(is_timely_with_bound(&s, set(&[0]), set(&[1]), 2));
        assert!(!is_timely_with_bound(&s, set(&[0]), set(&[1]), 1));
    }

    #[test]
    fn starved_process_gets_growing_bound() {
        // p0 appears once, then p1 runs alone.
        let mut idx = vec![0usize];
        idx.extend(std::iter::repeat_n(1, 50));
        let s = Schedule::from_indices(idx);
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 51);
    }

    #[test]
    fn q_subset_of_p_gives_bound_one() {
        // Every Q-step is a P-step, so no P-free interval has any Q-step.
        let s = Schedule::from_indices([0, 1, 2, 0, 1, 2]);
        assert_eq!(empirical_bound(&s, set(&[0, 1]), set(&[1])), 1);
    }

    #[test]
    fn empty_schedule_bound_is_one() {
        let s = Schedule::new();
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 1);
    }

    #[test]
    fn q_absent_gives_bound_one() {
        let s = Schedule::from_indices([0, 0, 0]);
        assert_eq!(empirical_bound(&s, set(&[1]), set(&[2])), 1);
    }

    #[test]
    fn trailing_p_free_interval_counts() {
        // p then many q: the trailing run must be counted.
        let s = Schedule::from_indices([0, 1, 1, 1]);
        assert_eq!(empirical_bound(&s, set(&[0]), set(&[1])), 4);
    }

    #[test]
    fn figure1_example_pairs() {
        // Schedule [(p1·q)^i (p2·q)^i] for i = 1..4 with p1=0, p2=1, q=2.
        let mut idx = Vec::new();
        for i in 1..=4usize {
            for _ in 0..i {
                idx.extend([0, 2]);
            }
            for _ in 0..i {
                idx.extend([1, 2]);
            }
        }
        let s = Schedule::from_indices(idx);
        // Neither singleton is timely with a small bound...
        assert!(empirical_bound(&s, set(&[0]), set(&[2])) >= 4);
        assert!(empirical_bound(&s, set(&[1]), set(&[2])) >= 4);
        // ...but the pair is timely with bound 2.
        assert_eq!(empirical_bound(&s, set(&[0, 1]), set(&[2])), 2);
    }

    #[test]
    fn find_timely_pair_on_round_robin() {
        let s = Schedule::from_indices((0..300).map(|i| i % 3));
        let found = find_timely_pair(&s, u(3), 1, 2, 4).expect("round robin is timely");
        assert!(found.bound <= 4);
        // Every singleton is timely wrt everything in round-robin: an
        // interval with 3 steps of any Q must wrap past every process.
        assert_eq!(found.p.len(), 1);
        assert_eq!(found.q.len(), 2);
    }

    #[test]
    fn find_timely_pair_respects_cap() {
        // p1 heavily starved: only pair {p0} wrt sets not reaching cap.
        let mut idx = vec![0usize; 20];
        idx.push(1);
        let s = Schedule::from_indices(idx);
        // {p1} wrt {p0} needs bound 21; cap 5 must reject it.
        assert!(find_timely_pair(&s, u(2), 1, 1, 5)
            .map(|tp| tp.p != set(&[1]))
            .unwrap_or(true));
        // {p0} wrt {p1}: p0 steps everywhere, bound small.
        let found = find_timely_pair(&s, u(2), 1, 1, 5).unwrap();
        assert_eq!(found.p, set(&[0]));
    }

    #[test]
    fn all_timely_pairs_counts() {
        let s = Schedule::from_indices((0..120).map(|i| i % 4));
        let pairs = all_timely_pairs(&s, u(4), 1, 2, 5);
        // Round robin: every (singleton, 2-set) pair is timely with bound ≤ 5:
        // 4 singletons × C(4,2) = 24 pairs.
        assert_eq!(pairs.len(), 24);
        for tp in pairs {
            assert!(tp.bound <= 5);
            assert!(is_timely_with_bound(&s, tp.p, tp.q, tp.bound));
        }
    }

    #[test]
    fn observation2_bound_is_sound() {
        // Figure 1 prefix: {p0} wrt {p0} bound 1; {p1} wrt {p2} some bound b.
        let s = Schedule::from_indices([0, 2, 1, 2, 0, 2, 1, 2]);
        let a = TimelyPair {
            p: set(&[0]),
            q: set(&[0]),
            bound: empirical_bound(&s, set(&[0]), set(&[0])),
        };
        let b = TimelyPair {
            p: set(&[1]),
            q: set(&[2]),
            bound: empirical_bound(&s, set(&[1]), set(&[2])),
        };
        let c = observation2_combine(a, b);
        assert!(is_timely_with_bound(&s, c.p, c.q, c.bound));
    }

    #[test]
    fn observation3_weakening_is_sound() {
        let s = Schedule::from_indices([0, 1, 0, 1, 2, 0, 1]);
        let pair = TimelyPair {
            p: set(&[0]),
            q: set(&[1, 2]),
            bound: empirical_bound(&s, set(&[0]), set(&[1, 2])),
        };
        let w = observation3_weaken(pair, set(&[0, 2]), set(&[1]));
        assert!(is_timely_with_bound(&s, w.p, w.q, w.bound));
    }

    #[test]
    #[should_panic(expected = "P must grow")]
    fn observation3_rejects_shrinking_p() {
        let pair = TimelyPair {
            p: set(&[0, 1]),
            q: set(&[2]),
            bound: 3,
        };
        let _ = observation3_weaken(pair, set(&[0]), set(&[2]));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        let s = Schedule::new();
        let _ = is_timely_with_bound(&s, set(&[0]), set(&[1]), 0);
    }
}
