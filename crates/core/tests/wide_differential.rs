//! Differential properties for the width-generic bitset: on shared ground
//! (universes of n ≤ 64 processes) a `WideProcSet<2>` (and `<4>`) must be
//! observable-for-observable identical to the classic one-word `ProcSet`,
//! including the colexicographic enumeration order of `Π^k_n` — plus
//! deterministic boundary checks at n = 64, 65, and 128 where the single
//! word ends and the multi-word representation takes over.

use proptest::prelude::*;
use st_core::subsets::{binomial, k_subsets, rank, unrank, wide_k_subsets, wide_rank, wide_unrank};
use st_core::{ProcSet, ProcessId, Universe, WideProcSet};

/// Mirrors a one-word bitmask into a `W`-word set (high words zero).
fn widen<const W: usize>(bits: u64) -> WideProcSet<W> {
    let mut words = [0u64; W];
    words[0] = bits;
    WideProcSet::from_words(words)
}

/// Every observable of the wide set, compared against the narrow one.
fn assert_same_observables<const W: usize>(n: usize, narrow: ProcSet, wide: WideProcSet<W>) {
    let universe = Universe::new(n).unwrap();
    assert_eq!(narrow.len(), wide.len());
    assert_eq!(narrow.is_empty(), wide.is_empty());
    assert_eq!(narrow.min(), wide.min());
    assert_eq!(narrow.max(), wide.max());
    for i in 0..n {
        let p = ProcessId::new(i);
        assert_eq!(narrow.contains(p), wide.contains(p), "contains p{i}");
        assert_eq!(narrow.nth(i), wide.nth(i), "nth({i})");
    }
    let narrow_members: Vec<usize> = narrow.iter().map(|p| p.index()).collect();
    let wide_members: Vec<usize> = wide.iter().map(|p| p.index()).collect();
    assert_eq!(narrow_members, wide_members, "iteration order");
    assert_eq!(
        narrow
            .complement(universe)
            .iter()
            .map(|p| p.index())
            .collect::<Vec<_>>(),
        wide.complement(universe)
            .iter()
            .map(|p| p.index())
            .collect::<Vec<_>>(),
        "complement"
    );
    assert_eq!(narrow.to_string(), wide.to_string(), "display rendering");
}

proptest! {
    /// Random pairs of sets in a random shared-ground universe: every set
    /// operation commutes with widening, at widths 2 and 4.
    #[test]
    fn wide_ops_replay_procset(
        n in 1usize..=64,
        a_seed in any::<u64>(),
        b_seed in any::<u64>(),
        idx_seed in 0usize..64,
    ) {
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let (a, b) = (a_seed & mask, b_seed & mask);
        let idx = idx_seed % n;
        let p = ProcessId::new(idx);

        let (na, nb) = (ProcSet::from_bits(a), ProcSet::from_bits(b));
        let (wa, wb) = (widen::<2>(a), widen::<2>(b));

        assert_same_observables(n, na, wa);
        assert_same_observables(n, na.union(nb), wa.union(wb));
        assert_same_observables(n, na.intersection(nb), wa.intersection(wb));
        assert_same_observables(n, na.difference(nb), wa.difference(wb));
        assert_same_observables(n, na.with(p), wa.with(p));
        assert_same_observables(n, na.without(p), wa.without(p));
        prop_assert_eq!(na.is_subset(nb), wa.is_subset(wb));
        prop_assert_eq!(na.is_disjoint(nb), wa.is_disjoint(wb));
        // Total order: with zero high words, the MSW-first comparison must
        // degenerate to the one-word bitmask order.
        prop_assert_eq!(na.cmp(&nb), wa.cmp(&wb));

        let (mut na_mut, mut wa_mut) = (na, wa);
        na_mut.insert(p);
        wa_mut.insert(p);
        assert_same_observables(n, na_mut, wa_mut);
        na_mut.remove(p);
        wa_mut.remove(p);
        assert_same_observables(n, na_mut, wa_mut);

        // Width 4 behaves exactly like width 2.
        assert_same_observables(n, na.union(nb), widen::<4>(a).union(widen::<4>(b)));
        assert_same_observables(n, na.difference(nb), widen::<4>(a).difference(widen::<4>(b)));
    }

    /// `Π^k_n` enumeration: the wide colex walk visits the same sets in the
    /// same rank order as the classic one, and rank/unrank agree both ways.
    #[test]
    fn wide_subsets_share_rank_order(n in 1usize..=10, k_seed in 1usize..=10) {
        let k = 1 + k_seed % n;
        prop_assume!(k <= n);
        let universe = Universe::new(n).unwrap();
        let narrow = k_subsets(universe, k);
        let wide = wide_k_subsets::<2>(universe, k);
        prop_assert_eq!(narrow.len() as u64, binomial(n, k));
        prop_assert_eq!(narrow.len(), wide.len());
        for (r, (ns, ws)) in narrow.iter().zip(&wide).enumerate() {
            let ns_members: Vec<usize> = ns.iter().map(|p| p.index()).collect();
            let ws_members: Vec<usize> = ws.iter().map(|p| p.index()).collect();
            prop_assert_eq!(ns_members, ws_members, "rank {} set diverged", r);
            prop_assert_eq!(rank(*ns), r as u64);
            prop_assert_eq!(wide_rank(*ws), r as u64);
            prop_assert_eq!(unrank(universe, k, r as u64), *ns);
            prop_assert_eq!(wide_unrank::<2>(universe, k, r as u64), *ws);
        }
    }
}

/// n = 64: the last shared-ground size. The full universe saturates the
/// single word on both representations.
#[test]
fn boundary_n64_full_word() {
    let universe = Universe::new(64).unwrap();
    let narrow = ProcSet::full(universe);
    let wide = WideProcSet::<2>::full(universe);
    assert_eq!(narrow.bits(), u64::MAX);
    assert_eq!(wide.words(), [u64::MAX, 0]);
    assert_same_observables(64, narrow, wide);
    assert!(wide.complement(universe).is_empty());
    assert_eq!(wide.max(), Some(ProcessId::new(63)));
}

/// n = 65: the first process past the wall lands in word 1, bit 0.
#[test]
fn boundary_n65_crosses_the_word() {
    let universe = Universe::new(65).unwrap();
    let p64 = ProcessId::new(64);
    let mut set = WideProcSet::<2>::singleton(p64);
    assert_eq!(set.words(), [0, 1]);
    assert_eq!((set.len(), set.min(), set.max()), (1, Some(p64), Some(p64)));
    assert!(set.contains(p64));

    let full = WideProcSet::<2>::full(universe);
    assert_eq!(full.words(), [u64::MAX, 1]);
    assert_eq!(full.len(), 65);
    assert_eq!(full.complement(universe), WideProcSet::EMPTY);
    assert_eq!(set.complement(universe).len(), 64);

    // MSW-first order: any set containing p64 outranks every one-word set.
    let low_full = widen::<2>(u64::MAX);
    assert!(set > low_full);

    set.remove(p64);
    assert!(set.is_empty());
    let members: Vec<usize> = full.iter().map(|p| p.index()).collect();
    assert_eq!(members, (0..65).collect::<Vec<_>>());
}

/// n = 128: two full words — the capacity edge of `WideProcSet<2>`.
#[test]
fn boundary_n128_capacity_edge() {
    assert_eq!(WideProcSet::<2>::CAPACITY, 128);
    let universe = Universe::new(128).unwrap();
    let full = WideProcSet::<2>::full(universe);
    assert_eq!(full.words(), [u64::MAX, u64::MAX]);
    assert_eq!(full.len(), 128);
    assert_eq!(full.max(), Some(ProcessId::new(127)));
    assert!(full.complement(universe).is_empty());

    let evens = WideProcSet::<2>::from_indices((0..128).step_by(2));
    let odds = evens.complement(universe);
    assert_eq!((evens.len(), odds.len()), (64, 64));
    assert!(evens.is_disjoint(odds));
    assert_eq!(evens.union(odds), full);
    assert!(evens.intersection(odds).is_empty());
    assert_eq!(evens.nth(32), Some(ProcessId::new(64)));

    // Π^1_128 round-trips through rank on the widest member.
    let top = WideProcSet::<2>::singleton(ProcessId::new(127));
    assert_eq!(wide_rank(top), 127);
    assert_eq!(wide_unrank::<2>(universe, 1, 127), top);
}
