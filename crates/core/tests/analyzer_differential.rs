//! Differential tests: the zero-allocation sweep engine
//! ([`TimelinessAnalyzer`], [`sweep_matrix`]) against the kept naive
//! reference ([`timeliness::naive`]) — exact agreement on every `(i, j)`
//! cell of seeded-random schedules.

use st_core::timeliness::{self, naive, sweep_matrix, TimelinessAnalyzer};
use st_core::{Schedule, Universe};

/// Deterministic schedule generator (SplitMix64) — self-contained so this
/// test depends on nothing but st-core.
fn random_schedule(n: usize, len: usize, mut seed: u64) -> Schedule {
    Schedule::from_indices((0..len).map(move |_| {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % n
    }))
}

/// Skews a random schedule with starvation bursts so non-timely pairs and
/// deep caps are exercised, not just the uniform case.
fn bursty_schedule(n: usize, len: usize, seed: u64) -> Schedule {
    let base = random_schedule(n, len, seed);
    let mut steps: Vec<usize> = base.iter().map(|p| p.index()).collect();
    // Starve the top half for a stretch in the middle.
    let third = len / 3;
    for s in steps[third..2 * third].iter_mut() {
        *s %= (n / 2).max(1);
    }
    Schedule::from_indices(steps)
}

#[test]
fn engine_matches_naive_on_all_cells_small_universes() {
    for n in [2usize, 3, 5, 8] {
        let universe = Universe::new(n).unwrap();
        // Full seed battery on the small universes; Π^i_8 × Π^j_8 over all
        // 64 cells is already ~180k pair checks per schedule, one seed is
        // plenty there.
        let seeds: &[u64] = if n < 8 {
            &[1, 0xDEAD, 0xFEED_5EED]
        } else {
            &[0xDEAD]
        };
        for &seed in seeds {
            let schedules = [
                random_schedule(n, 600, seed),
                bursty_schedule(n, 600, seed ^ 0xABCD),
            ];
            for s in &schedules {
                let mut az = TimelinessAnalyzer::new(universe);
                let mut engine_pairs = Vec::new();
                for i in 1..=n {
                    for j in 1..=n {
                        for cap in [1usize, 3, n + 1, 200] {
                            engine_pairs.clear();
                            az.all_timely_pairs_into(s, i, j, cap, &mut engine_pairs);
                            let reference = naive::all_timely_pairs(s, universe, i, j, cap);
                            assert_eq!(
                                engine_pairs, reference,
                                "all_timely_pairs n={n} seed={seed:#x} i={i} j={j} cap={cap}"
                            );
                            assert_eq!(
                                az.find_timely_pair(s, i, j, cap),
                                naive::find_timely_pair(s, universe, i, j, cap),
                                "find_timely_pair n={n} seed={seed:#x} i={i} j={j} cap={cap}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_sweep_matches_naive_cells() {
    let n = 6;
    let universe = Universe::new(n).unwrap();
    let s = bursty_schedule(n, 900, 0x5CA1E);
    let cap = n + 2;
    for threads in [1usize, 3, 16] {
        let matrix = sweep_matrix(&s, universe, cap, threads);
        for i in 1..=n {
            for j in 1..=n {
                let cell = matrix.cell(i, j);
                let reference = naive::all_timely_pairs(&s, universe, i, j, cap);
                assert_eq!(
                    cell.timely_pairs as usize,
                    reference.len(),
                    "count i={i} j={j} threads={threads}"
                );
                assert_eq!(cell.first, reference.first().copied());
                assert_eq!(cell.min_bound, reference.iter().map(|t| t.bound).min());
            }
        }
    }
}

#[test]
fn engine_bounds_match_streaming_scan_on_random_sets() {
    let n = 7;
    let universe = Universe::new(n).unwrap();
    let s = random_schedule(n, 1_500, 0xB0B);
    let mut az = TimelinessAnalyzer::new(universe);
    // All (P, Q) pairs of every size via raw bitmasks.
    for p_bits in 1u64..(1 << n) {
        let p = st_core::ProcSet::from_bits(p_bits);
        az.decompose(&s, p);
        for q_bits in [1u64, 0b101, (1 << n) - 1, p_bits] {
            let q = st_core::ProcSet::from_bits(q_bits);
            assert_eq!(
                az.bound(q),
                timeliness::empirical_bound(&s, p, q),
                "p={p_bits:#b} q={q_bits:#b}"
            );
        }
    }
}
