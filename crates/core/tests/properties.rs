//! Property-based tests for the model layer: the paper's Observations 2–5
//! checked on random schedules and sets, plus analyzer invariants.

use proptest::prelude::*;
use st_core::subsets::{binomial, k_subsets, rank, unrank};
use st_core::timeliness::{
    all_timely_pairs, empirical_bound, find_timely_pair, is_timely_with_bound,
    max_q_steps_in_p_free_interval, observation2_combine,
};
use st_core::{ProcSet, ProcessId, Schedule, SystemSpec, Universe};

const N: usize = 6;

fn universe() -> Universe {
    Universe::new(N).unwrap()
}

prop_compose! {
    /// A random schedule over Π_N of up to 400 steps.
    fn arb_schedule()(steps in prop::collection::vec(0..N, 0..400)) -> Schedule {
        Schedule::from_indices(steps)
    }
}

prop_compose! {
    /// A random non-empty process set within Π_N.
    fn arb_set()(bits in 1u64..(1 << N)) -> ProcSet {
        ProcSet::from_bits(bits)
    }
}

proptest! {
    /// The empirical bound is the *least* valid bound: it works, and one less
    /// does not (unless it is already 1).
    #[test]
    fn empirical_bound_is_minimal(s in arb_schedule(), p in arb_set(), q in arb_set()) {
        let b = empirical_bound(&s, p, q);
        prop_assert!(is_timely_with_bound(&s, p, q, b));
        if b > 1 {
            prop_assert!(!is_timely_with_bound(&s, p, q, b - 1));
        }
    }

    /// Bounds are monotone in the prefix: extending a schedule can only grow
    /// the max P-free Q-run.
    #[test]
    fn bound_monotone_in_prefix(s in arb_schedule(), p in arb_set(), q in arb_set(), cut in 0usize..400) {
        let prefix = s.prefix(cut);
        prop_assert!(
            max_q_steps_in_p_free_interval(&prefix, p, q)
                <= max_q_steps_in_p_free_interval(&s, p, q)
        );
    }

    /// Observation 3: enlarging P or shrinking Q never increases the bound.
    #[test]
    fn observation3_monotonicity(s in arb_schedule(), p in arb_set(), q in arb_set(), extra in arb_set()) {
        let p_sup = p.union(extra);
        prop_assert!(empirical_bound(&s, p_sup, q) <= empirical_bound(&s, p, q));
        let q_sub = q.intersection(extra);
        if !q_sub.is_empty() {
            prop_assert!(empirical_bound(&s, p, q_sub) <= empirical_bound(&s, p, q));
        }
    }

    /// Observation 2: the union pair is timely with bound b1 + b2 − 1.
    #[test]
    fn observation2_union(s in arb_schedule(), p1 in arb_set(), q1 in arb_set(), p2 in arb_set(), q2 in arb_set()) {
        let a = st_core::TimelyPair { p: p1, q: q1, bound: empirical_bound(&s, p1, q1) };
        let b = st_core::TimelyPair { p: p2, q: q2, bound: empirical_bound(&s, p2, q2) };
        let c = observation2_combine(a, b);
        prop_assert!(is_timely_with_bound(&s, c.p, c.q, c.bound));
    }

    /// A set is timely with respect to itself with bound 1 (used in the
    /// paper to derive Observation 5).
    #[test]
    fn self_timeliness(s in arb_schedule(), p in arb_set()) {
        prop_assert_eq!(empirical_bound(&s, p, p), 1);
    }

    /// Q ⊆ P gives bound 1 (every Q-step is a P-step).
    #[test]
    fn subset_timeliness(s in arb_schedule(), p in arb_set(), q in arb_set()) {
        let q_sub = q.intersection(p);
        if !q_sub.is_empty() {
            prop_assert_eq!(empirical_bound(&s, p, q_sub), 1);
        }
    }

    /// find_timely_pair returns a pair that really passes the cap, and agrees
    /// with the exhaustive all_timely_pairs scan.
    #[test]
    fn find_pair_consistent_with_scan(s in arb_schedule(), i in 1usize..=3, j in 1usize..=3, cap in 1usize..6) {
        prop_assume!(i <= j);
        let found = find_timely_pair(&s, universe(), i, j, cap);
        let scan = all_timely_pairs(&s, universe(), i, j, cap);
        match found {
            Some(tp) => {
                prop_assert!(tp.bound <= cap);
                prop_assert!(is_timely_with_bound(&s, tp.p, tp.q, cap));
                prop_assert!(!scan.is_empty());
                prop_assert_eq!(scan[0].p, tp.p);
                prop_assert_eq!(scan[0].q, tp.q);
            }
            None => prop_assert!(scan.is_empty()),
        }
    }

    /// Every pair returned by the exhaustive scan validates.
    #[test]
    fn scan_pairs_all_validate(s in arb_schedule(), cap in 1usize..5) {
        for tp in all_timely_pairs(&s, universe(), 2, 2, cap) {
            prop_assert!(tp.bound <= cap);
            prop_assert!(is_timely_with_bound(&s, tp.p, tp.q, tp.bound));
        }
    }

    /// Ranking is a bijection on Π^k_n.
    #[test]
    fn rank_unrank_bijection(k in 1usize..=N, raw in 0u64..10_000) {
        let r = raw % binomial(N, k);
        let s = unrank(universe(), k, r);
        prop_assert_eq!(s.len(), k);
        prop_assert_eq!(rank(s), r);
    }

    /// Observation 4 via witnesses: if a schedule has an S^{i'}_{j'} witness
    /// with i' ≤ i and j' ≥ j, the same witness weakens to an S^i_j witness.
    #[test]
    fn observation4_witness_weakening(s in arb_schedule(), cap in 2usize..6) {
        let strong = SystemSpec::new(1, 3, N).unwrap();
        let weak = SystemSpec::new(2, 2, N).unwrap();
        prop_assert!(weak.contains(&strong));
        if let Some(w) = strong.witness_on_prefix(&s, cap) {
            // Weakening: grow P by one process, shrink Q by one process.
            let grown = w.p.union(ProcSet::singleton(
                w.p.complement(universe()).min().unwrap(),
            ));
            let shrunk: ProcSet = w.q.iter().take(2).collect();
            prop_assert!(is_timely_with_bound(&s, grown, shrunk, w.bound));
        }
    }

    /// Concatenation decomposes counts.
    #[test]
    fn concat_counts(a in arb_schedule(), b in arb_schedule()) {
        let c = a.concat(&b);
        prop_assert_eq!(c.len(), a.len() + b.len());
        for pidx in 0..N {
            let p = ProcessId::new(pidx);
            prop_assert_eq!(c.occurrences(p), a.occurrences(p) + b.occurrences(p));
        }
    }

    /// Subset enumeration is strictly sorted by the ProcSet total order and
    /// has exactly C(n,k) elements.
    #[test]
    fn subsets_sorted_unique(k in 0usize..=N) {
        let v = k_subsets(universe(), k);
        prop_assert_eq!(v.len() as u64, binomial(N, k));
        for w in v.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
