//! Property tests: agreement safety under arbitrary schedules, crash plans,
//! and adversarial drivers — the unconditional half of the paper's claims.

use proptest::prelude::*;
use st_agreement::{drive_adversarially, AgreementStack, AttemptOutcome, Paxos, ProposerState};
use st_core::{AgreementTask, ProcSet, Schedule, ScheduleCursor, Universe, Value};
use st_fd::TimeoutPolicy;
use st_sched::{CrashAfter, CrashPlan, SeededRandom};
use st_sim::{RunConfig, Sim, StopWhen};

prop_compose! {
    /// A random schedule over n processes.
    fn arb_schedule(n: usize, max_len: usize)(steps in prop::collection::vec(0..n, 64..max_len)) -> Schedule {
        Schedule::from_indices(steps)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Paxos never chooses two values, never chooses an unproposed value,
    /// under arbitrary schedules.
    #[test]
    fn paxos_agreement_validity(sched in arb_schedule(3, 1500)) {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let px = Paxos::alloc(&mut sim, "px");
        for p in u.processes() {
            let px = px.clone();
            let proposal = 100 + p.index() as Value;
            sim.spawn(p, move |ctx| async move {
                let mut state = ProposerState::default();
                loop {
                    if let AttemptOutcome::Decided(v) = px.attempt(&ctx, &mut state, proposal).await {
                        ctx.decide(v);
                        return;
                    }
                }
            }).unwrap();
        }
        let mut src = ScheduleCursor::new(sched);
        sim.run(&mut src, RunConfig::steps(2000).stop_when(StopWhen::AllDecided(ProcSet::full(u)))).unwrap();
        let rep = sim.report();
        let decided: Vec<Value> = rep.decisions.iter().flatten().map(|d| d.value).collect();
        if let Some(&first) = decided.first() {
            prop_assert!(decided.iter().all(|&v| v == first), "split: {decided:?}");
            prop_assert!((100..103).contains(&first));
        }
        // The decision register can never contradict process decisions.
        if let Some(v) = px.peek_decision(&sim) {
            prop_assert!(decided.iter().all(|&d| d == v));
        }
    }

    /// The full FD + k-parallel-Paxos stack keeps k-agreement and validity
    /// under random schedules and random crash plans, for random (t,k,n).
    #[test]
    fn stack_safety_under_random_runs(
        seed in 0u64..10_000,
        n in 3usize..=5,
        raw_k in 1usize..=3,
        crash_bits in 0u64..8,
        crash_step in 0u64..50_000,
    ) {
        let t = n - 1;
        let k = raw_k.min(t);
        let task = AgreementTask::new(t, k, n).unwrap();
        let inputs: Vec<Value> = (0..n as Value).map(|v| 70 + v).collect();
        let stack = AgreementStack::build(task, &inputs);
        let crashed = ProcSet::from_bits(crash_bits & ((1 << n) - 1));
        let plan = CrashPlan::all_at(crashed, crash_step);
        let mut src = CrashAfter::new(SeededRandom::new(task.universe(), seed), plan);
        let run = stack.run(&mut src, 120_000, crashed);
        prop_assert!(run.is_safe(), "violations: {:?}", run.violations);
        let distinct: std::collections::BTreeSet<Value> =
            run.outcome.decisions.iter().flatten().copied().collect();
        prop_assert!(distinct.len() <= k);
        for v in distinct {
            prop_assert!(inputs.contains(&v));
        }
    }

    /// The adaptive adversary never breaks safety, never freezes more than
    /// k processes, and never lets a decision slip through.
    #[test]
    fn adversary_blocks_and_stays_safe(n in 3usize..=4, k in 1usize..=2) {
        prop_assume!(k < n - 1);
        let task = AgreementTask::new(k, k, n).unwrap();
        let inputs: Vec<Value> = (0..n as Value).collect();
        let stack = AgreementStack::build_full(task, &inputs, TimeoutPolicy::Increment, false);
        let adv = drive_adversarially(stack, 120_000, ProcSet::EMPTY, None);
        prop_assert!(adv.run.is_safe());
        prop_assert!(adv.max_frozen <= k);
        prop_assert!(adv.run.outcome.decisions.iter().all(|d| d.is_none()));
    }

    /// The trivial stack terminates on every fair random schedule and any
    /// crash plan within budget (t < k guarantees a live publisher).
    #[test]
    fn trivial_stack_lives(seed in 0u64..10_000, crash_one in 0usize..4) {
        let task = AgreementTask::new(1, 2, 4).unwrap();
        let inputs: Vec<Value> = vec![3, 5, 7, 9];
        let stack = AgreementStack::build(task, &inputs);
        let crashed = ProcSet::from_indices([crash_one]);
        let plan = CrashPlan::all_at(crashed, 0);
        let mut src = CrashAfter::new(SeededRandom::new(task.universe(), seed), plan);
        let run = stack.run(&mut src, 200_000, crashed);
        prop_assert!(run.is_clean_termination(), "{:?}", run.violations);
    }
}
