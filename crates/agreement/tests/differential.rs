//! Differential tests: the async agreement stack against its state-machine
//! ports, on identical schedules — mirroring `st-fd/tests/differential.rs`.
//!
//! The machine ports ([`PaxosMachine`], [`KSetAgreementMachine`]) are only
//! admissible as "the same algorithm" if they are **observationally
//! identical** step-for-step: the same probe sequences at the same step
//! indices (winnerset publications and decided-instance probes), the same
//! decisions at the same steps, the same per-process operation counts, the
//! same per-register access statistics, and the same final register
//! contents. This suite enforces that on the four schedule families the
//! experiments use: round-robin, seeded-random, the Figure 1 starvation
//! schedule, and crash schedules (a prefix that stops scheduling a
//! process).

use st_agreement::{AgreementStack, KSetAgreement, Paxos, PaxosMachine, StackAbi};
use st_core::{ProcessId, Schedule, ScheduleCursor, StepSource, Universe, Value};
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy};
use st_sched::{Figure1, SeededRandom};
use st_sim::{RunConfig, RunReport, Sim};

/// How a protocol is executed: the async transcription, the state machine
/// in a dyn slot, or the typed fleet on the replay drive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Async,
    MachineSlot,
    FleetReplay,
}

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 100 + 3 * v).collect()
}

// ---------------------------------------------------------------------------
// Paxos: dueling proposers, every process attempts until it decides.
// ---------------------------------------------------------------------------

/// Runs `n` dueling proposers over `schedule` in the chosen mode; returns
/// the report plus the final record/decision register contents.
fn run_paxos(n: usize, schedule: &Schedule, mode: Mode) -> (RunReport, Vec<String>) {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::with_recording(universe, true);
    let paxos = Paxos::alloc(&mut sim, "px");
    let budget = schedule.len() as u64;
    let proposals = inputs(n);
    match mode {
        Mode::Async => {
            for p in universe.processes() {
                let paxos = paxos.clone();
                let proposal = proposals[p.index()];
                sim.spawn(p, move |ctx| async move {
                    let mut state = st_agreement::ProposerState::default();
                    loop {
                        if let st_agreement::AttemptOutcome::Decided(v) =
                            paxos.attempt(&ctx, &mut state, proposal).await
                        {
                            ctx.decide(v);
                            return;
                        }
                    }
                })
                .unwrap();
            }
            let mut src = ScheduleCursor::new(schedule.clone());
            sim.run(&mut src, RunConfig::steps(budget)).unwrap();
        }
        Mode::MachineSlot => {
            for p in universe.processes() {
                sim.spawn_automaton(p, paxos.machine(proposals[p.index()]))
                    .unwrap();
            }
            let mut src = ScheduleCursor::new(schedule.clone());
            sim.run(&mut src, RunConfig::steps(budget)).unwrap();
        }
        Mode::FleetReplay => {
            let mut fleet: Vec<PaxosMachine> = universe
                .processes()
                .map(|p| paxos.machine(proposals[p.index()]))
                .collect();
            sim.run_automata_replay(&mut fleet, schedule, RunConfig::steps(budget))
                .unwrap();
        }
    }
    let mut registers: Vec<String> = paxos
        .peek_records(&sim)
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    registers.push(format!("{:?}", paxos.peek_decision(&sim)));
    (sim.report(), registers)
}

fn assert_paxos_identical(n: usize, schedule: Schedule, label: &str) {
    let (async_rep, async_regs) = run_paxos(n, &schedule, Mode::Async);
    for mode in [Mode::MachineSlot, Mode::FleetReplay] {
        let (machine_rep, machine_regs) = run_paxos(n, &schedule, mode);
        assert_eq!(
            async_rep.steps, machine_rep.steps,
            "{label}/{mode:?}: step counts diverged"
        );
        assert_eq!(
            async_rep.probes.events(),
            machine_rep.probes.events(),
            "{label}/{mode:?}: probe sequences diverged"
        );
        assert_eq!(
            async_rep.decisions, machine_rep.decisions,
            "{label}/{mode:?}: decisions diverged"
        );
        assert_eq!(
            async_rep.finished, machine_rep.finished,
            "{label}/{mode:?}: completion flags diverged"
        );
        assert_eq!(
            async_rep.op_counts, machine_rep.op_counts,
            "{label}/{mode:?}: per-process op counts diverged"
        );
        assert_eq!(
            async_rep.register_stats, machine_rep.register_stats,
            "{label}/{mode:?}: register access statistics diverged"
        );
        assert_eq!(
            async_regs, machine_regs,
            "{label}/{mode:?}: final register contents diverged"
        );
        assert_eq!(
            async_rep.executed, machine_rep.executed,
            "{label}/{mode:?}: executed schedules diverged"
        );
    }
}

fn round_robin(n: usize, len: usize) -> Schedule {
    Schedule::from_indices((0..len).map(|s| s % n))
}

#[test]
fn paxos_round_robin_identical() {
    for n in [1usize, 2, 3, 5] {
        // Fine-grained alternation: dueling proposers may preempt each
        // other forever (livelock is allowed under adversarial schedules)
        // — heavy exercise for the preemption paths of both ABIs.
        assert_paxos_identical(n, round_robin(n, 400), &format!("paxos rr n={n}"));
        // Bursty round-robin: each process gets 2n + 2 consecutive steps,
        // enough for one uncontended ballot — everyone decides.
        let burst = 2 * n + 2;
        let bursty = Schedule::from_indices((0..(8 * n * burst)).map(|s| (s / burst) % n));
        let (rep, _) = run_paxos(n, &bursty, Mode::Async);
        assert!(
            rep.decisions.iter().all(|d| d.is_some()),
            "n={n}: bursty workload must decide everywhere"
        );
        assert_paxos_identical(n, bursty, &format!("paxos rr-burst n={n}"));
    }
}

#[test]
fn paxos_seeded_random_identical() {
    for seed in [2u64, 0xDEAD, 0xFEED_5EED] {
        let u = Universe::new(4).unwrap();
        let s = SeededRandom::new(u, seed).take_schedule(2_000);
        assert_paxos_identical(4, s, &format!("paxos rnd seed={seed}"));
    }
}

#[test]
fn paxos_figure1_identical() {
    let s =
        Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)).take_schedule(2_000);
    assert_paxos_identical(3, s, "paxos fig1");
}

#[test]
fn paxos_crash_identical() {
    // p0 runs four steps (mid-ballot: decision check, announce, a read,
    // the phase-2 write), then is never scheduled again — the model's
    // crash. Survivors must behave identically across ABIs.
    let mut steps: Vec<usize> = vec![0, 0, 0, 0];
    steps.extend((0..600).map(|s| 1 + s % 2));
    assert_paxos_identical(3, Schedule::from_indices(steps), "paxos crash");
}

// ---------------------------------------------------------------------------
// The full k-set agreement stack: FD + k parallel Paxos instances.
// ---------------------------------------------------------------------------

/// Runs the full (t,k,n) FD + k-parallel-Paxos stack over `schedule` in the
/// chosen mode; returns the report plus all final register contents
/// (heartbeats, counters, Paxos records, decision registers).
fn run_kset(
    n: usize,
    k: usize,
    t: usize,
    schedule: &Schedule,
    mode: Mode,
) -> (RunReport, Vec<String>) {
    let task = st_core::AgreementTask::new(t, k, n).unwrap();
    let budget = schedule.len() as u64;
    let (sim, fd, kset);
    match mode {
        Mode::Async | Mode::MachineSlot => {
            let abi = if mode == Mode::Async {
                StackAbi::Async
            } else {
                StackAbi::Machine
            };
            let mut stack =
                AgreementStack::build_abi(task, &inputs(n), TimeoutPolicy::Increment, true, abi);
            let mut src = ScheduleCursor::new(schedule.clone());
            stack
                .sim_mut()
                .run(&mut src, RunConfig::steps(budget))
                .unwrap();
            fd = stack.fd().unwrap().clone();
            kset = stack.kset().unwrap().clone();
            sim = stack.into_sim();
        }
        Mode::FleetReplay => {
            // Same allocation order as the harness: FD first, then the
            // instances — identical register layout by construction.
            let universe = task.universe();
            let mut s = Sim::with_recording(universe, true);
            let f = KAntiOmega::alloc(&mut s, KAntiOmegaConfig::new(k, t));
            let ks = KSetAgreement::alloc(&mut s, k);
            let proposals = inputs(n);
            let mut fleet: Vec<_> = universe
                .processes()
                .map(|p| ks.machine(&f, proposals[p.index()]))
                .collect();
            s.run_automata_replay(&mut fleet, schedule, RunConfig::steps(budget))
                .unwrap();
            sim = s;
            fd = f;
            kset = ks;
        }
    }

    let mut registers = Vec::new();
    let universe = task.universe();
    for p in universe.processes() {
        registers.push(fd.peek_heartbeat(&sim, p).to_string());
    }
    for rank in 0..fd.set_count() {
        for q in universe.processes() {
            registers.push(fd.peek_counter(&sim, rank, q).to_string());
        }
    }
    for instance in kset.instances() {
        for rec in instance.peek_records(&sim) {
            registers.push(format!("{rec:?}"));
        }
        registers.push(format!("{:?}", instance.peek_decision(&sim)));
    }
    (sim.report(), registers)
}

fn assert_kset_identical(n: usize, k: usize, t: usize, schedule: Schedule, label: &str) {
    let (async_rep, async_regs) = run_kset(n, k, t, &schedule, Mode::Async);
    for mode in [Mode::MachineSlot, Mode::FleetReplay] {
        let (machine_rep, machine_regs) = run_kset(n, k, t, &schedule, mode);
        assert_eq!(
            async_rep.steps, machine_rep.steps,
            "{label}/{mode:?}: step counts diverged"
        );
        // Winnerset publications and decided-instance probes: the stack's
        // observable behavior, including publication step indices.
        assert_eq!(
            async_rep.probes.events(),
            machine_rep.probes.events(),
            "{label}/{mode:?}: probe sequences diverged"
        );
        assert_eq!(
            async_rep.decisions, machine_rep.decisions,
            "{label}/{mode:?}: decisions diverged"
        );
        assert_eq!(
            async_rep.finished, machine_rep.finished,
            "{label}/{mode:?}: completion flags diverged"
        );
        assert_eq!(
            async_rep.op_counts, machine_rep.op_counts,
            "{label}/{mode:?}: per-process op counts diverged"
        );
        assert_eq!(
            async_rep.register_stats, machine_rep.register_stats,
            "{label}/{mode:?}: register access statistics diverged"
        );
        assert_eq!(
            async_regs, machine_regs,
            "{label}/{mode:?}: final register contents diverged"
        );
        assert_eq!(
            async_rep.executed, machine_rep.executed,
            "{label}/{mode:?}: executed schedules diverged"
        );
    }
}

#[test]
fn kset_round_robin_identical() {
    assert_kset_identical(3, 1, 1, round_robin(3, 30_000), "kset rr n=3 k=1 t=1");
    assert_kset_identical(4, 2, 2, round_robin(4, 40_000), "kset rr n=4 k=2 t=2");
}

#[test]
fn kset_seeded_random_identical() {
    for seed in [1u64, 0xBEEF] {
        let u = Universe::new(4).unwrap();
        let s = SeededRandom::new(u, seed).take_schedule(40_000);
        assert_kset_identical(4, 1, 2, s.clone(), "kset rnd k=1 t=2");
        assert_kset_identical(4, 2, 3, s, "kset rnd k=2 t=3");
    }
}

#[test]
fn kset_figure1_identical() {
    let s =
        Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)).take_schedule(30_000);
    assert_kset_identical(3, 1, 1, s.clone(), "kset fig1 k=1 t=1");
    assert_kset_identical(3, 1, 2, s, "kset fig1 k=1 t=2");
}

#[test]
fn kset_crash_identical() {
    // Stop scheduling p2 mid-run: the surviving processes' observable
    // behavior must stay identical across ABIs.
    let n = 3;
    let mut steps: Vec<usize> = (0..10_000).map(|s| s % n).collect();
    steps.extend((0..20_000).map(|s| s % (n - 1)));
    assert_kset_identical(3, 1, 2, Schedule::from_indices(steps), "kset crash n=3");
}

/// The machine stack actually decides (the differential above is not
/// vacuous): on a round-robin schedule long enough for the FD to converge,
/// every process decides, with at most k distinct proposed values.
#[test]
fn kset_machine_decides_on_round_robin() {
    let (n, k, t) = (4usize, 2usize, 2usize);
    let (rep, _) = run_kset(n, k, t, &round_robin(n, 40_000), Mode::MachineSlot);
    let decided: std::collections::BTreeSet<Value> =
        rep.decisions.iter().flatten().map(|d| d.value).collect();
    assert!(
        rep.decisions.iter().all(|d| d.is_some()),
        "all must decide: {:?}",
        rep.decisions
    );
    assert!(!decided.is_empty() && decided.len() <= k);
    for v in &decided {
        assert!(inputs(n).contains(v), "unproposed value {v}");
    }
}
