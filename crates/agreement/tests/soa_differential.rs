//! Differential tests: the struct-of-arrays replay drive
//! ([`Sim::run_automata_replay_soa`]) against the plain fleet replay
//! ([`Sim::run_automata_replay`]), on identical schedules.
//!
//! The SoA drive is only admissible if it is **observationally identical**
//! to the plain replay: the same probe sequences at the same step indices,
//! the same decisions at the same steps, the same per-process op counts,
//! the same per-register access statistics, and the same final register
//! contents. This suite enforces that for every [`PhaseBatch`] machine in
//! the workspace — `KAntiOmegaMachine`, `KSetAgreementMachine`,
//! `PaxosMachine`, `LeanOmegaMachine`, `LeanConsensusMachine` — across:
//!
//! - every schedule family the experiments use (round-robin, bursty,
//!   seeded-random, Figure 1, crash prefixes, `SetTimely`) **and all four
//!   fault decorators** (`Flapping`, `GrayFailure`, `BurstClog`,
//!   `CrashRecovery`), via [`GeneratorSpec::build`];
//! - proptest-driven *arbitrary* `GeneratorSpec` trees
//!   ([`SpecMutator::arbitrary`]), so no hand-picked family shields a
//!   divergence;
//! - slice lengths {1, 7, 64, 1024}: degenerate scalar fallback, mixed
//!   pure/impure slices, and slices spanning many whole phases;
//! - large universes (lean stack at n = 256), where the batch paths
//!   actually win and the purity checks see long allotments.
//!
//! The sims here are built **without recording** and run with
//! [`StopWhen::Never`]: both replay drives delegate to the cursor-based
//! `run_automata` when recording is on or a stop condition is set, so a
//! recorded comparison would exercise neither fused loop. Consequently the
//! `executed` report field (recording-only) is not compared.

use proptest::prelude::*;
use st_agreement::{KSetAgreement, KSetAgreementMachine, LeanConsensus, Paxos, PaxosMachine};
use st_core::{ProcSet, ProcessId, Schedule, StepSource, Universe, Value};
use st_fd::{KAntiOmega, KAntiOmegaConfig, KAntiOmegaMachine, LeanOmega, TimeoutPolicy};
use st_sched::{Figure1, GeneratorSpec, SpecMutator, SpecRng};
use st_sim::{RunConfig, RunReport, Sim};

/// Which fleet replay drive executes the schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Drive {
    Plain,
    Soa(usize),
}

/// Slice lengths every identity check sweeps: scalar degenerate, short
/// mixed, a typical batch, and slices longer than most schedules.
const SLICE_LENS: [usize; 4] = [1, 7, 64, 1024];

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 100 + 3 * v).collect()
}

fn round_robin(n: usize, len: usize) -> Schedule {
    Schedule::from_indices((0..len).map(|s| s % n))
}

fn from_spec(spec: &GeneratorSpec, n: usize, seed: u64, len: usize) -> Schedule {
    let u = Universe::new(n).unwrap();
    spec.build(u, seed).take_schedule(len)
}

/// Compares two (report, registers) observations, field by field, with the
/// recording-only `executed` field deliberately excluded (see module docs).
fn assert_observations_eq(
    plain: &(RunReport, Vec<String>),
    soa: &(RunReport, Vec<String>),
    label: &str,
    drive: Drive,
) {
    assert_eq!(
        plain.0.steps, soa.0.steps,
        "{label}/{drive:?}: step counts diverged"
    );
    assert_eq!(
        plain.0.probes.events(),
        soa.0.probes.events(),
        "{label}/{drive:?}: probe sequences diverged"
    );
    assert_eq!(
        plain.0.decisions, soa.0.decisions,
        "{label}/{drive:?}: decisions diverged"
    );
    assert_eq!(
        plain.0.finished, soa.0.finished,
        "{label}/{drive:?}: completion flags diverged"
    );
    assert_eq!(
        plain.0.op_counts, soa.0.op_counts,
        "{label}/{drive:?}: per-process op counts diverged"
    );
    assert_eq!(
        plain.0.register_stats, soa.0.register_stats,
        "{label}/{drive:?}: register access statistics diverged"
    );
    assert_eq!(
        plain.1, soa.1,
        "{label}/{drive:?}: final register contents diverged"
    );
}

// ---------------------------------------------------------------------------
// Per-stack runners: build a fresh sim + fleet, run one drive, observe.
// ---------------------------------------------------------------------------

fn run_kanti(
    n: usize,
    k: usize,
    t: usize,
    schedule: &Schedule,
    drive: Drive,
) -> (RunReport, Vec<String>) {
    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
    let mut fleet: Vec<KAntiOmegaMachine> = u.processes().map(|_| fd.machine()).collect();
    let cfg = RunConfig::steps(schedule.len() as u64);
    match drive {
        Drive::Plain => sim.run_automata_replay(&mut fleet, schedule, cfg).unwrap(),
        Drive::Soa(sl) => sim
            .run_automata_replay_soa_batched(&mut fleet, schedule, sl, cfg)
            .unwrap(),
    };
    let mut regs = Vec::new();
    for p in u.processes() {
        regs.push(fd.peek_heartbeat(&sim, p).to_string());
    }
    for rank in 0..fd.set_count() {
        for q in u.processes() {
            regs.push(fd.peek_counter(&sim, rank, q).to_string());
        }
    }
    (sim.report(), regs)
}

fn run_paxos_fleet(n: usize, schedule: &Schedule, drive: Drive) -> (RunReport, Vec<String>) {
    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let paxos = Paxos::alloc(&mut sim, "px");
    let proposals = inputs(n);
    let mut fleet: Vec<PaxosMachine> = u
        .processes()
        .map(|p| paxos.machine(proposals[p.index()]))
        .collect();
    let cfg = RunConfig::steps(schedule.len() as u64);
    match drive {
        Drive::Plain => sim.run_automata_replay(&mut fleet, schedule, cfg).unwrap(),
        Drive::Soa(sl) => sim
            .run_automata_replay_soa_batched(&mut fleet, schedule, sl, cfg)
            .unwrap(),
    };
    let mut regs: Vec<String> = paxos
        .peek_records(&sim)
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    regs.push(format!("{:?}", paxos.peek_decision(&sim)));
    (sim.report(), regs)
}

fn run_kset_fleet(
    n: usize,
    k: usize,
    t: usize,
    schedule: &Schedule,
    drive: Drive,
) -> (RunReport, Vec<String>) {
    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
    let kset = KSetAgreement::alloc(&mut sim, k);
    let proposals = inputs(n);
    let mut fleet: Vec<KSetAgreementMachine> = u
        .processes()
        .map(|p| kset.machine(&fd, proposals[p.index()]))
        .collect();
    let cfg = RunConfig::steps(schedule.len() as u64);
    match drive {
        Drive::Plain => sim.run_automata_replay(&mut fleet, schedule, cfg).unwrap(),
        Drive::Soa(sl) => sim
            .run_automata_replay_soa_batched(&mut fleet, schedule, sl, cfg)
            .unwrap(),
    };
    let mut regs = Vec::new();
    for p in u.processes() {
        regs.push(fd.peek_heartbeat(&sim, p).to_string());
    }
    for rank in 0..fd.set_count() {
        for q in u.processes() {
            regs.push(fd.peek_counter(&sim, rank, q).to_string());
        }
    }
    for instance in kset.instances() {
        for rec in instance.peek_records(&sim) {
            regs.push(format!("{rec:?}"));
        }
        regs.push(format!("{:?}", instance.peek_decision(&sim)));
    }
    (sim.report(), regs)
}

fn run_lean_fd(n: usize, t: usize, schedule: &Schedule, drive: Drive) -> (RunReport, Vec<String>) {
    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let fd = LeanOmega::alloc(&mut sim, t, TimeoutPolicy::Increment);
    let mut fleet: Vec<_> = u.processes().map(|_| fd.machine()).collect();
    let cfg = RunConfig::steps(schedule.len() as u64);
    match drive {
        Drive::Plain => sim.run_automata_replay(&mut fleet, schedule, cfg).unwrap(),
        Drive::Soa(sl) => sim
            .run_automata_replay_soa_batched(&mut fleet, schedule, sl, cfg)
            .unwrap(),
    };
    let mut regs = Vec::new();
    for q in 0..n {
        regs.push(fd.peek_heartbeat(&sim, q).to_string());
    }
    // The n×n counter matrix in full at small n; a diagonal + edge sample
    // at large n (the full matrix comparison would dominate the test).
    if n <= 16 {
        for a in 0..n {
            for q in 0..n {
                regs.push(fd.peek_counter(&sim, a, q).to_string());
            }
        }
    } else {
        for i in 0..n {
            regs.push(fd.peek_counter(&sim, i, i).to_string());
            regs.push(fd.peek_counter(&sim, i, 0).to_string());
            regs.push(fd.peek_counter(&sim, 0, i).to_string());
        }
    }
    (sim.report(), regs)
}

fn run_lean_consensus(
    n: usize,
    t: usize,
    schedule: &Schedule,
    drive: Drive,
) -> (RunReport, Vec<String>) {
    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let fd = LeanOmega::alloc(&mut sim, t, TimeoutPolicy::Increment);
    let cons = LeanConsensus::alloc(&mut sim);
    let proposals = inputs(n);
    let mut fleet: Vec<_> = u
        .processes()
        .map(|p| cons.machine(&fd, proposals[p.index()]))
        .collect();
    let cfg = RunConfig::steps(schedule.len() as u64);
    match drive {
        Drive::Plain => sim.run_automata_replay(&mut fleet, schedule, cfg).unwrap(),
        Drive::Soa(sl) => sim
            .run_automata_replay_soa_batched(&mut fleet, schedule, sl, cfg)
            .unwrap(),
    };
    let mut regs = Vec::new();
    for q in 0..n {
        regs.push(fd.peek_heartbeat(&sim, q).to_string());
    }
    for rec in cons.instance().peek_records(&sim) {
        regs.push(format!("{rec:?}"));
    }
    regs.push(format!("{:?}", cons.instance().peek_decision(&sim)));
    (sim.report(), regs)
}

/// Runs `runner` under the plain drive and under the SoA drive at every
/// slice length, asserting observational identity each time.
fn assert_soa_identical<F>(label: &str, runner: F)
where
    F: Fn(Drive) -> (RunReport, Vec<String>),
{
    let plain = runner(Drive::Plain);
    for sl in SLICE_LENS {
        let soa = runner(Drive::Soa(sl));
        assert_observations_eq(&plain, &soa, label, Drive::Soa(sl));
    }
}

// ---------------------------------------------------------------------------
// Named schedule families, including all four fault decorators.
// ---------------------------------------------------------------------------

/// The schedule families every stack is checked on: the base families of
/// `tests/differential.rs` plus a `SetTimely` guarantee and one of each
/// fault decorator wrapped around it.
fn family_schedules(n: usize, len: usize) -> Vec<(String, Schedule)> {
    let mut out = Vec::new();
    out.push(("round-robin".into(), round_robin(n, len)));
    let burst = 2 * n + 2;
    out.push((
        "bursty".into(),
        Schedule::from_indices((0..len).map(|s| (s / burst) % n)),
    ));
    out.push((
        "seeded-random".into(),
        from_spec(&GeneratorSpec::seeded_random(0), n, 0xDEAD, len),
    ));
    if n >= 3 {
        out.push((
            "figure1".into(),
            Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2))
                .take_schedule(len),
        ));
    }
    // Crash: p0 stops being scheduled a third of the way in.
    let mut crash: Vec<usize> = (0..len / 3).map(|s| s % n).collect();
    crash.extend((0..2 * len / 3).map(|s| 1 + s % (n - 1)));
    out.push(("crash".into(), Schedule::from_indices(crash)));

    let p = ProcSet::from_iter([ProcessId::new(0)]);
    let q = ProcSet::from_iter((0..n).map(ProcessId::new));
    let timely = GeneratorSpec::set_timely(p, q, 3 * n, GeneratorSpec::seeded_random(7));
    out.push(("set-timely".into(), from_spec(&timely, n, 11, len)));
    out.push((
        "flapping".into(),
        from_spec(
            &GeneratorSpec::flapping(
                p,
                q,
                3 * n,
                GeneratorSpec::seeded_random(3),
                (200, 600),
                (100, 300),
            ),
            n,
            12,
            len,
        ),
    ));
    out.push((
        "gray-failure".into(),
        from_spec(
            &GeneratorSpec::gray_failure(timely.clone(), p, 4),
            n,
            13,
            len,
        ),
    ));
    out.push((
        "burst-clog".into(),
        from_spec(
            &GeneratorSpec::burst_clog(timely.clone(), ProcessId::new(n - 1), 64, (100, 400)),
            n,
            14,
            len,
        ),
    ));
    out.push((
        "crash-recovery".into(),
        from_spec(
            &GeneratorSpec::crash_recovery(
                timely,
                ProcessId::new(0),
                len as u64 / 4,
                len as u64 / 2,
            ),
            n,
            15,
            len,
        ),
    ));
    out
}

// ---------------------------------------------------------------------------
// Identity on every family, for every PhaseBatch machine type.
// ---------------------------------------------------------------------------

#[test]
fn kanti_fleet_soa_identical_on_all_families() {
    for (name, sched) in family_schedules(4, 20_000) {
        assert_soa_identical(&format!("kanti n=4 {name}"), |d| {
            run_kanti(4, 2, 2, &sched, d)
        });
    }
}

#[test]
fn paxos_fleet_soa_identical_on_all_families() {
    for (name, sched) in family_schedules(5, 4_000) {
        assert_soa_identical(&format!("paxos n=5 {name}"), |d| {
            run_paxos_fleet(5, &sched, d)
        });
    }
}

#[test]
fn kset_fleet_soa_identical_on_all_families() {
    for (name, sched) in family_schedules(4, 30_000) {
        assert_soa_identical(&format!("kset n=4 {name}"), |d| {
            run_kset_fleet(4, 1, 2, &sched, d)
        });
    }
    // A second task shape: k = 2 on round-robin and seeded-random.
    for (name, sched) in family_schedules(4, 30_000).into_iter().take(3) {
        assert_soa_identical(&format!("kset k=2 n=4 {name}"), |d| {
            run_kset_fleet(4, 2, 3, &sched, d)
        });
    }
}

#[test]
fn lean_fd_soa_identical_on_all_families() {
    for (name, sched) in family_schedules(6, 20_000) {
        assert_soa_identical(&format!("lean-fd n=6 {name}"), |d| {
            run_lean_fd(6, 1, &sched, d)
        });
    }
}

#[test]
fn lean_consensus_soa_identical_on_all_families() {
    for (name, sched) in family_schedules(5, 20_000) {
        assert_soa_identical(&format!("lean-cons n=5 {name}"), |d| {
            run_lean_consensus(5, 1, &sched, d)
        });
    }
}

// ---------------------------------------------------------------------------
// Large n: the regime where the SoA batch paths actually engage.
// ---------------------------------------------------------------------------

/// Lean FD identity at n = 256: allotments regularly sit inside the n²-step
/// counter scan, so the span-read batch path (not the scalar fallback) is
/// what executes most slices.
#[test]
fn lean_fd_soa_identical_at_n256() {
    let n = 256;
    for (name, sched) in [
        ("round-robin".to_string(), round_robin(n, 400_000)),
        (
            "seeded-random".into(),
            from_spec(&GeneratorSpec::seeded_random(0), n, 99, 400_000),
        ),
        (
            "bursty".into(),
            Schedule::from_indices((0..400_000).map(|s| (s / 512) % n)),
        ),
    ] {
        assert_soa_identical(&format!("lean-fd n=256 {name}"), |d| {
            run_lean_fd(n, 8, &sched, d)
        });
    }
}

/// Lean consensus identity at n = 256 (FD + decision scan + proposer core
/// hand-offs all crossing batch boundaries).
#[test]
fn lean_consensus_soa_identical_at_n256() {
    let n = 256;
    let sched = Schedule::from_indices((0..400_000).map(|s| (s / 512) % n));
    assert_soa_identical("lean-cons n=256 bursty", |d| {
        run_lean_consensus(n, 8, &sched, d)
    });
}

/// The k-anti-Ω fleet at its ProcSet capacity boundary, n = 64.
#[test]
fn kanti_fleet_soa_identical_at_n64() {
    let n = 64;
    let sched = round_robin(n, 200_000);
    assert_soa_identical("kanti n=64 rr", |d| run_kanti(n, 1, 1, &sched, d));
}

// ---------------------------------------------------------------------------
// Property test: arbitrary GeneratorSpec trees.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SoA identity holds on schedules drawn from *arbitrary* spec trees —
    /// random nestings of fillers, guarantees, and all four fault
    /// decorators — not just the named families above.
    #[test]
    fn soa_identical_on_arbitrary_spec_trees(seed in 0u64..1_000_000) {
        let n = 4;
        let u = Universe::new(n).unwrap();
        let mut rng = SpecRng::new(seed);
        let spec = SpecMutator::new(u).arbitrary(&mut rng, 3);
        let sched = spec.build(u, seed ^ 0xA5A5).take_schedule(12_000);
        // Kset exercises every phase kind (FD scans, decision scans,
        // proposer cores); slice lengths cover fallback and batch paths.
        let plain = run_kset_fleet(n, 1, 2, &sched, Drive::Plain);
        for sl in [1usize, 7, 64] {
            let soa = run_kset_fleet(n, 1, 2, &sched, Drive::Soa(sl));
            assert_observations_eq(&plain, &soa, &format!("arb-spec seed={seed}"), Drive::Soa(sl));
        }
    }

    /// Same property for the lean consensus stack (index-based FD), whose
    /// batch path takes span reads through the n² counter matrix.
    #[test]
    fn lean_soa_identical_on_arbitrary_spec_trees(seed in 0u64..1_000_000) {
        let n = 8;
        let u = Universe::new(n).unwrap();
        let mut rng = SpecRng::new(seed);
        let spec = SpecMutator::new(u).arbitrary(&mut rng, 3);
        let sched = spec.build(u, seed ^ 0x5A5A).take_schedule(12_000);
        let plain = run_lean_consensus(n, 2, &sched, Drive::Plain);
        for sl in [1usize, 7, 64] {
            let soa = run_lean_consensus(n, 2, &sched, Drive::Soa(sl));
            assert_observations_eq(&plain, &soa, &format!("lean arb-spec seed={seed}"), Drive::Soa(sl));
        }
    }
}

// ---------------------------------------------------------------------------
// Non-vacuity: the SoA runs above actually decide / elect.
// ---------------------------------------------------------------------------

/// The large-n lean consensus run is not vacuous: under a bursty schedule
/// long enough for the FD to stabilize, processes decide — on the SoA
/// drive, with agreement and validity intact.
#[test]
fn lean_consensus_soa_decides_at_n64() {
    let n = 64;
    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let fd = LeanOmega::alloc(&mut sim, 4, TimeoutPolicy::Increment);
    let cons = LeanConsensus::alloc(&mut sim);
    let proposals = inputs(n);
    let mut fleet: Vec<_> = u
        .processes()
        .map(|p| cons.machine(&fd, proposals[p.index()]))
        .collect();
    // Bursts of n² + n + 2 steps: a whole FD iteration plus the decision
    // scan per turn, so the appointed leader gets uncontended ballots.
    let burst = n * n + n + 2;
    let len = 40 * n * burst / 8;
    let sched = Schedule::from_indices((0..len).map(|s| (s / burst) % n));
    sim.run_automata_replay_soa_batched(&mut fleet, &sched, 64, RunConfig::steps(len as u64))
        .unwrap();
    let decided: std::collections::BTreeSet<Value> =
        sim.decisions().iter().flatten().map(|d| d.value).collect();
    assert_eq!(decided.len(), 1, "consensus: one value, got {decided:?}");
    assert!(
        sim.decisions().iter().filter(|d| d.is_some()).count() > n / 2,
        "most processes decide under bursty scheduling"
    );
}
