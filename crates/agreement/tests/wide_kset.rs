//! The full paper stack beyond the 64-process wall: `KAntiOmega<W>` at
//! `W = 2` feeding the k-parallel-Paxos machine at `n = 66`.
//!
//! This is the integration smoke for the width-generic port: the embedded
//! wide FD must stabilize, appoint leaders through `winnerset.nth(r)`, and
//! the Paxos instances must decide — all on plain indices and wide sets,
//! never touching a single-word `ProcSet`.

use st_core::{Universe, Value};
use st_fd::{KAntiOmega, KAntiOmegaConfig};
use st_sim::{RunConfig, Sim};

#[test]
fn kset_machine_decides_at_n_66() {
    let (n, k, t) = (66usize, 1usize, 4usize);
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::<2>::alloc_wide(&mut sim, KAntiOmegaConfig::new(k, t));
    let kset = st_agreement::KSetAgreement::alloc(&mut sim, k);
    let inputs: Vec<Value> = (0..n as Value).map(|v| 100 + v).collect();
    let mut fleet: Vec<_> = universe
        .processes()
        .map(|p| kset.machine(&fd, inputs[p.index()]))
        .collect();

    // Round-robin is synchronous: the wide FD settles within a few
    // rotations and the appointed leader drives its instance to a decision;
    // six rotations of slack mirrors the E9 agreement budget rule.
    let iteration = fd.steps_per_iteration(0);
    let budget = 6 * n as u64 * iteration;
    let schedule = st_core::Schedule::from_indices((0..budget as usize).map(|s| s % n));
    sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(budget))
        .unwrap();

    let decided: Vec<Value> = sim.decisions().iter().flatten().map(|d| d.value).collect();
    assert_eq!(decided.len(), n, "every process must decide");
    let first = decided[0];
    assert!(decided.iter().all(|&v| v == first), "k = 1 is consensus");
    assert!(inputs.contains(&first), "validity: a proposed value");
}
