//! The composed protocol stack: one call to build a complete
//! `(t,k,n)`-agreement system in a simulator.
//!
//! Chooses the right protocol for the task — the trivial algorithm when
//! `t < k` (asynchronously solvable), otherwise Figure 2 k-anti-Ω composed
//! with k-parallel Paxos — spawns every process, and packages outcome
//! checking. This is the entry point used by the experiment harness, the
//! examples, and the BG reduction.

use st_core::{
    check_outcome, AgreementOutcome, AgreementTask, AgreementViolation, ProcSet, StepSource, Value,
};
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy};
use st_sim::{RunConfig, RunReport, RunStatus, Sim, StopWhen};

use crate::kset::KSetAgreement;
use crate::trivial::TrivialAgreement;

/// Which protocol the stack deployed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackKind {
    /// Figure 2 k-anti-Ω + k-parallel Paxos (for `k ≤ t`).
    FdParallelPaxos,
    /// First-`k`-decide (for `t < k`).
    Trivial,
}

/// Which simulator ABI the FD + k-parallel-Paxos stack runs on. The two are
/// observationally identical (enforced by `tests/differential.rs`); the
/// machine ABI is ≥2× faster per step and is the default. The trivial
/// `t < k` protocol always runs async (it is a handful of steps per
/// process; nothing to win).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StackAbi {
    /// Async `ProcessCtx` protocols in future slots.
    Async,
    /// [`KSetAgreementMachine`](crate::KSetAgreementMachine) state
    /// machines in automaton slots — the
    /// fast path E3/E4 run on.
    #[default]
    Machine,
}

/// A fully spawned agreement stack, ready to run.
///
/// # Examples
///
/// Solve 1-resilient consensus among three processes under a conforming
/// `S^1_{2,3}` schedule:
///
/// ```
/// use st_agreement::AgreementStack;
/// use st_core::{AgreementTask, ProcSet};
/// use st_sched::{SeededRandom, SetTimely};
///
/// let task = AgreementTask::new(1, 1, 3).unwrap();
/// let stack = AgreementStack::build(task, &[10, 20, 30]);
/// let timely = ProcSet::from_indices([0]);
/// let observed = ProcSet::from_indices([0, 1]);
/// let mut src = SetTimely::new(timely, observed, 4,
///     SeededRandom::new(task.universe(), 7));
/// let run = stack.run(&mut src, 3_000_000, ProcSet::EMPTY);
/// assert!(run.is_clean_termination());
/// ```
pub struct AgreementStack {
    sim: Sim,
    task: AgreementTask,
    inputs: Vec<Value>,
    kind: StackKind,
    abi: StackAbi,
    fd: Option<KAntiOmega>,
    kset: Option<KSetAgreement>,
}

/// Result of driving an [`AgreementStack`].
#[derive(Clone, Debug)]
pub struct StackRun {
    /// Why the run ended.
    pub status: RunStatus,
    /// The raw run report (probes, decisions, statistics).
    pub report: RunReport,
    /// The agreement outcome (inputs, decisions, correct set).
    pub outcome: AgreementOutcome,
    /// Violations found by the `st-core` checker.
    pub violations: Vec<AgreementViolation>,
}

impl StackRun {
    /// `true` if every correct process decided and no property was violated.
    pub fn is_clean_termination(&self) -> bool {
        self.violations.is_empty()
            && self
                .outcome
                .correct
                .iter()
                .all(|p| self.outcome.decisions[p.index()].is_some())
    }

    /// `true` if safety held (no k-agreement or validity violation),
    /// regardless of termination.
    pub fn is_safe(&self) -> bool {
        self.violations
            .iter()
            .all(|v| matches!(v, AgreementViolation::Termination { .. }))
    }
}

impl AgreementStack {
    /// Builds a stack for `task` with the given inputs (defaults to the
    /// paper's increment timeout policy).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n`.
    pub fn build(task: AgreementTask, inputs: &[Value]) -> Self {
        Self::build_with_policy(task, inputs, TimeoutPolicy::Increment)
    }

    /// Builds a stack with an explicit timeout policy (ablation).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n`.
    pub fn build_with_policy(task: AgreementTask, inputs: &[Value], policy: TimeoutPolicy) -> Self {
        Self::build_full(task, inputs, policy, false)
    }

    /// Builds a stack recording the executed schedule (for post-hoc
    /// timeliness certification, e.g. by the adaptive adversary), on the
    /// default [`StackAbi::Machine`] fast path.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n`.
    pub fn build_full(
        task: AgreementTask,
        inputs: &[Value],
        policy: TimeoutPolicy,
        record_schedule: bool,
    ) -> Self {
        Self::build_abi(task, inputs, policy, record_schedule, StackAbi::default())
    }

    /// Builds a stack on an explicit simulator ABI — [`StackAbi::Async`]
    /// keeps the FD + k-parallel-Paxos processes on the `ProcessCtx` poll
    /// path (differential testing, debugging with paper-shaped code);
    /// [`StackAbi::Machine`] (the default everywhere else) spawns one
    /// [`KSetAgreementMachine`](crate::KSetAgreementMachine) per process.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n`.
    pub fn build_abi(
        task: AgreementTask,
        inputs: &[Value],
        policy: TimeoutPolicy,
        record_schedule: bool,
        abi: StackAbi,
    ) -> Self {
        assert_eq!(inputs.len(), task.n(), "one input per process");
        let universe = task.universe();
        let mut sim = Sim::with_recording(universe, record_schedule);
        let mut abi = abi;
        let (kind, fd, kset) = if task.is_trivially_solvable() {
            // The trivial protocol always runs async (nothing to win);
            // record the *effective* ABI, not the requested one.
            abi = StackAbi::Async;
            let obj = TrivialAgreement::alloc(&mut sim, task.k());
            for p in universe.processes() {
                let obj = obj.clone();
                let proposal = inputs[p.index()];
                sim.spawn(p, move |ctx| obj.run(ctx, proposal))
                    .expect("fresh simulator");
            }
            (StackKind::Trivial, None, None)
        } else {
            let fd = KAntiOmega::alloc(
                &mut sim,
                KAntiOmegaConfig::new(task.k(), task.t()).with_policy(policy),
            );
            let kset = KSetAgreement::alloc(&mut sim, task.k());
            for p in universe.processes() {
                let proposal = inputs[p.index()];
                match abi {
                    StackAbi::Async => {
                        let fd = fd.clone();
                        let kset = kset.clone();
                        sim.spawn(p, move |ctx| kset.run(ctx, fd, proposal))
                            .expect("fresh simulator");
                    }
                    StackAbi::Machine => {
                        sim.spawn_automaton(p, kset.machine(&fd, proposal))
                            .expect("fresh simulator");
                    }
                }
            }
            (StackKind::FdParallelPaxos, Some(fd), Some(kset))
        };
        AgreementStack {
            sim,
            task,
            inputs: inputs.to_vec(),
            kind,
            abi,
            fd,
            kset,
        }
    }

    /// The protocol the stack chose.
    pub fn kind(&self) -> StackKind {
        self.kind
    }

    /// The simulator ABI the stack **effectively** runs on: for trivial
    /// (`t < k`) stacks this is always [`StackAbi::Async`] regardless of
    /// what the builder was asked for.
    pub fn abi(&self) -> StackAbi {
        self.abi
    }

    /// The FD instance, when the stack uses one (instrumentation).
    pub fn fd(&self) -> Option<&KAntiOmega> {
        self.fd.as_ref()
    }

    /// The k-set agreement object, when the stack uses one.
    pub fn kset(&self) -> Option<&KSetAgreement> {
        self.kset.as_ref()
    }

    /// The task this stack solves.
    pub fn task(&self) -> AgreementTask {
        self.task
    }

    /// The proposals.
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// Shared access to the simulator (instrumentation).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mutable access to the simulator (advanced instrumentation).
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Decomposes the stack into its simulator (for drivers that need to
    /// own it — clone [`fd`](Self::fd)/[`kset`](Self::kset) first).
    pub fn into_sim(self) -> Sim {
        self.sim
    }

    /// Packages the current state as a [`StackRun`] without driving further
    /// (used by custom drivers such as the adaptive adversary).
    pub fn snapshot(&self, status: RunStatus, faulty: ProcSet) -> StackRun {
        let correct = faulty.complement(self.task.universe());
        let report = self.sim.report();
        let outcome = report.agreement_outcome(&self.inputs, correct);
        let violations = check_outcome(&self.task, &outcome);
        StackRun {
            status,
            report,
            outcome,
            violations,
        }
    }

    /// Drives the stack until every process outside `faulty` decides, the
    /// budget runs out, or the source ends; returns the packaged result.
    pub fn run<S: StepSource>(mut self, src: &mut S, budget: u64, faulty: ProcSet) -> StackRun {
        let correct = faulty.complement(self.task.universe());
        let status = self
            .sim
            .run(
                src,
                RunConfig::steps(budget).stop_when(StopWhen::AllDecided(correct)),
            )
            .expect("agreement schedules stay within the task universe");
        self.snapshot(status, faulty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::ProcessId;
    use st_sched::{RotatingStarvation, SeededRandom, SetTimely};

    fn inputs(n: usize) -> Vec<Value> {
        (0..n as Value).map(|v| 7 + 3 * v).collect()
    }

    #[test]
    fn picks_trivial_for_t_less_than_k() {
        let task = AgreementTask::new(1, 2, 4).unwrap();
        let stack = AgreementStack::build(task, &inputs(4));
        assert_eq!(stack.kind(), StackKind::Trivial);
        assert!(stack.fd().is_none());
        // Trivial stacks run async whatever ABI was requested: `abi()`
        // reports the effective one.
        assert_eq!(stack.abi(), StackAbi::Async);
    }

    #[test]
    fn picks_fd_stack_for_k_le_t() {
        let task = AgreementTask::new(2, 2, 4).unwrap();
        let stack = AgreementStack::build(task, &inputs(4));
        assert_eq!(stack.kind(), StackKind::FdParallelPaxos);
        assert!(stack.fd().is_some());
        assert_eq!(stack.abi(), StackAbi::Machine);
    }

    #[test]
    fn trivial_stack_terminates_on_random_schedule() {
        let task = AgreementTask::new(1, 2, 4).unwrap();
        let stack = AgreementStack::build(task, &inputs(4));
        let mut src = SeededRandom::new(task.universe(), 5);
        let run = stack.run(&mut src, 100_000, ProcSet::EMPTY);
        assert!(run.is_clean_termination(), "{:?}", run.violations);
    }

    #[test]
    fn fd_stack_terminates_on_conforming_schedule() {
        let task = AgreementTask::new(2, 1, 3).unwrap();
        let stack = AgreementStack::build(task, &inputs(3));
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([0, 1, 2]);
        let mut src = SetTimely::new(p, q, 6, SeededRandom::new(task.universe(), 8));
        let run = stack.run(&mut src, 2_000_000, ProcSet::EMPTY);
        assert!(run.is_clean_termination(), "{:?}", run.violations);
        // Consensus: a single decided value.
        let distinct: std::collections::BTreeSet<Value> =
            run.outcome.decisions.iter().flatten().copied().collect();
        assert_eq!(distinct.len(), 1);
    }

    #[test]
    fn fd_stack_safe_under_oblivious_adversary() {
        // (1,1,3) under rotating starvation of singletons. An *oblivious*
        // schedule cannot reliably prevent decision (a transient Paxos
        // leader may sneak a ballot through — impossibility only promises
        // that SOME schedule defeats each algorithm, and that schedule must
        // be adaptive; see `adversary::AdaptiveAdversary`). What must hold
        // unconditionally is safety.
        let task = AgreementTask::new(1, 1, 3).unwrap();
        let stack = AgreementStack::build(task, &inputs(3));
        let mut src = RotatingStarvation::new(task.universe(), 1);
        let run = stack.run(&mut src, 500_000, ProcSet::EMPTY);
        assert!(run.is_safe(), "{:?}", run.violations);
        let distinct: std::collections::BTreeSet<Value> =
            run.outcome.decisions.iter().flatten().copied().collect();
        assert!(distinct.len() <= 1);
        let _ = ProcessId::new(0);
    }
}
