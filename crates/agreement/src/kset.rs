//! `(t,k,n)`-agreement from k-anti-Ω: the k-parallel-Paxos construction.
//!
//! The paper (Section 4.3) solves `(t,k,n)`-agreement from t-resilient
//! k-anti-Ω via Zieliński's generic result. We use the **stronger property
//! the Figure 2 algorithm actually guarantees** (Lemma 22): eventually all
//! correct processes hold the *same* winnerset `A0` of size `k`, containing
//! at least one correct process. Given that, the construction is the
//! standard one:
//!
//! - run `k` independent single-decree Paxos instances;
//! - instance `r` is led, at any moment, by the `r`-th smallest member of
//!   the *current local* winnerset;
//! - every process decides the first instance decision it observes.
//!
//! **Safety is unconditional**: each instance is Paxos (at most one chosen
//! value, always a proposed one), so at most `k` distinct decisions in *any*
//! run — even adversarial ones outside `S^k_{t+1,n}`. **Termination** needs
//! winnerset stabilization: the stable `A0` has a correct member, say its
//! `r`-th, which then leads instance `r` unopposed and decides. This
//! substitution (documented in DESIGN.md §3.3) preserves Theorem 24
//! end-to-end.

use st_core::Value;
use st_fd::{KAntiOmega, KAntiOmegaLocal};
use st_sim::{ProcessCtx, Sim};

use crate::paxos::{AttemptOutcome, Paxos, ProposerState};

/// Probe key publishing the instance index a process decided through.
pub const DECIDED_INSTANCE_PROBE: &str = "decided-instance";

/// A k-set agreement object: `k` Paxos instances driven by a k-anti-Ω
/// winnerset. Clone into each process.
#[derive(Clone, Debug)]
pub struct KSetAgreement {
    instances: Vec<Paxos>,
}

impl KSetAgreement {
    /// Allocates `k` Paxos instances in `sim`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn alloc(sim: &mut Sim, k: usize) -> Self {
        assert!(k >= 1 && k <= sim.universe().n(), "need 1 <= k <= n");
        KSetAgreement {
            instances: (0..k)
                .map(|r| Paxos::alloc(sim, &format!("kset[{r}]")))
                .collect(),
        }
    }

    /// The agreement degree `k`.
    pub fn k(&self) -> usize {
        self.instances.len()
    }

    /// The underlying instances (instrumentation).
    pub fn instances(&self) -> &[Paxos] {
        &self.instances
    }

    /// The full per-process protocol: interleaves FD refreshes, decision
    /// scans, and leader duties until a decision is reached; then records it
    /// via [`ProcessCtx::decide`] and halts.
    ///
    /// `fd` must be a k-anti-Ω instance with the same `k` allocated in the
    /// same simulator.
    pub async fn run(self, ctx: ProcessCtx, fd: KAntiOmega, proposal: Value) {
        assert_eq!(fd.config().k, self.k(), "FD degree must match");
        let mut fd_local = fd.local_state();
        let mut states: Vec<ProposerState> =
            (0..self.k()).map(|_| ProposerState::default()).collect();
        loop {
            if let Some((value, instance)) = self
                .round(&ctx, &fd, &mut fd_local, &mut states, proposal)
                .await
            {
                ctx.probe(DECIDED_INSTANCE_PROBE, instance as u64);
                ctx.decide(value);
                return;
            }
        }
    }

    /// One protocol round: an FD iteration, a decision scan, and one ballot
    /// attempt per instance this process currently leads. Returns the
    /// decision when one is reached. Exposed separately so the BG simulation
    /// can drive the protocol step-by-step.
    pub async fn round(
        &self,
        ctx: &ProcessCtx,
        fd: &KAntiOmega,
        fd_local: &mut KAntiOmegaLocal,
        states: &mut [ProposerState],
        proposal: Value,
    ) -> Option<(Value, usize)> {
        fd.iterate(ctx, fd_local).await;
        // Scan for decisions first: adopting is always cheapest.
        for (r, instance) in self.instances.iter().enumerate() {
            if let Some(v) = instance.check_decision(ctx).await {
                return Some((v, r));
            }
        }
        // Lead wherever the current winnerset appoints us.
        for (r, instance) in self.instances.iter().enumerate() {
            if fd_local.winnerset.nth(r) == Some(ctx.pid()) {
                if let AttemptOutcome::Decided(v) =
                    instance.attempt(ctx, &mut states[r], proposal).await
                {
                    return Some((v, r));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Universe};
    use st_fd::KAntiOmegaConfig;
    use st_sched::{SeededRandom, SetTimely};
    use st_sim::{RunConfig, StopWhen};

    /// Full stack under a conforming schedule: FD + k-parallel Paxos.
    #[test]
    fn decides_under_matching_synchrony() {
        let (n, k, t) = (4usize, 2usize, 2usize);
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
        let kset = KSetAgreement::alloc(&mut sim, k);
        let inputs: Vec<Value> = (0..n as Value).map(|v| 10 + v).collect();
        for p in u.processes() {
            let fd = fd.clone();
            let kset = kset.clone();
            let proposal = inputs[p.index()];
            sim.spawn(p, move |ctx| kset.run(ctx, fd, proposal))
                .unwrap();
        }
        let pset: ProcSet = (0..k).map(ProcessId::new).collect();
        let qset: ProcSet = (0..=t).map(ProcessId::new).collect();
        let mut src = SetTimely::new(pset, qset, 2 * (t + 1), SeededRandom::new(u, 3));
        let status = sim.run(
            &mut src,
            RunConfig::steps(3_000_000).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
        );
        assert_eq!(status, st_sim::RunStatus::Stopped, "stack must terminate");
        let outcome = sim.report().agreement_outcome(&inputs, ProcSet::full(u));
        let task = st_core::AgreementTask::new(t, k, n).unwrap();
        let violations = st_core::check_outcome(&task, &outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// Safety holds under pure random (non-conforming) schedules: whatever
    /// decides, decides consistently.
    #[test]
    fn safety_under_random_schedules() {
        for seed in 0..10u64 {
            let (n, k, t) = (4usize, 2usize, 3usize);
            let u = Universe::new(n).unwrap();
            let mut sim = Sim::new(u);
            let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
            let kset = KSetAgreement::alloc(&mut sim, k);
            let inputs: Vec<Value> = (0..n as Value).collect();
            for p in u.processes() {
                let fd = fd.clone();
                let kset = kset.clone();
                let proposal = inputs[p.index()];
                sim.spawn(p, move |ctx| kset.run(ctx, fd, proposal))
                    .unwrap();
            }
            let mut src = SeededRandom::new(u, seed);
            sim.run(&mut src, RunConfig::steps(300_000));
            let outcome = sim.report().agreement_outcome(&inputs, ProcSet::full(u));
            // Check only the safety clauses (termination not owed on a
            // truncated budget).
            let decided: std::collections::BTreeSet<Value> =
                outcome.decisions.iter().flatten().copied().collect();
            assert!(decided.len() <= k, "seed {seed}: {decided:?}");
            for d in &decided {
                assert!(inputs.contains(d), "seed {seed}: unproposed {d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "FD degree must match")]
    fn mismatched_fd_rejected() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 2));
        let kset = KSetAgreement::alloc(&mut sim, 2);
        sim.spawn(ProcessId::new(0), move |ctx| kset.run(ctx, fd, 0))
            .unwrap();
        sim.step_with(ProcessId::new(0));
    }
}
