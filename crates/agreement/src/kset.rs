//! `(t,k,n)`-agreement from k-anti-Ω: the k-parallel-Paxos construction.
//!
//! The paper (Section 4.3) solves `(t,k,n)`-agreement from t-resilient
//! k-anti-Ω via Zieliński's generic result. We use the **stronger property
//! the Figure 2 algorithm actually guarantees** (Lemma 22): eventually all
//! correct processes hold the *same* winnerset `A0` of size `k`, containing
//! at least one correct process. Given that, the construction is the
//! standard one:
//!
//! - run `k` independent single-decree Paxos instances;
//! - instance `r` is led, at any moment, by the `r`-th smallest member of
//!   the *current local* winnerset;
//! - every process decides the first instance decision it observes.
//!
//! **Safety is unconditional**: each instance is Paxos (at most one chosen
//! value, always a proposed one), so at most `k` distinct decisions in *any*
//! run — even adversarial ones outside `S^k_{t+1,n}`. **Termination** needs
//! winnerset stabilization: the stable `A0` has a correct member, say its
//! `r`-th, which then leads instance `r` unopposed and decides. This
//! substitution (documented in DESIGN.md §3.3) preserves Theorem 24
//! end-to-end.

use st_core::Value;
use st_fd::{KAntiOmega, KAntiOmegaLocal, KAntiOmegaMachine};
use st_sim::{Automaton, BatchAccess, PhaseBatch, ProcessCtx, Sim, Status, StepAccess};

use crate::paxos::{AttemptOutcome, CoreStep, Paxos, PaxosProposerCore, ProposerState};

/// Probe key publishing the instance index a process decided through.
pub const DECIDED_INSTANCE_PROBE: &str = "decided-instance";

/// A k-set agreement object: `k` Paxos instances driven by a k-anti-Ω
/// winnerset. Clone into each process.
#[derive(Clone, Debug)]
pub struct KSetAgreement {
    instances: Vec<Paxos>,
}

impl KSetAgreement {
    /// Allocates `k` Paxos instances in `sim`. This is the single
    /// constructor gate for **both** execution ABIs: the async protocol
    /// ([`run`](Self::run)) and the state machine ([`machine`](Self::machine))
    /// share the object it allocates, so the `k`-bounds failure mode is
    /// identical by construction.
    ///
    /// # Panics
    ///
    /// Panics with `"need 1 <= k <= n"` if `k == 0` or `k > n`.
    pub fn alloc(sim: &mut Sim, k: usize) -> Self {
        assert!(k >= 1 && k <= sim.universe().n(), "need 1 <= k <= n");
        KSetAgreement {
            instances: (0..k)
                .map(|r| Paxos::alloc(sim, &format!("kset[{r}]")))
                .collect(),
        }
    }

    /// The agreement degree `k`.
    pub fn k(&self) -> usize {
        self.instances.len()
    }

    /// The underlying instances (instrumentation).
    pub fn instances(&self) -> &[Paxos] {
        &self.instances
    }

    /// The full per-process protocol: interleaves FD refreshes, decision
    /// scans, and leader duties until a decision is reached; then records it
    /// via [`ProcessCtx::decide`] and halts.
    ///
    /// `fd` must be a k-anti-Ω instance with the same `k` allocated in the
    /// same simulator.
    pub async fn run<const W: usize>(self, ctx: ProcessCtx, fd: KAntiOmega<W>, proposal: Value) {
        assert_eq!(fd.config().k, self.k(), "FD degree must match");
        let mut fd_local = fd.local_state();
        let mut states: Vec<ProposerState> =
            (0..self.k()).map(|_| ProposerState::default()).collect();
        loop {
            if let Some((value, instance)) = self
                .round(&ctx, &fd, &mut fd_local, &mut states, proposal)
                .await
            {
                ctx.probe(DECIDED_INSTANCE_PROBE, instance as u64);
                ctx.decide(value);
                return;
            }
        }
    }

    /// One protocol round: an FD iteration, a decision scan, and one ballot
    /// attempt per instance this process currently leads. Returns the
    /// decision when one is reached. Exposed separately so the BG simulation
    /// can drive the protocol step-by-step.
    pub async fn round<const W: usize>(
        &self,
        ctx: &ProcessCtx,
        fd: &KAntiOmega<W>,
        fd_local: &mut KAntiOmegaLocal<W>,
        states: &mut [ProposerState],
        proposal: Value,
    ) -> Option<(Value, usize)> {
        fd.iterate(ctx, fd_local).await;
        // Scan for decisions first: adopting is always cheapest.
        for (r, instance) in self.instances.iter().enumerate() {
            if let Some(v) = instance.check_decision(ctx).await {
                return Some((v, r));
            }
        }
        // Lead wherever the current winnerset appoints us.
        for (r, instance) in self.instances.iter().enumerate() {
            if fd_local.winnerset.nth(r) == Some(ctx.pid()) {
                if let AttemptOutcome::Decided(v) =
                    instance.attempt(ctx, &mut states[r], proposal).await
                {
                    return Some((v, r));
                }
            }
        }
        None
    }

    /// The full per-process protocol as an explicit state machine on the
    /// simulator's non-async fast path ([`st_sim::Automaton`]): an embedded
    /// [`KAntiOmegaMachine`] for the FD iterations, interleaved with the
    /// decision scan and one machine-ABI Paxos proposer per instance —
    /// stepping the sub-machines under the same leader-of-instance-`r` rule
    /// as [`run`](Self::run), one register operation per scheduled step.
    /// Observationally identical to the async protocol, step for step
    /// (`tests/differential.rs`).
    ///
    /// One machine per process: spawn with
    /// [`Sim::spawn_automaton`](st_sim::Sim::spawn_automaton) or drive a
    /// `Vec` of them as a typed fleet
    /// ([`Sim::run_automata`](st_sim::Sim::run_automata) and the replay
    /// drives).
    ///
    /// # Panics
    ///
    /// Panics with `"FD degree must match"` if `fd`'s `k` differs from this
    /// object's — the same condition (and message) the async
    /// [`run`](Self::run) asserts; the machine constructor simply checks it
    /// at construction instead of at the first step. The `k`-bounds
    /// conditions of [`alloc`](Self::alloc) hold by construction (both ABIs
    /// share the allocated object).
    pub fn machine<const W: usize>(
        &self,
        fd: &KAntiOmega<W>,
        proposal: Value,
    ) -> KSetAgreementMachine<W> {
        assert_eq!(fd.config().k, self.k(), "FD degree must match");
        KSetAgreementMachine {
            kset: self.clone(),
            fd: fd.machine(),
            fd_iterations_seen: 0,
            proposers: self
                .instances
                .iter()
                .map(|instance| PaxosProposerCore::new(instance.clone()))
                .collect(),
            proposal,
            phase: KsetPhase::Fd,
        }
    }
}

/// Control state of [`KSetAgreementMachine`]: which part of the protocol
/// round the next scheduled step executes.
#[derive(Clone, Copy, Debug)]
enum KsetPhase {
    /// Stepping the embedded FD machine until it closes an iteration.
    Fd,
    /// Decision scan: read instance `r`'s decision register.
    Scan(u32),
    /// Leading instance `r`: stepping its Paxos proposer core.
    Lead(u32),
}

/// The k-set agreement protocol on the state-machine ABI. Construct via
/// [`KSetAgreement::machine`].
pub struct KSetAgreementMachine<const W: usize = 1> {
    kset: KSetAgreement,
    fd: KAntiOmegaMachine<W>,
    /// FD iterations completed at the last phase hand-off: the Fd phase
    /// ends exactly when the embedded machine's iteration counter moves.
    fd_iterations_seen: u64,
    proposers: Vec<PaxosProposerCore>,
    proposal: Value,
    phase: KsetPhase,
}

impl<const W: usize> KSetAgreementMachine<W> {
    /// The agreement degree `k`.
    pub fn k(&self) -> usize {
        self.kset.k()
    }

    /// Ballot attempts made so far on instance `r` (metrics).
    pub fn attempts(&self, r: usize) -> u64 {
        self.proposers[r].attempts()
    }
}

impl<const W: usize> Automaton for KSetAgreementMachine<W> {
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        match self.phase {
            KsetPhase::Fd => {
                // One step of Figure 2; at the iteration boundary the next
                // scheduled step opens the decision scan — exactly where the
                // async protocol resumes after `fd.iterate(..)` returns.
                self.fd.step(mem);
                if self.fd.iterations() > self.fd_iterations_seen {
                    self.fd_iterations_seen = self.fd.iterations();
                    self.phase = KsetPhase::Scan(0);
                }
                Status::Running
            }
            KsetPhase::Scan(r) => {
                let ri = r as usize;
                if let Some(v) = mem.read(self.kset.instances[ri].decision) {
                    // Adopt: cheapest path to a decision.
                    mem.probe(DECIDED_INSTANCE_PROBE, r as u64);
                    mem.decide(v);
                    return Status::Done;
                }
                if ri + 1 < self.kset.k() {
                    self.phase = KsetPhase::Scan(r + 1);
                    return Status::Running;
                }
                // Scan complete: lead wherever the current winnerset
                // appoints us (a process is the r-th smallest member of at
                // most one r), else back to the FD.
                let winnerset = self.fd.winnerset();
                self.phase = KsetPhase::Fd;
                for lead in 0..self.kset.k() {
                    if winnerset.nth(lead) == Some(mem.pid()) {
                        self.phase = KsetPhase::Lead(lead as u32);
                        break;
                    }
                }
                Status::Running
            }
            KsetPhase::Lead(r) => {
                let ri = r as usize;
                match self.proposers[ri].step(mem, self.proposal) {
                    CoreStep::Busy => Status::Running,
                    CoreStep::Decided(v) => {
                        mem.probe(DECIDED_INSTANCE_PROBE, r as u64);
                        mem.decide(v);
                        Status::Done
                    }
                    CoreStep::Preempted => {
                        // The async round returns to the FD after a
                        // preempted attempt (no further instance matches).
                        self.phase = KsetPhase::Fd;
                        Status::Running
                    }
                }
            }
        }
    }
}

impl<const W: usize> PhaseBatch for KSetAgreementMachine<W> {
    #[inline]
    fn phase_class(&self) -> u8 {
        // Offsets keep the three protocol parts (and the embedded machines'
        // own phases) in distinct groups: FD phases 0–3, the decision scan
        // 4, proposer phases 5–10.
        match self.phase {
            KsetPhase::Fd => self.fd.phase_class(),
            KsetPhase::Scan(_) => 4,
            KsetPhase::Lead(r) => 5 + self.proposers[r as usize].phase_class(),
        }
    }

    #[inline]
    fn read_run(&self) -> usize {
        match self.phase {
            // Every step of the Fd phase is a step of the embedded FD
            // machine; the hand-off to the decision scan happens at an
            // iteration boundary, which the FD's own run never crosses.
            KsetPhase::Fd => self.fd.read_run(),
            // The scan reads one decision register per remaining instance
            // (or goes no-op early by deciding — allowed by the contract).
            KsetPhase::Scan(r) => self.kset.k() - r as usize,
            KsetPhase::Lead(r) => self.proposers[r as usize].read_run(),
        }
    }

    fn step_reads(&mut self, mem: &mut BatchAccess<'_>) -> Status {
        match self.phase {
            KsetPhase::Fd => {
                self.fd.step_reads(mem);
                if self.fd.iterations() > self.fd_iterations_seen {
                    self.fd_iterations_seen = self.fd.iterations();
                    self.phase = KsetPhase::Scan(0);
                }
                Status::Running
            }
            KsetPhase::Scan(r) => {
                let mut ri = r as usize;
                while mem.remaining() > 0 {
                    if let Some(v) = mem.read(self.kset.instances[ri].decision) {
                        mem.probe(DECIDED_INSTANCE_PROBE, ri as u64);
                        mem.decide(v);
                        return Status::Done;
                    }
                    if ri + 1 < self.kset.k() {
                        ri += 1;
                        self.phase = KsetPhase::Scan(ri as u32);
                        continue;
                    }
                    // Scan complete (the allotment cannot extend past it):
                    // same hand-off as the scalar drive.
                    let winnerset = self.fd.winnerset();
                    self.phase = KsetPhase::Fd;
                    for lead in 0..self.kset.k() {
                        if winnerset.nth(lead) == Some(mem.pid()) {
                            self.phase = KsetPhase::Lead(lead as u32);
                            break;
                        }
                    }
                    break;
                }
                Status::Running
            }
            KsetPhase::Lead(r) => {
                let ri = r as usize;
                match self.proposers[ri].step_reads(mem, self.proposal) {
                    CoreStep::Busy => Status::Running,
                    CoreStep::Decided(v) => {
                        mem.probe(DECIDED_INSTANCE_PROBE, r as u64);
                        mem.decide(v);
                        Status::Done
                    }
                    CoreStep::Preempted => {
                        self.phase = KsetPhase::Fd;
                        Status::Running
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Universe};
    use st_fd::KAntiOmegaConfig;
    use st_sched::{SeededRandom, SetTimely};
    use st_sim::{RunConfig, StopWhen};

    /// Full stack under a conforming schedule: FD + k-parallel Paxos.
    #[test]
    fn decides_under_matching_synchrony() {
        let (n, k, t) = (4usize, 2usize, 2usize);
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
        let kset = KSetAgreement::alloc(&mut sim, k);
        let inputs: Vec<Value> = (0..n as Value).map(|v| 10 + v).collect();
        for p in u.processes() {
            let fd = fd.clone();
            let kset = kset.clone();
            let proposal = inputs[p.index()];
            sim.spawn(p, move |ctx| kset.run(ctx, fd, proposal))
                .unwrap();
        }
        let pset: ProcSet = (0..k).map(ProcessId::new).collect();
        let qset: ProcSet = (0..=t).map(ProcessId::new).collect();
        let mut src = SetTimely::new(pset, qset, 2 * (t + 1), SeededRandom::new(u, 3));
        let status = sim
            .run(
                &mut src,
                RunConfig::steps(3_000_000).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
            )
            .unwrap();
        assert_eq!(status, st_sim::RunStatus::Stopped, "stack must terminate");
        let outcome = sim.report().agreement_outcome(&inputs, ProcSet::full(u));
        let task = st_core::AgreementTask::new(t, k, n).unwrap();
        let violations = st_core::check_outcome(&task, &outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// Safety holds under pure random (non-conforming) schedules: whatever
    /// decides, decides consistently.
    #[test]
    fn safety_under_random_schedules() {
        for seed in 0..10u64 {
            let (n, k, t) = (4usize, 2usize, 3usize);
            let u = Universe::new(n).unwrap();
            let mut sim = Sim::new(u);
            let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
            let kset = KSetAgreement::alloc(&mut sim, k);
            let inputs: Vec<Value> = (0..n as Value).collect();
            for p in u.processes() {
                let fd = fd.clone();
                let kset = kset.clone();
                let proposal = inputs[p.index()];
                sim.spawn(p, move |ctx| kset.run(ctx, fd, proposal))
                    .unwrap();
            }
            let mut src = SeededRandom::new(u, seed);
            sim.run(&mut src, RunConfig::steps(300_000)).unwrap();
            let outcome = sim.report().agreement_outcome(&inputs, ProcSet::full(u));
            // Check only the safety clauses (termination not owed on a
            // truncated budget).
            let decided: std::collections::BTreeSet<Value> =
                outcome.decisions.iter().flatten().copied().collect();
            assert!(decided.len() <= k, "seed {seed}: {decided:?}");
            for d in &decided {
                assert!(inputs.contains(d), "seed {seed}: unproposed {d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "FD degree must match")]
    fn mismatched_fd_rejected() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 2));
        let kset = KSetAgreement::alloc(&mut sim, 2);
        sim.spawn(ProcessId::new(0), move |ctx| kset.run(ctx, fd, 0))
            .unwrap();
        sim.step_with(ProcessId::new(0));
    }

    /// The machine constructor rejects a mismatched FD with the **same**
    /// assertion message as the async path — the failure modes of the two
    /// ABIs are deliberately identical.
    #[test]
    #[should_panic(expected = "FD degree must match")]
    fn mismatched_fd_rejected_machine() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(1, 2));
        let kset = KSetAgreement::alloc(&mut sim, 2);
        let _ = kset.machine(&fd, 0);
    }

    /// `alloc` is the single constructor gate for both ABIs: the `k`-bounds
    /// panic fires with the same message whichever path the caller is
    /// building toward.
    #[test]
    fn k_bounds_failure_is_consistent() {
        for bad_k in [0usize, 4] {
            let msg = std::panic::catch_unwind(|| {
                let u = Universe::new(3).unwrap();
                let mut sim = Sim::new(u);
                let _ = KSetAgreement::alloc(&mut sim, bad_k);
            })
            .expect_err("k out of bounds must panic");
            let msg = msg
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| msg.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap();
            assert!(
                msg.contains("need 1 <= k <= n"),
                "k = {bad_k}: unexpected message {msg:?}"
            );
        }
    }

    /// `k == 1` edge (consensus): both ABIs allocate, and the machine stack
    /// decides a single value under a conforming schedule.
    #[test]
    fn k_equals_one_edge() {
        let (n, k, t) = (3usize, 1usize, 1usize);
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
        let kset = KSetAgreement::alloc(&mut sim, k);
        assert_eq!(kset.k(), 1);
        for p in u.processes() {
            sim.spawn_automaton(p, kset.machine(&fd, 70 + p.index() as Value))
                .unwrap();
        }
        let pset: ProcSet = (0..k).map(ProcessId::new).collect();
        let qset: ProcSet = (0..=t).map(ProcessId::new).collect();
        let mut src = SetTimely::new(pset, qset, 2 * (t + 1), SeededRandom::new(u, 5));
        let status = sim
            .run(
                &mut src,
                RunConfig::steps(3_000_000).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
            )
            .unwrap();
        assert_eq!(status, st_sim::RunStatus::Stopped);
        let decided: std::collections::BTreeSet<Value> =
            sim.decisions().iter().flatten().map(|d| d.value).collect();
        assert_eq!(decided.len(), 1, "consensus: exactly one value");
    }

    /// `k == n` edge: allocation succeeds at the upper bound on both
    /// constructor paths (the regime is trivially solvable — `t ≤ n−1 < k`
    /// — so the FD composition never arises; Figure 2 itself requires
    /// `k ≤ t ≤ n−1`).
    #[test]
    fn k_equals_n_edge_allocates() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let kset = KSetAgreement::alloc(&mut sim, 3);
        assert_eq!(kset.k(), 3);
        assert_eq!(kset.instances().len(), 3);
    }
}
