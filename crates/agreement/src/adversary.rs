//! The adaptive adversary: the operational content of the impossibility
//! side of Theorems 26 and 27.
//!
//! An *oblivious* schedule cannot reliably defeat the protocol stack — a
//! transient Paxos leader can always sneak an uncontended ballot through.
//! The impossibility proofs are about an **adaptive** adversary that watches
//! the protocol state and schedules against it. For the FD + k-parallel-
//! Paxos stack, the decisive observation mirrors the BG argument: *with
//! only `k` simultaneous "blocking points" one can block all `k` Paxos
//! instances forever, while every set of `k + 1` processes keeps running —
//! so the schedule stays inside the system the theorem names, yet no
//! decision is ever reached.*
//!
//! Concretely, the adversary drives the simulator step-by-step and, after
//! every step, **freezes** any process that is in the *danger window* of an
//! instance `r`: it has written its phase-2 record with the currently
//! maximal ballot of `r`, the instance is undecided — its next few steps
//! would publish a decision. Frozen processes are simply not scheduled; the
//! rest round-robin. There is at most one danger process per instance, so at
//! most `k` are frozen at any time:
//!
//! - **`i > k` branch (Theorem 26):** every size-`(k+1)` set always has a
//!   running member, so it stays timely with respect to `Π_n` — the
//!   executed schedule is in `S^{k+1}_{n,n}` (certified post-hoc with the
//!   analyzer). Freezing is always temporary (the FD running at the live
//!   processes eventually re-elects, a new leader out-ballots the frozen
//!   maximum, and the victim is released — preempted, not decided), so
//!   every process is correct; `0 ≤ t` faults, termination owed, never
//!   delivered.
//! - **`j − i < t + 1 − k` branch (Theorem 27, case 2b):** additionally
//!   crash `j − i` processes from the start. Membership in `S^i_{j,n}` is
//!   then free: any `i` live processes are timely with bound 1 with respect
//!   to themselves plus the crashed set. The fault count `j − i ≤ t − k`
//!   stays within budget, so termination is still owed — and still denied.

use st_core::timeliness::empirical_bound;
use st_core::{ProcSet, ProcessId, Schedule};
use st_sim::RunStatus;

use crate::harness::{AgreementStack, StackKind, StackRun};

pub use st_core::TimelyPair;

/// Outcome of an adversarial drive, with the membership certificate.
#[derive(Debug)]
pub struct AdversarialRun {
    /// The packaged stack run (safety must hold; termination must not).
    pub run: StackRun,
    /// Number of freeze events (a process denied a step while in danger).
    pub freeze_events: u64,
    /// Largest number of simultaneously frozen processes observed (≤ k).
    pub max_frozen: usize,
    /// Certified timeliness witness of the executed schedule, when
    /// requested: the pair and its measured empirical bound.
    pub certificate: Option<TimelyPair>,
}

/// Drives `stack` adversarially for `budget` steps.
///
/// `precrashed` processes never take a step (the fictitious-crash set of the
/// Theorem 27 case-2b construction; pass `ProcSet::EMPTY` for the
/// Theorem 26 branch). `certify` optionally names a pair whose empirical
/// bound on the executed schedule is measured and returned (requires the
/// stack to have been built with schedule recording).
///
/// # Panics
///
/// Panics if the stack is not the FD + k-parallel-Paxos stack (the trivial
/// algorithm is asynchronously live; no schedule defeats it), or if every
/// process is precrashed.
pub fn drive_adversarially(
    mut stack: AgreementStack,
    budget: u64,
    precrashed: ProcSet,
    certify: Option<(ProcSet, ProcSet)>,
) -> AdversarialRun {
    assert_eq!(
        stack.kind(),
        StackKind::FdParallelPaxos,
        "the trivial t<k stack cannot be blocked by any schedule"
    );
    let universe = stack.task().universe();
    let runnable: Vec<ProcessId> = universe
        .processes()
        .filter(|p| !precrashed.contains(*p))
        .collect();
    assert!(!runnable.is_empty(), "someone must run");
    let kset = stack.kset().expect("FD stack has a kset").clone();

    let mut rotation = 0usize;
    let mut freeze_events = 0u64;
    let mut max_frozen = 0usize;

    for _ in 0..budget {
        // Recompute the frozen set: per instance, the undecided maximal
        // phase-2 ballot holder.
        let mut frozen = ProcSet::EMPTY;
        for instance in kset.instances() {
            if instance.peek_decision(stack.sim()).is_some() {
                continue;
            }
            let records = instance.peek_records(stack.sim());
            let max_mbal = records.iter().map(|r| r.mbal).max().unwrap_or(0);
            if max_mbal == 0 {
                continue;
            }
            for (idx, rec) in records.iter().enumerate() {
                if rec.mbal == max_mbal && rec.bal == rec.mbal && rec.val.is_some() {
                    frozen.insert(ProcessId::new(idx));
                }
            }
        }
        max_frozen = max_frozen.max(frozen.len());

        // Schedule the next runnable, unfrozen process in rotation.
        let mut chosen = None;
        for _ in 0..runnable.len() {
            let candidate = runnable[rotation % runnable.len()];
            rotation += 1;
            if frozen.contains(candidate) {
                freeze_events += 1;
                continue;
            }
            chosen = Some(candidate);
            break;
        }
        // All runnables frozen cannot happen (≤ k frozen, > k runnable);
        // defend anyway by releasing the rotation head.
        let p = chosen.unwrap_or(runnable[rotation % runnable.len()]);
        stack.sim_mut().step_with(p);
    }

    let certificate = certify.map(|(p, q)| {
        let executed: Schedule = stack
            .sim()
            .report()
            .executed
            .expect("build the stack with build_full(.., record_schedule = true) to certify");
        TimelyPair {
            p,
            q,
            bound: empirical_bound(&executed, p, q),
        }
    });

    let run = stack.snapshot(RunStatus::MaxSteps, precrashed);
    AdversarialRun {
        run,
        freeze_events,
        max_frozen,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{AgreementTask, Value};
    use st_fd::TimeoutPolicy;

    fn inputs(n: usize) -> Vec<Value> {
        (0..n as Value).map(|v| 11 * (v + 1)).collect()
    }

    /// Theorem 26 branch: (1,1,3) has no decision under the adaptive
    /// adversary, while every 2-set stays timely (certified).
    #[test]
    fn blocks_consensus_while_two_sets_stay_timely() {
        let task = AgreementTask::new(1, 1, 3).unwrap();
        let stack = AgreementStack::build_full(task, &inputs(3), TimeoutPolicy::Increment, true);
        let pair = ProcSet::from_indices([0, 1]);
        let full = ProcSet::full(task.universe());
        let adv = drive_adversarially(stack, 600_000, ProcSet::EMPTY, Some((pair, full)));

        assert!(adv.run.is_safe(), "{:?}", adv.run.violations);
        assert!(
            adv.run.outcome.decisions.iter().all(|d| d.is_none()),
            "adaptive adversary must block: {:?}",
            adv.run.outcome.decisions
        );
        assert!(adv.freeze_events > 0, "the freezer must have fired");
        assert!(adv.max_frozen <= task.k());
        // Certified: {p0,p1} timely wrt Π_3 with a small bound.
        let cert = adv.certificate.unwrap();
        assert!(
            cert.bound <= 4 * 3,
            "2-set must stay timely, bound {}",
            cert.bound
        );
    }

    /// Theorem 26 branch at k = 2: (2,2,4) blocked, ≤ 2 frozen at a time.
    #[test]
    fn blocks_two_set_agreement() {
        let task = AgreementTask::new(2, 2, 4).unwrap();
        let stack = AgreementStack::build_full(task, &inputs(4), TimeoutPolicy::Increment, true);
        let trio = ProcSet::from_indices([0, 1, 2]);
        let full = ProcSet::full(task.universe());
        let adv = drive_adversarially(stack, 900_000, ProcSet::EMPTY, Some((trio, full)));
        assert!(adv.run.is_safe());
        assert!(adv.run.outcome.decisions.iter().all(|d| d.is_none()));
        assert!(adv.max_frozen <= 2);
        let cert = adv.certificate.unwrap();
        assert!(cert.bound <= 4 * 4, "3-set bound {}", cert.bound);
    }

    /// Theorem 27 case-2b branch: S^1_{2,4} vs (2,1,4) — one fictitious
    /// crash, membership witness at bound 1, no decision.
    #[test]
    fn blocks_with_fictitious_crash() {
        let task = AgreementTask::new(2, 1, 4).unwrap();
        let stack = AgreementStack::build_full(task, &inputs(4), TimeoutPolicy::Increment, true);
        // C = {p3} crashed from the start (j − i = 1 ≤ t − k = 1).
        let crashed = ProcSet::from_indices([3]);
        let p_i = ProcSet::from_indices([0]);
        let witness_q = p_i.union(crashed); // size j = 2
        let adv = drive_adversarially(stack, 600_000, crashed, Some((p_i, witness_q)));
        assert!(adv.run.is_safe());
        assert!(
            adv.run.outcome.decisions.iter().all(|d| d.is_none()),
            "{:?}",
            adv.run.outcome.decisions
        );
        // The S^1_{2,4} witness is exact: bound 1.
        assert_eq!(adv.certificate.unwrap().bound, 1);
    }

    #[test]
    #[should_panic(expected = "cannot be blocked")]
    fn refuses_trivial_stack() {
        let task = AgreementTask::new(1, 2, 4).unwrap();
        let stack = AgreementStack::build(task, &inputs(4));
        let _ = drive_adversarially(stack, 10, ProcSet::EMPTY, None);
    }
}
