//! Single-decree shared-memory Paxos over single-writer registers.
//!
//! The construction is Disk Paxos (Gafni–Lamport) specialized to one "disk"
//! whose blocks are SWMR registers: each process owns a record
//! `(mbal, bal, val)`; a proposer with ballot `b`
//!
//! 1. writes `mbal = b` to its record, reads all records, and **aborts** if
//!    any record carries `mbal > b`;
//! 2. adopts the value of the highest `bal` seen (or its own proposal if
//!    none), writes `(mbal = b, bal = b, val)`, re-reads all records, and
//!    aborts on any `mbal > b`;
//! 3. otherwise the value is **chosen**: it is published in a decision
//!    register.
//!
//! Safety (one chosen value per instance, always a proposed value) holds
//! under full asynchrony and any number of dueling proposers; termination
//! needs an eventually-unique proposer — exactly what the k-anti-Ω winnerset
//! provides to each instance in [`KSetAgreement`](crate::KSetAgreement).
//!
//! Ballots are made unique by the rule `b = round · n + pid + 1`, computed
//! with **checked arithmetic**: ballot uniqueness is the foundation of the
//! safety argument, so on `u64` exhaustion the proposer panics (documented
//! on [`Paxos::attempt`]) instead of silently wrapping into a reused ballot.
//!
//! The proposer ships in **both simulator ABIs**: the async transcription
//! ([`Paxos::attempt`]) and [`PaxosMachine`] — the same attempt loop as an
//! explicit state machine on the executor's non-async fast path
//! ([`st_sim::Automaton`]), one register operation per scheduled step. The
//! two are observationally identical step-for-step;
//! `tests/differential.rs` enforces it on round-robin, seeded-random,
//! Figure 1, and crash schedules.

use st_core::Value;
use st_sim::{Automaton, BatchAccess, PhaseBatch, ProcessCtx, Reg, Sim, Status, StepAccess};

/// One process's Paxos record (a "disk block").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PaxosRecord {
    /// Highest ballot this process has entered (phase 1).
    pub mbal: u64,
    /// Ballot at which `val` was accepted (phase 2), 0 if none.
    pub bal: u64,
    /// Accepted value, `None` if never accepted.
    pub val: Option<Value>,
}

/// A single-decree Paxos instance: `n` records plus a decision register.
#[derive(Clone, Debug)]
pub struct Paxos {
    pub(crate) records: Vec<Reg<PaxosRecord>>,
    pub(crate) decision: Reg<Option<Value>>,
    n: u64,
}

/// Proposer-local state: the next round and the cached own record (the
/// record is single-writer, so the cache is always exact).
#[derive(Clone, Debug, Default)]
pub struct ProposerState {
    round: u64,
    own: PaxosRecord,
    /// Ballot attempts made (metrics).
    pub attempts: u64,
}

/// Result of one ballot attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// This attempt chose (or observed) the decision.
    Decided(Value),
    /// A higher ballot interfered; the proposer state has been advanced
    /// past it.
    Preempted,
}

impl Paxos {
    /// Allocates an instance in `sim`: one record per process (single
    /// writer) and one multi-writer decision register.
    pub fn alloc(sim: &mut Sim, name: &str) -> Self {
        let records = sim.alloc_per_process(&format!("{name}.rec"), PaxosRecord::default());
        let decision = sim.alloc(format!("{name}.decision"), None);
        Paxos {
            records,
            decision,
            n: sim.universe().n() as u64,
        }
    }

    /// Reads the decision register. **One step.**
    pub async fn check_decision(&self, ctx: &ProcessCtx) -> Option<Value> {
        ctx.read(self.decision).await
    }

    /// The ballot of `round` for proposer `me`: `b = round · n + me + 1`.
    ///
    /// # Panics
    ///
    /// Panics when the ballot space is exhausted (the product or sum
    /// overflows `u64`): wrapping would reuse a ballot number and break
    /// ballot uniqueness, the foundation of the safety argument. At one
    /// ballot per scheduled step this takes ~10⁴ simulated years on the
    /// reference host; exhaustion is a configuration bug, not a reachable
    /// protocol state.
    fn ballot(&self, round: u64, me: usize) -> u64 {
        round
            .checked_mul(self.n)
            .and_then(|x| x.checked_add(me as u64 + 1))
            .unwrap_or_else(|| {
                panic!(
                    "Paxos ballot space exhausted: round {round} · n {} + pid {me} + 1 \
                     overflows u64 (ballot uniqueness would break)",
                    self.n
                )
            })
    }

    /// Advances `round` past every round that could have produced a ballot
    /// ≤ `max_seen` — the preemption rule, shared verbatim by both ABIs.
    fn advance_round(&self, state: &mut ProposerState, max_seen: u64) {
        // Saturating: at the top of the round space the next `ballot` call
        // panics with the documented exhaustion message rather than a bare
        // arithmetic overflow here.
        state.round = state.round.max((max_seen / self.n).saturating_add(1));
    }

    /// Runs one complete ballot as a proposer: decision check, phase 1,
    /// phase 2, publication. Costs `2 + 2n` steps when uncontended.
    ///
    /// On [`AttemptOutcome::Preempted`], `state.round` has been advanced
    /// beyond every interfering ballot, so a lone repeating proposer always
    /// eventually decides.
    pub async fn attempt(
        &self,
        ctx: &ProcessCtx,
        state: &mut ProposerState,
        proposal: Value,
    ) -> AttemptOutcome {
        state.attempts += 1;
        // Fast path: someone already decided.
        if let Some(v) = self.check_decision(ctx).await {
            return AttemptOutcome::Decided(v);
        }

        let me = ctx.pid().index();
        let b = self.ballot(state.round, me);
        state.round += 1;

        // Phase 1: announce the ballot, then look for competition and for
        // previously accepted values.
        state.own.mbal = b;
        ctx.write(self.records[me], state.own).await;
        let mut max_seen = 0u64;
        let mut best: Option<(u64, Value)> = state.own.val.map(|v| (state.own.bal, v));
        for (q, &reg) in self.records.iter().enumerate() {
            if q == me {
                continue;
            }
            let rec = ctx.read(reg).await;
            max_seen = max_seen.max(rec.mbal);
            if let Some(v) = rec.val {
                if best.is_none_or(|(bb, _)| rec.bal > bb) {
                    best = Some((rec.bal, v));
                }
            }
        }
        if max_seen > b {
            self.advance_round(state, max_seen);
            return AttemptOutcome::Preempted;
        }

        // Phase 2: accept the safest value and look for competition again.
        let value = best.map(|(_, v)| v).unwrap_or(proposal);
        state.own = PaxosRecord {
            mbal: b,
            bal: b,
            val: Some(value),
        };
        ctx.write(self.records[me], state.own).await;
        let mut max_seen = 0u64;
        for (q, &reg) in self.records.iter().enumerate() {
            if q == me {
                continue;
            }
            let rec = ctx.read(reg).await;
            max_seen = max_seen.max(rec.mbal);
        }
        if max_seen > b {
            self.advance_round(state, max_seen);
            return AttemptOutcome::Preempted;
        }

        // Chosen: publish.
        ctx.write(self.decision, Some(value)).await;
        AttemptOutcome::Decided(value)
    }

    /// Peeks the decision without a step (instrumentation).
    pub fn peek_decision(&self, sim: &Sim) -> Option<Value> {
        sim.peek(self.decision)
    }

    /// Peeks every record without steps (instrumentation; used by the
    /// adaptive adversary, which — like the model's adversary — sees all
    /// state).
    pub fn peek_records(&self, sim: &Sim) -> Vec<PaxosRecord> {
        self.records.iter().map(|&r| sim.peek(r)).collect()
    }

    /// The proposer as an explicit state machine on the simulator's
    /// non-async fast path: the attempt loop of the async tests (`attempt`
    /// until decided, then decide and halt) as an [`st_sim::Automaton`].
    /// Spawn with [`Sim::spawn_automaton`](st_sim::Sim::spawn_automaton) or
    /// drive as a typed fleet. Observationally identical to the async
    /// transcription, step for step.
    ///
    /// # Panics
    ///
    /// Stepping the machine panics on ballot-space exhaustion, exactly as
    /// the async proposer (see [`attempt`](Self::attempt)).
    pub fn machine(&self, proposal: Value) -> PaxosMachine {
        PaxosMachine {
            core: PaxosProposerCore::new(self.clone()),
            proposal,
        }
    }
}

/// Control state of a machine-ABI proposer: which operation of the current
/// attempt the next scheduled step performs. Every variant performs exactly
/// one register operation; the evaluation between phases (ballot choice,
/// value adoption, preemption checks) runs at the phase boundaries inside
/// the step that precedes it — exactly where the async transcription runs
/// it.
#[derive(Clone, Copy, Debug)]
enum ProposerPhase {
    /// The attempt's fast path: read the decision register.
    CheckDecision,
    /// Phase 1 announce: write `(mbal = b)` to the own record.
    Phase1Write,
    /// Phase 1 scan: read record `q`, tracking the maximal `mbal` seen and
    /// the highest-ballot accepted value.
    Phase1Read {
        q: u32,
        max_seen: u64,
        best: Option<(u64, Value)>,
    },
    /// Phase 2 accept: write `(mbal = b, bal = b, val)` to the own record.
    Phase2Write { value: Value },
    /// Phase 2 scan: re-read record `q` looking for competition.
    Phase2Read { q: u32, max_seen: u64, value: Value },
    /// Chosen: publish the decision.
    Publish { value: Value },
}

/// What one machine step of a proposer core produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CoreStep {
    /// Mid-attempt: more steps to take.
    Busy,
    /// This step's operation observed or chose the decision.
    Decided(Value),
    /// A higher ballot interfered; the round has been advanced past it and
    /// the core has been reset for the next attempt.
    Preempted,
}

/// The single-attempt proposer engine shared by [`PaxosMachine`] and the
/// k-set agreement machine: one register operation per `step` call,
/// mirroring [`Paxos::attempt`] operation for operation.
#[derive(Clone, Debug)]
pub(crate) struct PaxosProposerCore {
    paxos: Paxos,
    state: ProposerState,
    phase: ProposerPhase,
    /// The current attempt's ballot.
    b: u64,
}

/// The next record index to scan after `q`, skipping the proposer's own.
fn next_other(q: usize, me: usize, n: usize) -> Option<u32> {
    let mut q = q + 1;
    if q == me {
        q += 1;
    }
    (q < n).then_some(q as u32)
}

/// The first record index to scan, skipping the proposer's own.
fn first_other(me: usize, n: usize) -> Option<u32> {
    let q = if me == 0 { 1 } else { 0 };
    (q < n).then_some(q as u32)
}

impl PaxosProposerCore {
    pub(crate) fn new(paxos: Paxos) -> Self {
        PaxosProposerCore {
            paxos,
            state: ProposerState::default(),
            phase: ProposerPhase::CheckDecision,
            b: 0,
        }
    }

    /// Ballot attempts made so far (metrics; mirrors
    /// [`ProposerState::attempts`]).
    pub(crate) fn attempts(&self) -> u64 {
        self.state.attempts
    }

    /// Executes one step of the current attempt: exactly one register
    /// operation. After `Decided`/`Preempted` the core is reset, so the next
    /// `step` call begins a fresh attempt.
    pub(crate) fn step(&mut self, mem: &mut StepAccess<'_>, proposal: Value) -> CoreStep {
        let me = mem.pid().index();
        let n = self.paxos.records.len();
        match self.phase {
            ProposerPhase::CheckDecision => {
                self.state.attempts += 1;
                if let Some(v) = mem.read(self.paxos.decision) {
                    return CoreStep::Decided(v);
                }
                self.b = self.paxos.ballot(self.state.round, me);
                self.state.round += 1;
                self.state.own.mbal = self.b;
                self.phase = ProposerPhase::Phase1Write;
                CoreStep::Busy
            }
            ProposerPhase::Phase1Write => {
                mem.write(self.paxos.records[me], self.state.own);
                let best = self.state.own.val.map(|v| (self.state.own.bal, v));
                match first_other(me, n) {
                    Some(q) => {
                        self.phase = ProposerPhase::Phase1Read {
                            q,
                            max_seen: 0,
                            best,
                        };
                        CoreStep::Busy
                    }
                    // n == 1: nothing to scan, no competition possible.
                    None => {
                        self.enter_phase2(best, proposal);
                        CoreStep::Busy
                    }
                }
            }
            ProposerPhase::Phase1Read {
                q,
                mut max_seen,
                mut best,
            } => {
                let rec = mem.read(self.paxos.records[q as usize]);
                max_seen = max_seen.max(rec.mbal);
                if let Some(v) = rec.val {
                    if best.is_none_or(|(bb, _)| rec.bal > bb) {
                        best = Some((rec.bal, v));
                    }
                }
                if let Some(next) = next_other(q as usize, me, n) {
                    self.phase = ProposerPhase::Phase1Read {
                        q: next,
                        max_seen,
                        best,
                    };
                    return CoreStep::Busy;
                }
                if max_seen > self.b {
                    return self.preempt(max_seen);
                }
                self.enter_phase2(best, proposal);
                CoreStep::Busy
            }
            ProposerPhase::Phase2Write { value } => {
                mem.write(self.paxos.records[me], self.state.own);
                match first_other(me, n) {
                    Some(q) => {
                        self.phase = ProposerPhase::Phase2Read {
                            q,
                            max_seen: 0,
                            value,
                        };
                        CoreStep::Busy
                    }
                    None => {
                        self.phase = ProposerPhase::Publish { value };
                        CoreStep::Busy
                    }
                }
            }
            ProposerPhase::Phase2Read {
                q,
                mut max_seen,
                value,
            } => {
                let rec = mem.read(self.paxos.records[q as usize]);
                max_seen = max_seen.max(rec.mbal);
                if let Some(next) = next_other(q as usize, me, n) {
                    self.phase = ProposerPhase::Phase2Read {
                        q: next,
                        max_seen,
                        value,
                    };
                    return CoreStep::Busy;
                }
                if max_seen > self.b {
                    return self.preempt(max_seen);
                }
                self.phase = ProposerPhase::Publish { value };
                CoreStep::Busy
            }
            ProposerPhase::Publish { value } => {
                mem.write(self.paxos.decision, Some(value));
                self.phase = ProposerPhase::CheckDecision;
                CoreStep::Decided(value)
            }
        }
    }

    /// Grouping label of the current phase for the SoA drive (see
    /// [`PhaseBatch::phase_class`]).
    pub(crate) fn phase_class(&self) -> u8 {
        match self.phase {
            ProposerPhase::CheckDecision => 0,
            ProposerPhase::Phase1Write => 1,
            ProposerPhase::Phase1Read { .. } => 2,
            ProposerPhase::Phase2Write { .. } => 3,
            ProposerPhase::Phase2Read { .. } => 4,
            ProposerPhase::Publish { .. } => 5,
        }
    }

    /// Guaranteed value-independent read steps ahead (see
    /// [`PhaseBatch::read_run`]): the decision check is one read; a record
    /// scan is reads to its end (the bound `n − q − 1` under-counts by one
    /// when the proposer's own skipped record lies before `q` — a safe
    /// under-estimate, since the core does not know its process index until
    /// it is stepped). The scan-end branch (preempt or advance) may lead to
    /// a write, so the run stops there.
    pub(crate) fn read_run(&self) -> usize {
        let n = self.paxos.records.len();
        match self.phase {
            ProposerPhase::CheckDecision => 1,
            ProposerPhase::Phase1Read { q, .. } | ProposerPhase::Phase2Read { q, .. } => {
                (n - q as usize).saturating_sub(1).max(1)
            }
            ProposerPhase::Phase1Write
            | ProposerPhase::Phase2Write { .. }
            | ProposerPhase::Publish { .. } => 0,
        }
    }

    /// Executes a whole batch of read steps (see
    /// [`PhaseBatch::step_reads`]): the read arms of [`step`](Self::step),
    /// looped over the allotment. The batch never crosses into a write
    /// phase — [`read_run`](Self::read_run) caps the allotment at the
    /// current scan's end.
    pub(crate) fn step_reads(&mut self, mem: &mut BatchAccess<'_>, proposal: Value) -> CoreStep {
        let me = mem.pid().index();
        let n = self.paxos.records.len();
        let mut outcome = CoreStep::Busy;
        while mem.remaining() > 0 && outcome == CoreStep::Busy {
            match self.phase {
                ProposerPhase::CheckDecision => {
                    self.state.attempts += 1;
                    if let Some(v) = mem.read(self.paxos.decision) {
                        outcome = CoreStep::Decided(v);
                        break;
                    }
                    self.b = self.paxos.ballot(self.state.round, me);
                    self.state.round += 1;
                    self.state.own.mbal = self.b;
                    self.phase = ProposerPhase::Phase1Write;
                }
                ProposerPhase::Phase1Read {
                    q,
                    mut max_seen,
                    mut best,
                } => {
                    let rec = mem.read(self.paxos.records[q as usize]);
                    max_seen = max_seen.max(rec.mbal);
                    if let Some(v) = rec.val {
                        if best.is_none_or(|(bb, _)| rec.bal > bb) {
                            best = Some((rec.bal, v));
                        }
                    }
                    if let Some(next) = next_other(q as usize, me, n) {
                        self.phase = ProposerPhase::Phase1Read {
                            q: next,
                            max_seen,
                            best,
                        };
                    } else if max_seen > self.b {
                        outcome = self.preempt(max_seen);
                    } else {
                        self.enter_phase2(best, proposal);
                    }
                }
                ProposerPhase::Phase2Read {
                    q,
                    mut max_seen,
                    value,
                } => {
                    let rec = mem.read(self.paxos.records[q as usize]);
                    max_seen = max_seen.max(rec.mbal);
                    if let Some(next) = next_other(q as usize, me, n) {
                        self.phase = ProposerPhase::Phase2Read {
                            q: next,
                            max_seen,
                            value,
                        };
                    } else if max_seen > self.b {
                        outcome = self.preempt(max_seen);
                    } else {
                        self.phase = ProposerPhase::Publish { value };
                    }
                }
                ProposerPhase::Phase1Write
                | ProposerPhase::Phase2Write { .. }
                | ProposerPhase::Publish { .. } => {
                    unreachable!("batched step in a write phase: read_run() is 0 here")
                }
            }
        }
        outcome
    }

    /// Phase-boundary bookkeeping between the phase 1 scan and the phase 2
    /// write: adopt the safest value and stage the accept record.
    fn enter_phase2(&mut self, best: Option<(u64, Value)>, proposal: Value) {
        let value = best.map(|(_, v)| v).unwrap_or(proposal);
        self.state.own = PaxosRecord {
            mbal: self.b,
            bal: self.b,
            val: Some(value),
        };
        self.phase = ProposerPhase::Phase2Write { value };
    }

    fn preempt(&mut self, max_seen: u64) -> CoreStep {
        self.paxos.advance_round(&mut self.state, max_seen);
        self.phase = ProposerPhase::CheckDecision;
        CoreStep::Preempted
    }
}

/// The standalone Paxos proposer on the state-machine ABI: attempts ballots
/// until a decision is observed or chosen, records it via
/// [`StepAccess::decide`], and halts. Construct with [`Paxos::machine`].
#[derive(Clone, Debug)]
pub struct PaxosMachine {
    core: PaxosProposerCore,
    proposal: Value,
}

impl PaxosMachine {
    /// Ballot attempts made so far (metrics).
    pub fn attempts(&self) -> u64 {
        self.core.attempts()
    }
}

impl Automaton for PaxosMachine {
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        match self.core.step(mem, self.proposal) {
            CoreStep::Busy | CoreStep::Preempted => Status::Running,
            CoreStep::Decided(v) => {
                mem.decide(v);
                Status::Done
            }
        }
    }
}

impl PhaseBatch for PaxosMachine {
    #[inline]
    fn phase_class(&self) -> u8 {
        self.core.phase_class()
    }

    #[inline]
    fn read_run(&self) -> usize {
        self.core.read_run()
    }

    fn step_reads(&mut self, mem: &mut BatchAccess<'_>) -> Status {
        match self.core.step_reads(mem, self.proposal) {
            CoreStep::Busy | CoreStep::Preempted => Status::Running,
            CoreStep::Decided(v) => {
                mem.decide(v);
                Status::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, StopWhen};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// n proposers with distinct values, interleaved by `schedule`; each
    /// repeatedly attempts until it decides.
    fn run_duel(n: usize, schedule: Vec<usize>, budget: u64) -> Vec<Option<Value>> {
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        for p in u.processes() {
            let paxos = paxos.clone();
            sim.spawn(p, move |ctx| async move {
                let mut state = ProposerState::default();
                let my_value = 100 + ctx.pid().index() as Value;
                loop {
                    if let AttemptOutcome::Decided(v) =
                        paxos.attempt(&ctx, &mut state, my_value).await
                    {
                        ctx.decide(v);
                        return;
                    }
                }
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(schedule));
        sim.run(
            &mut src,
            RunConfig::steps(budget).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
        )
        .unwrap();
        let rep = sim.report();
        (0..n).map(|i| rep.decision_value(pid(i))).collect()
    }

    #[test]
    fn solo_proposer_decides_own_value() {
        let decisions = run_duel(3, vec![0; 60], 60);
        assert_eq!(decisions[0], Some(100));
    }

    #[test]
    fn sequential_proposers_agree() {
        // p0 completes, then p1, then p2: all must decide p0's value.
        let sched: Vec<usize> = std::iter::repeat_n(0, 40)
            .chain(std::iter::repeat_n(1, 40))
            .chain(std::iter::repeat_n(2, 40))
            .collect();
        let decisions = run_duel(3, sched, 200);
        assert_eq!(decisions, vec![Some(100), Some(100), Some(100)]);
    }

    #[test]
    fn agreement_under_many_interleavings() {
        for seed in 0..50u64 {
            let n = 3;
            let sched: Vec<usize> = (0..3000)
                .map(|i| (((seed + 1) * 2654435761).wrapping_mul(i + 1) % n as u64) as usize)
                .collect();
            let decisions = run_duel(n, sched, 3000);
            let decided: Vec<Value> = decisions.iter().flatten().copied().collect();
            if let Some(&first) = decided.first() {
                assert!(
                    decided.iter().all(|&v| v == first),
                    "seed {seed}: split decision {decisions:?}"
                );
                assert!((100..100 + n as Value).contains(&first), "invalid value");
            }
        }
    }

    #[test]
    fn preemption_advances_round() {
        // p1 runs a full ballot; p0 then attempts with a stale round and must
        // be preempted or adopt p1's value — never decide its own over a
        // chosen one.
        let sched: Vec<usize> = std::iter::repeat_n(1, 40)
            .chain(std::iter::repeat_n(0, 80))
            .collect();
        let decisions = run_duel(2, sched, 200);
        assert_eq!(decisions[1], Some(101));
        assert_eq!(decisions[0], Some(101), "p0 must adopt the chosen value");
    }

    #[test]
    fn crashed_leader_mid_ballot_is_recoverable() {
        // p0 writes phase 2 but crashes before publishing; p1 must adopt
        // p0's accepted value (it may be chosen).
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        {
            let paxos = paxos.clone();
            sim.spawn(pid(0), move |ctx| async move {
                let mut state = ProposerState::default();
                let _ = paxos.attempt(&ctx, &mut state, 100).await;
            })
            .unwrap();
        }
        {
            let paxos = paxos.clone();
            sim.spawn(pid(1), move |ctx| async move {
                let mut state = ProposerState::default();
                loop {
                    if let AttemptOutcome::Decided(v) = paxos.attempt(&ctx, &mut state, 101).await {
                        ctx.decide(v);
                        return;
                    }
                }
            })
            .unwrap();
        }
        // p0: decision check (1) + phase1 write (1) + read other (1) +
        // phase2 write (1) = 4 steps, then crash (stop scheduling).
        let sched: Vec<usize> = [0usize, 0, 0, 0]
            .into_iter()
            .chain(std::iter::repeat_n(1, 60))
            .collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
        sim.run(&mut src, RunConfig::steps(100)).unwrap();
        assert_eq!(
            sim.report().decision_value(pid(1)),
            Some(100),
            "p1 must adopt p0's phase-2 value"
        );
    }

    #[test]
    #[should_panic(expected = "ballot space exhausted")]
    fn ballot_overflow_panics_async() {
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        sim.spawn(pid(0), move |ctx| async move {
            // round · n overflows u64
            let mut state = ProposerState {
                round: u64::MAX / 2 + 1,
                ..Default::default()
            };
            let _ = paxos.attempt(&ctx, &mut state, 1).await;
        })
        .unwrap();
        // The decision check consumes the step; the ballot is computed (and
        // panics) in the same poll.
        sim.step_with(pid(0));
    }

    #[test]
    #[should_panic(expected = "ballot space exhausted")]
    fn ballot_overflow_panics_machine() {
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        let mut machine = paxos.machine(1);
        machine.core.state.round = u64::MAX / 2 + 1;
        sim.spawn_automaton(pid(0), machine).unwrap();
        sim.step_with(pid(0));
    }

    #[test]
    fn ballot_at_u64_boundary_is_exact() {
        // n = 2, me = 0, round = (u64::MAX − 1)/2 → b = u64::MAX exactly:
        // the checked rule admits the full ballot space, no early panic.
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        let paxos2 = paxos.clone();
        sim.spawn(pid(0), move |ctx| async move {
            let mut state = ProposerState {
                round: (u64::MAX - 1) / 2,
                ..Default::default()
            };
            let _ = paxos2.attempt(&ctx, &mut state, 1).await;
        })
        .unwrap();
        sim.step_with(pid(0)); // decision check
        sim.step_with(pid(0)); // phase-1 announce
        assert_eq!(paxos.peek_records(&sim)[0].mbal, u64::MAX);
    }

    /// The machine proposer decides its own value when running solo —
    /// the machine twin of `solo_proposer_decides_own_value`.
    #[test]
    fn machine_solo_proposer_decides_own_value() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        let mut fleet: Vec<PaxosMachine> =
            (0..3).map(|i| paxos.machine(100 + i as Value)).collect();
        let schedule = Schedule::from_indices(vec![0usize; 60]);
        sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(60))
            .unwrap();
        assert_eq!(sim.decisions()[0].map(|d| d.value), Some(100));
        assert_eq!(paxos.peek_decision(&sim), Some(100));
        assert_eq!(fleet[0].attempts(), 1);
    }

    #[test]
    fn validity_only_proposed_values() {
        for seed in 0..20u64 {
            let sched: Vec<usize> = (0..2000)
                .map(|i| ((seed * 7 + i * 13 + i / 5) % 4) as usize)
                .collect();
            let decisions = run_duel(4, sched, 2000);
            for d in decisions.iter().flatten() {
                assert!((100..104).contains(d));
            }
        }
    }
}
