//! Single-decree shared-memory Paxos over single-writer registers.
//!
//! The construction is Disk Paxos (Gafni–Lamport) specialized to one "disk"
//! whose blocks are SWMR registers: each process owns a record
//! `(mbal, bal, val)`; a proposer with ballot `b`
//!
//! 1. writes `mbal = b` to its record, reads all records, and **aborts** if
//!    any record carries `mbal > b`;
//! 2. adopts the value of the highest `bal` seen (or its own proposal if
//!    none), writes `(mbal = b, bal = b, val)`, re-reads all records, and
//!    aborts on any `mbal > b`;
//! 3. otherwise the value is **chosen**: it is published in a decision
//!    register.
//!
//! Safety (one chosen value per instance, always a proposed value) holds
//! under full asynchrony and any number of dueling proposers; termination
//! needs an eventually-unique proposer — exactly what the k-anti-Ω winnerset
//! provides to each instance in [`KSetAgreement`](crate::KSetAgreement).
//!
//! Ballots are made unique by the rule `b = round · n + pid + 1`.

use st_core::Value;
use st_sim::{ProcessCtx, Reg, Sim};

/// One process's Paxos record (a "disk block").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PaxosRecord {
    /// Highest ballot this process has entered (phase 1).
    pub mbal: u64,
    /// Ballot at which `val` was accepted (phase 2), 0 if none.
    pub bal: u64,
    /// Accepted value, `None` if never accepted.
    pub val: Option<Value>,
}

/// A single-decree Paxos instance: `n` records plus a decision register.
#[derive(Clone, Debug)]
pub struct Paxos {
    records: Vec<Reg<PaxosRecord>>,
    decision: Reg<Option<Value>>,
    n: u64,
}

/// Proposer-local state: the next round and the cached own record (the
/// record is single-writer, so the cache is always exact).
#[derive(Clone, Debug, Default)]
pub struct ProposerState {
    round: u64,
    own: PaxosRecord,
    /// Ballot attempts made (metrics).
    pub attempts: u64,
}

/// Result of one ballot attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// This attempt chose (or observed) the decision.
    Decided(Value),
    /// A higher ballot interfered; the proposer state has been advanced
    /// past it.
    Preempted,
}

impl Paxos {
    /// Allocates an instance in `sim`: one record per process (single
    /// writer) and one multi-writer decision register.
    pub fn alloc(sim: &mut Sim, name: &str) -> Self {
        let records = sim.alloc_per_process(&format!("{name}.rec"), PaxosRecord::default());
        let decision = sim.alloc(format!("{name}.decision"), None);
        Paxos {
            records,
            decision,
            n: sim.universe().n() as u64,
        }
    }

    /// Reads the decision register. **One step.**
    pub async fn check_decision(&self, ctx: &ProcessCtx) -> Option<Value> {
        ctx.read(self.decision).await
    }

    /// Runs one complete ballot as a proposer: decision check, phase 1,
    /// phase 2, publication. Costs `2 + 2n` steps when uncontended.
    ///
    /// On [`AttemptOutcome::Preempted`], `state.round` has been advanced
    /// beyond every interfering ballot, so a lone repeating proposer always
    /// eventually decides.
    pub async fn attempt(
        &self,
        ctx: &ProcessCtx,
        state: &mut ProposerState,
        proposal: Value,
    ) -> AttemptOutcome {
        state.attempts += 1;
        // Fast path: someone already decided.
        if let Some(v) = self.check_decision(ctx).await {
            return AttemptOutcome::Decided(v);
        }

        let me = ctx.pid().index();
        let b = state.round * self.n + me as u64 + 1;
        state.round += 1;

        // Phase 1: announce the ballot, then look for competition and for
        // previously accepted values.
        state.own.mbal = b;
        ctx.write(self.records[me], state.own).await;
        let mut max_seen = 0u64;
        let mut best: Option<(u64, Value)> = state.own.val.map(|v| (state.own.bal, v));
        for (q, &reg) in self.records.iter().enumerate() {
            if q == me {
                continue;
            }
            let rec = ctx.read(reg).await;
            max_seen = max_seen.max(rec.mbal);
            if let Some(v) = rec.val {
                if best.is_none_or(|(bb, _)| rec.bal > bb) {
                    best = Some((rec.bal, v));
                }
            }
        }
        if max_seen > b {
            state.round = state.round.max(max_seen / self.n + 1);
            return AttemptOutcome::Preempted;
        }

        // Phase 2: accept the safest value and look for competition again.
        let value = best.map(|(_, v)| v).unwrap_or(proposal);
        state.own = PaxosRecord {
            mbal: b,
            bal: b,
            val: Some(value),
        };
        ctx.write(self.records[me], state.own).await;
        let mut max_seen = 0u64;
        for (q, &reg) in self.records.iter().enumerate() {
            if q == me {
                continue;
            }
            let rec = ctx.read(reg).await;
            max_seen = max_seen.max(rec.mbal);
        }
        if max_seen > b {
            state.round = state.round.max(max_seen / self.n + 1);
            return AttemptOutcome::Preempted;
        }

        // Chosen: publish.
        ctx.write(self.decision, Some(value)).await;
        AttemptOutcome::Decided(value)
    }

    /// Peeks the decision without a step (instrumentation).
    pub fn peek_decision(&self, sim: &Sim) -> Option<Value> {
        sim.peek(self.decision)
    }

    /// Peeks every record without steps (instrumentation; used by the
    /// adaptive adversary, which — like the model's adversary — sees all
    /// state).
    pub fn peek_records(&self, sim: &Sim) -> Vec<PaxosRecord> {
        self.records.iter().map(|&r| sim.peek(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, StopWhen};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// n proposers with distinct values, interleaved by `schedule`; each
    /// repeatedly attempts until it decides.
    fn run_duel(n: usize, schedule: Vec<usize>, budget: u64) -> Vec<Option<Value>> {
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        for p in u.processes() {
            let paxos = paxos.clone();
            sim.spawn(p, move |ctx| async move {
                let mut state = ProposerState::default();
                let my_value = 100 + ctx.pid().index() as Value;
                loop {
                    if let AttemptOutcome::Decided(v) =
                        paxos.attempt(&ctx, &mut state, my_value).await
                    {
                        ctx.decide(v);
                        return;
                    }
                }
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(schedule));
        sim.run(
            &mut src,
            RunConfig::steps(budget).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
        );
        let rep = sim.report();
        (0..n).map(|i| rep.decision_value(pid(i))).collect()
    }

    #[test]
    fn solo_proposer_decides_own_value() {
        let decisions = run_duel(3, vec![0; 60], 60);
        assert_eq!(decisions[0], Some(100));
    }

    #[test]
    fn sequential_proposers_agree() {
        // p0 completes, then p1, then p2: all must decide p0's value.
        let sched: Vec<usize> = std::iter::repeat_n(0, 40)
            .chain(std::iter::repeat_n(1, 40))
            .chain(std::iter::repeat_n(2, 40))
            .collect();
        let decisions = run_duel(3, sched, 200);
        assert_eq!(decisions, vec![Some(100), Some(100), Some(100)]);
    }

    #[test]
    fn agreement_under_many_interleavings() {
        for seed in 0..50u64 {
            let n = 3;
            let sched: Vec<usize> = (0..3000)
                .map(|i| (((seed + 1) * 2654435761).wrapping_mul(i + 1) % n as u64) as usize)
                .collect();
            let decisions = run_duel(n, sched, 3000);
            let decided: Vec<Value> = decisions.iter().flatten().copied().collect();
            if let Some(&first) = decided.first() {
                assert!(
                    decided.iter().all(|&v| v == first),
                    "seed {seed}: split decision {decisions:?}"
                );
                assert!((100..100 + n as Value).contains(&first), "invalid value");
            }
        }
    }

    #[test]
    fn preemption_advances_round() {
        // p1 runs a full ballot; p0 then attempts with a stale round and must
        // be preempted or adopt p1's value — never decide its own over a
        // chosen one.
        let sched: Vec<usize> = std::iter::repeat_n(1, 40)
            .chain(std::iter::repeat_n(0, 80))
            .collect();
        let decisions = run_duel(2, sched, 200);
        assert_eq!(decisions[1], Some(101));
        assert_eq!(decisions[0], Some(101), "p0 must adopt the chosen value");
    }

    #[test]
    fn crashed_leader_mid_ballot_is_recoverable() {
        // p0 writes phase 2 but crashes before publishing; p1 must adopt
        // p0's accepted value (it may be chosen).
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let paxos = Paxos::alloc(&mut sim, "px");
        {
            let paxos = paxos.clone();
            sim.spawn(pid(0), move |ctx| async move {
                let mut state = ProposerState::default();
                let _ = paxos.attempt(&ctx, &mut state, 100).await;
            })
            .unwrap();
        }
        {
            let paxos = paxos.clone();
            sim.spawn(pid(1), move |ctx| async move {
                let mut state = ProposerState::default();
                loop {
                    if let AttemptOutcome::Decided(v) = paxos.attempt(&ctx, &mut state, 101).await {
                        ctx.decide(v);
                        return;
                    }
                }
            })
            .unwrap();
        }
        // p0: decision check (1) + phase1 write (1) + read other (1) +
        // phase2 write (1) = 4 steps, then crash (stop scheduling).
        let sched: Vec<usize> = [0usize, 0, 0, 0]
            .into_iter()
            .chain(std::iter::repeat_n(1, 60))
            .collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
        sim.run(&mut src, RunConfig::steps(100));
        assert_eq!(
            sim.report().decision_value(pid(1)),
            Some(100),
            "p1 must adopt p0's phase-2 value"
        );
    }

    #[test]
    fn validity_only_proposed_values() {
        for seed in 0..20u64 {
            let sched: Vec<usize> = (0..2000)
                .map(|i| ((seed * 7 + i * 13 + i / 5) % 4) as usize)
                .collect();
            let decisions = run_duel(4, sched, 2000);
            for d in decisions.iter().flatten() {
                assert!((100..104).contains(d));
            }
        }
    }
}
