//! The trivial algorithm for `t < k` (asynchronously solvable regime).
//!
//! When fewer processes may crash than values may be decided, the closing
//! remark of Section 4.3 applies: `(t,k,n)`-agreement is solvable in the
//! fully asynchronous system. The folklore algorithm: the `k` lowest-indexed
//! processes decide their own values immediately and publish them; everyone
//! else keeps collecting the `k` publication registers and adopts the first
//! value seen. Since `t < k`, at least one publisher is correct, so a value
//! always appears.

use st_core::Value;
use st_sim::{ProcessCtx, Reg, Sim};

/// The trivial `t < k` agreement object. Clone into each process.
#[derive(Clone, Debug)]
pub struct TrivialAgreement {
    published: Vec<Reg<Option<Value>>>,
}

impl TrivialAgreement {
    /// Allocates `k` publication registers (owned by the `k` lowest-indexed
    /// processes).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn alloc(sim: &mut Sim, k: usize) -> Self {
        assert!(k >= 1 && k <= sim.universe().n(), "need 1 <= k <= n");
        let published = (0..k)
            .map(|i| {
                let owner = st_core::ProcessId::new(i);
                sim.alloc_sw(format!("trivial.decide[{i}]"), owner, None)
            })
            .collect();
        TrivialAgreement { published }
    }

    /// The agreement degree `k`.
    pub fn k(&self) -> usize {
        self.published.len()
    }

    /// The per-process protocol: publishers decide in one step; adopters
    /// poll the publication registers.
    pub async fn run(self, ctx: ProcessCtx, proposal: Value) {
        let me = ctx.pid().index();
        if me < self.published.len() {
            ctx.write(self.published[me], Some(proposal)).await;
            ctx.decide(proposal);
            return;
        }
        loop {
            for &reg in &self.published {
                if let Some(v) = ctx.read(reg).await {
                    ctx.decide(v);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{AgreementTask, ProcSet, ProcessId, Universe};
    use st_sched::{CrashAfter, CrashPlan, SeededRandom};
    use st_sim::{RunConfig, StopWhen};

    fn run_trivial(
        n: usize,
        k: usize,
        t: usize,
        crashed: ProcSet,
        seed: u64,
    ) -> (st_sim::RunReport, Vec<Value>) {
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let obj = TrivialAgreement::alloc(&mut sim, k);
        let inputs: Vec<Value> = (0..n as Value).map(|v| 50 + v).collect();
        for p in u.processes() {
            let obj = obj.clone();
            let proposal = inputs[p.index()];
            sim.spawn(p, move |ctx| obj.run(ctx, proposal)).unwrap();
        }
        let plan = CrashPlan::all_at(crashed, 0);
        let mut src = CrashAfter::new(SeededRandom::new(u, seed), plan);
        let correct = crashed.complement(u);
        sim.run(
            &mut src,
            RunConfig::steps(100_000).stop_when(StopWhen::AllDecided(correct)),
        )
        .unwrap();
        let _ = t;
        (sim.report(), inputs)
    }

    #[test]
    fn all_correct_processes_decide() {
        let (report, inputs) = run_trivial(5, 3, 2, ProcSet::EMPTY, 1);
        let u = Universe::new(5).unwrap();
        let outcome = report.agreement_outcome(&inputs, ProcSet::full(u));
        let task = AgreementTask::new(2, 3, 5).unwrap();
        assert!(st_core::check_outcome(&task, &outcome).is_empty());
    }

    #[test]
    fn tolerates_t_crashed_publishers() {
        // k = 3, t = 2: crash publishers p0, p1 from the start; p2 remains.
        let crashed = ProcSet::from_indices([0, 1]);
        let (report, inputs) = run_trivial(5, 3, 2, crashed, 2);
        let u = Universe::new(5).unwrap();
        let correct = crashed.complement(u);
        let outcome = report.agreement_outcome(&inputs, correct);
        let task = AgreementTask::new(2, 3, 5).unwrap();
        assert!(
            st_core::check_outcome(&task, &outcome).is_empty(),
            "correct processes must all decide p2's value"
        );
        // Adopters must have adopted p2's value specifically.
        for adopter in [3usize, 4] {
            assert_eq!(report.decision_value(ProcessId::new(adopter)), Some(52));
        }
    }

    #[test]
    fn at_most_k_values() {
        let (report, inputs) = run_trivial(6, 2, 1, ProcSet::EMPTY, 3);
        let u = Universe::new(6).unwrap();
        let outcome = report.agreement_outcome(&inputs, ProcSet::full(u));
        let distinct: std::collections::BTreeSet<Value> =
            outcome.decisions.iter().flatten().copied().collect();
        assert!(distinct.len() <= 2);
    }
}
