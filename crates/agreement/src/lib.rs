//! `(t,k,n)`-agreement protocols over read-write shared memory.
//!
//! - [`Paxos`] — single-decree shared-memory Paxos (Disk-Paxos-style, one
//!   single-writer record per process): the safety workhorse.
//! - [`KSetAgreement`] — the k-parallel-Paxos construction driven by the
//!   Figure 2 winnerset (Theorem 24's possibility side; see DESIGN.md §3.3
//!   for the documented substitution of Zieliński's generic reduction).
//! - [`TrivialAgreement`] — the folklore `t < k` algorithm (asynchronously
//!   solvable regime).
//! - [`AgreementStack`] — one-call composition: picks the right protocol
//!   for a task, spawns all processes, runs, and checks the outcome with
//!   the `st-core` checkers.
//!
//! # The two execution ABIs
//!
//! The hot protocols ship in **both simulator ABIs** (see the `st-sim`
//! crate docs): the async `ProcessCtx` transcriptions above, and explicit
//! state machines on the executor's non-async fast path —
//! [`PaxosMachine`] (the proposer's attempt loop, one register operation
//! per scheduled step) and [`KSetAgreementMachine`] (an embedded
//! `KAntiOmegaMachine` interleaved with the decision scan and one
//! machine-ABI Paxos proposer core per instance, under the same
//! leader-of-instance-`r` rule). The machine ports are held
//! **observationally identical** to the async transcriptions — same probe
//! sequences at the same step indices, same decisions, same op counts,
//! same register footprint — by `tests/differential.rs` on round-robin,
//! seeded-random, Figure 1, and crash schedules.
//!
//! [`AgreementStack`] runs the FD + k-parallel-Paxos stack on the machine
//! ABI by default ([`StackAbi::Machine`]); E3/E4 and the benches ride it at
//! ≥2× the async step throughput (`BENCH_timeliness.json`,
//! `agreement_step_throughput`). Build with [`StackAbi::Async`] to keep
//! paper-shaped async code in the loop (differential testing, debugging).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod harness;
mod kset;
mod lean;
mod paxos;
mod trivial;

pub use adversary::{drive_adversarially, AdversarialRun};
pub use harness::{AgreementStack, StackAbi, StackKind, StackRun};
pub use kset::{KSetAgreement, KSetAgreementMachine, DECIDED_INSTANCE_PROBE};
pub use lean::{LeanConsensus, LeanConsensusMachine};
pub use paxos::{AttemptOutcome, Paxos, PaxosMachine, PaxosRecord, ProposerState};
pub use trivial::TrivialAgreement;
