//! `(t,k,n)`-agreement protocols over read-write shared memory.
//!
//! - [`Paxos`] — single-decree shared-memory Paxos (Disk-Paxos-style, one
//!   single-writer record per process): the safety workhorse.
//! - [`KSetAgreement`] — the k-parallel-Paxos construction driven by the
//!   Figure 2 winnerset (Theorem 24's possibility side; see DESIGN.md §3.3
//!   for the documented substitution of Zieliński's generic reduction).
//! - [`TrivialAgreement`] — the folklore `t < k` algorithm (asynchronously
//!   solvable regime).
//! - [`AgreementStack`] — one-call composition: picks the right protocol
//!   for a task, spawns all processes, runs, and checks the outcome with
//!   the `st-core` checkers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod harness;
mod kset;
mod paxos;
mod trivial;

pub use adversary::{drive_adversarially, AdversarialRun};
pub use harness::{AgreementStack, StackKind, StackRun};
pub use kset::{KSetAgreement, DECIDED_INSTANCE_PROBE};
pub use paxos::{AttemptOutcome, Paxos, PaxosRecord, ProposerState};
pub use trivial::TrivialAgreement;
