//! Lean consensus for large universes: [`LeanOmega`] + single-decree
//! Paxos, with `O(n)` local state and no set representation.
//!
//! [`KSetAgreement`](crate::KSetAgreement) composes the combinatorial
//! Figure 2 detector with `k` Paxos instances — the paper's construction,
//! capped at `n ≤ 64` by the [`ProcSet`](st_core::ProcSet) winnerset. This
//! module is its `k = 1` (consensus) counterpart for the
//! `n ∈ {256, 1024}` scaling experiments: the lean leader oracle elects an
//! *index*, the appointed leader drives the one Paxos instance (whose
//! proposer core is already set-free), and every process adopts the first
//! decision it sees. The protocol-round shape is the same as the k-set
//! machine's — FD iteration, decision scan, lead-if-appointed — so the two
//! stacks exercise the fleet drives identically at every `n`.
//!
//! Safety is Paxos safety, unconditional. Termination needs leader
//! stabilization, which [`LeanOmega`] provides on schedules where some
//! process is set-timely — at `k = 1` set timeliness degenerates to
//! process timeliness of a single process, exactly footnote 2's Ω regime.

use st_core::Value;
use st_fd::{LeanOmega, LeanOmegaMachine};
use st_sim::{Automaton, BatchAccess, PhaseBatch, Sim, Status, StepAccess};

use crate::paxos::{CoreStep, Paxos, PaxosProposerCore};

/// A lean consensus object: one Paxos instance to be driven by a
/// [`LeanOmega`] leader. Clone into each machine via
/// [`machine`](Self::machine).
#[derive(Clone, Debug)]
pub struct LeanConsensus {
    instance: Paxos,
}

impl LeanConsensus {
    /// Allocates the Paxos instance in `sim`.
    pub fn alloc(sim: &mut Sim) -> Self {
        LeanConsensus {
            instance: Paxos::alloc(sim, "lean"),
        }
    }

    /// The underlying instance (instrumentation).
    pub fn instance(&self) -> &Paxos {
        &self.instance
    }

    /// One process's machine, composed with its own copy of the lean FD.
    pub fn machine(&self, fd: &LeanOmega, proposal: Value) -> LeanConsensusMachine {
        LeanConsensusMachine {
            fd: fd.machine(),
            fd_iterations_seen: 0,
            proposer: PaxosProposerCore::new(self.instance.clone()),
            instance: self.instance.clone(),
            proposal,
            phase: LeanConsensusPhase::Fd,
        }
    }
}

/// Control state of [`LeanConsensusMachine`]: which part of the protocol
/// round the next scheduled step executes.
#[derive(Clone, Copy, Debug)]
enum LeanConsensusPhase {
    /// Stepping the embedded lean FD until it closes an iteration.
    Fd,
    /// Read the decision register (adopting is always cheapest).
    Scan,
    /// Leading the instance: stepping its Paxos proposer core.
    Lead,
}

/// The lean consensus protocol on the state-machine ABI. Construct via
/// [`LeanConsensus::machine`].
pub struct LeanConsensusMachine {
    fd: LeanOmegaMachine,
    /// FD iterations completed at the last phase hand-off.
    fd_iterations_seen: u64,
    proposer: PaxosProposerCore,
    instance: Paxos,
    proposal: Value,
    phase: LeanConsensusPhase,
}

impl LeanConsensusMachine {
    /// Ballot attempts made so far (metrics).
    pub fn attempts(&self) -> u64 {
        self.proposer.attempts()
    }

    /// The embedded FD's current leader index.
    pub fn leader(&self) -> usize {
        self.fd.leader()
    }
}

impl Automaton for LeanConsensusMachine {
    fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
        match self.phase {
            LeanConsensusPhase::Fd => {
                self.fd.step(mem);
                if self.fd.iterations() > self.fd_iterations_seen {
                    self.fd_iterations_seen = self.fd.iterations();
                    self.phase = LeanConsensusPhase::Scan;
                }
                Status::Running
            }
            LeanConsensusPhase::Scan => {
                if let Some(v) = mem.read(self.instance.decision) {
                    mem.decide(v);
                    return Status::Done;
                }
                self.phase = if self.fd.leader() == mem.pid().index() {
                    LeanConsensusPhase::Lead
                } else {
                    LeanConsensusPhase::Fd
                };
                Status::Running
            }
            LeanConsensusPhase::Lead => match self.proposer.step(mem, self.proposal) {
                CoreStep::Busy => Status::Running,
                CoreStep::Decided(v) => {
                    mem.decide(v);
                    Status::Done
                }
                CoreStep::Preempted => {
                    self.phase = LeanConsensusPhase::Fd;
                    Status::Running
                }
            },
        }
    }
}

impl PhaseBatch for LeanConsensusMachine {
    #[inline]
    fn phase_class(&self) -> u8 {
        // FD phases 0–3, the decision scan 4, proposer phases 5–10.
        match self.phase {
            LeanConsensusPhase::Fd => self.fd.phase_class(),
            LeanConsensusPhase::Scan => 4,
            LeanConsensusPhase::Lead => 5 + self.proposer.phase_class(),
        }
    }

    #[inline]
    fn read_run(&self) -> usize {
        match self.phase {
            // Every Fd-phase step is a step of the embedded FD machine;
            // the hand-off to the scan happens at an iteration boundary,
            // which the FD's own run never crosses.
            LeanConsensusPhase::Fd => self.fd.read_run(),
            LeanConsensusPhase::Scan => 1,
            LeanConsensusPhase::Lead => self.proposer.read_run(),
        }
    }

    fn step_reads(&mut self, mem: &mut BatchAccess<'_>) -> Status {
        match self.phase {
            LeanConsensusPhase::Fd => {
                self.fd.step_reads(mem);
                if self.fd.iterations() > self.fd_iterations_seen {
                    self.fd_iterations_seen = self.fd.iterations();
                    self.phase = LeanConsensusPhase::Scan;
                }
                Status::Running
            }
            LeanConsensusPhase::Scan => {
                if let Some(v) = mem.read(self.instance.decision) {
                    mem.decide(v);
                    return Status::Done;
                }
                self.phase = if self.fd.leader() == mem.pid().index() {
                    LeanConsensusPhase::Lead
                } else {
                    LeanConsensusPhase::Fd
                };
                Status::Running
            }
            LeanConsensusPhase::Lead => match self.proposer.step_reads(mem, self.proposal) {
                CoreStep::Busy => Status::Running,
                CoreStep::Decided(v) => {
                    mem.decide(v);
                    Status::Done
                }
                CoreStep::Preempted => {
                    self.phase = LeanConsensusPhase::Fd;
                    Status::Running
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{Schedule, Universe};
    use st_fd::TimeoutPolicy;
    use st_sim::RunConfig;

    fn build(n: usize) -> (Sim, LeanOmega, LeanConsensus) {
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let fd = LeanOmega::alloc(&mut sim, 1, TimeoutPolicy::Increment);
        let cons = LeanConsensus::alloc(&mut sim);
        (sim, fd, cons)
    }

    #[test]
    fn round_robin_reaches_consensus() {
        let n = 5;
        let (mut sim, fd, cons) = build(n);
        let mut fleet: Vec<LeanConsensusMachine> = (0..n)
            .map(|i| cons.machine(&fd, 100 + i as Value))
            .collect();
        let steps: Vec<usize> = (0..600_000).map(|s| s % n).collect();
        let schedule = Schedule::from_indices(steps);
        sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(600_000))
            .unwrap();
        let decided: std::collections::BTreeSet<Value> =
            sim.decisions().iter().flatten().map(|d| d.value).collect();
        assert_eq!(
            decided.len(),
            1,
            "consensus: exactly one value, {decided:?}"
        );
        let v = *decided.first().unwrap();
        assert!((100..100 + n as Value).contains(&v), "validity: {v}");
        assert!(
            sim.decisions().iter().all(|d| d.is_some()),
            "all must decide under round-robin"
        );
    }

    #[test]
    fn safety_under_skewed_schedules() {
        // A schedule heavily favoring one process, then another: whatever
        // decides, decides one proposed value.
        let n = 4;
        let (mut sim, fd, cons) = build(n);
        let mut fleet: Vec<LeanConsensusMachine> = (0..n)
            .map(|i| cons.machine(&fd, 100 + i as Value))
            .collect();
        let steps: Vec<usize> = (0..200_000)
            .map(|s| if s % 7 < 5 { s % 2 } else { 2 + (s % 2) })
            .collect();
        let schedule = Schedule::from_indices(steps);
        sim.run_automata_replay(&mut fleet, &schedule, RunConfig::steps(200_000))
            .unwrap();
        let decided: std::collections::BTreeSet<Value> =
            sim.decisions().iter().flatten().map(|d| d.value).collect();
        assert!(decided.len() <= 1, "agreement violated: {decided:?}");
        for v in &decided {
            assert!((100..100 + n as Value).contains(v), "validity: {v}");
        }
    }
}
