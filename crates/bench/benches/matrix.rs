//! E4/E5 bench — solvability-matrix cells: one conforming (solvable) cell
//! and one adaptive-adversary (unsolvable) cell per group, timed.

use criterion::{criterion_group, criterion_main, Criterion};
use st_agreement::{drive_adversarially, AgreementStack};
use st_core::{AgreementTask, ProcSet, ProcessId, Value};
use st_fd::TimeoutPolicy;
use st_sched::{SeededRandom, SetTimely};

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).collect()
}

fn solvable_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix/solvable_cell");
    group.sample_size(10);
    group.bench_function("(1,1,3)_in_S1_2", |b| {
        b.iter(|| {
            let task = AgreementTask::new(1, 1, 3).unwrap();
            let stack = AgreementStack::build(task, &inputs(3));
            let p = ProcSet::from_indices([0]);
            let q = ProcSet::from_indices([0, 1]);
            let mut src = SetTimely::new(p, q, 4, SeededRandom::new(task.universe(), 5));
            stack
                .run(&mut src, 4_000_000, ProcSet::EMPTY)
                .is_clean_termination()
        })
    });
    group.finish();
}

fn unsolvable_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix/unsolvable_cell");
    group.sample_size(10);
    group.bench_function("(1,1,3)_blocked_in_S2_3", |b| {
        b.iter(|| {
            let task = AgreementTask::new(1, 1, 3).unwrap();
            let stack =
                AgreementStack::build_full(task, &inputs(3), TimeoutPolicy::Increment, false);
            let adv = drive_adversarially(stack, 150_000, ProcSet::EMPTY, None);
            let _ = ProcessId::new(0);
            adv.run.outcome.decisions.iter().all(|d| d.is_none())
        })
    });
    group.finish();
}

criterion_group!(benches, solvable_cell, unsolvable_cell);
criterion_main!(benches);
