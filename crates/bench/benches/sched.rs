//! Generator bench — throughput of every schedule source and the analyzer
//! certification path used by the experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use st_core::{ProcSet, StepSource, SystemSpec, Universe};
use st_sched::{
    FictitiousCrash, Figure1, GeneralizedFigure1, RotatingStarvation, RoundRobin, SeededRandom,
    SetTimely,
};

const LEN: usize = 100_000;

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/generate_100k");
    group.throughput(Throughput::Elements(LEN as u64));
    let u = Universe::new(6).unwrap();

    group.bench_function("round_robin", |b| {
        b.iter(|| RoundRobin::new(u).take_schedule(LEN).len())
    });
    group.bench_function("seeded_random", |b| {
        b.iter(|| SeededRandom::new(u, 1).take_schedule(LEN).len())
    });
    group.bench_function("figure1", |b| {
        b.iter(|| {
            Figure1::new(
                st_core::ProcessId::new(0),
                st_core::ProcessId::new(1),
                st_core::ProcessId::new(2),
            )
            .take_schedule(LEN)
            .len()
        })
    });
    group.bench_function("generalized_figure1", |b| {
        b.iter(|| {
            GeneralizedFigure1::new(
                ProcSet::from_indices([0, 1, 2]),
                ProcSet::from_indices([3, 4]),
            )
            .take_schedule(LEN)
            .len()
        })
    });
    group.bench_function("set_timely_over_random", |b| {
        b.iter(|| {
            SetTimely::new(
                ProcSet::from_indices([0, 1]),
                ProcSet::from_indices([2, 3, 4]),
                4,
                SeededRandom::new(u, 2),
            )
            .take_schedule(LEN)
            .len()
        })
    });
    group.bench_function("rotating_starvation", |b| {
        b.iter(|| RotatingStarvation::new(u, 2).take_schedule(LEN).len())
    });
    group.bench_function("fictitious_crash", |b| {
        b.iter(|| {
            FictitiousCrash::new(SystemSpec::new(1, 2, 6).unwrap(), 4, 2)
                .take_schedule(LEN)
                .len()
        })
    });
    group.finish();
}

fn certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/certify");
    let u = Universe::new(6).unwrap();
    let mut gen = SetTimely::new(
        ProcSet::from_indices([0]),
        ProcSet::from_indices([1, 2, 3]),
        4,
        SeededRandom::new(u, 3),
    );
    let schedule = gen.take_schedule(LEN);
    for &(i, j) in &[(1usize, 3usize), (2, 4)] {
        group.bench_with_input(
            BenchmarkId::new("witness_scan", format!("i{i}j{j}")),
            &(i, j),
            |b, &(i, j)| {
                b.iter(|| st_core::timeliness::find_timely_pair(&schedule, u, i, j, 6).is_some())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, generators, certification);
criterion_main!(benches);
