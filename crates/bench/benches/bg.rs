//! E6 bench — BG simulation: reduction runs and safe-agreement throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_bgsim::{run_reduction, TrivialKDecide};
use st_core::{StepSource, Universe, Value};
use st_sched::RoundRobin;

fn reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("bg/reduction");
    group.sample_size(10);
    for &(k, n_sim) in &[(1usize, 4usize), (2, 5), (3, 6)] {
        let stalled = {
            let machines: Vec<TrivialKDecide> = (0..n_sim)
                .map(|u| TrivialKDecide::new(u, k, u as Value))
                .collect();
            let mut src = RoundRobin::new(Universe::new(k + 1).unwrap());
            let r = run_reduction(k + 1, machines, 64, &mut src, 4_000_000);
            r.stalled_simulated().len()
        };
        println!("bg reduction: k={k} n_sim={n_sim} stalled={stalled}");
        group.bench_with_input(
            BenchmarkId::new("simulate", format!("k{k}n{n_sim}")),
            &(k, n_sim),
            |b, &(k, n_sim)| {
                b.iter(|| {
                    let machines: Vec<TrivialKDecide> = (0..n_sim)
                        .map(|u| TrivialKDecide::new(u, k, u as Value))
                        .collect();
                    let mut src = RoundRobin::new(Universe::new(k + 1).unwrap());
                    run_reduction(k + 1, machines, 64, &mut src, 4_000_000).host_steps
                })
            },
        );
    }
    group.finish();
}

fn host_schedule_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("bg/host_throughput");
    group.bench_function("round_robin_take_100k", |b| {
        b.iter(|| {
            let mut src = RoundRobin::new(Universe::new(3).unwrap());
            src.take_schedule(100_000).len()
        })
    });
    group.finish();
}

criterion_group!(benches, reduction, host_schedule_throughput);
criterion_main!(benches);
