//! Substrate bench — simulator step dispatch, register objects, Paxos
//! ballots, safe agreement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
use st_registers::{AdoptCommit, Collect, Snapshot};
use st_sim::{RunConfig, Sim, StopWhen};

fn sim_step_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/sim_steps");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("pause_loop_100k", |b| {
        b.iter(|| {
            let u = Universe::new(4).unwrap();
            let mut sim = Sim::new(u);
            for p in u.processes() {
                sim.spawn(p, move |ctx| async move {
                    loop {
                        ctx.pause().await;
                    }
                })
                .unwrap();
            }
            let mut src = st_sched::RoundRobin::new(u);
            sim.run(&mut src, RunConfig::steps(100_000)).unwrap();
            sim.steps_executed()
        })
    });
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("register_rw_100k", |b| {
        b.iter(|| {
            let u = Universe::new(2).unwrap();
            let mut sim = Sim::new(u);
            let reg = sim.alloc("x", 0u64);
            for p in u.processes() {
                sim.spawn(p, move |ctx| async move {
                    loop {
                        let v = ctx.read(reg).await;
                        ctx.write(reg, v + 1).await;
                    }
                })
                .unwrap();
            }
            let mut src = st_sched::RoundRobin::new(u);
            sim.run(&mut src, RunConfig::steps(100_000)).unwrap();
            sim.peek(reg)
        })
    });
    group.finish();
}

fn shared_objects(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/objects");
    group.bench_function("collect_n4", |b| {
        b.iter(|| {
            let u = Universe::new(4).unwrap();
            let mut sim = Sim::new(u);
            let obj: Collect<u64> = Collect::alloc(&mut sim, "c");
            for p in u.processes() {
                let obj = obj.clone();
                sim.spawn(p, move |ctx| async move {
                    obj.store(&ctx, 1).await;
                    let _ = obj.collect(&ctx).await;
                    ctx.decide(1);
                })
                .unwrap();
            }
            let mut src = st_sched::RoundRobin::new(u);
            sim.run(
                &mut src,
                RunConfig::steps(1000).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
            )
            .unwrap();
            sim.steps_executed()
        })
    });
    group.bench_function("snapshot_scan_n4", |b| {
        b.iter(|| {
            let u = Universe::new(4).unwrap();
            let mut sim = Sim::new(u);
            let obj: Snapshot<u64> = Snapshot::alloc(&mut sim, "s");
            for p in u.processes() {
                let obj = obj.clone();
                sim.spawn(p, move |ctx| async move {
                    obj.update(&ctx, 2).await;
                    let _ = obj.scan(&ctx).await;
                    ctx.decide(1);
                })
                .unwrap();
            }
            let mut src = st_sched::RoundRobin::new(u);
            sim.run(
                &mut src,
                RunConfig::steps(5000).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
            )
            .unwrap();
            sim.steps_executed()
        })
    });
    group.bench_function("adopt_commit_n4", |b| {
        b.iter(|| {
            let u = Universe::new(4).unwrap();
            let mut sim = Sim::new(u);
            let obj: AdoptCommit<u64> = AdoptCommit::alloc(&mut sim, "ac");
            for p in u.processes() {
                let obj = obj.clone();
                sim.spawn(p, move |ctx| async move {
                    let out = obj.propose(&ctx, 5).await;
                    ctx.decide(*out.value());
                })
                .unwrap();
            }
            let mut src = st_sched::RoundRobin::new(u);
            sim.run(
                &mut src,
                RunConfig::steps(1000).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
            )
            .unwrap();
            sim.steps_executed()
        })
    });
    group.bench_function("paxos_solo_ballot", |b| {
        b.iter(|| {
            let u = Universe::new(3).unwrap();
            let mut sim = Sim::new(u);
            let px = st_agreement::Paxos::alloc(&mut sim, "px");
            {
                let px = px.clone();
                sim.spawn(ProcessId::new(0), move |ctx| async move {
                    let mut st = st_agreement::ProposerState::default();
                    if let st_agreement::AttemptOutcome::Decided(v) =
                        px.attempt(&ctx, &mut st, 9).await
                    {
                        ctx.decide(v);
                    }
                })
                .unwrap();
            }
            let mut src = ScheduleCursor::new(Schedule::from_indices(vec![0; 30]));
            sim.run(&mut src, RunConfig::steps(30)).unwrap();
            sim.steps_executed()
        })
    });
    group.finish();
}

criterion_group!(benches, sim_step_dispatch, shared_objects);
criterion_main!(benches);
