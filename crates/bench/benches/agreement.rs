//! E3 bench — the full (t,k,n)-agreement stack to decision on conforming
//! schedules, plus the trivial-regime baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_agreement::AgreementStack;
use st_core::{AgreementTask, ProcSet, ProcessId, Value};
use st_sched::{SeededRandom, SetTimely};

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).collect()
}

fn run_stack(n: usize, k: usize, t: usize, seed: u64, budget: u64) -> Option<u64> {
    let task = AgreementTask::new(t, k, n).unwrap();
    let stack = AgreementStack::build(task, &inputs(n));
    let psize = k.min(t).max(1);
    let p: ProcSet = (0..psize).map(ProcessId::new).collect();
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let mut src = SetTimely::new(p, q, 2 * (t + 1), SeededRandom::new(task.universe(), seed));
    let run = stack.run(&mut src, budget, ProcSet::EMPTY);
    run.report.all_decided_step(run.outcome.correct)
}

fn agreement_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("agreement/to_decision");
    group.sample_size(10);
    for &(n, k, t) in &[(3usize, 1usize, 1usize), (4, 2, 2), (5, 2, 3), (4, 3, 2)] {
        let steps = run_stack(n, k, t, 3, 8_000_000);
        println!("agreement e2e: ({t},{k},{n}) decided@{steps:?}");
        group.bench_with_input(
            BenchmarkId::new("decide", format!("t{t}k{k}n{n}")),
            &(n, k, t),
            |b, &(n, k, t)| b.iter(|| run_stack(n, k, t, 3, 8_000_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, agreement_grid);
criterion_main!(benches);
