//! Timeliness sweep bench — the zero-allocation engine
//! ([`TimelinessAnalyzer`]) against the kept naive reference
//! ([`st_core::timeliness::naive`]) on full `Π^i_n × Π^j_n` matrix sweeps,
//! plus the `BENCH_timeliness.json` baseline emitter that starts the
//! repository's recorded perf trajectory.
//!
//! Workloads follow the acceptance shape of the engine: `n = 12`,
//! `L = 100_000`-step schedules, both a near-synchronous (round-robin) and
//! a seeded-random schedule — the two ends of the dedup spectrum (the
//! round-robin decomposition collapses to a couple of distinct run
//! histograms; the random one exercises the sorted early-exit path).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use st_core::timeliness::{naive, sweep_matrix, TimelinessAnalyzer};
use st_core::{Schedule, StepSource, Universe};
use st_sched::{RoundRobin, SeededRandom};

const N: usize = 12;
const LEN: usize = 100_000;
const CAP: usize = 2 * N;
const I: usize = 2;
const J: usize = 2;

fn universe() -> Universe {
    Universe::new(N).unwrap()
}

fn round_robin_schedule() -> Schedule {
    RoundRobin::new(universe()).take_schedule(LEN)
}

fn seeded_random_schedule() -> Schedule {
    SeededRandom::new(universe(), 0xBEEF).take_schedule(LEN)
}

fn matrix_sweeps(c: &mut Criterion) {
    let rr = round_robin_schedule();
    let rnd = seeded_random_schedule();
    let mut group = c.benchmark_group("timeliness/all_timely_pairs");
    group.sample_size(10);
    group.bench_function("naive_rr_i2_j2", |b| {
        b.iter(|| naive::all_timely_pairs(&rr, universe(), I, J, CAP).len())
    });
    group.bench_function("engine_rr_i2_j2", |b| {
        let mut az = TimelinessAnalyzer::new(universe());
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            az.all_timely_pairs_into(&rr, I, J, CAP, &mut out);
            out.len()
        })
    });
    group.bench_function("naive_rnd_i2_j2", |b| {
        b.iter(|| naive::all_timely_pairs(&rnd, universe(), I, J, CAP).len())
    });
    group.bench_function("engine_rnd_i2_j2", |b| {
        let mut az = TimelinessAnalyzer::new(universe());
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            az.all_timely_pairs_into(&rnd, I, J, CAP, &mut out);
            out.len()
        })
    });
    group.finish();

    // The full n×n matrix in one call (shared decompositions + threads);
    // no naive partner — the naive full matrix is out of time budget by
    // orders of magnitude, which is the point of the engine.
    let mut group = c.benchmark_group("timeliness/sweep_matrix");
    group.sample_size(10);
    group.bench_function("engine_full_n12_rnd", |b| {
        b.iter(|| {
            sweep_matrix(&rnd, universe(), CAP, usize::MAX)
                .cells()
                .iter()
                .map(|c| c.timely_pairs)
                .sum::<u64>()
        })
    });
    group.finish();
}

/// Times one closure, best of `reps`.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Emits `BENCH_timeliness.json` at the workspace root: the recorded
/// baseline of the sweep-engine speedup and simulator step throughput this
/// PR introduces. Future perf PRs extend the measurements and compare.
fn emit_baseline(_c: &mut Criterion) {
    // The emitter is a multi-minute fixed workload with a file side effect;
    // honor the harness filter so targeted runs don't pay for it (and don't
    // silently rewrite the committed baseline).
    if let Some(filter) = criterion::cli_filter() {
        if !"baseline".contains(filter.as_str()) {
            println!("baseline emitter skipped (filter {filter:?})");
            return;
        }
    }
    let rr = round_robin_schedule();
    let rnd = seeded_random_schedule();

    let naive_rr = time_best(2, || {
        naive::all_timely_pairs(&rr, universe(), I, J, CAP).len()
    });
    let naive_rnd = time_best(2, || {
        naive::all_timely_pairs(&rnd, universe(), I, J, CAP).len()
    });
    let mut az = TimelinessAnalyzer::new(universe());
    let mut out = Vec::new();
    let engine_rr = time_best(5, || {
        out.clear();
        az.all_timely_pairs_into(&rr, I, J, CAP, &mut out);
        out.len()
    });
    let engine_rnd = time_best(5, || {
        out.clear();
        az.all_timely_pairs_into(&rnd, I, J, CAP, &mut out);
        out.len()
    });
    let matrix_full = time_best(3, || {
        sweep_matrix(&rnd, universe(), CAP, usize::MAX)
            .cells()
            .iter()
            .map(|c| c.timely_pairs)
            .sum::<u64>()
    });

    // Simulator step throughput: the u64 word path (every register of the
    // paper's protocols) against the boxed representation it replaced,
    // via a non-u64 newtype that still goes through Box<dyn Any>.
    let word = time_best(3, run_register_loop::<u64>);
    let boxed = time_best(3, run_register_loop::<BoxedWord>);

    let json = format!(
        "{{\n  \"schema\": \"st-bench/timeliness-v1\",\n  \
         \"workload\": {{\"n\": {N}, \"schedule_len\": {LEN}, \"bound_cap\": {CAP}, \"i\": {I}, \"j\": {J}}},\n  \
         \"all_timely_pairs_ms\": {{\n    \
           \"round_robin\": {{\"naive\": {naive_rr:.2}, \"engine\": {engine_rr:.2}, \"speedup\": {:.1}}},\n    \
           \"seeded_random\": {{\"naive\": {naive_rnd:.2}, \"engine\": {engine_rnd:.2}, \"speedup\": {:.1}}}\n  }},\n  \
         \"sweep_matrix_full_ms\": {{\"engine\": {matrix_full:.2}}},\n  \
         \"sim_register_rw_100k_ms\": {{\"boxed\": {boxed:.2}, \"word\": {word:.2}, \"speedup\": {:.2}}}\n}}\n",
        naive_rr / engine_rr,
        naive_rnd / engine_rnd,
        boxed / word,
    );
    let path = criterion::workspace_root().join("BENCH_timeliness.json");
    std::fs::write(&path, &json).expect("write BENCH_timeliness.json");
    println!("baseline written to {}:\n{json}", path.display());
}

/// `u64` wrapped so the arena stores it boxed: the pre-fast-path layout.
#[derive(Clone, Debug)]
struct BoxedWord(u64);

trait Counter: Clone + std::fmt::Debug + 'static {
    fn zero() -> Self;
    fn bump(self) -> Self;
}

impl Counter for u64 {
    fn zero() -> Self {
        0
    }
    fn bump(self) -> Self {
        self + 1
    }
}

impl Counter for BoxedWord {
    fn zero() -> Self {
        BoxedWord(0)
    }
    fn bump(self) -> Self {
        BoxedWord(self.0 + 1)
    }
}

fn run_register_loop<T: Counter>() -> u64 {
    use st_sim::{RunConfig, Sim};
    let u = Universe::new(2).unwrap();
    let mut sim = Sim::new(u);
    let reg = sim.alloc("x", T::zero());
    for p in u.processes() {
        sim.spawn(p, move |ctx| async move {
            loop {
                let v = ctx.read(reg).await;
                ctx.write(reg, v.bump()).await;
            }
        })
        .unwrap();
    }
    let mut src = RoundRobin::new(u);
    sim.run(&mut src, RunConfig::steps(100_000));
    sim.steps_executed()
}

criterion_group!(benches, matrix_sweeps, emit_baseline);
criterion_main!(benches);
