//! Timeliness sweep bench — the zero-allocation engine
//! ([`TimelinessAnalyzer`]) against the kept naive reference
//! ([`st_core::timeliness::naive`]) on full `Π^i_n × Π^j_n` matrix sweeps,
//! the work-stealing matrix sweep against the kept static split, the
//! simulator's two automaton ABIs on the Figure 2 k-anti-Ω workload, the
//! scenario-campaign engine's throughput on an E3-shaped grid (1 vs 4
//! workers) and its resume overhead (skip-all drive + outcome-store round
//! trip), plus the `BENCH_timeliness.json` baseline emitter that records
//! the repository's perf trajectory.
//!
//! Sweep workloads follow the acceptance shape of the engine: `n = 12`,
//! `L = 100_000`-step schedules, both a near-synchronous (round-robin) and
//! a seeded-random schedule — the two ends of the dedup spectrum (the
//! round-robin decomposition collapses to a couple of distinct run
//! histograms; the random one exercises the sorted early-exit path). The
//! simulator workload is the E2 convergence shape: `n = 8` k-anti-Ω with
//! `k = 2`, `t = 3` on a conforming `SetTimely` schedule.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use st_core::timeliness::{naive, sweep_matrix, sweep_matrix_static_split, TimelinessAnalyzer};
use st_core::{ProcSet, ProcessId, Schedule, StepSource, Universe};
use st_fd::{KAntiOmega, KAntiOmegaConfig};
use st_sched::{RoundRobin, SeededRandom, SetTimely};

const N: usize = 12;
const LEN: usize = 100_000;
const CAP: usize = 2 * N;
const I: usize = 2;
const J: usize = 2;

fn universe() -> Universe {
    Universe::new(N).unwrap()
}

fn round_robin_schedule() -> Schedule {
    RoundRobin::new(universe()).take_schedule(LEN)
}

fn seeded_random_schedule() -> Schedule {
    SeededRandom::new(universe(), 0xBEEF).take_schedule(LEN)
}

fn matrix_sweeps(c: &mut Criterion) {
    let rr = round_robin_schedule();
    let rnd = seeded_random_schedule();
    let mut group = c.benchmark_group("timeliness/all_timely_pairs");
    group.sample_size(10);
    group.bench_function("naive_rr_i2_j2", |b| {
        b.iter(|| naive::all_timely_pairs(&rr, universe(), I, J, CAP).len())
    });
    group.bench_function("engine_rr_i2_j2", |b| {
        let mut az = TimelinessAnalyzer::new(universe());
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            az.all_timely_pairs_into(&rr, I, J, CAP, &mut out);
            out.len()
        })
    });
    group.bench_function("naive_rnd_i2_j2", |b| {
        b.iter(|| naive::all_timely_pairs(&rnd, universe(), I, J, CAP).len())
    });
    group.bench_function("engine_rnd_i2_j2", |b| {
        let mut az = TimelinessAnalyzer::new(universe());
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            az.all_timely_pairs_into(&rnd, I, J, CAP, &mut out);
            out.len()
        })
    });
    group.finish();

    // The full n×n matrix in one call (shared decompositions + threads);
    // no naive partner — the naive full matrix is out of time budget by
    // orders of magnitude, which is the point of the engine. Work-stealing
    // chunking (the default) against the kept static rank split.
    let mut group = c.benchmark_group("timeliness/sweep_matrix");
    group.sample_size(10);
    group.bench_function("engine_full_n12_rnd", |b| {
        b.iter(|| {
            sweep_matrix(&rnd, universe(), CAP, usize::MAX)
                .cells()
                .iter()
                .map(|c| c.timely_pairs)
                .sum::<u64>()
        })
    });
    group.bench_function("static_split_full_n12_rnd", |b| {
        b.iter(|| {
            sweep_matrix_static_split(&rnd, universe(), CAP, usize::MAX)
                .cells()
                .iter()
                .map(|c| c.timely_pairs)
                .sum::<u64>()
        })
    });
    group.finish();
}

// The n = 8 convergence workload of the step-throughput acceptance
// criterion: every process runs the Figure 2 detector with k = 2, t = 3 on
// a conforming SetTimely schedule.
const SIM_N: usize = 8;
const SIM_K: usize = 2;
const SIM_T: usize = 3;

/// The conforming E2 schedule for the workload, materialized once: driving
/// the run from a pre-generated schedule (a cursor over an array) keeps the
/// measurement on the executor + automaton cost, not on the SetTimely
/// generator, which costs more per step than either ABI.
fn kanti_schedule(steps: u64) -> Schedule {
    let u = Universe::new(SIM_N).unwrap();
    let p: ProcSet = (0..SIM_K).map(ProcessId::new).collect();
    let q: ProcSet = (0..=SIM_T).map(ProcessId::new).collect();
    SetTimely::new(p, q, 2 * (SIM_T + 1), SeededRandom::new(u, 7)).take_schedule(steps as usize)
}

/// Runs the kanti workload over `schedule` on the chosen ABI; returns the
/// executed step count (consumed by `black_box`). The machine side runs as
/// a typed fleet over the replay drive — the state-machine ABI's fastest
/// mode; the async side is driven by the equivalent schedule cursor (the
/// only drive a boxed future admits).
fn run_kanti_workload(schedule: &Schedule, machine: bool) -> u64 {
    use st_core::ScheduleCursor;
    use st_sim::{RunConfig, Sim};
    let u = Universe::new(SIM_N).unwrap();
    let mut sim = Sim::new(u);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(SIM_K, SIM_T));
    if machine {
        let mut fleet: Vec<_> = u.processes().map(|_| fd.machine()).collect();
        sim.run_automata_replay(
            &mut fleet,
            schedule,
            RunConfig::steps(schedule.len() as u64),
        )
        .unwrap();
    } else {
        for p in u.processes() {
            let fd = fd.clone();
            sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
        }
        let mut src = ScheduleCursor::new(schedule.clone());
        sim.run(&mut src, RunConfig::steps(schedule.len() as u64))
            .unwrap();
    }
    sim.steps_executed()
}

/// Async poll path vs explicit state machine on identical workloads — the
/// step-throughput lever this bench exists to track.
fn sim_step_throughput(c: &mut Criterion) {
    let schedule = kanti_schedule(200_000);
    let mut group = c.benchmark_group("sim/step_throughput");
    group.sample_size(10);
    group.bench_function("kanti_async_200k_n8", |b| {
        b.iter(|| run_kanti_workload(&schedule, false))
    });
    group.bench_function("kanti_machine_200k_n8", |b| {
        b.iter(|| run_kanti_workload(&schedule, true))
    });
    group.finish();
}

// The E3 workload of the agreement step-throughput acceptance criterion:
// the full FD + k-parallel-Paxos stack on a conforming SetTimely schedule,
// run until every process decides — the E3 construction at the E2 universe
// size (n = 8, where the FD's counter matrix makes the stepping cost real;
// the small E3 grid rows decide in a few hundred steps and measure only
// setup).
const AG_N: usize = 8;
const AG_K: usize = 3;
const AG_T: usize = 4;

/// The conforming E3 schedule for the agreement workload, materialized once
/// (as for the kanti workload: measure the executor + automata, not the
/// generator).
fn agreement_schedule(steps: usize) -> Schedule {
    let u = Universe::new(AG_N).unwrap();
    let p: ProcSet = (0..AG_K.min(AG_T)).map(ProcessId::new).collect();
    let q: ProcSet = (0..=AG_T).map(ProcessId::new).collect();
    SetTimely::new(p, q, 2 * (AG_T + 1), SeededRandom::new(u, 3)).take_schedule(steps)
}

/// How the agreement workload is executed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AgreementMode {
    /// Async stack in future slots, cursor drive to all-decided.
    Async,
    /// `KSetAgreementMachine` stack in automaton slots, cursor drive to
    /// all-decided — the mode E3/E4 run in.
    MachineSlot,
    /// Typed fleet on the plain replay drive (no stop condition: the
    /// schedule is pre-truncated at the decision step).
    FleetReplay,
    /// Typed fleet on the sharded batched replay drive.
    FleetReplaySharded,
    /// Typed fleet on the struct-of-arrays phase-batched replay drive.
    FleetReplaySoa,
}

/// Runs the (t,k,n) = (4,3,8) stack over `schedule` in the chosen mode;
/// returns executed steps and the wall-clock of the **drive only** (stack
/// construction and the cursor's schedule clone excluded — at ~8k steps to
/// decision they would otherwise dominate the per-step figure).
fn run_agreement_workload(schedule: &Schedule, mode: AgreementMode) -> (u64, f64) {
    use st_agreement::{KSetAgreement, StackAbi};
    use st_core::{AgreementTask, ScheduleCursor};
    use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy};
    use st_sim::{RunConfig, Sim, StopWhen};

    let task = AgreementTask::new(AG_T, AG_K, AG_N).unwrap();
    let inputs: Vec<u64> = (0..AG_N as u64).collect();
    match mode {
        AgreementMode::Async | AgreementMode::MachineSlot => {
            let abi = if mode == AgreementMode::Async {
                StackAbi::Async
            } else {
                StackAbi::Machine
            };
            let mut stack = st_agreement::AgreementStack::build_abi(
                task,
                &inputs,
                TimeoutPolicy::Increment,
                false,
                abi,
            );
            let mut src = ScheduleCursor::new(schedule.clone());
            let full = ProcSet::full(task.universe());
            let start = Instant::now();
            stack
                .sim_mut()
                .run(
                    &mut src,
                    RunConfig::steps(schedule.len() as u64).stop_when(StopWhen::AllDecided(full)),
                )
                .unwrap();
            (stack.sim().steps_executed(), start.elapsed().as_secs_f64())
        }
        AgreementMode::FleetReplay
        | AgreementMode::FleetReplaySharded
        | AgreementMode::FleetReplaySoa => {
            let u = task.universe();
            let mut sim = Sim::new(u);
            let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(AG_K, AG_T));
            let kset = KSetAgreement::alloc(&mut sim, AG_K);
            let mut fleet: Vec<_> = u
                .processes()
                .map(|p| kset.machine(&fd, inputs[p.index()]))
                .collect();
            let cfg = RunConfig::steps(schedule.len() as u64);
            let start = Instant::now();
            match mode {
                AgreementMode::FleetReplay => {
                    sim.run_automata_replay(&mut fleet, schedule, cfg).unwrap();
                }
                AgreementMode::FleetReplaySharded => {
                    sim.run_automata_replay_sharded(&mut fleet, schedule, 2, 4096, cfg)
                        .unwrap();
                }
                _ => {
                    sim.run_automata_replay_soa(&mut fleet, schedule, 64, cfg)
                        .unwrap();
                }
            }
            (sim.steps_executed(), start.elapsed().as_secs_f64())
        }
    }
}

/// Best-of-`reps` drive time (ms) of the agreement workload.
fn agreement_time_best(reps: usize, schedule: &Schedule, mode: AgreementMode) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, secs) = std::hint::black_box(run_agreement_workload(schedule, mode));
        best = best.min(secs * 1e3);
    }
    best
}

/// Async stack vs the machine-ABI agreement stack on the E3 workload — the
/// ROADMAP's "port the agreement stack's hot protocols" lever, tracked as
/// `agreement_step_throughput` in the committed baseline.
fn agreement_step_throughput(c: &mut Criterion) {
    let schedule = agreement_schedule(200_000);
    let mut group = c.benchmark_group("agreement/step_throughput");
    group.sample_size(10);
    group.bench_function("e3_async_t4k3n8", |b| {
        b.iter(|| run_agreement_workload(&schedule, AgreementMode::Async))
    });
    group.bench_function("e3_machine_t4k3n8", |b| {
        b.iter(|| run_agreement_workload(&schedule, AgreementMode::MachineSlot))
    });
    group.finish();
}

// The large-n lean stack (`LeanOmega` + `LeanConsensus`, O(n) per-process
// state) on the three fleet replay drives: the n-scaling curve of the
// committed baseline. The schedule is the E9 shape — a bursty rotation with
// a dwell of one full lean FD iteration (n² + n + 2 steps), so each turn
// completes a whole heartbeat scan — which makes every slice of the SoA
// drive a pure read run and shows the batched span-read path at its
// design point. A fixed step budget keeps the n = 1024 cell affordable
// (a full rotation there is ~10⁹ steps); all drives execute the identical
// schedule prefix, so the per-step ratios stay apples-to-apples.
const LEAN_SIZES: [usize; 4] = [12, 64, 256, 1024];
const LEAN_STEPS: usize = 4_000_000;

fn lean_burst(n: usize) -> u64 {
    (n * n + n + 2) as u64
}

fn lean_bursty_schedule(n: usize, steps: usize) -> Schedule {
    let u = Universe::new(n).unwrap();
    st_sched::BurstyRotation::new(u, lean_burst(n)).take_schedule(steps)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LeanDrive {
    Plain,
    Sharded,
    Soa,
}

/// Drive-only wall clock (seconds) of a `LeanConsensus` fleet (t = n/16,
/// proposals 100 + pid) replaying `schedule` — construction excluded, as
/// for the agreement workload. Sharded runs shard_size = 32 / slice 4096;
/// SoA runs slice 1024 (within one FD scan's read run for n ≥ 64).
fn run_lean_fleet(n: usize, schedule: &Schedule, drive: LeanDrive) -> f64 {
    use st_fd::{LeanOmega, TimeoutPolicy};
    use st_sim::{RunConfig, Sim};

    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let fd = LeanOmega::alloc(&mut sim, (n / 16).max(1), TimeoutPolicy::Increment);
    let cons = st_agreement::LeanConsensus::alloc(&mut sim);
    let mut fleet: Vec<_> = u
        .processes()
        .map(|p| cons.machine(&fd, 100 + p.index() as u64))
        .collect();
    let cfg = RunConfig::steps(schedule.len() as u64);
    let start = Instant::now();
    match drive {
        LeanDrive::Plain => sim.run_automata_replay(&mut fleet, schedule, cfg),
        LeanDrive::Sharded => sim.run_automata_replay_sharded(&mut fleet, schedule, 32, 4096, cfg),
        LeanDrive::Soa => sim.run_automata_replay_soa(&mut fleet, schedule, 1024, cfg),
    }
    .unwrap();
    start.elapsed().as_secs_f64()
}

/// Best-of-`reps` ns/step of the lean fleet drive.
fn lean_ns_per_step(reps: usize, n: usize, schedule: &Schedule, drive: LeanDrive) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(std::hint::black_box(run_lean_fleet(n, schedule, drive)));
    }
    best * 1e9 / schedule.len() as f64
}

// The *paper's* stack beyond the wall: `KAntiOmega<W>` (Figure 2, full
// `Π^1_n` counter matrix) feeding `KSetAgreementMachine<W>` fleets on
// `WideProcSet` universes — the first throughput numbers for the verbatim
// paper protocols at n > PROCSET_CAPACITY. Same bursty shape as the lean
// curve with the wide detector's own iteration dwell (n² + n + 1 steps:
// `steps_per_iteration(0)` at k = 1), plain vs SoA, fixed step budget.
const WIDE_SIZES: [usize; 3] = [64, 128, 256];
const WIDE_STEPS: usize = 2_000_000;

fn wide_iteration(n: usize) -> u64 {
    (n * n + n + 1) as u64
}

fn wide_bursty_schedule(n: usize, steps: usize) -> Schedule {
    let u = Universe::new(n).unwrap();
    st_sched::BurstyRotation::new(u, wide_iteration(n)).take_schedule(steps)
}

/// Drive-only wall clock (seconds) of the paper stack at width `W`:
/// k = 1 anti-Ω (t = n/16) under a k-set agreement fleet (proposals
/// 100 + pid). SoA runs slice 1024, as for the lean fleet.
fn run_wide_fleet_width<const W: usize>(n: usize, schedule: &Schedule, soa: bool) -> f64 {
    use st_sim::{RunConfig, Sim};

    let u = Universe::new(n).unwrap();
    let mut sim = Sim::new(u);
    let fd = KAntiOmega::<W>::alloc_wide(&mut sim, KAntiOmegaConfig::new(1, (n / 16).max(1)));
    let kset = st_agreement::KSetAgreement::alloc(&mut sim, 1);
    let mut fleet: Vec<_> = u
        .processes()
        .map(|p| kset.machine(&fd, 100 + p.index() as u64))
        .collect();
    let cfg = RunConfig::steps(schedule.len() as u64);
    let start = Instant::now();
    if soa {
        sim.run_automata_replay_soa(&mut fleet, schedule, 1024, cfg)
    } else {
        sim.run_automata_replay(&mut fleet, schedule, cfg)
    }
    .unwrap();
    start.elapsed().as_secs_f64()
}

fn run_wide_fleet(n: usize, schedule: &Schedule, soa: bool) -> f64 {
    match st_core::words_for(n) {
        1 => run_wide_fleet_width::<1>(n, schedule, soa),
        2 => run_wide_fleet_width::<2>(n, schedule, soa),
        3..=4 => run_wide_fleet_width::<4>(n, schedule, soa),
        w => unreachable!("no bench size needs {w} words"),
    }
}

/// Best-of-`reps` ns/step of the wide paper-stack fleet drive.
fn wide_ns_per_step(reps: usize, n: usize, schedule: &Schedule, soa: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(std::hint::black_box(run_wide_fleet(n, schedule, soa)));
    }
    best * 1e9 / schedule.len() as f64
}

/// The three fleet replay drives on the lean stack at n = 64 — the live
/// (criterion) counterpart of the baseline's n-scaling curve, kept at one
/// size and a smoke-size step count so the CI `sim` filter exercises the
/// SoA fast path end to end.
fn lean_fleet_throughput(c: &mut Criterion) {
    const SMOKE_N: usize = 64;
    const SMOKE_STEPS: usize = 1_000_000;
    let schedule = lean_bursty_schedule(SMOKE_N, SMOKE_STEPS);
    let mut group = c.benchmark_group("sim/lean_fleet_replay");
    group.sample_size(10);
    group.bench_function("plain_bursty_n64", |b| {
        b.iter(|| run_lean_fleet(SMOKE_N, &schedule, LeanDrive::Plain))
    });
    group.bench_function("sharded_bursty_n64", |b| {
        b.iter(|| run_lean_fleet(SMOKE_N, &schedule, LeanDrive::Sharded))
    });
    group.bench_function("soa_bursty_n64", |b| {
        b.iter(|| run_lean_fleet(SMOKE_N, &schedule, LeanDrive::Soa))
    });
    group.finish();
}

// The campaign-throughput reference grid: E3-shaped — the full agreement
// stack on conforming SetTimely schedules over a (n, k, t) task grid × 16
// seeds (64 scenarios). Each scenario runs to all-decided; the campaign
// engine's scenarios/sec at 1 vs 4 workers is the scaling lever this bench
// tracks. (On a single-hardware-thread host the two coincide; the recorded
// `hardware_threads` field says which regime produced the number.)
const CAMPAIGN_SEEDS: u64 = 16;
const CAMPAIGN_GRID: [(usize, usize, usize); 4] = [(3, 1, 1), (4, 2, 2), (5, 2, 3), (8, 3, 4)];

fn campaign_reference_grid() -> st_campaign::Campaign {
    use st_campaign::{Campaign, Scenario, Workload};
    use st_fd::TimeoutPolicy;
    use st_sched::GeneratorSpec;

    let mut campaign = Campaign::new();
    for &(n, k, t) in &CAMPAIGN_GRID {
        let universe = Universe::new(n).unwrap();
        let p: ProcSet = (0..k.min(t)).map(ProcessId::new).collect();
        let q: ProcSet = (0..=t).map(ProcessId::new).collect();
        let workload = Workload::Agreement {
            t,
            k,
            inputs: (0..n as u64).map(|v| 1000 + 7 * v).collect(),
            policy: TimeoutPolicy::Increment,
            certify: None,
        };
        for seed in 0..CAMPAIGN_SEEDS {
            campaign.push(Scenario::new(
                format!("t{t}k{k}n{n}/seed{seed}"),
                universe,
                GeneratorSpec::set_timely(p, q, 2 * (t + 1), GeneratorSpec::seeded_random(0)),
                workload.clone(),
                400_000,
                seed,
            ));
        }
    }
    campaign
}

/// Scenario-campaign engine throughput: the same 64-scenario E3-shaped grid
/// executed sequentially and on a 4-worker stealing pool.
fn campaign_throughput(c: &mut Criterion) {
    let campaign = campaign_reference_grid();
    let mut group = c.benchmark_group("campaign/throughput");
    group.sample_size(10);
    group.bench_function("e3_grid_64_w1", |b| {
        b.iter(|| campaign.run_parallel(1).len())
    });
    group.bench_function("e3_grid_64_w4", |b| {
        b.iter(|| campaign.run_parallel(4).len())
    });
    group.finish();
}

// The fuzz-throughput workload: the scenario catalog's shape (n = 5,
// Π = ({0,1}, {0,1,2}), bound 6) fuzzed from two clean conforming seeds —
// exactly `stlab fuzz` at a small fixed budget — against a static
// conforming grid of the same size and step budget. The delta between the
// two scenarios/sec figures is the price of coverage guidance (feature
// extraction, corpus bookkeeping, batch derivation); the shrink figure
// tracks the delta-debugger's oracle-run rate on the starved fixture.
const FUZZ_N: usize = 5;
const FUZZ_BUDGET: usize = 24;
const FUZZ_STEP_BUDGET: u64 = 4_000;

fn fuzz_agreement_workload() -> st_campaign::Workload {
    use st_fd::TimeoutPolicy;
    st_campaign::Workload::Agreement {
        t: 2,
        k: 2,
        inputs: (0..FUZZ_N as u64).map(|v| 1000 + 7 * v).collect(),
        policy: TimeoutPolicy::Increment,
        certify: None,
    }
}

fn fuzz_conforming_spec() -> st_sched::GeneratorSpec {
    use st_sched::GeneratorSpec;
    let p: ProcSet = (0..2).map(ProcessId::new).collect();
    let q: ProcSet = (0..3).map(ProcessId::new).collect();
    GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0))
}

fn fuzz_session_config() -> st_campaign::FuzzConfig {
    use st_campaign::{FuzzConfig, FuzzInput, Workload};
    use st_fd::TimeoutPolicy;
    let fd = Workload::FdConvergence {
        k: 2,
        t: 2,
        policy: TimeoutPolicy::Increment,
        abi: st_campaign::FdAbi::MachineSlot,
        detector: st_campaign::FdDetector::SetBased,
        certify_membership: false,
    };
    FuzzConfig {
        key: "bench-fuzz".into(),
        universe: Universe::new(FUZZ_N).unwrap(),
        workloads: vec![fuzz_agreement_workload(), fd],
        seeds: vec![
            FuzzInput {
                spec: fuzz_conforming_spec(),
                workload: 0,
                seed: 0xE1AC_5EED,
            },
            FuzzInput {
                spec: fuzz_conforming_spec(),
                workload: 1,
                seed: 0xE1AC_5EED,
            },
        ],
        master_seed: 3,
        budget: FUZZ_BUDGET,
        batch: 8,
        step_budget: FUZZ_STEP_BUDGET,
        threads: 1,
        stop_on_finding: false,
    }
}

/// The static comparison grid: the same scenario count, spec shape, and
/// step budget as the fuzz session, but a plain seed sweep with no
/// guidance overhead.
fn fuzz_static_grid() -> st_campaign::Campaign {
    use st_campaign::{Campaign, Scenario};
    let mut campaign = Campaign::new();
    for seed in 0..FUZZ_BUDGET as u64 {
        campaign.push(Scenario::new(
            format!("static/seed{seed}"),
            Universe::new(FUZZ_N).unwrap(),
            fuzz_conforming_spec(),
            fuzz_agreement_workload(),
            FUZZ_STEP_BUDGET,
            seed,
        ));
    }
    campaign
}

/// The starved fixture (termination owed, 40-step budget forbids it) — the
/// shrink-throughput workload.
fn starved_scenario() -> st_campaign::Scenario {
    st_campaign::Scenario::new(
        "bench/starved",
        Universe::new(FUZZ_N).unwrap(),
        fuzz_conforming_spec(),
        fuzz_agreement_workload(),
        40,
        0xE1AC_5EED,
    )
}

/// Coverage-guided fuzzing vs an equal-size static grid, plus the
/// shrinker's oracle-run rate.
fn fuzz_throughput(c: &mut Criterion) {
    use st_campaign::{FuzzSession, Shrinker};
    let grid = fuzz_static_grid();
    let starved = starved_scenario();
    let starved_outcome = starved.run();
    let mut group = c.benchmark_group("campaign/fuzz_throughput");
    group.sample_size(10);
    group.bench_function("fuzz_guided_24", |b| {
        b.iter(|| {
            FuzzSession::new(fuzz_session_config())
                .run(None, None)
                .executed
        })
    });
    group.bench_function("static_grid_24", |b| b.iter(|| grid.run_parallel(1).len()));
    group.bench_function("shrink_starved", |b| {
        b.iter(|| {
            Shrinker::new()
                .shrink(&starved, &starved_outcome)
                .expect("fixture violates")
                .runs
        })
    });
    group.finish();
}

/// One E3-shaped agreement scenario for the invariant-overhead
/// measurement: the checker-on default path (`Scenario::run` — schedule
/// recording plus claim replay) against the pre-checker fast path
/// (`Scenario::run_unchecked`), identical outcome data either way.
fn invariant_scenario() -> st_campaign::Scenario {
    use st_campaign::{Scenario, Workload};
    use st_fd::TimeoutPolicy;
    use st_sched::GeneratorSpec;
    let universe = Universe::new(AG_N).unwrap();
    let p: ProcSet = (0..AG_K.min(AG_T)).map(ProcessId::new).collect();
    let q: ProcSet = (0..=AG_T).map(ProcessId::new).collect();
    Scenario::new(
        "bench/invariant",
        universe,
        GeneratorSpec::set_timely(p, q, 2 * (AG_T + 1), GeneratorSpec::seeded_random(0)),
        Workload::Agreement {
            t: AG_T,
            k: AG_K,
            inputs: (0..AG_N as u64).map(|v| 1000 + 7 * v).collect(),
            policy: TimeoutPolicy::Increment,
            certify: None,
        },
        400_000,
        3,
    )
}

/// Always-on invariant checker cost: `run()` (checker + recording) vs
/// `run_unchecked()` on the same E3-shaped scenario.
fn invariant_overhead(c: &mut Criterion) {
    let scenario = invariant_scenario();
    let mut group = c.benchmark_group("campaign/invariant_overhead");
    group.sample_size(10);
    group.bench_function("e3_t4k3n8_checked", |b| {
        b.iter(|| scenario.run().violations.len())
    });
    group.bench_function("e3_t4k3n8_unchecked", |b| {
        b.iter(|| scenario.run_unchecked().violations.len())
    });
    group.finish();
}

/// Resume overhead: the same 64-scenario grid resumed from a complete
/// outcome store (pure skip: spec re-encode + lookup + rank merge, no
/// scenario executes) and the store's serialize→parse round trip — the two
/// fixed costs a checkpointed sweep pays over a one-shot run.
fn campaign_resume_overhead(c: &mut Criterion) {
    use st_campaign::OutcomeStore;
    let campaign = campaign_reference_grid();
    let mut store = OutcomeStore::new();
    campaign.run_resumed(1, "bench", None, Some(&mut store));
    let mut group = c.benchmark_group("campaign/resume");
    group.sample_size(10);
    group.bench_function("e3_grid_64_skip_all", |b| {
        b.iter(|| campaign.run_resumed(1, "bench", Some(&store), None).len())
    });
    group.bench_function("e3_grid_64_store_roundtrip", |b| {
        b.iter(|| {
            OutcomeStore::from_json_str(&store.to_json_string())
                .expect("own bytes")
                .len()
        })
    });
    group.finish();
}

/// Times one closure, best of `reps`.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Emits `BENCH_timeliness.json` at the workspace root: the recorded
/// baseline of the sweep-engine speedup and simulator step throughput this
/// PR introduces. Future perf PRs extend the measurements and compare.
fn emit_baseline(_c: &mut Criterion) {
    // The emitter is a multi-minute fixed workload with a file side effect;
    // honor the harness filter so targeted runs don't pay for it (and don't
    // silently rewrite the committed baseline).
    if let Some(filter) = criterion::cli_filter() {
        if !"baseline".contains(filter.as_str()) {
            println!("baseline emitter skipped (filter {filter:?})");
            return;
        }
    }
    let rr = round_robin_schedule();
    let rnd = seeded_random_schedule();

    let naive_rr = time_best(2, || {
        naive::all_timely_pairs(&rr, universe(), I, J, CAP).len()
    });
    let naive_rnd = time_best(2, || {
        naive::all_timely_pairs(&rnd, universe(), I, J, CAP).len()
    });
    let mut az = TimelinessAnalyzer::new(universe());
    let mut out = Vec::new();
    let engine_rr = time_best(5, || {
        out.clear();
        az.all_timely_pairs_into(&rr, I, J, CAP, &mut out);
        out.len()
    });
    let engine_rnd = time_best(5, || {
        out.clear();
        az.all_timely_pairs_into(&rnd, I, J, CAP, &mut out);
        out.len()
    });
    let matrix_steal = time_best(2, || {
        sweep_matrix(&rnd, universe(), CAP, usize::MAX)
            .cells()
            .iter()
            .map(|c| c.timely_pairs)
            .sum::<u64>()
    });
    let matrix_static = time_best(2, || {
        sweep_matrix_static_split(&rnd, universe(), CAP, usize::MAX)
            .cells()
            .iter()
            .map(|c| c.timely_pairs)
            .sum::<u64>()
    });

    // Simulator step throughput: the u64 word path (every register of the
    // paper's protocols) against the boxed representation it replaced,
    // via a non-u64 newtype that still goes through Box<dyn Any>.
    let word = time_best(3, run_register_loop::<u64>);
    let boxed = time_best(3, run_register_loop::<BoxedWord>);

    // The two automaton ABIs on the n = 8 kanti convergence workload: the
    // async poll path against the explicit state machine.
    const SIM_STEPS: u64 = 2_000_000;
    let kanti_sched = kanti_schedule(SIM_STEPS);
    let kanti_async = time_best(3, || run_kanti_workload(&kanti_sched, false));
    let kanti_machine = time_best(3, || run_kanti_workload(&kanti_sched, true));
    let async_ns = kanti_async * 1e6 / SIM_STEPS as f64;
    let machine_ns = kanti_machine * 1e6 / SIM_STEPS as f64;

    // The agreement stack on both ABIs: the E3 (t,k,n) = (4,3,8) workload
    // to all-decided, plus the typed fleet on the plain and sharded replay
    // drives over the decision prefix. Timed drive-only (see
    // `run_agreement_workload`).
    let ag_sched = agreement_schedule(200_000);
    let (decided_at, _) = run_agreement_workload(&ag_sched, AgreementMode::MachineSlot);
    assert_eq!(
        decided_at,
        run_agreement_workload(&ag_sched, AgreementMode::Async).0,
        "ABIs must decide at the same step (differential identity)"
    );
    let ag_prefix = Schedule::from_steps(ag_sched.as_slice()[..decided_at as usize].to_vec());
    let ag_async = agreement_time_best(5, &ag_sched, AgreementMode::Async);
    let ag_machine = agreement_time_best(5, &ag_sched, AgreementMode::MachineSlot);
    let ag_fleet = agreement_time_best(5, &ag_prefix, AgreementMode::FleetReplay);
    let ag_sharded = agreement_time_best(5, &ag_prefix, AgreementMode::FleetReplaySharded);
    let ag_soa = agreement_time_best(5, &ag_prefix, AgreementMode::FleetReplaySoa);
    let ag_async_ns = ag_async * 1e6 / decided_at as f64;
    let ag_machine_ns = ag_machine * 1e6 / decided_at as f64;
    let ag_fleet_ns = ag_fleet * 1e6 / decided_at as f64;
    let ag_sharded_ns = ag_sharded * 1e6 / decided_at as f64;
    let ag_soa_ns = ag_soa * 1e6 / decided_at as f64;

    // The n-scaling curve: the lean stack on all three fleet replay drives
    // over the E9 bursty shape, a fixed 4M-step prefix per size (see
    // `run_lean_fleet`). The SoA row is the acceptance lever: ≥ 2× over
    // the plain replay at n ≥ 256, where a slice is one pure read run.
    let lean_rows = LEAN_SIZES
        .iter()
        .map(|&n| {
            let sched = lean_bursty_schedule(n, LEAN_STEPS);
            let plain = lean_ns_per_step(2, n, &sched, LeanDrive::Plain);
            let sharded = lean_ns_per_step(2, n, &sched, LeanDrive::Sharded);
            let soa = lean_ns_per_step(2, n, &sched, LeanDrive::Soa);
            format!(
                "      {{\"n\": {n}, \"plain_ns_per_step\": {plain:.2}, \
                 \"sharded_ns_per_step\": {sharded:.2}, \"soa_ns_per_step\": {soa:.2}, \
                 \"soa_speedup\": {:.2}}}",
                plain / soa
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // The paper-detector curve: the verbatim Figure 2 stack on wide sets,
    // plain vs SoA, at the sizes the wide port unlocked.
    let wide_rows = WIDE_SIZES
        .iter()
        .map(|&n| {
            let sched = wide_bursty_schedule(n, WIDE_STEPS);
            let plain = wide_ns_per_step(2, n, &sched, false);
            let soa = wide_ns_per_step(2, n, &sched, true);
            format!(
                "      {{\"n\": {n}, \"words\": {}, \"plain_ns_per_step\": {plain:.2}, \
                 \"soa_ns_per_step\": {soa:.2}, \"soa_speedup\": {:.2}}}",
                st_core::words_for(n),
                plain / soa
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // The sharded caveat, re-measured at n = 256 on the interleaved
    // (round-robin) schedule the drive was built for — the bursty curve
    // above is already shard-grouped, so it cannot show sharding's effect
    // either way. runner.rs quotes this row.
    let rr256 = RoundRobin::new(Universe::new(256).unwrap()).take_schedule(LEAN_STEPS);
    let inter_plain = lean_ns_per_step(2, 256, &rr256, LeanDrive::Plain);
    let inter_sharded = lean_ns_per_step(2, 256, &rr256, LeanDrive::Sharded);
    let inter_soa = lean_ns_per_step(2, 256, &rr256, LeanDrive::Soa);

    // The scenario-campaign engine on the E3-shaped reference grid:
    // scenarios/sec sequential vs a 4-worker stealing pool. Outcomes are
    // thread-count independent (st-campaign's differential determinism
    // test); only wall-clock moves, and only when the host has cores to
    // give — `hardware_threads` records which regime produced the numbers.
    let campaign = campaign_reference_grid();
    let campaign_scenarios = campaign.len();
    let campaign_w1 = time_best(3, || campaign.run_parallel(1).len());
    let campaign_w4 = time_best(3, || campaign.run_parallel(4).len());
    let campaign_sps_w1 = campaign_scenarios as f64 * 1e3 / campaign_w1;
    let campaign_sps_w4 = campaign_scenarios as f64 * 1e3 / campaign_w4;
    let hardware_threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    // Resume overhead on the same grid: a complete store (every scenario
    // skipped — the pure bookkeeping cost), a half store (half the
    // scenarios re-run), and the store's serialize→parse round trip.
    let mut full_store = st_campaign::OutcomeStore::new();
    campaign.run_resumed(1, "bench", None, Some(&mut full_store));
    let store_bytes = full_store.to_json_string().len();
    let resume_skip_all = time_best(5, || {
        campaign
            .run_resumed(1, "bench", Some(&full_store), None)
            .len()
    });
    let mut half_store = full_store.clone();
    half_store.retain(|idx, _| idx % 2 == 0);
    let resume_half = time_best(3, || {
        campaign
            .run_resumed(1, "bench", Some(&half_store), None)
            .len()
    });
    let store_roundtrip = time_best(5, || {
        st_campaign::OutcomeStore::from_json_str(&full_store.to_json_string())
            .expect("own bytes")
            .len()
    });

    // The always-on invariant checker's cost on one E3-shaped agreement
    // scenario: the checked default (schedule recording + claim replay)
    // against the kept pre-checker fast path. Honest denominators: both
    // paths run to the same decision step.
    let inv_scenario = invariant_scenario();
    let inv_outcome = inv_scenario.run();
    assert!(inv_outcome.violations.is_empty(), "bench scenario is clean");
    let inv_steps = inv_outcome
        .data
        .as_agreement()
        .and_then(|a| a.decided_at)
        .expect("bench scenario decides");
    let inv_checked = time_best(5, || inv_scenario.run().violations.len());
    let inv_unchecked = time_best(5, || inv_scenario.run_unchecked().violations.len());
    let inv_checked_ns = inv_checked * 1e6 / inv_steps as f64;
    let inv_unchecked_ns = inv_unchecked * 1e6 / inv_steps as f64;

    // Coverage-guided fuzzing against an equal-size static grid (the
    // guidance overhead), and the shrinker's oracle-run rate on the
    // starved fixture.
    let fuzz_grid = fuzz_static_grid();
    let fuzz_ms = time_best(3, || {
        st_campaign::FuzzSession::new(fuzz_session_config())
            .run(None, None)
            .executed
    });
    let fuzz_static_ms = time_best(3, || fuzz_grid.run_parallel(1).len());
    let fuzz_sps = FUZZ_BUDGET as f64 * 1e3 / fuzz_ms;
    let fuzz_static_sps = FUZZ_BUDGET as f64 * 1e3 / fuzz_static_ms;
    let starved = starved_scenario();
    let starved_outcome = starved.run();
    let shrink_report = st_campaign::Shrinker::new()
        .shrink(&starved, &starved_outcome)
        .expect("fixture violates");
    let shrink_runs = shrink_report.runs;
    let shrink_ms = time_best(3, || {
        st_campaign::Shrinker::new()
            .shrink(&starved, &starved_outcome)
            .expect("fixture violates")
            .runs
    });
    let shrink_rps = shrink_runs as f64 * 1e3 / shrink_ms;

    let json = format!(
        "{{\n  \"schema\": \"st-bench/timeliness-v8\",\n  \
         \"workload\": {{\"n\": {N}, \"schedule_len\": {LEN}, \"bound_cap\": {CAP}, \"i\": {I}, \"j\": {J}}},\n  \
         \"all_timely_pairs_ms\": {{\n    \
           \"round_robin\": {{\"naive\": {naive_rr:.2}, \"engine\": {engine_rr:.2}, \"speedup\": {:.1}}},\n    \
           \"seeded_random\": {{\"naive\": {naive_rnd:.2}, \"engine\": {engine_rnd:.2}, \"speedup\": {:.1}}}\n  }},\n  \
         \"sweep_matrix_full_ms\": {{\"static_split\": {matrix_static:.2}, \"work_steal\": {matrix_steal:.2}, \"speedup\": {:.2}}},\n  \
         \"sim_register_rw_100k_ms\": {{\"boxed\": {boxed:.2}, \"word\": {word:.2}, \"speedup\": {:.2}}},\n  \
         \"sim_step_throughput\": {{\n    \
           \"workload\": {{\"n\": {SIM_N}, \"k\": {SIM_K}, \"t\": {SIM_T}, \"steps\": {SIM_STEPS}, \"schedule\": \"SetTimely\"}},\n    \
           \"async_ns_per_step\": {async_ns:.2},\n    \
           \"automaton_ns_per_step\": {machine_ns:.2},\n    \
           \"speedup\": {:.2}\n  }},\n  \
         \"agreement_step_throughput\": {{\n    \
           \"workload\": {{\"n\": {AG_N}, \"k\": {AG_K}, \"t\": {AG_T}, \"decided_at_step\": {decided_at}, \"schedule\": \"SetTimely\", \"experiment\": \"E3\"}},\n    \
           \"async_ns_per_step\": {ag_async_ns:.2},\n    \
           \"machine_slot_ns_per_step\": {ag_machine_ns:.2},\n    \
           \"fleet_replay_ns_per_step\": {ag_fleet_ns:.2},\n    \
           \"fleet_replay_sharded_ns_per_step\": {ag_sharded_ns:.2},\n    \
           \"fleet_replay_soa_ns_per_step\": {ag_soa_ns:.2},\n    \
           \"machine_slot_speedup\": {:.2},\n    \
           \"speedup\": {:.2}\n  }},\n  \
         \"lean_n_scaling\": {{\n    \
           \"workload\": {{\"fleet\": \"LeanConsensus over LeanOmega\", \"t\": \"n/16\", \
             \"schedule\": \"Bursty(n^2+n+2)\", \"steps\": {LEAN_STEPS}, \
             \"sharded\": \"shard 32 / slice 4096\", \"soa_slice_len\": 1024}},\n    \
           \"curve\": [\n{lean_rows}\n    ]\n  }},\n  \
         \"wide_fd_n_scaling\": {{\n    \
           \"workload\": {{\"fleet\": \"KSetAgreement over KAntiOmega (Figure 2, wide sets)\", \
             \"k\": 1, \"t\": \"n/16\", \"schedule\": \"Bursty(n^2+n+1)\", \"steps\": {WIDE_STEPS}, \
             \"soa_slice_len\": 1024}},\n    \
           \"curve\": [\n{wide_rows}\n    ]\n  }},\n  \
         \"lean_interleaved_n256\": {{\n    \
           \"workload\": {{\"n\": 256, \"schedule\": \"RoundRobin\", \"steps\": {LEAN_STEPS}}},\n    \
           \"plain_ns_per_step\": {inter_plain:.2},\n    \
           \"sharded_ns_per_step\": {inter_sharded:.2},\n    \
           \"soa_ns_per_step\": {inter_soa:.2},\n    \
           \"sharded_speedup\": {:.2},\n    \
           \"soa_speedup\": {:.2}\n  }},\n  \
         \"campaign_throughput\": {{\n    \
           \"workload\": {{\"grid\": \"E3-shaped agreement campaign\", \"tasks\": {}, \"seeds\": {CAMPAIGN_SEEDS}, \"scenarios\": {campaign_scenarios}}},\n    \
           \"hardware_threads\": {hardware_threads},\n    \
           \"sequential_ms\": {campaign_w1:.2},\n    \
           \"four_workers_ms\": {campaign_w4:.2},\n    \
           \"scenarios_per_sec_1w\": {campaign_sps_w1:.1},\n    \
           \"scenarios_per_sec_4w\": {campaign_sps_w4:.1},\n    \
           \"speedup\": {:.2}\n  }},\n  \
         \"campaign_resume\": {{\n    \
           \"workload\": {{\"grid\": \"E3-shaped agreement campaign\", \"scenarios\": {campaign_scenarios}}},\n    \
           \"store_bytes\": {store_bytes},\n    \
           \"full_run_ms\": {campaign_w1:.2},\n    \
           \"resume_skip_all_ms\": {resume_skip_all:.3},\n    \
           \"resume_half_store_ms\": {resume_half:.2},\n    \
           \"store_roundtrip_ms\": {store_roundtrip:.3},\n    \
           \"skip_overhead_us_per_scenario\": {:.1}\n  }},\n  \
         \"invariant_overhead\": {{\n    \
           \"workload\": {{\"n\": {AG_N}, \"k\": {AG_K}, \"t\": {AG_T}, \"decided_at_step\": {inv_steps}, \"schedule\": \"SetTimely\", \"experiment\": \"E3\"}},\n    \
           \"unchecked_ns_per_step\": {inv_unchecked_ns:.2},\n    \
           \"checked_ns_per_step\": {inv_checked_ns:.2},\n    \
           \"overhead_ratio\": {:.3}\n  }},\n  \
         \"campaign_fuzz\": {{\n    \
           \"workload\": {{\"shape\": \"catalog n=5 conforming seeds\", \"budget\": {FUZZ_BUDGET}, \"step_budget\": {FUZZ_STEP_BUDGET}, \"master_seed\": 3}},\n    \
           \"fuzz_guided_ms\": {fuzz_ms:.2},\n    \
           \"static_grid_ms\": {fuzz_static_ms:.2},\n    \
           \"scenarios_per_sec_guided\": {fuzz_sps:.1},\n    \
           \"scenarios_per_sec_static\": {fuzz_static_sps:.1},\n    \
           \"guidance_overhead_ratio\": {:.3},\n    \
           \"shrink\": {{\"oracle_runs\": {shrink_runs}, \"ms\": {shrink_ms:.2}, \"runs_per_sec\": {shrink_rps:.1}}}\n  }}\n}}\n",
        naive_rr / engine_rr,
        naive_rnd / engine_rnd,
        matrix_static / matrix_steal,
        boxed / word,
        async_ns / machine_ns,
        ag_async_ns / ag_machine_ns,
        ag_async_ns / ag_fleet_ns,
        inter_plain / inter_sharded,
        inter_plain / inter_soa,
        CAMPAIGN_GRID.len(),
        campaign_w1 / campaign_w4,
        resume_skip_all * 1e3 / campaign_scenarios as f64,
        inv_checked_ns / inv_unchecked_ns,
        fuzz_ms / fuzz_static_ms,
    );
    let path = criterion::workspace_root().join("BENCH_timeliness.json");
    std::fs::write(&path, &json).expect("write BENCH_timeliness.json");
    println!("baseline written to {}:\n{json}", path.display());
}

/// `u64` wrapped so the arena stores it boxed: the pre-fast-path layout.
#[derive(Clone, Debug)]
struct BoxedWord(u64);

trait Counter: Clone + std::fmt::Debug + 'static {
    fn zero() -> Self;
    fn bump(self) -> Self;
}

impl Counter for u64 {
    fn zero() -> Self {
        0
    }
    fn bump(self) -> Self {
        self + 1
    }
}

impl Counter for BoxedWord {
    fn zero() -> Self {
        BoxedWord(0)
    }
    fn bump(self) -> Self {
        BoxedWord(self.0 + 1)
    }
}

fn run_register_loop<T: Counter>() -> u64 {
    use st_sim::{RunConfig, Sim};
    let u = Universe::new(2).unwrap();
    let mut sim = Sim::new(u);
    let reg = sim.alloc("x", T::zero());
    for p in u.processes() {
        sim.spawn(p, move |ctx| async move {
            loop {
                let v = ctx.read(reg).await;
                ctx.write(reg, v.bump()).await;
            }
        })
        .unwrap();
    }
    let mut src = RoundRobin::new(u);
    sim.run(&mut src, RunConfig::steps(100_000)).unwrap();
    sim.steps_executed()
}

criterion_group!(
    benches,
    matrix_sweeps,
    sim_step_throughput,
    agreement_step_throughput,
    lean_fleet_throughput,
    campaign_throughput,
    invariant_overhead,
    campaign_resume_overhead,
    fuzz_throughput,
    emit_baseline
);
criterion_main!(benches);
