//! E1 bench — regenerates the Figure 1 series: empirical timeliness bounds
//! of the singletons and the pair on growing prefixes, and times the
//! analyzer doing it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use st_core::timeliness::{all_timely_pairs, empirical_bound, find_timely_pair};
use st_core::{ProcSet, ProcessId, StepSource, Universe};
use st_sched::Figure1;
use std::hint::black_box;

fn figure1_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/empirical_bound");
    for &len in &[10_000usize, 40_000, 160_000] {
        let schedule = Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2))
            .take_schedule(len);
        let p1 = ProcSet::from_indices([0]);
        let pair = ProcSet::from_indices([0, 1]);
        let q = ProcSet::from_indices([2]);

        // Print the series the experiment reports (paper shape: singleton
        // grows, pair pinned at 2).
        println!(
            "fig1 series: len={len} bound(p1)={} bound(pair)={}",
            empirical_bound(&schedule, p1, q),
            empirical_bound(&schedule, pair, q)
        );

        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("singleton", len), &schedule, |b, s| {
            b.iter(|| empirical_bound(black_box(s), p1, q))
        });
        group.bench_with_input(BenchmarkId::new("pair", len), &schedule, |b, s| {
            b.iter(|| empirical_bound(black_box(s), pair, q))
        });
    }
    group.finish();
}

fn pair_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/pair_search");
    let universe = Universe::new(6).unwrap();
    let schedule = st_sched::SeededRandom::new(universe, 5).take_schedule(20_000);
    group.bench_function("find_timely_pair(2,3)", |b| {
        b.iter(|| find_timely_pair(black_box(&schedule), universe, 2, 3, 8))
    });
    group.bench_function("all_timely_pairs(2,2)", |b| {
        b.iter(|| all_timely_pairs(black_box(&schedule), universe, 2, 2, 6))
    });
    group.finish();
}

criterion_group!(benches, figure1_series, pair_search);
criterion_main!(benches);
