//! E2/E7 bench — Figure 2 k-anti-Ω: time-to-stabilization workloads over
//! the (n, k) grid, the async-vs-state-machine ABI comparison, and the
//! timeout-policy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_core::{ProcSet, ProcessId, Universe};
use st_fd::convergence::{run_until_quiescent, winnerset_stabilization};
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy};
use st_sched::{SeededRandom, SetTimely};
use st_sim::{RunConfig, Sim};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Abi {
    Async,
    Machine,
}

fn build_fd(n: usize, k: usize, t: usize, policy: TimeoutPolicy, abi: Abi) -> Sim {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t).with_policy(policy));
    for p in universe.processes() {
        match abi {
            Abi::Async => {
                let fd = fd.clone();
                sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
            }
            Abi::Machine => sim.spawn_automaton(p, fd.machine()).unwrap(),
        }
    }
    sim
}

fn run_fd(n: usize, k: usize, t: usize, policy: TimeoutPolicy, budget: u64) -> Option<u64> {
    run_fd_abi(n, k, t, policy, budget, Abi::Machine)
}

fn run_fd_abi(
    n: usize,
    k: usize,
    t: usize,
    policy: TimeoutPolicy,
    budget: u64,
    abi: Abi,
) -> Option<u64> {
    let universe = Universe::new(n).unwrap();
    let mut sim = build_fd(n, k, t, policy, abi);
    let p: ProcSet = (0..k).map(ProcessId::new).collect();
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let mut src = SetTimely::new(p, q, 2 * (t + 1), SeededRandom::new(universe, 7));
    sim.run(&mut src, RunConfig::steps(budget)).unwrap();
    winnerset_stabilization(&sim.report(), ProcSet::full(universe)).map(|s| s.step)
}

fn convergence_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd/convergence");
    group.sample_size(10);
    for &(n, k, t) in &[(3usize, 1usize, 1usize), (4, 1, 2), (4, 2, 2), (5, 2, 3)] {
        // Print the series: stabilization step per cell (paper: Theorem 23).
        let stab = run_fd(n, k, t, TimeoutPolicy::Increment, 600_000);
        println!("fd convergence: n={n} k={k} t={t} stabilized@{stab:?}");
        group.bench_with_input(
            BenchmarkId::new("run_200k_steps", format!("n{n}k{k}t{t}")),
            &(n, k, t),
            |b, &(n, k, t)| b.iter(|| run_fd(n, k, t, TimeoutPolicy::Increment, 200_000)),
        );
    }
    group.finish();
}

/// The two automaton ABIs on the same E2 workload: the step-throughput
/// comparison the `timeliness` bench records in `BENCH_timeliness.json`.
fn abi_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd/abi");
    group.sample_size(10);
    for abi in [Abi::Async, Abi::Machine] {
        group.bench_with_input(
            BenchmarkId::new("kanti_200k_steps_n8", format!("{abi:?}")),
            &abi,
            |b, &abi| b.iter(|| run_fd_abi(8, 2, 3, TimeoutPolicy::Increment, 200_000, abi)),
        );
    }
    group.finish();

    // The quiescence-polling harness (borrow-free accessors, early stop)
    // against a fixed-budget drive with the same verdict.
    let mut group = c.benchmark_group("fd/quiescent_harness");
    group.sample_size(10);
    group.bench_function("poll_4k_quiet8_n5", |b| {
        b.iter(|| {
            let universe = Universe::new(5).unwrap();
            let mut sim = build_fd(5, 2, 3, TimeoutPolicy::Increment, Abi::Machine);
            let p: ProcSet = (0..2).map(ProcessId::new).collect();
            let q: ProcSet = (0..=3).map(ProcessId::new).collect();
            let mut src = SetTimely::new(p, q, 8, SeededRandom::new(universe, 7));
            run_until_quiescent(
                &mut sim,
                &mut src,
                ProcSet::full(universe),
                600_000,
                4_000,
                8,
            )
            .stabilization
            .map(|s| s.step)
        })
    });
    group.finish();
}

fn timeout_policy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd/timeout_policy");
    group.sample_size(10);
    for policy in [TimeoutPolicy::Increment, TimeoutPolicy::Double] {
        let stab = run_fd(4, 1, 2, policy, 2_000_000);
        println!("fd ablation: policy={policy:?} stabilized@{stab:?}");
        group.bench_with_input(
            BenchmarkId::new("run_200k_steps", format!("{policy:?}")),
            &policy,
            |b, &p| b.iter(|| run_fd(4, 1, 2, p, 200_000)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    convergence_grid,
    abi_comparison,
    timeout_policy_ablation,
    set_vs_process
);
fn set_vs_process(c: &mut Criterion) {
    // E8 workload: only groups are timely. The set-based detector is the
    // only one that converges; both are timed on the same schedule.
    use st_fd::ProcessTimelyDetector;
    use st_sched::AlternatingRotation;

    fn run_baseline(budget: u64) -> u64 {
        let universe = Universe::new(4).unwrap();
        let mut sim = Sim::new(universe);
        let fd = ProcessTimelyDetector::alloc(&mut sim, 2, 2, TimeoutPolicy::Increment);
        for p in universe.processes() {
            let fd = fd.clone();
            sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
        }
        let groups = [ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])];
        let mut src = AlternatingRotation::new(&groups);
        sim.run(&mut src, RunConfig::steps(budget)).unwrap();
        sim.steps_executed()
    }

    fn run_setbased(budget: u64) -> Option<u64> {
        let universe = Universe::new(4).unwrap();
        let mut sim = Sim::new(universe);
        let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(2, 2));
        for p in universe.processes() {
            let fd = fd.clone();
            sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
        }
        let groups = [ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])];
        let mut src = AlternatingRotation::new(&groups);
        sim.run(&mut src, RunConfig::steps(budget)).unwrap();
        winnerset_stabilization(&sim.report(), ProcSet::full(universe)).map(|s| s.step)
    }

    let mut group = c.benchmark_group("fd/set_vs_process");
    group.sample_size(10);
    println!(
        "motivation: set-based stabilized@{:?}; process-based never (by design)",
        run_setbased(1_000_000)
    );
    group.bench_function("set_based_200k", |b| b.iter(|| run_setbased(200_000)));
    group.bench_function("process_based_200k", |b| b.iter(|| run_baseline(200_000)));
    group.finish();
}

criterion_main!(benches);
