//! Benchmark harness crate: all content lives in `benches/` (one Criterion
//! bench per paper figure/experiment — see DESIGN.md §5). The library
//! target exists only to anchor the package; `bench = false` keeps
//! `cargo bench` from running the default harness on it.
