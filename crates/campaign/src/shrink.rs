//! Counterexample shrinking: delta-debugging a violating scenario down to
//! a minimal still-violating one.
//!
//! The oracle is exact re-execution: every candidate is re-run through
//! [`Scenario::run`] (checker always on) and accepted **iff the same
//! [`InvariantViolation`](crate::InvariantViolation) kind still fires** —
//! never merely "some violation", so a shrink can't walk from a
//! termination bug to an unrelated guarantee artifact. Two phases:
//!
//! 1. **Spec-level** (to fixpoint): drop decorator layers anywhere in the
//!    tree, halve the step budget, halve dwell/gap/window/stretch spans,
//!    and bisect the scenario seed toward 0.
//! 2. **Schedule-level**: the recorded counterexample [`Schedule`] is
//!    re-executed through a [`GeneratorSpec::Replay`] wrapper (which
//!    inherits the original spec's armed claims), then ddmin-style chunk
//!    removal and per-process subsequence removal grind it down,
//!    re-running the checker after every candidate.
//!
//! Everything is deterministic — candidate order is fixed and the oracle
//! is a deterministic re-run — so a shrink is reproducible from the
//! original finding alone. The `accepted` trail in the report exists for
//! the property test that every accepted candidate still violates the
//! original kind.

use st_core::Schedule;
use st_sched::mutate::unstack;
use st_sched::GeneratorSpec;

use crate::scenario::{Scenario, ScenarioOutcome};

/// What a shrink produced.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimal still-violating scenario (a `Replay` when the schedule
    /// phase ran).
    pub scenario: Scenario,
    /// Its outcome (the violation still present).
    pub outcome: ScenarioOutcome,
    /// The preserved violation kind.
    pub kind: &'static str,
    /// Counterexample length before shrinking.
    pub original_len: usize,
    /// Counterexample length after (0 when even the empty schedule
    /// violates).
    pub shrunk_len: usize,
    /// Accepted spec-level shrink steps.
    pub spec_steps: usize,
    /// Accepted schedule-level shrink steps.
    pub schedule_steps: usize,
    /// Total oracle re-runs spent.
    pub runs: usize,
    /// Every accepted candidate, in acceptance order (each still violates
    /// `kind`; property-tested).
    pub accepted: Vec<Scenario>,
}

/// The deterministic delta-debugger. See the module docs.
pub struct Shrinker {
    max_runs: usize,
}

impl Default for Shrinker {
    fn default() -> Self {
        Shrinker::new()
    }
}

/// Rebuilds `s` with a new generator, recomputing the faulty set (layer
/// drops change it) while keeping label, workload, stop rule, budget, and
/// seed.
fn with_generator(s: &Scenario, generator: GeneratorSpec) -> Scenario {
    let mut c = Scenario::new(
        s.label.clone(),
        s.universe,
        generator,
        s.workload.clone(),
        s.budget,
        s.seed,
    );
    c.stop = s.stop;
    c
}

/// Rebuilds an outer fault layer around a reduced inner spec.
type Rewrap = Box<dyn Fn(GeneratorSpec) -> GeneratorSpec>;

/// Every single-layer-drop variant of `spec`, outermost first.
fn layer_drops(spec: &GeneratorSpec) -> Vec<GeneratorSpec> {
    let mut out = Vec::new();
    if let Some(inner) = unstack(spec) {
        out.push(inner);
    }
    // Recurse: dropping an inner layer keeps the outer wrapper.
    let rewrap: Option<(Vec<GeneratorSpec>, Rewrap)> = match spec {
        GeneratorSpec::SetTimely {
            p,
            q,
            bound,
            filler,
            crashes,
        } => {
            let (p, q, bound, crashes) = (*p, *q, *bound, crashes.clone());
            Some((
                layer_drops(filler),
                Box::new(move |f| GeneratorSpec::SetTimely {
                    p,
                    q,
                    bound,
                    filler: Box::new(f),
                    crashes: crashes.clone(),
                }),
            ))
        }
        GeneratorSpec::Flapping {
            p,
            q,
            bound,
            filler,
            timely_dwell,
            untimely_dwell,
            seed_offset,
        } => {
            let (p, q, bound) = (*p, *q, *bound);
            let (td, ud, so) = (*timely_dwell, *untimely_dwell, *seed_offset);
            Some((
                layer_drops(filler),
                Box::new(move |f| GeneratorSpec::Flapping {
                    p,
                    q,
                    bound,
                    filler: Box::new(f),
                    timely_dwell: td,
                    untimely_dwell: ud,
                    seed_offset: so,
                }),
            ))
        }
        GeneratorSpec::GrayFailure {
            inner,
            gray,
            stretch,
            seed_offset,
        } => {
            let (gray, stretch, so) = (*gray, *stretch, *seed_offset);
            Some((
                layer_drops(inner),
                Box::new(move |i| GeneratorSpec::GrayFailure {
                    inner: Box::new(i),
                    gray,
                    stretch,
                    seed_offset: so,
                }),
            ))
        }
        GeneratorSpec::BurstClog {
            inner,
            clogger,
            window,
            gap,
            seed_offset,
        } => {
            let (clogger, window, gap, so) = (*clogger, *window, *gap, *seed_offset);
            Some((
                layer_drops(inner),
                Box::new(move |i| GeneratorSpec::BurstClog {
                    inner: Box::new(i),
                    clogger,
                    window,
                    gap,
                    seed_offset: so,
                }),
            ))
        }
        GeneratorSpec::CrashRecovery {
            inner,
            victim,
            crash,
            rejoin,
        } => {
            let (victim, crash, rejoin) = (*victim, *crash, *rejoin);
            Some((
                layer_drops(inner),
                Box::new(move |i| GeneratorSpec::CrashRecovery {
                    inner: Box::new(i),
                    victim,
                    crash,
                    rejoin,
                }),
            ))
        }
        GeneratorSpec::CrashAfter { inner, plan } => {
            let plan = plan.clone();
            Some((
                layer_drops(inner),
                Box::new(move |i| GeneratorSpec::CrashAfter {
                    inner: Box::new(i),
                    plan: plan.clone(),
                }),
            ))
        }
        GeneratorSpec::Eventually {
            prefix,
            prefix_len,
            body,
        } => {
            let (prefix, prefix_len) = (prefix.clone(), *prefix_len);
            Some((
                layer_drops(body),
                Box::new(move |b| GeneratorSpec::Eventually {
                    prefix: prefix.clone(),
                    prefix_len,
                    body: Box::new(b),
                }),
            ))
        }
        _ => None,
    };
    if let Some((inner_drops, rewrap)) = rewrap {
        out.extend(inner_drops.into_iter().map(rewrap.as_ref()));
    }
    out
}

/// Halved numeric spans (dwell/gap/window/stretch/prefix) anywhere in the
/// tree, one change per candidate.
fn span_halvings(spec: &GeneratorSpec) -> Vec<GeneratorSpec> {
    fn halve_range((lo, hi): (u64, u64)) -> Option<(u64, u64)> {
        let mid = lo + (hi - lo) / 2;
        (mid < hi).then_some((lo, mid))
    }
    let mut out = Vec::new();
    match spec {
        GeneratorSpec::Flapping {
            p,
            q,
            bound,
            filler,
            timely_dwell,
            untimely_dwell,
            seed_offset,
        } => {
            let mk = |td, ud, f: &GeneratorSpec| GeneratorSpec::Flapping {
                p: *p,
                q: *q,
                bound: *bound,
                filler: Box::new(f.clone()),
                timely_dwell: td,
                untimely_dwell: ud,
                seed_offset: *seed_offset,
            };
            if let Some(td) = halve_range(*timely_dwell) {
                out.push(mk(td, *untimely_dwell, filler));
            }
            if let Some(ud) = halve_range(*untimely_dwell) {
                out.push(mk(*timely_dwell, ud, filler));
            }
            for f in span_halvings(filler) {
                out.push(mk(*timely_dwell, *untimely_dwell, &f));
            }
        }
        GeneratorSpec::GrayFailure {
            inner,
            gray,
            stretch,
            seed_offset,
        } => {
            if *stretch > 1 {
                out.push(GeneratorSpec::GrayFailure {
                    inner: inner.clone(),
                    gray: *gray,
                    stretch: stretch / 2,
                    seed_offset: *seed_offset,
                });
            }
            for i in span_halvings(inner) {
                out.push(GeneratorSpec::GrayFailure {
                    inner: Box::new(i),
                    gray: *gray,
                    stretch: *stretch,
                    seed_offset: *seed_offset,
                });
            }
        }
        GeneratorSpec::BurstClog {
            inner,
            clogger,
            window,
            gap,
            seed_offset,
        } => {
            let mk = |window, gap, i: &GeneratorSpec| GeneratorSpec::BurstClog {
                inner: Box::new(i.clone()),
                clogger: *clogger,
                window,
                gap,
                seed_offset: *seed_offset,
            };
            if *window > 1 {
                out.push(mk(window / 2, *gap, inner));
            }
            if let Some(g) = halve_range(*gap) {
                out.push(mk(*window, g, inner));
            }
            for i in span_halvings(inner) {
                out.push(mk(*window, *gap, &i));
            }
        }
        GeneratorSpec::CrashRecovery {
            inner,
            victim,
            crash,
            rejoin,
        } => {
            if rejoin > crash {
                out.push(GeneratorSpec::CrashRecovery {
                    inner: inner.clone(),
                    victim: *victim,
                    crash: *crash,
                    rejoin: crash + (rejoin - crash) / 2,
                });
            }
            for i in span_halvings(inner) {
                out.push(GeneratorSpec::CrashRecovery {
                    inner: Box::new(i),
                    victim: *victim,
                    crash: *crash,
                    rejoin: *rejoin,
                });
            }
        }
        GeneratorSpec::Eventually {
            prefix,
            prefix_len,
            body,
        } => {
            if *prefix_len > 1 {
                out.push(GeneratorSpec::Eventually {
                    prefix: prefix.clone(),
                    prefix_len: prefix_len / 2,
                    body: body.clone(),
                });
            }
            for b in span_halvings(body) {
                out.push(GeneratorSpec::Eventually {
                    prefix: prefix.clone(),
                    prefix_len: *prefix_len,
                    body: Box::new(b),
                });
            }
        }
        GeneratorSpec::SetTimely {
            p,
            q,
            bound,
            filler,
            crashes,
        } => {
            for f in span_halvings(filler) {
                out.push(GeneratorSpec::SetTimely {
                    p: *p,
                    q: *q,
                    bound: *bound,
                    filler: Box::new(f),
                    crashes: crashes.clone(),
                });
            }
        }
        GeneratorSpec::CrashAfter { inner, plan } => {
            for i in span_halvings(inner) {
                out.push(GeneratorSpec::CrashAfter {
                    inner: Box::new(i),
                    plan: plan.clone(),
                });
            }
        }
        _ => {}
    }
    out
}

/// `schedule` without positions `start..end`.
fn remove_range(schedule: &Schedule, start: usize, end: usize) -> Schedule {
    schedule
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < start || *i >= end)
        .map(|(_, p)| p)
        .collect()
}

impl Shrinker {
    /// A shrinker with the default oracle-run budget.
    pub fn new() -> Self {
        Shrinker { max_runs: 1024 }
    }

    /// Overrides the oracle-run budget.
    pub fn with_max_runs(max_runs: usize) -> Self {
        Shrinker { max_runs }
    }

    /// Shrinks `(scenario, outcome)` to a minimal scenario still violating
    /// the outcome's first violation kind. Returns `None` when the outcome
    /// has no violation.
    pub fn shrink(&self, scenario: &Scenario, outcome: &ScenarioOutcome) -> Option<ShrinkReport> {
        let kind = outcome.violations.first()?.kind();
        let original_len = outcome.counterexample.as_ref().map_or(0, Schedule::len);
        let mut cur = scenario.clone();
        let mut cur_out = outcome.clone();
        let mut runs = 0usize;
        let mut spec_steps = 0usize;
        let mut schedule_steps = 0usize;
        let mut accepted: Vec<Scenario> = Vec::new();
        let try_accept = |cand: Scenario,
                          runs: &mut usize,
                          cur: &mut Scenario,
                          cur_out: &mut ScenarioOutcome,
                          accepted: &mut Vec<Scenario>|
         -> bool {
            *runs += 1;
            let out = cand.run();
            if out.violations.iter().any(|v| v.kind() == kind) {
                accepted.push(cand.clone());
                *cur = cand;
                *cur_out = out;
                true
            } else {
                false
            }
        };

        // Phase 1: spec-level, to fixpoint.
        loop {
            if runs >= self.max_runs {
                break;
            }
            let mut candidates: Vec<Scenario> = Vec::new();
            for g in layer_drops(&cur.generator) {
                candidates.push(with_generator(&cur, g));
            }
            if cur.budget > 0 {
                let mut halved = cur.clone();
                halved.budget /= 2;
                candidates.push(with_generator(&halved, cur.generator.clone()));
            }
            for g in span_halvings(&cur.generator) {
                candidates.push(with_generator(&cur, g));
            }
            if cur.seed > 0 {
                for seed in [0, cur.seed / 2] {
                    let mut reseeded = cur.clone();
                    reseeded.seed = seed;
                    candidates.push(with_generator(&reseeded, cur.generator.clone()));
                }
            }
            let mut advanced = false;
            for cand in candidates {
                if runs >= self.max_runs {
                    break;
                }
                if try_accept(cand, &mut runs, &mut cur, &mut cur_out, &mut accepted) {
                    spec_steps += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }

        // Phase 2: schedule-level ddmin over the counterexample, replayed
        // with the current spec's claims still armed.
        if let Some(mut sched) = cur_out.counterexample.clone() {
            let of = match &cur.generator {
                GeneratorSpec::Replay { of, .. } => (**of).clone(),
                g => g.clone(),
            };
            let replay = |s: &Schedule, base: &Scenario| {
                let mut c = with_generator(base, GeneratorSpec::replay(of.clone(), s.clone()));
                c.budget = s.len() as u64;
                c
            };
            loop {
                let before = sched.len();
                // Chunk removal, coarse to fine.
                let mut granularity = 2usize;
                while !sched.is_empty() && runs < self.max_runs {
                    let chunk = sched.len().div_ceil(granularity);
                    let mut reduced = false;
                    let mut start = 0usize;
                    while start < sched.len() && runs < self.max_runs {
                        let end = (start + chunk).min(sched.len());
                        let cand_sched = remove_range(&sched, start, end);
                        let cand = replay(&cand_sched, &cur);
                        if try_accept(cand, &mut runs, &mut cur, &mut cur_out, &mut accepted) {
                            schedule_steps += 1;
                            sched = cand_sched;
                            reduced = true;
                            // Re-scan from the same offset at the same
                            // granularity: content shifted left.
                        } else {
                            start = end;
                        }
                    }
                    if !reduced {
                        if chunk <= 1 {
                            break;
                        }
                        granularity = (granularity * 2).min(sched.len().max(2));
                    }
                }
                // Per-process subsequence removal.
                for p in sched.participants().iter() {
                    if runs >= self.max_runs {
                        break;
                    }
                    let cand_sched: Schedule = sched.iter().filter(|&q| q != p).collect();
                    if cand_sched.len() == sched.len() {
                        continue;
                    }
                    let cand = replay(&cand_sched, &cur);
                    if try_accept(cand, &mut runs, &mut cur, &mut cur_out, &mut accepted) {
                        schedule_steps += 1;
                        sched = cand_sched;
                    }
                }
                if sched.len() == before || runs >= self.max_runs {
                    break;
                }
            }
        }

        let shrunk_len = cur_out.counterexample.as_ref().map_or(0, Schedule::len);
        Some(ShrinkReport {
            scenario: cur,
            outcome: cur_out,
            kind,
            original_len,
            shrunk_len,
            spec_steps,
            schedule_steps,
            runs,
            accepted,
        })
    }
}
