//! Campaigns: ordered scenario lists executed by a work-stealing worker
//! pool with a deterministic rank-ordered merge.

use st_core::parallel::{resolve_workers, steal_chunks};
use st_core::Universe;
use st_sched::{CrashPlan, GeneratorSpec};

use crate::scenario::{Scenario, ScenarioOutcome, StopRule, Workload};

/// An ordered list of scenarios, executed together.
///
/// The order is the identity of the campaign: every scenario has a *rank*
/// (its index), outcomes always come back sorted by rank, and
/// [`run_parallel`](Campaign::run_parallel) guarantees the outcome list is
/// identical for every thread count.
#[derive(Clone, Default, Debug)]
pub struct Campaign {
    scenarios: Vec<Scenario>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// A campaign from an explicit scenario list (ranks = positions).
    pub fn from_scenarios(scenarios: Vec<Scenario>) -> Self {
        Campaign { scenarios }
    }

    /// Starts a cartesian grid over one universe.
    pub fn grid(universe: Universe) -> GridBuilder {
        GridBuilder::new(universe)
    }

    /// Appends a scenario; returns its rank.
    pub fn push(&mut self, scenario: Scenario) -> usize {
        self.scenarios.push(scenario);
        self.scenarios.len() - 1
    }

    /// The scenarios, in rank order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` if there is nothing to run.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs every scenario sequentially, in rank order. Equivalent to
    /// `run_parallel(1)`; kept as the obvious reference implementation the
    /// differential tests compare against.
    pub fn run_sequential(&self) -> Vec<ScenarioOutcome> {
        self.scenarios
            .iter()
            .enumerate()
            .map(|(rank, s)| {
                let mut out = s.run();
                out.rank = rank;
                out
            })
            .collect()
    }

    /// Runs the campaign on `threads` OS worker threads (pass `1` to force
    /// the sequential path, `usize::MAX` for one worker per hardware
    /// thread) and returns outcomes **in rank order**.
    ///
    /// Workers steal scenario ranks off a shared atomic counter — the
    /// proven `sweep_matrix` pattern, via [`st_core::parallel`] — so a
    /// worker that drew cheap scenarios (small budgets, early deciders)
    /// loops back for more while a slow one is still grinding. Each
    /// scenario builds its own simulator, generator, and protocol stack
    /// inside the worker; nothing is shared, and the parts are merged in
    /// ascending rank order. **The returned list is therefore identical for
    /// every thread count**, oversubscription included (differential-tested
    /// in `tests/determinism.rs`).
    pub fn run_parallel(&self, threads: usize) -> Vec<ScenarioOutcome> {
        let workers = resolve_workers(threads);
        if workers == 1 || self.scenarios.len() <= 1 {
            return self.run_sequential();
        }
        let parts = steal_chunks(
            self.scenarios.len() as u64,
            workers,
            1,
            || (),
            |_, first, last| {
                debug_assert_eq!(last, first + 1, "scenario chunks are single ranks");
                let rank = first as usize;
                let mut out = self.scenarios[rank].run();
                out.rank = rank;
                out
            },
        );
        parts.into_iter().map(|(_, out)| out).collect()
    }
}

/// Cartesian scenario-grid builder: workloads × generators × crash plans ×
/// seeds, in that nesting order (workloads outermost, seeds innermost), all
/// sharing one universe and budget.
///
/// Crash plans are applied with [`GeneratorSpec::crashed`]; the scenario's
/// faulty set is the plan's victims (plus whatever the generator itself
/// silences).
pub struct GridBuilder {
    universe: Universe,
    generators: Vec<GeneratorSpec>,
    crashes: Vec<CrashPlan>,
    seeds: Vec<u64>,
    workloads: Vec<Workload>,
    budget: u64,
    stop: Option<StopRule>,
}

impl GridBuilder {
    fn new(universe: Universe) -> Self {
        GridBuilder {
            universe,
            generators: Vec::new(),
            crashes: vec![CrashPlan::new()],
            seeds: vec![0],
            workloads: Vec::new(),
            budget: 1_000_000,
            stop: None,
        }
    }

    /// The generator axis.
    pub fn generators(mut self, generators: impl IntoIterator<Item = GeneratorSpec>) -> Self {
        self.generators = generators.into_iter().collect();
        self
    }

    /// The crash axis (defaults to a single empty plan). Include
    /// `CrashPlan::new()` to keep a no-crash arm.
    pub fn crash_plans(mut self, plans: impl IntoIterator<Item = CrashPlan>) -> Self {
        self.crashes = plans.into_iter().collect();
        self
    }

    /// The seed axis (defaults to `[0]`).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The workload axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// One workload (the common case).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workloads = vec![workload];
        self
    }

    /// Per-scenario step budget (default 1M).
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the stop rule of every scenario whose workload consults it
    /// (the generator-driven FD and agreement workloads; the adversary and
    /// BG drives own their stop semantics — see [`StopRule`]). Default: the
    /// workload's own rule.
    pub fn stop(mut self, stop: StopRule) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Materializes the cartesian product as a campaign.
    ///
    /// # Panics
    ///
    /// Panics if the generator or workload axis is empty — an empty grid is
    /// always a bug in the experiment definition.
    pub fn build(self) -> Campaign {
        assert!(!self.generators.is_empty(), "grid needs ≥ 1 generator");
        assert!(!self.workloads.is_empty(), "grid needs ≥ 1 workload");
        let mut campaign = Campaign::new();
        for (w, workload) in self.workloads.iter().enumerate() {
            for generator in &self.generators {
                for (c, plan) in self.crashes.iter().enumerate() {
                    let spec = generator.clone().crashed(plan.clone());
                    for &seed in &self.seeds {
                        // `crash{c}` is the crash-axis *index*: distinct
                        // plans get distinct labels even with equal victim
                        // counts, and generator-silenced processes (e.g.
                        // FictitiousCrash) are not miscounted as plan
                        // victims.
                        let label = format!("w{w}/{}/crash{c}/seed{seed}", spec.family());
                        let mut scenario = Scenario::new(
                            label,
                            self.universe,
                            spec.clone(),
                            workload.clone(),
                            self.budget,
                            seed,
                        );
                        if let Some(stop) = self.stop {
                            scenario.stop = stop;
                        }
                        campaign.push(scenario);
                    }
                }
            }
        }
        campaign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FdAbi, FdDetector, OutcomeData};
    use st_fd::TimeoutPolicy;

    fn fd_workload() -> Workload {
        Workload::FdConvergence {
            k: 1,
            t: 1,
            policy: TimeoutPolicy::Increment,
            abi: FdAbi::MachineSlot,
            detector: FdDetector::SetBased,
            certify_membership: false,
        }
    }

    #[test]
    fn grid_is_the_cartesian_product_in_axis_order() {
        let u = Universe::new(3).unwrap();
        let campaign = Campaign::grid(u)
            .generators([
                GeneratorSpec::round_robin(),
                GeneratorSpec::seeded_random(0),
            ])
            .seeds([7, 8, 9])
            .workload(fd_workload())
            .budget(10)
            .build();
        assert_eq!(campaign.len(), 6);
        let labels: Vec<&str> = campaign
            .scenarios()
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert_eq!(
            labels,
            [
                "w0/RoundRobin/crash0/seed7",
                "w0/RoundRobin/crash0/seed8",
                "w0/RoundRobin/crash0/seed9",
                "w0/SeededRandom/crash0/seed7",
                "w0/SeededRandom/crash0/seed8",
                "w0/SeededRandom/crash0/seed9",
            ]
        );
    }

    #[test]
    fn outcomes_come_back_in_rank_order() {
        let u = Universe::new(3).unwrap();
        let campaign = Campaign::grid(u)
            .generators([GeneratorSpec::round_robin()])
            .seeds(0..5)
            .workload(fd_workload())
            .budget(2_000)
            .build();
        let out = campaign.run_parallel(3);
        assert_eq!(out.len(), 5);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.rank, i);
            assert!(matches!(o.data, OutcomeData::Fd(_)));
        }
    }

    #[test]
    fn budget_only_override_outlives_the_decision() {
        use st_sim::RunStatus;
        let u = Universe::new(3).unwrap();
        let p = st_core::ProcSet::from_indices([0]);
        let q = st_core::ProcSet::from_indices([0, 1, 2]);
        let workload = Workload::Agreement {
            t: 1,
            k: 1,
            inputs: vec![10, 20, 30],
            policy: TimeoutPolicy::Increment,
        };
        let spec = GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0));
        let grid = |stop: Option<crate::StopRule>| {
            let mut b = Campaign::grid(u)
                .generators([spec.clone()])
                .seeds([8])
                .workload(workload.clone())
                .budget(400_000);
            if let Some(s) = stop {
                b = b.stop(s);
            }
            b.build().run_sequential().remove(0)
        };
        // Default: stops at all-decided.
        let decided = grid(None);
        let decided = decided.data.as_agreement().unwrap();
        assert_eq!(decided.status, RunStatus::Stopped);
        assert!(decided.clean);
        // BudgetOnly override: same decisions, but the run burns the whole
        // budget past the decision point.
        let full = grid(Some(crate::StopRule::BudgetOnly));
        let full = full.data.as_agreement().unwrap();
        assert_eq!(full.status, RunStatus::MaxSteps);
        assert_eq!(full.decisions, decided.decisions);
    }

    #[test]
    #[should_panic(expected = "≥ 1 generator")]
    fn empty_generator_axis_rejected() {
        let _ = Campaign::grid(Universe::new(2).unwrap())
            .workload(fd_workload())
            .build();
    }
}
