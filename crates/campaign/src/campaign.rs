//! Campaigns: ordered scenario lists executed by a work-stealing worker
//! pool with a deterministic rank-ordered merge, filterable and resumable
//! without changing what any scenario computes.

use st_core::parallel::{resolve_workers, steal_chunks};
use st_core::Universe;
use st_sched::{CrashPlan, GeneratorSpec, TimeoutPolicySpec};

use crate::scenario::{Scenario, ScenarioOutcome, StopRule, Workload};
use crate::store::OutcomeStore;

/// An ordered list of scenarios, executed together.
///
/// The order is the identity of the campaign: every scenario has a *rank*
/// (its position at creation), outcomes always come back sorted by rank,
/// and [`run_parallel`](Campaign::run_parallel) guarantees the outcome list
/// is identical for every thread count.
///
/// Ranks are **permanent**: [`retain`](Campaign::retain) and
/// [`skip_completed`](Campaign::skip_completed) drop scenarios without
/// renumbering the survivors, so outcomes of a filtered campaign slot back
/// into the full run's rank order — [`merge_outcomes`] of a resumed sweep
/// is byte-identical to the uninterrupted run.
#[derive(Clone, Default, Debug)]
pub struct Campaign {
    scenarios: Vec<Scenario>,
    /// Rank of `scenarios[idx]`; strictly increasing (push only grows
    /// `next_rank`, filters preserve order).
    ranks: Vec<usize>,
    next_rank: usize,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// A campaign from an explicit scenario list (ranks = positions).
    pub fn from_scenarios(scenarios: Vec<Scenario>) -> Self {
        let ranks = (0..scenarios.len()).collect();
        let next_rank = scenarios.len();
        Campaign {
            scenarios,
            ranks,
            next_rank,
        }
    }

    /// Starts a cartesian grid over one universe.
    pub fn grid(universe: Universe) -> GridBuilder {
        GridBuilder::new(universe)
    }

    /// Appends a scenario; returns its rank.
    pub fn push(&mut self, scenario: Scenario) -> usize {
        let rank = self.next_rank;
        self.next_rank += 1;
        self.scenarios.push(scenario);
        self.ranks.push(rank);
        rank
    }

    /// Appends every scenario of `other`, re-ranking them to continue this
    /// campaign's rank sequence (grids built separately can be chained into
    /// one campaign).
    pub fn append(&mut self, other: Campaign) {
        for scenario in other.scenarios {
            self.push(scenario);
        }
    }

    /// The scenarios, in rank order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The rank of each scenario, parallel to
    /// [`scenarios`](Self::scenarios); strictly increasing.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` if there is nothing to run.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Keeps only the scenarios for which `pred(rank, scenario)` holds,
    /// **without renumbering** the survivors: a retained scenario keeps the
    /// rank it had in the full campaign, so its outcome merges back into
    /// full-run order.
    pub fn retain(&mut self, mut pred: impl FnMut(usize, &Scenario) -> bool) {
        // One precomputed mask drives both vectors so they stay zipped.
        let mask: Vec<bool> = self
            .ranks
            .iter()
            .zip(self.scenarios.iter())
            .map(|(&rank, s)| pred(rank, s))
            .collect();
        let mut it = mask.iter().copied();
        self.scenarios
            .retain(|_| it.next().expect("mask covers all"));
        let mut it = mask.iter().copied();
        self.ranks.retain(|_| it.next().expect("mask covers all"));
    }

    /// Removes every scenario that `store` already holds a matching outcome
    /// for (same campaign `key`, same rank, byte-identical serialized spec)
    /// and returns those stored outcomes, in rank order.
    ///
    /// The spec comparison is what makes resumption safe: an outcome is
    /// only reused if the stored scenario is *exactly* the one this
    /// campaign would run — a store written by an older grid silently
    /// mismatches and the scenario reruns.
    pub fn skip_completed(&mut self, store: &OutcomeStore, key: &str) -> Vec<ScenarioOutcome> {
        let scenarios = std::mem::take(&mut self.scenarios);
        let ranks = std::mem::take(&mut self.ranks);
        let mut reused = Vec::new();
        for (scenario, rank) in scenarios.into_iter().zip(ranks) {
            match store.lookup(key, rank, &scenario) {
                Some(outcome) => reused.push(outcome),
                None => {
                    self.scenarios.push(scenario);
                    self.ranks.push(rank);
                }
            }
        }
        reused
    }

    /// Runs every scenario sequentially, in rank order. Equivalent to
    /// `run_parallel(1)`; kept as the obvious reference implementation the
    /// differential tests compare against.
    pub fn run_sequential(&self) -> Vec<ScenarioOutcome> {
        self.scenarios
            .iter()
            .zip(self.ranks.iter())
            .map(|(s, &rank)| {
                let mut out = s.run();
                out.rank = rank;
                out
            })
            .collect()
    }

    /// Runs the campaign on `threads` OS worker threads (pass `1` to force
    /// the sequential path, `usize::MAX` for one worker per hardware
    /// thread) and returns outcomes **in rank order**.
    ///
    /// Workers steal scenario indexes off a shared atomic counter — the
    /// proven `sweep_matrix` pattern, via [`st_core::parallel`] — so a
    /// worker that drew cheap scenarios (small budgets, early deciders)
    /// loops back for more while a slow one is still grinding. Each
    /// scenario builds its own simulator, generator, and protocol stack
    /// inside the worker; nothing is shared, and the parts are merged in
    /// ascending rank order. **The returned list is therefore identical for
    /// every thread count**, oversubscription included (differential-tested
    /// in `tests/determinism.rs`).
    pub fn run_parallel(&self, threads: usize) -> Vec<ScenarioOutcome> {
        let workers = resolve_workers(threads);
        if workers == 1 || self.scenarios.len() <= 1 {
            return self.run_sequential();
        }
        let parts = steal_chunks(
            self.scenarios.len() as u64,
            workers,
            1,
            || (),
            |_, first, last| {
                debug_assert_eq!(last, first + 1, "scenario chunks are single indexes");
                let idx = first as usize;
                let mut out = self.scenarios[idx].run();
                out.rank = self.ranks[idx];
                out
            },
        );
        parts.into_iter().map(|(_, out)| out).collect()
    }

    /// The resumable drive: reuses every outcome `resume` already holds for
    /// this campaign (under `key`), runs only the remainder on `threads`
    /// workers, and returns the merged outcome list — **byte-identical to
    /// an uninterrupted [`run_parallel`](Self::run_parallel)**, because reused and fresh
    /// outcomes carry their permanent ranks and merge in rank order.
    ///
    /// When `record` is given, every returned outcome (reused and fresh
    /// alike) is recorded into it together with its serialized scenario
    /// spec, in rank order — so the store written by a resumed sweep is
    /// byte-identical to the store an uninterrupted sweep writes.
    pub fn run_resumed(
        &self,
        threads: usize,
        key: &str,
        resume: Option<&OutcomeStore>,
        record: Option<&mut OutcomeStore>,
    ) -> Vec<ScenarioOutcome> {
        let mut pending = self.clone();
        let reused = match resume {
            Some(store) => pending.skip_completed(store, key),
            None => Vec::new(),
        };
        let fresh = pending.run_parallel(threads);
        let merged = merge_outcomes(reused, fresh);
        if let Some(store) = record {
            for out in &merged {
                let idx = self
                    .ranks
                    .binary_search(&out.rank)
                    .expect("merged ranks come from this campaign");
                store.record(key, &self.scenarios[idx], out);
            }
        }
        merged
    }
}

/// What a [`Campaign::run_chunked`] observer tells the drive after each
/// checkpointed chunk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChunkControl {
    /// Keep executing the remaining scenarios.
    Continue,
    /// Stop after this chunk (cancellation, shutdown). Everything recorded
    /// so far stays recorded; a later run resumes from the store.
    Stop,
}

impl Campaign {
    /// Rebuilds a campaign from explicit `(rank, scenario)` pairs — the
    /// inverse of reading [`ranks`](Self::ranks) ×
    /// [`scenarios`](Self::scenarios), used by `st-serve` to reconstruct a
    /// submitted campaign from its wire/persisted spec. Ranks must be
    /// strictly increasing (the invariant every campaign maintains); a
    /// violation is a typed error, never a silently reordered campaign.
    pub fn from_ranked(
        entries: impl IntoIterator<Item = (usize, Scenario)>,
    ) -> Result<Campaign, String> {
        let mut campaign = Campaign::new();
        for (rank, scenario) in entries {
            if let Some(&prev) = campaign.ranks.last() {
                if prev >= rank {
                    return Err(format!(
                        "campaign ranks must be strictly increasing, got {prev} then {rank}"
                    ));
                }
            }
            campaign.scenarios.push(scenario);
            campaign.ranks.push(rank);
            campaign.next_rank = rank + 1;
        }
        Ok(campaign)
    }

    /// The incremental drive behind `st-serve`: like
    /// [`run_resumed`](Self::run_resumed), but executes the pending
    /// scenarios in rank-order chunks of `chunk`, recording into `record`
    /// as it goes and calling `observer(record, completed, total)` after
    /// every chunk — the daemon's checkpoint-and-cancellation hook.
    ///
    /// Returns the rank-ordered outcomes produced so far and whether the
    /// campaign *finished* (`false` iff the observer returned
    /// [`ChunkControl::Stop`] with scenarios still pending).
    ///
    /// Three properties make this the same sweep as the batch drives:
    ///
    /// - outcomes reused from `resume` are recorded **before** the first
    ///   chunk, so after every observer call `record` holds exactly the
    ///   outcomes completed so far (a store checkpoint is always a valid
    ///   resume point);
    /// - the store inserts in canonical `(campaign, rank)` order, so the
    ///   bytes of `record` after the final chunk are **identical** to what
    ///   [`run_resumed`](Self::run_resumed) records — chunk size, thread
    ///   count, and interrupt history never show in the artifact
    ///   (differential-tested in `tests/chunked.rs`);
    /// - a stopped run resumed from its own checkpoint completes to the
    ///   same bytes as an uninterrupted one.
    ///
    /// When every scenario is already in `resume`, the observer is still
    /// called once (with `completed == total`) so a caller that persists
    /// checkpoints from the observer always writes the final store.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn run_chunked(
        &self,
        threads: usize,
        key: &str,
        resume: Option<&OutcomeStore>,
        record: &mut OutcomeStore,
        chunk: usize,
        mut observer: impl FnMut(&OutcomeStore, usize, usize) -> ChunkControl,
    ) -> (Vec<ScenarioOutcome>, bool) {
        assert!(chunk > 0, "chunk size must be ≥ 1");
        let total = self.len();
        let mut pending = self.clone();
        let reused = match resume {
            Some(store) => pending.skip_completed(store, key),
            None => Vec::new(),
        };
        let record_one = |record: &mut OutcomeStore, out: &ScenarioOutcome| {
            let idx = self
                .ranks
                .binary_search(&out.rank)
                .expect("chunked ranks come from this campaign");
            record.record(key, &self.scenarios[idx], out);
        };
        for out in &reused {
            record_one(record, out);
        }
        let mut outcomes = reused;
        if pending.is_empty() {
            let _ = observer(record, total, total);
            return (outcomes, true);
        }
        let mut start = 0usize;
        let mut finished = true;
        while start < pending.len() {
            let end = (start + chunk).min(pending.len());
            let part = Campaign {
                scenarios: pending.scenarios[start..end].to_vec(),
                ranks: pending.ranks[start..end].to_vec(),
                next_rank: pending.next_rank,
            };
            let fresh = part.run_parallel(threads);
            for out in &fresh {
                record_one(record, out);
            }
            outcomes.extend(fresh);
            start = end;
            let completed = total - (pending.len() - start);
            if observer(record, completed, total) == ChunkControl::Stop {
                finished = start >= pending.len();
                break;
            }
        }
        outcomes.sort_by_key(|o| o.rank);
        (outcomes, finished)
    }
}

/// Merges two rank-sorted outcome lists into one rank-sorted list (the
/// reassembly step of a resumed or partitioned sweep). Ranks are expected
/// to be disjoint — a campaign never yields the same rank twice.
pub fn merge_outcomes(
    mut reused: Vec<ScenarioOutcome>,
    fresh: Vec<ScenarioOutcome>,
) -> Vec<ScenarioOutcome> {
    reused.extend(fresh);
    reused.sort_by_key(|o| o.rank);
    reused
}

/// Cartesian scenario-grid builder: workloads × timeout policies ×
/// generators × crash plans × seeds, in that nesting order (workloads
/// outermost, seeds innermost), all sharing one universe and budget.
///
/// Crash plans are applied with [`GeneratorSpec::crashed`]; the scenario's
/// faulty set is the plan's victims (plus whatever the generator itself
/// silences). The timeout-policy axis
/// ([`timeout_policies`](GridBuilder::timeout_policies)) rewrites each
/// workload's FD policy per cell — it applies to every FD-backed workload,
/// [`Workload::AdversarialAgreement`] cells included; when the axis is not
/// set, workloads keep their own policy and labels are unchanged.
pub struct GridBuilder {
    universe: Universe,
    generators: Vec<GeneratorSpec>,
    crashes: Vec<CrashPlan>,
    seeds: Vec<u64>,
    workloads: Vec<Workload>,
    /// `None` = "the workload's own policy" (the default single axis value,
    /// which also keeps labels in their historical shape).
    policies: Vec<Option<TimeoutPolicySpec>>,
    budget: u64,
    stop: Option<StopRule>,
}

impl GridBuilder {
    fn new(universe: Universe) -> Self {
        GridBuilder {
            universe,
            generators: Vec::new(),
            crashes: vec![CrashPlan::new()],
            seeds: vec![0],
            workloads: Vec::new(),
            policies: vec![None],
            budget: 1_000_000,
            stop: None,
        }
    }

    /// The generator axis.
    pub fn generators(mut self, generators: impl IntoIterator<Item = GeneratorSpec>) -> Self {
        self.generators = generators.into_iter().collect();
        self
    }

    /// The crash axis (defaults to a single empty plan). Include
    /// `CrashPlan::new()` to keep a no-crash arm.
    pub fn crash_plans(mut self, plans: impl IntoIterator<Item = CrashPlan>) -> Self {
        self.crashes = plans.into_iter().collect();
        self
    }

    /// The seed axis (defaults to `[0]`).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The workload axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// One workload (the common case).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workloads = vec![workload];
        self
    }

    /// The FD timeout-policy axis: each cell's workload runs with its
    /// policy replaced by the axis value
    /// ([`Workload::with_policy_spec`](crate::Workload::with_policy_spec)),
    /// and labels gain a policy segment. Defaults to "keep the workload's
    /// own policy" (no label change).
    pub fn timeout_policies(
        mut self,
        policies: impl IntoIterator<Item = TimeoutPolicySpec>,
    ) -> Self {
        self.policies = policies.into_iter().map(Some).collect();
        self
    }

    /// Per-scenario step budget (default 1M).
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the stop rule of every scenario whose workload consults it
    /// (the generator-driven FD and agreement workloads; the adversary and
    /// BG drives own their stop semantics — see [`StopRule`]). Default: the
    /// workload's own rule.
    pub fn stop(mut self, stop: StopRule) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Materializes the cartesian product as a campaign.
    ///
    /// # Panics
    ///
    /// Panics if the generator, workload, or timeout-policy axis is empty —
    /// an empty grid is always a bug in the experiment definition.
    pub fn build(self) -> Campaign {
        assert!(!self.generators.is_empty(), "grid needs ≥ 1 generator");
        assert!(!self.workloads.is_empty(), "grid needs ≥ 1 workload");
        assert!(!self.policies.is_empty(), "grid needs ≥ 1 timeout policy");
        let mut campaign = Campaign::new();
        for (w, workload) in self.workloads.iter().enumerate() {
            for policy in &self.policies {
                let (workload, pol_label) = match policy {
                    None => (workload.clone(), String::new()),
                    Some(spec) => (
                        workload.clone().with_policy_spec(*spec),
                        format!("{}/", spec.name()),
                    ),
                };
                for generator in &self.generators {
                    for (c, plan) in self.crashes.iter().enumerate() {
                        let spec = generator.clone().crashed(plan.clone());
                        for &seed in &self.seeds {
                            // `crash{c}` is the crash-axis *index*: distinct
                            // plans get distinct labels even with equal victim
                            // counts, and generator-silenced processes (e.g.
                            // FictitiousCrash) are not miscounted as plan
                            // victims.
                            let label =
                                format!("w{w}/{pol_label}{}/crash{c}/seed{seed}", spec.family());
                            let mut scenario = Scenario::new(
                                label,
                                self.universe,
                                spec.clone(),
                                workload.clone(),
                                self.budget,
                                seed,
                            );
                            if let Some(stop) = self.stop {
                                scenario.stop = stop;
                            }
                            campaign.push(scenario);
                        }
                    }
                }
            }
        }
        campaign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FdAbi, FdDetector, OutcomeData};
    use st_fd::TimeoutPolicy;

    fn fd_workload() -> Workload {
        Workload::FdConvergence {
            k: 1,
            t: 1,
            policy: TimeoutPolicy::Increment,
            abi: FdAbi::MachineSlot,
            detector: FdDetector::SetBased,
            certify_membership: false,
        }
    }

    #[test]
    fn grid_is_the_cartesian_product_in_axis_order() {
        let u = Universe::new(3).unwrap();
        let campaign = Campaign::grid(u)
            .generators([
                GeneratorSpec::round_robin(),
                GeneratorSpec::seeded_random(0),
            ])
            .seeds([7, 8, 9])
            .workload(fd_workload())
            .budget(10)
            .build();
        assert_eq!(campaign.len(), 6);
        let labels: Vec<&str> = campaign
            .scenarios()
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert_eq!(
            labels,
            [
                "w0/RoundRobin/crash0/seed7",
                "w0/RoundRobin/crash0/seed8",
                "w0/RoundRobin/crash0/seed9",
                "w0/SeededRandom/crash0/seed7",
                "w0/SeededRandom/crash0/seed8",
                "w0/SeededRandom/crash0/seed9",
            ]
        );
        assert_eq!(campaign.ranks(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn policy_axis_rewrites_workloads_and_labels() {
        let u = Universe::new(3).unwrap();
        let campaign = Campaign::grid(u)
            .generators([GeneratorSpec::round_robin()])
            .workload(fd_workload())
            .timeout_policies([TimeoutPolicySpec::Increment, TimeoutPolicySpec::Double])
            .budget(10)
            .build();
        assert_eq!(campaign.len(), 2);
        assert_eq!(
            campaign.scenarios()[0].label,
            "w0/Increment/RoundRobin/crash0/seed0"
        );
        assert_eq!(
            campaign.scenarios()[1].label,
            "w0/Double/RoundRobin/crash0/seed0"
        );
        let policy_of = |s: &Scenario| match s.workload {
            Workload::FdConvergence { policy, .. } => policy,
            _ => unreachable!(),
        };
        assert_eq!(
            policy_of(&campaign.scenarios()[0]),
            TimeoutPolicy::Increment
        );
        assert_eq!(policy_of(&campaign.scenarios()[1]), TimeoutPolicy::Double);
    }

    #[test]
    fn outcomes_come_back_in_rank_order() {
        let u = Universe::new(3).unwrap();
        let campaign = Campaign::grid(u)
            .generators([GeneratorSpec::round_robin()])
            .seeds(0..5)
            .workload(fd_workload())
            .budget(2_000)
            .build();
        let out = campaign.run_parallel(3);
        assert_eq!(out.len(), 5);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.rank, i);
            assert!(matches!(o.data, OutcomeData::Fd(_)));
        }
    }

    #[test]
    fn retain_preserves_ranks_and_push_continues_them() {
        let u = Universe::new(3).unwrap();
        let mut campaign = Campaign::grid(u)
            .generators([GeneratorSpec::round_robin()])
            .seeds(0..5)
            .workload(fd_workload())
            .budget(500)
            .build();
        campaign.retain(|rank, _| rank % 2 == 0);
        assert_eq!(campaign.ranks(), [0, 2, 4]);
        let out = campaign.run_parallel(2);
        let got: Vec<usize> = out.iter().map(|o| o.rank).collect();
        assert_eq!(got, [0, 2, 4], "retained scenarios keep their ranks");
        // A later push continues the original sequence, not the filtered
        // length.
        let rank = campaign.push(campaign.scenarios()[0].clone());
        assert_eq!(rank, 5);
    }

    #[test]
    fn budget_only_override_outlives_the_decision() {
        use st_sim::RunStatus;
        let u = Universe::new(3).unwrap();
        let p = st_core::ProcSet::from_indices([0]);
        let q = st_core::ProcSet::from_indices([0, 1, 2]);
        let workload = Workload::Agreement {
            t: 1,
            k: 1,
            inputs: vec![10, 20, 30],
            policy: TimeoutPolicy::Increment,
            certify: None,
        };
        let spec = GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0));
        let grid = |stop: Option<crate::StopRule>| {
            let mut b = Campaign::grid(u)
                .generators([spec.clone()])
                .seeds([8])
                .workload(workload.clone())
                .budget(400_000);
            if let Some(s) = stop {
                b = b.stop(s);
            }
            b.build().run_sequential().remove(0)
        };
        // Default: stops at all-decided.
        let decided = grid(None);
        let decided = decided.data.as_agreement().unwrap();
        assert_eq!(decided.status, RunStatus::Stopped);
        assert!(decided.clean);
        // BudgetOnly override: same decisions, but the run burns the whole
        // budget past the decision point.
        let full = grid(Some(crate::StopRule::BudgetOnly));
        let full = full.data.as_agreement().unwrap();
        assert_eq!(full.status, RunStatus::MaxSteps);
        assert_eq!(full.decisions, decided.decisions);
    }

    #[test]
    fn failed_certification_skips_the_drive() {
        use crate::scenario::CertifyTimely;
        use st_sim::RunStatus;
        let u = Universe::new(3).unwrap();
        let workload = Workload::Agreement {
            t: 1,
            k: 1,
            inputs: vec![1, 2, 3],
            policy: TimeoutPolicy::Increment,
            // cap = 1 on a random schedule: no singleton is 1-timely wrt
            // the whole universe, so certification must fail.
            certify: Some(CertifyTimely {
                i: 1,
                j: 3,
                cap: 1,
                prefix_len: 2_000,
            }),
        };
        let scenario = Scenario::new(
            "uncertified",
            u,
            GeneratorSpec::seeded_random(0),
            workload,
            500_000,
            5,
        );
        let run = scenario.run();
        let run = run.data.as_agreement().unwrap();
        assert_eq!(run.certified, Some(false));
        // Zero-budget drive: the mismatch verdict is known, so the budget
        // is not burned — no process ever stepped.
        assert_eq!(run.status, RunStatus::MaxSteps);
        assert!(run.decisions.iter().all(|d| d.is_none()));
    }

    #[test]
    #[should_panic(expected = "≥ 1 generator")]
    fn empty_generator_axis_rejected() {
        let _ = Campaign::grid(Universe::new(2).unwrap())
            .workload(fd_workload())
            .build();
    }
}
