//! The always-on invariant checker: every scenario execution is a
//! correctness probe, not just a table row.
//!
//! [`Scenario::run`](crate::Scenario::run) assembles an [`InvariantChecker`]
//! from the scenario's own spec — which timeliness guarantee the generator
//! makes by construction, which crash/outage windows it promises — and
//! replays those claims against the run's evidence: the recorded executed
//! [`Schedule`], the agreement checker's verdicts, the Paxos ballot
//! registers, and the FD stabilization judgment. Violations land in
//! [`ScenarioOutcome::violations`](crate::ScenarioOutcome) as typed values
//! the store codec round-trips; when any fire, the executed schedule is
//! kept as a replayable counterexample.
//!
//! What is armed for which workload:
//!
//! - **Agreement** — k-agreement (≤ k distinct values), validity, and
//!   termination-under-budget lifted from the `st-core` outcome checker
//!   (termination only when the generator *owes* it: a root
//!   [`SetTimely`](st_sched::SetTimely) spec with a surviving `P` member
//!   and no failed pre-run certification); ballot-ownership sanity on every
//!   Paxos register (`b ≡ pid + 1 (mod n)`, `bal ≤ mbal`); guarantee and
//!   crash-window certification on the executed schedule.
//! - **FdConvergence** — accusation sanity: a stabilized winnerset must
//!   contain a correct process (all-correct-accused-forever contradicts
//!   Lemma 22); guarantee and crash-window certification as above.
//! - **Adversarial / BG** — nothing: the adversary *aims* for
//!   non-termination and owns its schedule, and the BG reduction does not
//!   expose an executed host schedule; their existing verdict fields
//!   (`safe`, `blocked`, certificates) already carry the judgment.

use std::fmt;

use st_agreement::PaxosRecord;
use st_core::timeliness::empirical_bound;
use st_core::{AgreementViolation, ProcSet, ProcessId, Schedule, TimelyPair, Value};
use st_sched::GeneratorSpec;

use crate::scenario::{OutcomeData, Scenario, Workload};

/// A violated invariant, as typed data. Canonical-JSON encodable by the
/// outcome store; `Display` renders the CLI's one-line form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InvariantViolation {
    /// More than `k` distinct values decided.
    KAgreement {
        /// The distinct decided values.
        values: Vec<Value>,
        /// Maximum allowed count `k`.
        k: usize,
    },
    /// A process decided a value nobody proposed.
    Validity {
        /// Index of the deciding process.
        process: usize,
        /// The invalid decided value.
        value: Value,
    },
    /// A correct process failed to decide although the generator's
    /// constructive guarantee owed termination within the budget.
    Termination {
        /// Indexes of correct processes that did not decide.
        undecided: Vec<usize>,
    },
    /// A Paxos register held a ballot its owner could not have produced
    /// (`ballot(round, me) = round·n + me + 1`), or an accepted ballot above
    /// the promised one.
    BallotOwnership {
        /// The k-parallel Paxos instance.
        instance: usize,
        /// The register's owning process.
        process: usize,
        /// The register's promised ballot.
        mbal: u64,
        /// The register's accepted ballot.
        bal: u64,
    },
    /// The FD stabilized on a winnerset containing no correct process —
    /// every process that was timely throughout ended up accused forever.
    AccusedTimelyWinnerset {
        /// The stabilized winnerset.
        winnerset: ProcSet,
    },
    /// The executed schedule broke the timeliness bound the generator
    /// guarantees by construction.
    GuaranteeBroken {
        /// The guaranteed timely set.
        p: ProcSet,
        /// The observed set.
        q: ProcSet,
        /// The guaranteed bound.
        bound: usize,
        /// The observed empirical bound.
        observed: usize,
    },
    /// A process took a step inside a window its generator promised it
    /// silent in (crash window, or crash-recovery outage window).
    CrashWindowResurrection {
        /// The resurrected process.
        process: usize,
        /// The offending schedule position.
        position: u64,
    },
    /// The lean FD stabilized on a leader the generator silenced — every
    /// correct process trusts a faulty one forever (the large-n analogue of
    /// [`AccusedTimelyWinnerset`](Self::AccusedTimelyWinnerset)).
    FaultyLeaderElected {
        /// The stabilized faulty leader index.
        leader: usize,
    },
}

impl InvariantViolation {
    /// The variant name — the shrinker's preservation key (a candidate is
    /// accepted only if the *same kind* of violation still fires) and the
    /// coverage map's violation feature.
    pub fn kind(&self) -> &'static str {
        match self {
            InvariantViolation::KAgreement { .. } => "KAgreement",
            InvariantViolation::Validity { .. } => "Validity",
            InvariantViolation::Termination { .. } => "Termination",
            InvariantViolation::BallotOwnership { .. } => "BallotOwnership",
            InvariantViolation::AccusedTimelyWinnerset { .. } => "AccusedTimelyWinnerset",
            InvariantViolation::GuaranteeBroken { .. } => "GuaranteeBroken",
            InvariantViolation::CrashWindowResurrection { .. } => "CrashWindowResurrection",
            InvariantViolation::FaultyLeaderElected { .. } => "FaultyLeaderElected",
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::KAgreement { values, k } => write!(
                f,
                "k-agreement violated: {} distinct values (k = {k})",
                values.len()
            ),
            InvariantViolation::Validity { process, value } => {
                write!(f, "validity violated: p{process} decided unproposed {value}")
            }
            InvariantViolation::Termination { undecided } => write!(
                f,
                "termination violated: {} correct processes undecided under a guaranteed-timely schedule",
                undecided.len()
            ),
            InvariantViolation::BallotOwnership {
                instance,
                process,
                mbal,
                bal,
            } => write!(
                f,
                "ballot ownership violated: instance {instance} register of p{process} holds mbal {mbal} / bal {bal}"
            ),
            InvariantViolation::AccusedTimelyWinnerset { winnerset } => write!(
                f,
                "accusation sanity violated: stabilized winnerset {winnerset} contains no correct process"
            ),
            InvariantViolation::GuaranteeBroken {
                p,
                q,
                bound,
                observed,
            } => write!(
                f,
                "schedule guarantee broken: {p} wrt {q} bound {bound}, observed {observed}"
            ),
            InvariantViolation::CrashWindowResurrection { process, position } => write!(
                f,
                "crash window violated: p{process} stepped at position {position}"
            ),
            InvariantViolation::FaultyLeaderElected { leader } => write!(
                f,
                "leader sanity violated: lean FD stabilized on faulty leader p{leader}"
            ),
        }
    }
}

/// Evidence a workload drive hands the checker alongside its outcome data.
#[derive(Default)]
pub(crate) struct Evidence {
    /// The executed schedule, when the drive recorded one.
    pub executed: Option<Schedule>,
    /// Per-instance Paxos registers `(n, records[instance][process])`, when
    /// the stack exposed them.
    pub ballots: Option<(usize, Vec<Vec<PaxosRecord>>)>,
}

/// The claims a scenario's generator makes by construction, ready to be
/// replayed against a finished run. Built by
/// [`InvariantChecker::for_scenario`]; see the module docs for the rules.
pub struct InvariantChecker {
    /// Root-level `SetTimely` guarantee, when it survives the faulty set.
    guarantee: Option<TimelyPair>,
    /// `(process, from, to)` absence windows (`to = u64::MAX` for plain
    /// crashes).
    windows: Vec<(ProcessId, u64, u64)>,
    /// The scenario's faulty set (accusation- and leader-sanity yardstick;
    /// the *faulty* side is held because its complement is not
    /// representable as a `ProcSet` in large-n universes).
    faulty: ProcSet,
}

impl InvariantChecker {
    /// Derives the checkable claims from the scenario's spec.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        // Only generator-driven workloads execute the spec's schedule; the
        // adversary ignores the generator and BG re-linearizes it. The lean
        // replay drives execute the generated schedule verbatim.
        let generator_drives = matches!(
            scenario.workload,
            Workload::FdConvergence { .. }
                | Workload::Agreement { .. }
                | Workload::LeanConvergence { .. }
                | Workload::LeanAgreement { .. }
                | Workload::WideFdConvergence { .. }
        );
        let (guarantee, windows) = if generator_drives {
            (
                spec_guarantee(&scenario.generator, scenario.faulty),
                spec_windows(&scenario.generator),
            )
        } else {
            (None, Vec::new())
        };
        InvariantChecker {
            guarantee,
            windows,
            faulty: scenario.faulty,
        }
    }

    /// Whether the generator owes termination-under-budget: a constructive
    /// timeliness guarantee makes the task solvable on this schedule, so a
    /// correct process left undecided is a protocol bug, not an artifact.
    pub fn termination_owed(&self) -> bool {
        self.guarantee.is_some()
    }

    /// The armed root guarantee, if any (coverage feature: which Π sets a
    /// fuzz scenario exercises with claims attached).
    pub fn guarantee(&self) -> Option<TimelyPair> {
        self.guarantee
    }

    /// How many absence windows are armed.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Replays every armed claim against the outcome and evidence.
    pub(crate) fn check(&self, data: &OutcomeData, evidence: &Evidence) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        match data {
            OutcomeData::Agreement(a) => {
                // A failed pre-run certification means the schedule was
                // never shown to conform; the drive is skipped and no
                // obligation is owed.
                let certified_off = a.certified == Some(false);
                for v in &a.violations {
                    match v {
                        AgreementViolation::KAgreement { values, k } => {
                            violations.push(InvariantViolation::KAgreement {
                                values: values.clone(),
                                k: *k,
                            });
                        }
                        AgreementViolation::Validity { process, value } => {
                            violations.push(InvariantViolation::Validity {
                                process: *process,
                                value: *value,
                            });
                        }
                        AgreementViolation::Termination { undecided } => {
                            if self.termination_owed() && !certified_off {
                                violations.push(InvariantViolation::Termination {
                                    undecided: undecided.clone(),
                                });
                            }
                        }
                    }
                }
                if let Some((n, instances)) = &evidence.ballots {
                    check_ballots(*n, instances, &mut violations);
                }
            }
            OutcomeData::Fd(f) => {
                // Accusation sanity: a stabilized winnerset entirely inside
                // the faulty set (i.e. disjoint from the correct set) means
                // every process that was timely throughout ended up accused
                // forever — the opposite of what Lemma 22 promises.
                if let Some(st) = &f.stabilization {
                    if st.winnerset.is_subset(self.faulty) {
                        violations.push(InvariantViolation::AccusedTimelyWinnerset {
                            winnerset: st.winnerset,
                        });
                    }
                }
            }
            OutcomeData::Lean(l) => {
                // Leader sanity: a stabilized leader the generator silenced
                // means every correct process trusts a faulty one forever.
                // Faulty sets only name indices below the ProcSet capacity,
                // so a larger leader index is trivially correct.
                if let Some(st) = &l.stabilization {
                    if st.leader < st_core::PROCSET_CAPACITY
                        && self.faulty.contains(ProcessId::new(st.leader))
                    {
                        violations
                            .push(InvariantViolation::FaultyLeaderElected { leader: st.leader });
                    }
                }
                // Consensus (k = 1) agreement: ≤ 1 distinct decided value.
                if l.distinct_values.len() > 1 {
                    violations.push(InvariantViolation::KAgreement {
                        values: l.distinct_values.clone(),
                        k: 1,
                    });
                }
            }
            OutcomeData::WideFd(w) => {
                // Accusation sanity at any width: members at or above the
                // ProcSet capacity are trivially correct (faulty sets cannot
                // name them), so the violation fires only when every member
                // is both nameable and faulty — in which case the winnerset
                // fits in a ProcSet and reuses the narrow violation.
                if let Some(st) = &w.stabilization {
                    let all_faulty = !st.members.is_empty()
                        && st.members.iter().all(|&m| {
                            m < st_core::PROCSET_CAPACITY && self.faulty.contains(ProcessId::new(m))
                        });
                    if all_faulty {
                        violations.push(InvariantViolation::AccusedTimelyWinnerset {
                            winnerset: ProcSet::from_indices(st.members.iter().copied()),
                        });
                    }
                }
            }
            OutcomeData::Adversarial(_) | OutcomeData::Bg(_) => {}
        }
        if let Some(s) = &evidence.executed {
            if let Some(g) = &self.guarantee {
                let observed = empirical_bound(s, g.p, g.q);
                if observed > g.bound {
                    violations.push(InvariantViolation::GuaranteeBroken {
                        p: g.p,
                        q: g.q,
                        bound: g.bound,
                        observed,
                    });
                }
            }
            for &(p, from, to) in &self.windows {
                if let Err(position) = st_sched::validate::certify_absence_window(s, p, from, to) {
                    violations.push(InvariantViolation::CrashWindowResurrection {
                        process: p.index(),
                        position,
                    });
                }
            }
        }
        violations
    }
}

fn check_ballots(
    n: usize,
    instances: &[Vec<PaxosRecord>],
    violations: &mut Vec<InvariantViolation>,
) {
    for (instance, records) in instances.iter().enumerate() {
        for (process, rec) in records.iter().enumerate() {
            // `ballot(round, me) = round·n + me + 1` ⇒ every ballot in the
            // register of process `me` is ≡ me + 1 (mod n); 0 means "none".
            let owned = |b: u64| b == 0 || b % n as u64 == ((process + 1) % n) as u64;
            if !owned(rec.mbal) || !owned(rec.bal) || rec.bal > rec.mbal {
                violations.push(InvariantViolation::BallotOwnership {
                    instance,
                    process,
                    mbal: rec.mbal,
                    bal: rec.bal,
                });
            }
        }
    }
}

/// The timeliness guarantee a spec's *root* makes constructively: a
/// [`SetTimely`](st_sched::SetTimely) root enforces its bound on every
/// emitted prefix as long as some `P` member survives the faulty set.
/// Decorated or non-conforming roots guarantee nothing unconditionally —
/// flapping suspends enforcement, gray/clog change emitted positions, and
/// random/rotation schedules only have empirical bounds.
fn spec_guarantee(spec: &GeneratorSpec, faulty: ProcSet) -> Option<TimelyPair> {
    match spec {
        GeneratorSpec::SetTimely { p, q, bound, .. } if !p.is_subset(faulty) => Some(TimelyPair {
            p: *p,
            q: *q,
            bound: *bound,
        }),
        // A replay stands in for the run that produced its schedule: it
        // inherits the carried spec's claims, which is what keeps the
        // shrinker's oracle armed on truncated schedules.
        GeneratorSpec::Replay { of, .. } => spec_guarantee(of, faulty),
        _ => None,
    }
}

/// The absence windows a spec's *root* promises about emitted positions.
/// Only root-level [`CrashAfter`](st_sched::CrashAfter) and
/// [`CrashRecovery`](st_sched::CrashRecovery) count: their emitted-step
/// clocks coincide with output positions, whereas nested plans (e.g. a
/// crash-filtered `SetTimely` filler) count inner positions that injections
/// shift.
fn spec_windows(spec: &GeneratorSpec) -> Vec<(ProcessId, u64, u64)> {
    match spec {
        GeneratorSpec::CrashAfter { plan, .. } => plan
            .entries()
            .map(|(p, step)| (p, step, u64::MAX))
            .collect(),
        GeneratorSpec::CrashRecovery {
            victim,
            crash,
            rejoin,
            ..
        } => vec![(*victim, *crash, *rejoin)],
        GeneratorSpec::Replay { of, .. } => spec_windows(of),
        _ => Vec::new(),
    }
}
