//! The outcome store: campaign results on disk, versioned and resumable.
//!
//! An [`OutcomeStore`] is the persistence half of the campaign engine: a
//! flat list of `(campaign key, rank, serialized scenario spec, outcome)`
//! entries in the workspace's hand-rolled canonical JSON
//! ([`st_core::json`], the same offline-shim-compatible dialect as
//! `BENCH_timeliness.json`). The format is versioned by the [`SCHEMA`]
//! string; loading any other version is a typed
//! [`StoreError::SchemaMismatch`], never a panic or a silent partial
//! resume.
//!
//! # The resume lifecycle
//!
//! 1. A sweep runs with a store attached
//!    ([`Campaign::run_resumed`](crate::Campaign::run_resumed) with
//!    `record`): every outcome is recorded with its rank and its serialized
//!    scenario spec, and the store is [`save`](OutcomeStore::save)d.
//! 2. The sweep is interrupted (or deliberately
//!    [`retain`](crate::Campaign::retain)-filtered); the store holds the
//!    completed prefix-or-subset.
//! 3. A later run [`load`](OutcomeStore::load)s the store and passes it as
//!    `resume`: [`skip_completed`](crate::Campaign::skip_completed) reuses
//!    an entry only when campaign key, rank, **and the serialized spec**
//!    all match, so stale stores (edited grids, changed budgets or seeds)
//!    silently fall back to re-running the scenario.
//! 4. Reused and fresh outcomes merge in rank order: the outcome list —
//!    and the store the resumed run writes — is **byte-identical** to an
//!    uninterrupted run's, at any worker count (differential- and
//!    property-tested in `tests/resume.rs`).
//!
//! Canonical writing makes the byte-identity possible: object members keep
//! insertion order, every number is an exact `u64`, and entries are written
//! one per line in recording order (campaign key by campaign key, rank
//! ascending within each).

use std::fmt;
use std::path::Path;

use st_core::{Json, JsonError, ProcSet, ProcessId};
use st_fd::TimeoutPolicy;
use st_sched::{CrashPlan, GeneratorSpec};
use st_sim::RunStatus;

use crate::invariant::InvariantViolation;
use crate::scenario::{
    AdversarialOutcome, AgreementScenarioOutcome, BgOutcome, CertifyTimely, FdAbi, FdDetector,
    FdOutcome, FleetReplayDrive, LeanOutcome, LeanStabilization, OutcomeData, Scenario,
    ScenarioOutcome, StopRule, WideFdOutcome, WideFdStabilization, Workload,
};

/// The on-disk schema this build writes and accepts. v2 added the
/// invariant-checker fields (`violations`, `counterexample`) to every
/// outcome and the fault-decorator generator kinds.
pub const SCHEMA: &str = "st-campaign/outcome-store-v2";

/// Why a store failed to load or parse.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not valid JSON (with the byte offset of the failure).
    Json(JsonError),
    /// The document parsed but is not a well-formed store.
    Malformed(String),
    /// The store was written by a different schema version. Resuming from
    /// it is refused outright — a partial reuse across versions could
    /// silently mix incompatible outcomes.
    SchemaMismatch {
        /// The `"schema"` string found in the file.
        found: String,
        /// The version this build writes ([`SCHEMA`]).
        expected: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "outcome store I/O error: {e}"),
            StoreError::Json(e) => write!(f, "outcome store is not valid JSON: {e}"),
            StoreError::Malformed(m) => write!(f, "outcome store is malformed: {m}"),
            StoreError::SchemaMismatch { found, expected } => write!(
                f,
                "outcome store schema mismatch: file has {found:?}, this build reads {expected:?} \
                 — rerun without --resume (or regenerate the store)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<JsonError> for StoreError {
    fn from(e: JsonError) -> Self {
        StoreError::Json(e)
    }
}

/// One recorded result: which campaign, which rank, exactly which scenario
/// (as its canonical serialization), and what it produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreEntry {
    /// The campaign key the recording run used (e.g. the experiment id).
    pub campaign: String,
    /// The scenario's permanent rank in that campaign.
    pub rank: usize,
    /// The scenario spec, serialized canonically at recording time.
    scenario: Json,
    /// The outcome.
    pub outcome: ScenarioOutcome,
}

/// A persistable, resumable collection of campaign outcomes. See the
/// module docs for the lifecycle and the [`SCHEMA`] versioning rule.
#[derive(Clone, Default, Debug)]
pub struct OutcomeStore {
    entries: Vec<StoreEntry>,
}

impl OutcomeStore {
    /// An empty store.
    pub fn new() -> Self {
        OutcomeStore::default()
    }

    /// Number of recorded outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in recording order.
    pub fn entries(&self) -> &[StoreEntry] {
        &self.entries
    }

    /// Records one outcome under `key`, keyed by the outcome's rank and the
    /// scenario's canonical serialization. Re-recording the same
    /// `(key, rank)` replaces the entry; new entries are inserted in
    /// `(campaign, rank)` order, so a store's bytes depend only on its
    /// *contents*, never on the order outcomes were recorded in — merging
    /// a resumed run's entries into a seeded store reproduces the
    /// uninterrupted store byte for byte.
    pub fn record(&mut self, key: &str, scenario: &Scenario, outcome: &ScenarioOutcome) {
        let entry = StoreEntry {
            campaign: key.to_string(),
            rank: outcome.rank,
            scenario: encode_scenario(scenario),
            outcome: outcome.clone(),
        };
        let probe = self
            .entries
            .binary_search_by(|e| (e.campaign.as_str(), e.rank).cmp(&(key, outcome.rank)));
        match probe {
            Ok(idx) => self.entries[idx] = entry,
            Err(idx) => self.entries.insert(idx, entry),
        }
    }

    /// The stored outcome for `(key, rank)`, **only** if the stored
    /// scenario spec is byte-identical to `scenario`'s canonical
    /// serialization — the staleness guard resumption relies on.
    pub fn lookup(&self, key: &str, rank: usize, scenario: &Scenario) -> Option<ScenarioOutcome> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.campaign == key && e.rank == rank)?;
        if entry.scenario == encode_scenario(scenario) {
            Some(entry.outcome.clone())
        } else {
            None
        }
    }

    /// Keeps only the entries for which `pred` holds (maintenance:
    /// truncating a store to simulate an interrupt, dropping a stale
    /// campaign, …).
    pub fn retain(&mut self, mut pred: impl FnMut(usize, &StoreEntry) -> bool) {
        let mut idx = 0usize;
        self.entries.retain(|e| {
            let keep = pred(idx, e);
            idx += 1;
            keep
        });
    }

    /// Serializes the whole store canonically: schema header, then one
    /// entry per line in `(campaign, rank)` order.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("\"schema\": {},\n", Json::str(SCHEMA)));
        out.push_str("\"entries\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let obj = Json::obj([
                ("campaign", Json::str(entry.campaign.clone())),
                ("rank", Json::U64(entry.rank as u64)),
                ("scenario", entry.scenario.clone()),
                ("outcome", encode_outcome(&entry.outcome)),
            ]);
            out.push_str(&obj.to_string());
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Parses a store document, verifying the schema version first.
    pub fn from_json_str(text: &str) -> Result<Self, StoreError> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| StoreError::Malformed("missing \"schema\" string".into()))?;
        if schema != SCHEMA {
            return Err(StoreError::SchemaMismatch {
                found: schema.to_string(),
                expected: SCHEMA,
            });
        }
        let raw = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| StoreError::Malformed("missing \"entries\" array".into()))?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let campaign = str_field(e, "campaign")
                .map_err(|m| StoreError::Malformed(format!("entry {i}: {m}")))?
                .to_string();
            let rank = u64_field(e, "rank")
                .map_err(|m| StoreError::Malformed(format!("entry {i}: {m}")))?
                as usize;
            let scenario = e
                .get("scenario")
                .cloned()
                .ok_or_else(|| StoreError::Malformed(format!("entry {i}: missing scenario")))?;
            let outcome = decode_outcome(
                e.get("outcome")
                    .ok_or_else(|| StoreError::Malformed(format!("entry {i}: missing outcome")))?,
            )
            .map_err(|m| StoreError::Malformed(format!("entry {i}: {m}")))?;
            if outcome.rank != rank {
                return Err(StoreError::Malformed(format!(
                    "entry {i}: entry rank {rank} disagrees with outcome rank {}",
                    outcome.rank
                )));
            }
            entries.push(StoreEntry {
                campaign,
                rank,
                scenario,
                outcome,
            });
        }
        // Canonical order regardless of file order (writer-produced files
        // are already sorted; hand-reordered ones are re-canonicalized so
        // `record`'s sorted insertion stays valid). Duplicate keys would
        // make lookups ambiguous — reject them.
        entries.sort_by(|a, b| (a.campaign.as_str(), a.rank).cmp(&(b.campaign.as_str(), b.rank)));
        if let Some(w) = entries
            .windows(2)
            .find(|w| (w[0].campaign.as_str(), w[0].rank) == (w[1].campaign.as_str(), w[1].rank))
        {
            return Err(StoreError::Malformed(format!(
                "duplicate entries for campaign {:?} rank {}",
                w[0].campaign, w[0].rank
            )));
        }
        Ok(OutcomeStore { entries })
    }

    /// Loads a store file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json_str(&text)
    }

    /// Writes the store file ([`to_json_string`](Self::to_json_string)).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_json_string())?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Scenario / spec encoding (canonical; the staleness-guard comparison key).
// ---------------------------------------------------------------------------

fn bits(set: ProcSet) -> Json {
    Json::U64(set.bits())
}

fn opt_bits(set: &Option<ProcSet>) -> Json {
    match set {
        Some(s) => bits(*s),
        None => Json::Null,
    }
}

fn pid(p: ProcessId) -> Json {
    Json::U64(p.index() as u64)
}

fn policy_name(policy: TimeoutPolicy) -> Json {
    Json::str(match policy {
        TimeoutPolicy::Increment => "Increment",
        TimeoutPolicy::Double => "Double",
    })
}

fn crash_plan(plan: &CrashPlan) -> Json {
    Json::arr(
        plan.entries()
            .map(|(p, step)| Json::arr([pid(p), Json::U64(step)])),
    )
}

fn encode_generator(spec: &GeneratorSpec) -> Json {
    match spec {
        GeneratorSpec::RoundRobin { over } => {
            Json::obj([("kind", Json::str("RoundRobin")), ("over", opt_bits(over))])
        }
        GeneratorSpec::Bursty { burst } => {
            Json::obj([("kind", Json::str("Bursty")), ("burst", Json::U64(*burst))])
        }
        GeneratorSpec::SeededRandom {
            over,
            seed_offset,
            weights,
        } => Json::obj([
            ("kind", Json::str("SeededRandom")),
            ("over", opt_bits(over)),
            ("seed_offset", Json::U64(*seed_offset)),
            (
                "weights",
                match weights {
                    Some(w) => Json::arr(w.iter().map(|&x| Json::U64(x as u64))),
                    None => Json::Null,
                },
            ),
        ]),
        GeneratorSpec::SetTimely {
            p,
            q,
            bound,
            filler,
            crashes,
        } => Json::obj([
            ("kind", Json::str("SetTimely")),
            ("p", bits(*p)),
            ("q", bits(*q)),
            ("bound", Json::U64(*bound as u64)),
            ("filler", encode_generator(filler)),
            ("crashes", crash_plan(crashes)),
        ]),
        GeneratorSpec::Eventually {
            prefix,
            prefix_len,
            body,
        } => Json::obj([
            ("kind", Json::str("Eventually")),
            ("prefix", encode_generator(prefix)),
            ("prefix_len", Json::U64(*prefix_len)),
            ("body", encode_generator(body)),
        ]),
        GeneratorSpec::Figure1 { p1, p2, q } => Json::obj([
            ("kind", Json::str("Figure1")),
            ("p1", pid(*p1)),
            ("p2", pid(*p2)),
            ("q", pid(*q)),
        ]),
        GeneratorSpec::GeneralizedFigure1 { p, q } => Json::obj([
            ("kind", Json::str("GeneralizedFigure1")),
            ("p", bits(*p)),
            ("q", bits(*q)),
        ]),
        GeneratorSpec::RotatingStarvation { k, base } => Json::obj([
            ("kind", Json::str("RotatingStarvation")),
            ("k", Json::U64(*k as u64)),
            ("base", Json::U64(*base)),
        ]),
        GeneratorSpec::FictitiousCrash { i, j, t, k, base } => Json::obj([
            ("kind", Json::str("FictitiousCrash")),
            ("i", Json::U64(*i as u64)),
            ("j", Json::U64(*j as u64)),
            ("t", Json::U64(*t as u64)),
            ("k", Json::U64(*k as u64)),
            ("base", Json::U64(*base)),
        ]),
        GeneratorSpec::Cycle { period } => Json::obj([
            ("kind", Json::str("Cycle")),
            (
                "period",
                Json::arr(period.iter().map(|p| Json::U64(p.index() as u64))),
            ),
        ]),
        GeneratorSpec::AlternatingRotation { groups, base } => Json::obj([
            ("kind", Json::str("AlternatingRotation")),
            ("groups", Json::arr(groups.iter().map(|g| bits(*g)))),
            ("base", Json::U64(*base)),
        ]),
        GeneratorSpec::CrashAfter { inner, plan } => Json::obj([
            ("kind", Json::str("CrashAfter")),
            ("inner", encode_generator(inner)),
            ("plan", crash_plan(plan)),
        ]),
        GeneratorSpec::Flapping {
            p,
            q,
            bound,
            filler,
            timely_dwell,
            untimely_dwell,
            seed_offset,
        } => Json::obj([
            ("kind", Json::str("Flapping")),
            ("p", bits(*p)),
            ("q", bits(*q)),
            ("bound", Json::U64(*bound as u64)),
            ("filler", encode_generator(filler)),
            ("timely_dwell", range(*timely_dwell)),
            ("untimely_dwell", range(*untimely_dwell)),
            ("seed_offset", Json::U64(*seed_offset)),
        ]),
        GeneratorSpec::GrayFailure {
            inner,
            gray,
            stretch,
            seed_offset,
        } => Json::obj([
            ("kind", Json::str("GrayFailure")),
            ("inner", encode_generator(inner)),
            ("gray", bits(*gray)),
            ("stretch", Json::U64(*stretch)),
            ("seed_offset", Json::U64(*seed_offset)),
        ]),
        GeneratorSpec::BurstClog {
            inner,
            clogger,
            window,
            gap,
            seed_offset,
        } => Json::obj([
            ("kind", Json::str("BurstClog")),
            ("inner", encode_generator(inner)),
            ("clogger", pid(*clogger)),
            ("window", Json::U64(*window)),
            ("gap", range(*gap)),
            ("seed_offset", Json::U64(*seed_offset)),
        ]),
        GeneratorSpec::CrashRecovery {
            inner,
            victim,
            crash,
            rejoin,
        } => Json::obj([
            ("kind", Json::str("CrashRecovery")),
            ("inner", encode_generator(inner)),
            ("victim", pid(*victim)),
            ("crash", Json::U64(*crash)),
            ("rejoin", Json::U64(*rejoin)),
        ]),
        GeneratorSpec::Replay { of, schedule } => Json::obj([
            ("kind", Json::str("Replay")),
            ("of", encode_generator(of)),
            (
                "schedule",
                Json::arr(schedule.iter().map(|p| Json::U64(p.index() as u64))),
            ),
        ]),
    }
}

fn range((lo, hi): (u64, u64)) -> Json {
    Json::arr([Json::U64(lo), Json::U64(hi)])
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(x) => Json::U64(x),
        None => Json::Null,
    }
}

fn values(vs: &[st_core::Value]) -> Json {
    Json::arr(vs.iter().map(|&v| Json::U64(v)))
}

fn opt_values(vs: &[Option<st_core::Value>]) -> Json {
    Json::arr(vs.iter().map(|v| opt_u64(*v)))
}

fn encode_workload(w: &Workload) -> Json {
    match w {
        Workload::FdConvergence {
            k,
            t,
            policy,
            abi,
            detector,
            certify_membership,
        } => Json::obj([
            ("kind", Json::str("FdConvergence")),
            ("k", Json::U64(*k as u64)),
            ("t", Json::U64(*t as u64)),
            ("policy", policy_name(*policy)),
            (
                "abi",
                Json::str(match abi {
                    FdAbi::Async => "Async",
                    FdAbi::MachineSlot => "MachineSlot",
                    FdAbi::MachineFleet => "MachineFleet",
                }),
            ),
            (
                "detector",
                Json::str(match detector {
                    FdDetector::SetBased => "SetBased",
                    FdDetector::ProcessBased => "ProcessBased",
                }),
            ),
            ("certify_membership", Json::Bool(*certify_membership)),
        ]),
        Workload::Agreement {
            t,
            k,
            inputs,
            policy,
            certify,
        } => Json::obj([
            ("kind", Json::str("Agreement")),
            ("t", Json::U64(*t as u64)),
            ("k", Json::U64(*k as u64)),
            ("inputs", values(inputs)),
            ("policy", policy_name(*policy)),
            (
                "certify",
                match certify {
                    Some(c) => Json::obj([
                        ("i", Json::U64(c.i as u64)),
                        ("j", Json::U64(c.j as u64)),
                        ("cap", Json::U64(c.cap as u64)),
                        ("prefix_len", Json::U64(c.prefix_len)),
                    ]),
                    None => Json::Null,
                },
            ),
        ]),
        Workload::AdversarialAgreement {
            t,
            k,
            inputs,
            policy,
            precrashed,
            witness,
        } => Json::obj([
            ("kind", Json::str("AdversarialAgreement")),
            ("t", Json::U64(*t as u64)),
            ("k", Json::U64(*k as u64)),
            ("inputs", values(inputs)),
            ("policy", policy_name(*policy)),
            ("precrashed", bits(*precrashed)),
            (
                "witness",
                match witness {
                    Some((p, q)) => Json::obj([("p", bits(*p)), ("q", bits(*q))]),
                    None => Json::Null,
                },
            ),
        ]),
        Workload::BgReduction {
            n_sim,
            k,
            max_reads,
        } => Json::obj([
            ("kind", Json::str("BgReduction")),
            ("n_sim", Json::U64(*n_sim as u64)),
            ("k", Json::U64(*k as u64)),
            ("max_reads", Json::U64(*max_reads as u64)),
        ]),
        Workload::LeanConvergence { t, policy, drive } => Json::obj([
            ("kind", Json::str("LeanConvergence")),
            ("t", Json::U64(*t as u64)),
            ("policy", policy_name(*policy)),
            ("drive", encode_drive(*drive)),
        ]),
        Workload::LeanAgreement { t, policy, drive } => Json::obj([
            ("kind", Json::str("LeanAgreement")),
            ("t", Json::U64(*t as u64)),
            ("policy", policy_name(*policy)),
            ("drive", encode_drive(*drive)),
        ]),
        Workload::WideFdConvergence {
            k,
            t,
            policy,
            drive,
        } => Json::obj([
            ("kind", Json::str("WideFdConvergence")),
            ("k", Json::U64(*k as u64)),
            ("t", Json::U64(*t as u64)),
            ("policy", policy_name(*policy)),
            ("drive", encode_drive(*drive)),
        ]),
    }
}

fn encode_drive(drive: FleetReplayDrive) -> Json {
    match drive {
        FleetReplayDrive::Plain => Json::str("Plain"),
        FleetReplayDrive::Soa { slice_len } => Json::obj([
            ("kind", Json::str("Soa")),
            ("slice_len", Json::U64(slice_len as u64)),
        ]),
    }
}

fn decode_drive(j: &Json, name: &str) -> DecodeResult<FleetReplayDrive> {
    match field(j, name)? {
        Json::Str(s) if s == "Plain" => Ok(FleetReplayDrive::Plain),
        v @ Json::Obj(_) if v.get("kind").and_then(Json::as_str) == Some("Soa") => {
            Ok(FleetReplayDrive::Soa {
                slice_len: usize_field(v, "slice_len")?,
            })
        }
        _ => Err(format!("field {name:?} is not a fleet replay drive")),
    }
}

/// Serializes a scenario canonically. Equal scenarios serialize to equal
/// values (and bytes); this is the resume staleness-guard's comparison key.
pub fn encode_scenario(s: &Scenario) -> Json {
    Json::obj([
        ("label", Json::str(s.label.clone())),
        ("n", Json::U64(s.universe.n() as u64)),
        ("generator", encode_generator(&s.generator)),
        ("workload", encode_workload(&s.workload)),
        (
            "stop",
            Json::str(match s.stop {
                StopRule::BudgetOnly => "BudgetOnly",
                StopRule::AllCorrectDecided => "AllCorrectDecided",
            }),
        ),
        ("budget", Json::U64(s.budget)),
        ("seed", Json::U64(s.seed)),
        ("faulty", bits(s.faulty)),
    ])
}

// ---------------------------------------------------------------------------
// Outcome encoding / decoding (full round trip; resumed lists must be
// byte-identical to uninterrupted ones).
// ---------------------------------------------------------------------------

fn encode_status(status: RunStatus) -> Json {
    match status {
        RunStatus::Stopped => Json::str("Stopped"),
        RunStatus::MaxSteps => Json::str("MaxSteps"),
        RunStatus::SourceEnded => Json::str("SourceEnded"),
        RunStatus::Stuck(p) => Json::obj([("kind", Json::str("Stuck")), ("process", pid(p))]),
    }
}

fn encode_timely_pair(pair: &st_core::TimelyPair) -> Json {
    Json::obj([
        ("p", bits(pair.p)),
        ("q", bits(pair.q)),
        ("bound", Json::U64(pair.bound as u64)),
    ])
}

/// Serializes an outcome for the store.
pub fn encode_outcome(out: &ScenarioOutcome) -> Json {
    let data = match &out.data {
        OutcomeData::Fd(fd) => Json::obj([
            ("kind", Json::str("Fd")),
            ("status", encode_status(fd.status)),
            ("steps", Json::U64(fd.steps)),
            (
                "membership",
                match &fd.membership {
                    Some(p) => encode_timely_pair(p),
                    None => Json::Null,
                },
            ),
            (
                "stabilization",
                match &fd.stabilization {
                    Some(s) => Json::obj([
                        ("winnerset", bits(s.winnerset)),
                        ("step", Json::U64(s.step)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "witness",
                match &fd.witness {
                    Some(w) => Json::obj([
                        ("trusted", pid(w.trusted)),
                        ("from_step", Json::U64(w.from_step)),
                    ]),
                    None => Json::Null,
                },
            ),
            ("late_flaps", Json::U64(fd.late_flaps as u64)),
        ]),
        OutcomeData::Agreement(a) => Json::obj([
            ("kind", Json::str("Agreement")),
            (
                "protocol",
                Json::str(match a.kind {
                    st_agreement::StackKind::FdParallelPaxos => "FdParallelPaxos",
                    st_agreement::StackKind::Trivial => "Trivial",
                }),
            ),
            ("status", encode_status(a.status)),
            ("decided_at", opt_u64(a.decided_at)),
            ("decisions", opt_values(&a.decisions)),
            ("correct", bits(a.correct)),
            (
                "violations",
                Json::arr(a.violations.iter().map(encode_violation)),
            ),
            ("clean", Json::Bool(a.clean)),
            ("safe", Json::Bool(a.safe)),
            (
                "certified",
                match a.certified {
                    Some(b) => Json::Bool(b),
                    None => Json::Null,
                },
            ),
        ]),
        OutcomeData::Adversarial(a) => Json::obj([
            ("kind", Json::str("Adversarial")),
            ("status", encode_status(a.status)),
            ("decided", Json::U64(a.decided as u64)),
            ("blocked", Json::Bool(a.blocked)),
            ("safe", Json::Bool(a.safe)),
            ("freeze_events", Json::U64(a.freeze_events)),
            ("max_frozen", Json::U64(a.max_frozen as u64)),
            (
                "certificate",
                match &a.certificate {
                    Some(p) => encode_timely_pair(p),
                    None => Json::Null,
                },
            ),
        ]),
        OutcomeData::Bg(b) => Json::obj([
            ("kind", Json::str("Bg")),
            ("status", encode_status(b.status)),
            ("stalled", bits(b.stalled)),
            (
                "distinct_simulator_values",
                Json::U64(b.distinct_simulator_values as u64),
            ),
            ("simulator_decisions", opt_values(&b.simulator_decisions)),
            ("simulated_decisions", opt_values(&b.simulated_decisions)),
            ("host_steps", Json::U64(b.host_steps)),
            ("live_sched_len", Json::U64(b.live_sched_len as u64)),
            ("max_live_bound", Json::U64(b.max_live_bound as u64)),
        ]),
        OutcomeData::Lean(l) => Json::obj([
            ("kind", Json::str("Lean")),
            ("status", encode_status(l.status)),
            ("steps", Json::U64(l.steps)),
            (
                "stabilization",
                match &l.stabilization {
                    Some(s) => Json::obj([
                        ("leader", Json::U64(s.leader as u64)),
                        ("step", Json::U64(s.step)),
                    ]),
                    None => Json::Null,
                },
            ),
            ("publications", Json::U64(l.publications)),
            ("late_flaps", Json::U64(l.late_flaps as u64)),
            ("decided", Json::U64(l.decided as u64)),
            ("distinct_values", values(&l.distinct_values)),
        ]),
        OutcomeData::WideFd(w) => Json::obj([
            ("kind", Json::str("WideFd")),
            ("status", encode_status(w.status)),
            ("steps", Json::U64(w.steps)),
            (
                "stabilization",
                match &w.stabilization {
                    Some(s) => Json::obj([
                        ("winnerset_code", Json::U64(s.winnerset_code)),
                        (
                            "members",
                            Json::arr(s.members.iter().map(|&m| Json::U64(m as u64))),
                        ),
                        ("step", Json::U64(s.step)),
                    ]),
                    None => Json::Null,
                },
            ),
            ("publications", Json::U64(w.publications)),
            ("late_flaps", Json::U64(w.late_flaps as u64)),
        ]),
    };
    Json::obj([
        ("rank", Json::U64(out.rank as u64)),
        ("label", Json::str(out.label.clone())),
        ("data", data),
        (
            "violations",
            Json::arr(out.violations.iter().map(encode_invariant_violation)),
        ),
        (
            "counterexample",
            match &out.counterexample {
                Some(s) => Json::arr(s.iter().map(|p| Json::U64(p.index() as u64))),
                None => Json::Null,
            },
        ),
    ])
}

fn encode_invariant_violation(v: &InvariantViolation) -> Json {
    match v {
        InvariantViolation::KAgreement { values: vs, k } => Json::obj([
            ("kind", Json::str("KAgreement")),
            ("values", values(vs)),
            ("k", Json::U64(*k as u64)),
        ]),
        InvariantViolation::Validity { process, value } => Json::obj([
            ("kind", Json::str("Validity")),
            ("process", Json::U64(*process as u64)),
            ("value", Json::U64(*value)),
        ]),
        InvariantViolation::Termination { undecided } => Json::obj([
            ("kind", Json::str("Termination")),
            (
                "undecided",
                Json::arr(undecided.iter().map(|&u| Json::U64(u as u64))),
            ),
        ]),
        InvariantViolation::BallotOwnership {
            instance,
            process,
            mbal,
            bal,
        } => Json::obj([
            ("kind", Json::str("BallotOwnership")),
            ("instance", Json::U64(*instance as u64)),
            ("process", Json::U64(*process as u64)),
            ("mbal", Json::U64(*mbal)),
            ("bal", Json::U64(*bal)),
        ]),
        InvariantViolation::AccusedTimelyWinnerset { winnerset } => Json::obj([
            ("kind", Json::str("AccusedTimelyWinnerset")),
            ("winnerset", bits(*winnerset)),
        ]),
        InvariantViolation::GuaranteeBroken {
            p,
            q,
            bound,
            observed,
        } => Json::obj([
            ("kind", Json::str("GuaranteeBroken")),
            ("p", bits(*p)),
            ("q", bits(*q)),
            ("bound", Json::U64(*bound as u64)),
            ("observed", Json::U64(*observed as u64)),
        ]),
        InvariantViolation::CrashWindowResurrection { process, position } => Json::obj([
            ("kind", Json::str("CrashWindowResurrection")),
            ("process", Json::U64(*process as u64)),
            ("position", Json::U64(*position)),
        ]),
        InvariantViolation::FaultyLeaderElected { leader } => Json::obj([
            ("kind", Json::str("FaultyLeaderElected")),
            ("leader", Json::U64(*leader as u64)),
        ]),
    }
}

fn encode_violation(v: &st_core::AgreementViolation) -> Json {
    match v {
        st_core::AgreementViolation::KAgreement { values: vs, k } => Json::obj([
            ("kind", Json::str("KAgreement")),
            ("values", values(vs)),
            ("k", Json::U64(*k as u64)),
        ]),
        st_core::AgreementViolation::Validity { process, value } => Json::obj([
            ("kind", Json::str("Validity")),
            ("process", Json::U64(*process as u64)),
            ("value", Json::U64(*value)),
        ]),
        st_core::AgreementViolation::Termination { undecided } => Json::obj([
            ("kind", Json::str("Termination")),
            (
                "undecided",
                Json::arr(undecided.iter().map(|&u| Json::U64(u as u64))),
            ),
        ]),
    }
}

// --- decoding helpers ------------------------------------------------------

type DecodeResult<T> = Result<T, String>;

fn field<'a>(j: &'a Json, name: &str) -> DecodeResult<&'a Json> {
    j.get(name).ok_or_else(|| format!("missing field {name:?}"))
}

fn u64_field(j: &Json, name: &str) -> DecodeResult<u64> {
    field(j, name)?
        .as_u64()
        .ok_or_else(|| format!("field {name:?} is not an integer"))
}

fn usize_field(j: &Json, name: &str) -> DecodeResult<usize> {
    Ok(u64_field(j, name)? as usize)
}

fn str_field<'a>(j: &'a Json, name: &str) -> DecodeResult<&'a str> {
    field(j, name)?
        .as_str()
        .ok_or_else(|| format!("field {name:?} is not a string"))
}

fn bool_field(j: &Json, name: &str) -> DecodeResult<bool> {
    field(j, name)?
        .as_bool()
        .ok_or_else(|| format!("field {name:?} is not a bool"))
}

fn set_field(j: &Json, name: &str) -> DecodeResult<ProcSet> {
    Ok(ProcSet::from_bits(u64_field(j, name)?))
}

fn pid_field(j: &Json, name: &str) -> DecodeResult<ProcessId> {
    Ok(ProcessId::new(usize_field(j, name)?))
}

fn opt_u64_field(j: &Json, name: &str) -> DecodeResult<Option<u64>> {
    match field(j, name)? {
        Json::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {name:?} is not null or an integer")),
    }
}

fn opt_values_field(j: &Json, name: &str) -> DecodeResult<Vec<Option<st_core::Value>>> {
    let arr = field(j, name)?
        .as_arr()
        .ok_or_else(|| format!("field {name:?} is not an array"))?;
    arr.iter()
        .map(|v| match v {
            Json::Null => Ok(None),
            v => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("field {name:?} holds a non-integer")),
        })
        .collect()
}

fn values_field(j: &Json, name: &str) -> DecodeResult<Vec<st_core::Value>> {
    let arr = field(j, name)?
        .as_arr()
        .ok_or_else(|| format!("field {name:?} is not an array"))?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("field {name:?} holds a non-integer"))
        })
        .collect()
}

fn decode_status(j: &Json) -> DecodeResult<RunStatus> {
    match j {
        Json::Str(s) => match s.as_str() {
            "Stopped" => Ok(RunStatus::Stopped),
            "MaxSteps" => Ok(RunStatus::MaxSteps),
            "SourceEnded" => Ok(RunStatus::SourceEnded),
            other => Err(format!("unknown run status {other:?}")),
        },
        Json::Obj(_) if j.get("kind").and_then(Json::as_str) == Some("Stuck") => {
            Ok(RunStatus::Stuck(pid_field(j, "process")?))
        }
        _ => Err("run status is neither a name nor a Stuck object".into()),
    }
}

fn decode_timely_pair(j: &Json) -> DecodeResult<st_core::TimelyPair> {
    Ok(st_core::TimelyPair {
        p: set_field(j, "p")?,
        q: set_field(j, "q")?,
        bound: usize_field(j, "bound")?,
    })
}

fn opt_timely_pair(j: &Json, name: &str) -> DecodeResult<Option<st_core::TimelyPair>> {
    match field(j, name)? {
        Json::Null => Ok(None),
        v => decode_timely_pair(v).map(Some),
    }
}

/// Decodes an outcome written by [`encode_outcome`] (exact inverse: the
/// round trip is byte-preserving for writer-produced documents).
pub fn decode_outcome(j: &Json) -> DecodeResult<ScenarioOutcome> {
    let rank = usize_field(j, "rank")?;
    let label = str_field(j, "label")?.to_string();
    let data = field(j, "data")?;
    let kind = str_field(data, "kind")?;
    let decoded = match kind {
        "Fd" => OutcomeData::Fd(FdOutcome {
            status: decode_status(field(data, "status")?)?,
            steps: u64_field(data, "steps")?,
            membership: opt_timely_pair(data, "membership")?,
            stabilization: match field(data, "stabilization")? {
                Json::Null => None,
                v => Some(st_fd::convergence::Stabilization {
                    winnerset: set_field(v, "winnerset")?,
                    step: u64_field(v, "step")?,
                }),
            },
            witness: match field(data, "witness")? {
                Json::Null => None,
                v => Some(st_fd::convergence::KAntiOmegaWitness {
                    trusted: pid_field(v, "trusted")?,
                    from_step: u64_field(v, "from_step")?,
                }),
            },
            late_flaps: usize_field(data, "late_flaps")?,
        }),
        "Agreement" => OutcomeData::Agreement(AgreementScenarioOutcome {
            kind: match str_field(data, "protocol")? {
                "FdParallelPaxos" => st_agreement::StackKind::FdParallelPaxos,
                "Trivial" => st_agreement::StackKind::Trivial,
                other => return Err(format!("unknown protocol {other:?}")),
            },
            status: decode_status(field(data, "status")?)?,
            decided_at: opt_u64_field(data, "decided_at")?,
            decisions: opt_values_field(data, "decisions")?,
            correct: set_field(data, "correct")?,
            violations: field(data, "violations")?
                .as_arr()
                .ok_or_else(|| "violations is not an array".to_string())?
                .iter()
                .map(decode_violation)
                .collect::<DecodeResult<_>>()?,
            clean: bool_field(data, "clean")?,
            safe: bool_field(data, "safe")?,
            certified: match field(data, "certified")? {
                Json::Null => None,
                v => Some(
                    v.as_bool()
                        .ok_or_else(|| "certified is not null or a bool".to_string())?,
                ),
            },
        }),
        "Adversarial" => OutcomeData::Adversarial(AdversarialOutcome {
            status: decode_status(field(data, "status")?)?,
            decided: usize_field(data, "decided")?,
            blocked: bool_field(data, "blocked")?,
            safe: bool_field(data, "safe")?,
            freeze_events: u64_field(data, "freeze_events")?,
            max_frozen: usize_field(data, "max_frozen")?,
            certificate: opt_timely_pair(data, "certificate")?,
        }),
        "Bg" => OutcomeData::Bg(BgOutcome {
            status: decode_status(field(data, "status")?)?,
            stalled: set_field(data, "stalled")?,
            distinct_simulator_values: usize_field(data, "distinct_simulator_values")?,
            simulator_decisions: opt_values_field(data, "simulator_decisions")?,
            simulated_decisions: opt_values_field(data, "simulated_decisions")?,
            host_steps: u64_field(data, "host_steps")?,
            live_sched_len: usize_field(data, "live_sched_len")?,
            max_live_bound: usize_field(data, "max_live_bound")?,
        }),
        "Lean" => OutcomeData::Lean(LeanOutcome {
            status: decode_status(field(data, "status")?)?,
            steps: u64_field(data, "steps")?,
            stabilization: match field(data, "stabilization")? {
                Json::Null => None,
                v => Some(LeanStabilization {
                    leader: usize_field(v, "leader")?,
                    step: u64_field(v, "step")?,
                }),
            },
            publications: u64_field(data, "publications")?,
            late_flaps: usize_field(data, "late_flaps")?,
            decided: usize_field(data, "decided")?,
            distinct_values: values_field(data, "distinct_values")?,
        }),
        "WideFd" => OutcomeData::WideFd(WideFdOutcome {
            status: decode_status(field(data, "status")?)?,
            steps: u64_field(data, "steps")?,
            stabilization: match field(data, "stabilization")? {
                Json::Null => None,
                v => Some(WideFdStabilization {
                    winnerset_code: u64_field(v, "winnerset_code")?,
                    members: values_field(v, "members")?
                        .into_iter()
                        .map(|m| m as usize)
                        .collect(),
                    step: u64_field(v, "step")?,
                }),
            },
            publications: u64_field(data, "publications")?,
            late_flaps: usize_field(data, "late_flaps")?,
        }),
        other => return Err(format!("unknown outcome kind {other:?}")),
    };
    let violations = field(j, "violations")?
        .as_arr()
        .ok_or_else(|| "violations is not an array".to_string())?
        .iter()
        .map(decode_invariant_violation)
        .collect::<DecodeResult<_>>()?;
    let counterexample = match field(j, "counterexample")? {
        Json::Null => None,
        v => Some(st_core::Schedule::from_indices(
            v.as_arr()
                .ok_or_else(|| "counterexample is not null or an array".to_string())?
                .iter()
                .map(|p| {
                    p.as_u64()
                        .map(|u| u as usize)
                        .ok_or_else(|| "counterexample holds a non-integer".to_string())
                })
                .collect::<DecodeResult<Vec<usize>>>()?,
        )),
    };
    Ok(ScenarioOutcome {
        rank,
        label,
        data: decoded,
        violations,
        counterexample,
    })
}

fn decode_invariant_violation(j: &Json) -> DecodeResult<InvariantViolation> {
    match str_field(j, "kind")? {
        "KAgreement" => Ok(InvariantViolation::KAgreement {
            values: values_field(j, "values")?,
            k: usize_field(j, "k")?,
        }),
        "Validity" => Ok(InvariantViolation::Validity {
            process: usize_field(j, "process")?,
            value: u64_field(j, "value")?,
        }),
        "Termination" => Ok(InvariantViolation::Termination {
            undecided: values_field(j, "undecided")?
                .into_iter()
                .map(|v| v as usize)
                .collect(),
        }),
        "BallotOwnership" => Ok(InvariantViolation::BallotOwnership {
            instance: usize_field(j, "instance")?,
            process: usize_field(j, "process")?,
            mbal: u64_field(j, "mbal")?,
            bal: u64_field(j, "bal")?,
        }),
        "AccusedTimelyWinnerset" => Ok(InvariantViolation::AccusedTimelyWinnerset {
            winnerset: set_field(j, "winnerset")?,
        }),
        "GuaranteeBroken" => Ok(InvariantViolation::GuaranteeBroken {
            p: set_field(j, "p")?,
            q: set_field(j, "q")?,
            bound: usize_field(j, "bound")?,
            observed: usize_field(j, "observed")?,
        }),
        "CrashWindowResurrection" => Ok(InvariantViolation::CrashWindowResurrection {
            process: usize_field(j, "process")?,
            position: u64_field(j, "position")?,
        }),
        "FaultyLeaderElected" => Ok(InvariantViolation::FaultyLeaderElected {
            leader: usize_field(j, "leader")?,
        }),
        other => Err(format!("unknown invariant violation kind {other:?}")),
    }
}

fn decode_violation(j: &Json) -> DecodeResult<st_core::AgreementViolation> {
    match str_field(j, "kind")? {
        "KAgreement" => Ok(st_core::AgreementViolation::KAgreement {
            values: values_field(j, "values")?,
            k: usize_field(j, "k")?,
        }),
        "Validity" => Ok(st_core::AgreementViolation::Validity {
            process: usize_field(j, "process")?,
            value: u64_field(j, "value")?,
        }),
        "Termination" => Ok(st_core::AgreementViolation::Termination {
            undecided: values_field(j, "undecided")?
                .into_iter()
                .map(|v| v as usize)
                .collect(),
        }),
        other => Err(format!("unknown violation kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Scenario / spec decoding (inverse of `encode_scenario`; what lets saved
// counterexamples and fuzz corpus entries be re-executed).
// ---------------------------------------------------------------------------

fn opt_set_field(j: &Json, name: &str) -> DecodeResult<Option<ProcSet>> {
    match field(j, name)? {
        Json::Null => Ok(None),
        v => v
            .as_u64()
            .map(|b| Some(ProcSet::from_bits(b)))
            .ok_or_else(|| format!("field {name:?} is not null or an integer")),
    }
}

fn schedule_field(j: &Json, name: &str) -> DecodeResult<st_core::Schedule> {
    let arr = field(j, name)?
        .as_arr()
        .ok_or_else(|| format!("field {name:?} is not an array"))?;
    Ok(st_core::Schedule::from_indices(
        arr.iter()
            .map(|p| {
                p.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| format!("field {name:?} holds a non-integer"))
            })
            .collect::<DecodeResult<Vec<usize>>>()?,
    ))
}

fn range_field(j: &Json, name: &str) -> DecodeResult<(u64, u64)> {
    let arr = field(j, name)?
        .as_arr()
        .ok_or_else(|| format!("field {name:?} is not an array"))?;
    match arr {
        [lo, hi] => Ok((
            lo.as_u64()
                .ok_or_else(|| format!("field {name:?} lo is not an integer"))?,
            hi.as_u64()
                .ok_or_else(|| format!("field {name:?} hi is not an integer"))?,
        )),
        _ => Err(format!("field {name:?} is not a 2-element array")),
    }
}

fn plan_field(j: &Json, name: &str) -> DecodeResult<CrashPlan> {
    let arr = field(j, name)?
        .as_arr()
        .ok_or_else(|| format!("field {name:?} is not an array"))?;
    let mut plan = CrashPlan::new();
    for e in arr {
        match e.as_arr() {
            Some([p, step]) => {
                let p = p
                    .as_u64()
                    .ok_or_else(|| format!("field {name:?} entry process is not an integer"))?;
                let step = step
                    .as_u64()
                    .ok_or_else(|| format!("field {name:?} entry step is not an integer"))?;
                plan = plan.crash(ProcessId::new(p as usize), step);
            }
            _ => {
                return Err(format!(
                    "field {name:?} entry is not a [process, step] pair"
                ))
            }
        }
    }
    Ok(plan)
}

fn decode_policy(j: &Json, name: &str) -> DecodeResult<TimeoutPolicy> {
    match str_field(j, name)? {
        "Increment" => Ok(TimeoutPolicy::Increment),
        "Double" => Ok(TimeoutPolicy::Double),
        other => Err(format!("unknown timeout policy {other:?}")),
    }
}

/// Decodes a generator spec written by the canonical encoder (exact
/// inverse over every [`GeneratorSpec`] variant).
pub fn decode_generator(j: &Json) -> DecodeResult<GeneratorSpec> {
    match str_field(j, "kind")? {
        "RoundRobin" => Ok(GeneratorSpec::RoundRobin {
            over: opt_set_field(j, "over")?,
        }),
        "Bursty" => Ok(GeneratorSpec::Bursty {
            burst: u64_field(j, "burst")?,
        }),
        "SeededRandom" => Ok(GeneratorSpec::SeededRandom {
            over: opt_set_field(j, "over")?,
            seed_offset: u64_field(j, "seed_offset")?,
            weights: match field(j, "weights")? {
                Json::Null => None,
                v => Some(
                    v.as_arr()
                        .ok_or_else(|| "weights is not null or an array".to_string())?
                        .iter()
                        .map(|w| {
                            w.as_u64()
                                .map(|x| x as u32)
                                .ok_or_else(|| "weights holds a non-integer".to_string())
                        })
                        .collect::<DecodeResult<_>>()?,
                ),
            },
        }),
        "SetTimely" => Ok(GeneratorSpec::SetTimely {
            p: set_field(j, "p")?,
            q: set_field(j, "q")?,
            bound: usize_field(j, "bound")?,
            filler: Box::new(decode_generator(field(j, "filler")?)?),
            crashes: plan_field(j, "crashes")?,
        }),
        "Eventually" => Ok(GeneratorSpec::Eventually {
            prefix: Box::new(decode_generator(field(j, "prefix")?)?),
            prefix_len: u64_field(j, "prefix_len")?,
            body: Box::new(decode_generator(field(j, "body")?)?),
        }),
        "Figure1" => Ok(GeneratorSpec::Figure1 {
            p1: pid_field(j, "p1")?,
            p2: pid_field(j, "p2")?,
            q: pid_field(j, "q")?,
        }),
        "GeneralizedFigure1" => Ok(GeneratorSpec::GeneralizedFigure1 {
            p: set_field(j, "p")?,
            q: set_field(j, "q")?,
        }),
        "RotatingStarvation" => Ok(GeneratorSpec::RotatingStarvation {
            k: usize_field(j, "k")?,
            base: u64_field(j, "base")?,
        }),
        "FictitiousCrash" => Ok(GeneratorSpec::FictitiousCrash {
            i: usize_field(j, "i")?,
            j: usize_field(j, "j")?,
            t: usize_field(j, "t")?,
            k: usize_field(j, "k")?,
            base: u64_field(j, "base")?,
        }),
        "Cycle" => Ok(GeneratorSpec::Cycle {
            period: schedule_field(j, "period")?,
        }),
        "AlternatingRotation" => Ok(GeneratorSpec::AlternatingRotation {
            groups: field(j, "groups")?
                .as_arr()
                .ok_or_else(|| "groups is not an array".to_string())?
                .iter()
                .map(|g| {
                    g.as_u64()
                        .map(ProcSet::from_bits)
                        .ok_or_else(|| "groups holds a non-integer".to_string())
                })
                .collect::<DecodeResult<_>>()?,
            base: u64_field(j, "base")?,
        }),
        "CrashAfter" => Ok(GeneratorSpec::CrashAfter {
            inner: Box::new(decode_generator(field(j, "inner")?)?),
            plan: plan_field(j, "plan")?,
        }),
        "Flapping" => Ok(GeneratorSpec::Flapping {
            p: set_field(j, "p")?,
            q: set_field(j, "q")?,
            bound: usize_field(j, "bound")?,
            filler: Box::new(decode_generator(field(j, "filler")?)?),
            timely_dwell: range_field(j, "timely_dwell")?,
            untimely_dwell: range_field(j, "untimely_dwell")?,
            seed_offset: u64_field(j, "seed_offset")?,
        }),
        "GrayFailure" => Ok(GeneratorSpec::GrayFailure {
            inner: Box::new(decode_generator(field(j, "inner")?)?),
            gray: set_field(j, "gray")?,
            stretch: u64_field(j, "stretch")?,
            seed_offset: u64_field(j, "seed_offset")?,
        }),
        "BurstClog" => Ok(GeneratorSpec::BurstClog {
            inner: Box::new(decode_generator(field(j, "inner")?)?),
            clogger: pid_field(j, "clogger")?,
            window: u64_field(j, "window")?,
            gap: range_field(j, "gap")?,
            seed_offset: u64_field(j, "seed_offset")?,
        }),
        "CrashRecovery" => Ok(GeneratorSpec::CrashRecovery {
            inner: Box::new(decode_generator(field(j, "inner")?)?),
            victim: pid_field(j, "victim")?,
            crash: u64_field(j, "crash")?,
            rejoin: u64_field(j, "rejoin")?,
        }),
        "Replay" => Ok(GeneratorSpec::Replay {
            of: Box::new(decode_generator(field(j, "of")?)?),
            schedule: schedule_field(j, "schedule")?,
        }),
        other => Err(format!("unknown generator kind {other:?}")),
    }
}

fn decode_workload(j: &Json) -> DecodeResult<Workload> {
    match str_field(j, "kind")? {
        "FdConvergence" => Ok(Workload::FdConvergence {
            k: usize_field(j, "k")?,
            t: usize_field(j, "t")?,
            policy: decode_policy(j, "policy")?,
            abi: match str_field(j, "abi")? {
                "Async" => FdAbi::Async,
                "MachineSlot" => FdAbi::MachineSlot,
                "MachineFleet" => FdAbi::MachineFleet,
                other => return Err(format!("unknown FD ABI {other:?}")),
            },
            detector: match str_field(j, "detector")? {
                "SetBased" => FdDetector::SetBased,
                "ProcessBased" => FdDetector::ProcessBased,
                other => return Err(format!("unknown FD detector {other:?}")),
            },
            certify_membership: bool_field(j, "certify_membership")?,
        }),
        "Agreement" => Ok(Workload::Agreement {
            t: usize_field(j, "t")?,
            k: usize_field(j, "k")?,
            inputs: values_field(j, "inputs")?,
            policy: decode_policy(j, "policy")?,
            certify: match field(j, "certify")? {
                Json::Null => None,
                v => Some(CertifyTimely {
                    i: usize_field(v, "i")?,
                    j: usize_field(v, "j")?,
                    cap: usize_field(v, "cap")?,
                    prefix_len: u64_field(v, "prefix_len")?,
                }),
            },
        }),
        "AdversarialAgreement" => Ok(Workload::AdversarialAgreement {
            t: usize_field(j, "t")?,
            k: usize_field(j, "k")?,
            inputs: values_field(j, "inputs")?,
            policy: decode_policy(j, "policy")?,
            precrashed: set_field(j, "precrashed")?,
            witness: match field(j, "witness")? {
                Json::Null => None,
                v => Some((set_field(v, "p")?, set_field(v, "q")?)),
            },
        }),
        "BgReduction" => Ok(Workload::BgReduction {
            n_sim: usize_field(j, "n_sim")?,
            k: usize_field(j, "k")?,
            max_reads: usize_field(j, "max_reads")?,
        }),
        "LeanConvergence" => Ok(Workload::LeanConvergence {
            t: usize_field(j, "t")?,
            policy: decode_policy(j, "policy")?,
            drive: decode_drive(j, "drive")?,
        }),
        "LeanAgreement" => Ok(Workload::LeanAgreement {
            t: usize_field(j, "t")?,
            policy: decode_policy(j, "policy")?,
            drive: decode_drive(j, "drive")?,
        }),
        "WideFdConvergence" => Ok(Workload::WideFdConvergence {
            k: usize_field(j, "k")?,
            t: usize_field(j, "t")?,
            policy: decode_policy(j, "policy")?,
            drive: decode_drive(j, "drive")?,
        }),
        other => Err(format!("unknown workload kind {other:?}")),
    }
}

/// Decodes a scenario written by [`encode_scenario`] (exact inverse:
/// `encode_scenario(&decode_scenario(j)?) == *j` for writer-produced
/// documents — property-tested over arbitrary spec trees).
pub fn decode_scenario(j: &Json) -> DecodeResult<Scenario> {
    let label = str_field(j, "label")?.to_string();
    let n = usize_field(j, "n")?;
    let universe = st_core::Universe::new(n).map_err(|_| format!("invalid universe size {n}"))?;
    let generator = decode_generator(field(j, "generator")?)?;
    let workload = decode_workload(field(j, "workload")?)?;
    let stop = match str_field(j, "stop")? {
        "BudgetOnly" => StopRule::BudgetOnly,
        "AllCorrectDecided" => StopRule::AllCorrectDecided,
        other => return Err(format!("unknown stop rule {other:?}")),
    };
    let budget = u64_field(j, "budget")?;
    let seed = u64_field(j, "seed")?;
    let faulty = set_field(j, "faulty")?;
    let mut scenario =
        Scenario::new(label, universe, generator, workload, budget, seed).with_faulty(faulty);
    scenario.stop = stop;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use st_core::Universe;
    use st_sched::GeneratorSpec;

    fn sample_scenario(seed: u64) -> Scenario {
        Scenario::new(
            format!("sample/seed{seed}"),
            Universe::new(3).unwrap(),
            GeneratorSpec::round_robin(),
            Workload::FdConvergence {
                k: 1,
                t: 1,
                policy: TimeoutPolicy::Increment,
                abi: FdAbi::MachineSlot,
                detector: FdDetector::SetBased,
                certify_membership: false,
            },
            2_000,
            seed,
        )
    }

    #[test]
    fn record_lookup_and_spec_guard() {
        let scenario = sample_scenario(7);
        let mut outcome = scenario.run();
        outcome.rank = 3;
        let mut store = OutcomeStore::new();
        store.record("T", &scenario, &outcome);
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup("T", 3, &scenario), Some(outcome.clone()));
        // Wrong key, wrong rank, or a different spec: no reuse.
        assert_eq!(store.lookup("U", 3, &scenario), None);
        assert_eq!(store.lookup("T", 2, &scenario), None);
        let mut edited = scenario.clone();
        edited.budget += 1;
        assert_eq!(store.lookup("T", 3, &edited), None);
    }

    #[test]
    fn file_round_trip_is_byte_identical() {
        let mut store = OutcomeStore::new();
        for (rank, seed) in [(0usize, 1u64), (1, 2), (5, 3)] {
            let scenario = sample_scenario(seed);
            let mut outcome = scenario.run();
            outcome.rank = rank;
            store.record("E2", &scenario, &outcome);
        }
        let text = store.to_json_string();
        let reloaded = OutcomeStore::from_json_str(&text).unwrap();
        assert_eq!(reloaded.entries(), store.entries());
        assert_eq!(reloaded.to_json_string(), text, "canonical round trip");
    }

    #[test]
    fn schema_mismatch_is_a_typed_error() {
        let text = "{\"schema\": \"st-campaign/outcome-store-v0\", \"entries\": []}";
        match OutcomeStore::from_json_str(text) {
            Err(StoreError::SchemaMismatch { found, expected }) => {
                assert_eq!(found, "st-campaign/outcome-store-v0");
                assert_eq!(expected, SCHEMA);
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        // And the error renders actionable advice.
        let err = OutcomeStore::from_json_str(text).unwrap_err();
        assert!(err.to_string().contains("--resume"));
    }

    #[test]
    fn store_bytes_do_not_depend_on_recording_order() {
        let entries: Vec<(&str, usize, u64)> =
            vec![("e3", 1, 4), ("e2", 0, 1), ("e3", 0, 3), ("e2", 2, 2)];
        let mut forward = OutcomeStore::new();
        let mut backward = OutcomeStore::new();
        for &(key, rank, seed) in &entries {
            let scenario = sample_scenario(seed);
            let mut outcome = scenario.run();
            outcome.rank = rank;
            forward.record(key, &scenario, &outcome);
        }
        for &(key, rank, seed) in entries.iter().rev() {
            let scenario = sample_scenario(seed);
            let mut outcome = scenario.run();
            outcome.rank = rank;
            backward.record(key, &scenario, &outcome);
        }
        assert_eq!(forward.to_json_string(), backward.to_json_string());
        let keys: Vec<(&str, usize)> = forward
            .entries()
            .iter()
            .map(|e| (e.campaign.as_str(), e.rank))
            .collect();
        assert_eq!(keys, [("e2", 0), ("e2", 2), ("e3", 0), ("e3", 1)]);
    }

    #[test]
    fn inconsistent_ranks_and_duplicates_are_rejected() {
        let scenario = sample_scenario(1);
        let mut outcome = scenario.run();
        outcome.rank = 3;
        let mut store = OutcomeStore::new();
        store.record("T", &scenario, &outcome);
        let good = store.to_json_string();
        // Entry rank and outcome rank must agree.
        let skewed = good.replace("\"rank\": 3, \"scenario\"", "\"rank\": 4, \"scenario\"");
        assert_ne!(skewed, good, "edit must hit the entry rank");
        match OutcomeStore::from_json_str(&skewed) {
            Err(StoreError::Malformed(m)) => assert!(m.contains("disagrees"), "{m}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Two entries with the same (campaign, rank) are ambiguous.
        store.record("U", &scenario, &outcome);
        let duped = store.to_json_string().replace("\"U\"", "\"T\"");
        match OutcomeStore::from_json_str(&duped) {
            Err(StoreError::Malformed(m)) => assert!(m.contains("duplicate"), "{m}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert!(matches!(
            OutcomeStore::from_json_str("{\"entries\": []}"),
            Err(StoreError::Malformed(_))
        ));
        assert!(matches!(
            OutcomeStore::from_json_str("not json"),
            Err(StoreError::Json(_))
        ));
        let bad_entry = format!(
            "{{\"schema\": {}, \"entries\": [{{\"campaign\": \"X\"}}]}}",
            Json::str(SCHEMA)
        );
        assert!(matches!(
            OutcomeStore::from_json_str(&bad_entry),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn run_resumed_records_and_reuses() {
        let campaign = {
            let mut c = Campaign::new();
            for seed in 0..4 {
                c.push(sample_scenario(seed));
            }
            c
        };
        let mut full_store = OutcomeStore::new();
        let full = campaign.run_resumed(1, "T", None, Some(&mut full_store));
        assert_eq!(full_store.len(), 4);
        // Drop the middle two entries, resume, and compare everything.
        let mut truncated = full_store.clone();
        truncated.retain(|i, _| i == 0 || i == 3);
        let mut resumed_store = OutcomeStore::new();
        let resumed = campaign.run_resumed(2, "T", Some(&truncated), Some(&mut resumed_store));
        assert_eq!(resumed, full);
        assert_eq!(
            resumed_store.to_json_string(),
            full_store.to_json_string(),
            "resumed store bytes match the uninterrupted store"
        );
    }
}
