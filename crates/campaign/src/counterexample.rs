//! Saved counterexamples: a violating scenario plus its outcome, persisted
//! canonically for replay.
//!
//! A [`Counterexample`] bundles the scenario that violated an invariant and
//! the [`ScenarioOutcome`] that recorded the violation (including the
//! executed [`Schedule`](st_core::Schedule) when the workload kept one).
//! The on-disk form is the workspace's canonical JSON — the same dialect
//! and style as the outcome store — versioned by [`CE_SCHEMA`].
//!
//! Replaying re-executes the recorded schedule exactly: the scenario's
//! generator is wrapped in [`GeneratorSpec::Replay`], which inherits the
//! original spec's armed invariant claims, and the budget is pinned to the
//! schedule length. [`Counterexample::reproduces`] then checks that every
//! originally-recorded violation kind fires again.

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

use st_core::Json;
use st_sched::GeneratorSpec;

use crate::scenario::{Scenario, ScenarioOutcome};
use crate::store::{decode_outcome, decode_scenario, encode_outcome, encode_scenario, StoreError};

/// The on-disk schema for saved counterexamples.
pub const CE_SCHEMA: &str = "st-campaign/counterexample-v1";

/// A violating scenario and the outcome that convicted it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The scenario that violated an invariant.
    pub scenario: Scenario,
    /// Its outcome — at least one violation, and usually a replayable
    /// schedule.
    pub outcome: ScenarioOutcome,
}

impl Counterexample {
    /// Bundles a violating run. Returns `None` when the outcome is clean
    /// (nothing to save).
    pub fn new(scenario: Scenario, outcome: ScenarioOutcome) -> Option<Self> {
        if outcome.violations.is_empty() {
            return None;
        }
        Some(Counterexample { scenario, outcome })
    }

    /// The violation kinds this counterexample witnesses, deduplicated in
    /// stable order.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut seen = BTreeSet::new();
        self.outcome
            .violations
            .iter()
            .map(|v| v.kind())
            .filter(|k| seen.insert(*k))
            .collect()
    }

    /// A scenario that re-executes the recorded schedule exactly, with the
    /// original spec's claims still armed. Falls back to re-running the
    /// original scenario when no schedule was recorded.
    pub fn replay_scenario(&self) -> Scenario {
        let Some(schedule) = &self.outcome.counterexample else {
            return self.scenario.clone();
        };
        let of = self.scenario.generator.clone();
        let mut replay = Scenario::new(
            self.scenario.label.clone(),
            self.scenario.universe,
            GeneratorSpec::replay(of, schedule.clone()),
            self.scenario.workload.clone(),
            schedule.len() as u64,
            self.scenario.seed,
        );
        replay.stop = self.scenario.stop;
        replay
    }

    /// Re-executes the counterexample under the checker and reports the
    /// replayed outcome alongside whether it reproduced.
    pub fn replay(&self) -> (ScenarioOutcome, bool) {
        let out = self.replay_scenario().run();
        let reproduced = self.reproduces(&out);
        (out, reproduced)
    }

    /// Whether `replayed` witnesses every violation kind the original run
    /// recorded.
    pub fn reproduces(&self, replayed: &ScenarioOutcome) -> bool {
        let got: BTreeSet<&str> = replayed.violations.iter().map(|v| v.kind()).collect();
        self.kinds().iter().all(|k| got.contains(k))
    }

    /// Serializes canonically: schema header, scenario, outcome.
    pub fn to_json_string(&self) -> String {
        let doc = Json::obj([
            ("schema", Json::str(CE_SCHEMA)),
            ("scenario", encode_scenario(&self.scenario)),
            ("outcome", encode_outcome(&self.outcome)),
        ]);
        format!("{doc}\n")
    }

    /// Parses a counterexample document, verifying the schema version
    /// first.
    pub fn from_json_str(text: &str) -> Result<Self, StoreError> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| StoreError::Malformed("missing \"schema\" string".into()))?;
        if schema != CE_SCHEMA {
            return Err(StoreError::SchemaMismatch {
                found: schema.to_string(),
                expected: CE_SCHEMA,
            });
        }
        let scenario = decode_scenario(
            doc.get("scenario")
                .ok_or_else(|| StoreError::Malformed("missing \"scenario\"".into()))?,
        )
        .map_err(StoreError::Malformed)?;
        let outcome = decode_outcome(
            doc.get("outcome")
                .ok_or_else(|| StoreError::Malformed("missing \"outcome\"".into()))?,
        )
        .map_err(StoreError::Malformed)?;
        if outcome.violations.is_empty() {
            return Err(StoreError::Malformed(
                "counterexample has no violations".into(),
            ));
        }
        Ok(Counterexample { scenario, outcome })
    }

    /// Loads a counterexample file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json_str(&text)
    }

    /// Writes the counterexample file
    /// ([`to_json_string`](Self::to_json_string)).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_json_string())?;
        Ok(())
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let len = self
            .outcome
            .counterexample
            .as_ref()
            .map_or(0, st_core::Schedule::len);
        write!(
            f,
            "counterexample [{}]: kinds {:?}, schedule {} steps",
            self.scenario.label,
            self.kinds(),
            len
        )
    }
}
