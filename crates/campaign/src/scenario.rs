//! Scenarios: one protocol run over one generated schedule, as data.
//!
//! A [`Scenario`] bundles everything needed to execute one cell of an
//! experiment grid — universe, generator spec, workload, stop rule, step
//! budget, seed, faulty set — and [`Scenario::run`] executes it into a
//! [`ScenarioOutcome`]. Construction of the simulator, the generator, and
//! the protocol stack all happen inside `run`, so scenarios can be executed
//! on any thread with no shared state; two runs of the same scenario are
//! bit-identical.

use st_agreement::{drive_adversarially, AgreementStack, StackKind};
use st_bgsim::{run_reduction, TrivialKDecide};
use st_core::subsets::KSubsets;
use st_core::timeliness::{empirical_bound, TimelinessAnalyzer};
use st_core::{
    AgreementTask, AgreementViolation, ProcSet, ProcessId, StepSource, TimelyPair, Universe, Value,
};
use st_fd::convergence::{
    certify_system_membership, kanti_omega_witness, wide_winnerset_stabilization,
    winnerset_stabilization, KAntiOmegaWitness, Stabilization,
};
use st_fd::{
    KAntiOmega, KAntiOmegaConfig, LeanOmega, LeanOmegaMachine, ProcessTimelyDetector,
    TimeoutPolicy, BASELINE_WINNERSET_PROBE, LEADER_PROBE, WINNERSET_PROBE,
};
use st_sched::{GeneratorSpec, TimeoutPolicySpec};
use st_sim::{RunConfig, RunStatus, Sim, StopWhen};

use crate::invariant::{Evidence, InvariantChecker, InvariantViolation};
use st_core::Schedule;

/// Converts a declarative [`TimeoutPolicySpec`] grid-axis value (from
/// `st-sched`, which does not depend on `st-fd`) into the concrete
/// [`TimeoutPolicy`] the failure detector consumes.
pub fn policy_from_spec(spec: TimeoutPolicySpec) -> TimeoutPolicy {
    match spec {
        TimeoutPolicySpec::Increment => TimeoutPolicy::Increment,
        TimeoutPolicySpec::Double => TimeoutPolicy::Double,
    }
}

/// Which simulator drive a set-based FD scenario uses. The three are
/// observationally identical (`st-fd`'s differential suite); experiments pin
/// one so ported tables reproduce their pre-campaign output byte for byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FdAbi {
    /// Async `ProcessCtx` futures (`Sim::spawn`) — E8's drive.
    Async,
    /// One automaton slot per process (`Sim::spawn_automaton`) — E2's drive.
    #[default]
    MachineSlot,
    /// Typed machine fleet (`Sim::run_automata`) — E7's drive.
    MachineFleet,
}

/// Which failure detector an FD-convergence scenario runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FdDetector {
    /// The paper's set-based Figure 2 k-anti-Ω.
    #[default]
    SetBased,
    /// The process-timeliness baseline (always driven async) — the
    /// motivation experiment's control arm.
    ProcessBased,
}

/// What protocol the scenario runs over the generated schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Workload {
    /// k-anti-Ω convergence: run the detector at every process for the full
    /// budget, then judge stabilization / the k-anti-Ω witness / (optionally)
    /// system membership on the trace.
    FdConvergence {
        /// Detector parameter `k`.
        k: usize,
        /// Resilience `t`.
        t: usize,
        /// Figure 2 line 17 timeout policy.
        policy: TimeoutPolicy,
        /// Simulator drive (set-based only; the baseline is always async).
        abi: FdAbi,
        /// Set- or process-based detector.
        detector: FdDetector,
        /// Record the executed schedule and certify `S^k_{t+1,n}` membership
        /// on it (cap `4(t+1)`, as E2 does).
        certify_membership: bool,
    },
    /// `(t,k,n)`-agreement via the full [`AgreementStack`] (trivial algorithm
    /// when `t < k`, FD + k-parallel Paxos otherwise), run until every
    /// correct process decides or the budget ends.
    Agreement {
        /// Resilience `t`.
        t: usize,
        /// Agreement degree `k`.
        k: usize,
        /// One proposal per process.
        inputs: Vec<Value>,
        /// Timeout policy for the FD underneath.
        policy: TimeoutPolicy,
        /// Optional pre-run schedule certification (solvable matrix cells
        /// certify conformance before trusting the run — see
        /// [`CertifyTimely`]).
        certify: Option<CertifyTimely>,
    },
    /// `(t,k,n)`-agreement driven by the **adaptive adversary** instead of
    /// the scenario's generator (the adversary constructs its schedule from
    /// protocol state; the generator spec is ignored and conventionally set
    /// to [`GeneratorSpec::round_robin`]).
    AdversarialAgreement {
        /// Resilience `t`.
        t: usize,
        /// Agreement degree `k`.
        k: usize,
        /// One proposal per process.
        inputs: Vec<Value>,
        /// Timeout policy for the FD underneath.
        policy: TimeoutPolicy,
        /// Processes crashed from the start (Theorem 27 case 2b).
        precrashed: ProcSet,
        /// Pair whose empirical bound on the executed schedule is certified.
        witness: Option<(ProcSet, ProcSet)>,
    },
    /// The Theorem 26 BG reduction: `universe.n()` simulators run `n_sim`
    /// copies of the trivial k-decide algorithm under the generated host
    /// schedule.
    BgReduction {
        /// Simulated process count.
        n_sim: usize,
        /// Agreement degree `k` of the simulated task.
        k: usize,
        /// Safe-agreement read quota per simulated read.
        max_reads: usize,
    },
    /// Large-n lean leader-election convergence ([`st_fd::LeanOmega`],
    /// `k = 1`, `O(n)` local state) — the `n > 64` scaling regime the
    /// set-based Figure 2 machinery cannot reach. Always driven on a fleet
    /// replay drive over the generated schedule; see [`FleetReplayDrive`].
    LeanConvergence {
        /// Resilience `t` (`1 ≤ t ≤ n − 1`).
        t: usize,
        /// Line-17 timeout policy.
        policy: TimeoutPolicy,
        /// Which replay drive steps the fleet.
        drive: FleetReplayDrive,
    },
    /// Large-n lean consensus ([`st_agreement::LeanConsensus`]: lean Ω +
    /// single-decree Paxos, proposals fixed at `100 + pid`) — the
    /// agreement-shaped workload of the scaling regime.
    LeanAgreement {
        /// Resilience `t` of the underlying lean FD.
        t: usize,
        /// Line-17 timeout policy.
        policy: TimeoutPolicy,
        /// Which replay drive steps the fleet.
        drive: FleetReplayDrive,
    },
    /// The paper's **full Figure 2 k-anti-Ω** past the single-word wall:
    /// a width-generic [`KAntiOmega`] machine fleet on a replay drive, at
    /// any `n ≤ MAX_PROCESSES`. The bitset width is dispatched at runtime
    /// from the universe size ([`st_core::words_for`]), so one workload
    /// value covers n = 8 and n = 256 alike. Outcomes are index- and
    /// rank-based (no `ProcSet`), mirroring the lean workloads; the
    /// stabilized winnerset is carried both as the raw probe payload
    /// (bits at `W = 1`, colex rank at `W > 1` — see
    /// [`st_fd::WINNERSET_PROBE`]) and as decoded member indices.
    WideFdConvergence {
        /// Detector parameter `k`.
        k: usize,
        /// Resilience `t`.
        t: usize,
        /// Figure 2 line 17 timeout policy.
        policy: TimeoutPolicy,
        /// Which replay drive steps the fleet.
        drive: FleetReplayDrive,
    },
}

/// Which fleet replay drive a lean scenario uses. Observationally
/// identical (the SoA differential suite); scenarios pin one so stored
/// outcomes are comparable across drives and PRs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FleetReplayDrive {
    /// Plain fleet replay ([`Sim::run_automata_replay`]).
    #[default]
    Plain,
    /// Phase-batched struct-of-arrays replay
    /// ([`Sim::run_automata_replay_soa`]) with the given slice length.
    Soa {
        /// Schedule slice length per batching round.
        slice_len: usize,
    },
}

/// Pre-run certification of a conforming cell: before the protocol runs,
/// the scenario rebuilds its generator from the spec, takes `prefix_len`
/// steps, and asks the timeliness engine whether the prefix contains an
/// `(i, j)` timely pair within `cap` — the solvability matrix's "is this
/// schedule really in `S^i_{j,n}`?" check. The verdict lands in
/// [`AgreementScenarioOutcome::certified`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CertifyTimely {
    /// Timely set size `i`.
    pub i: usize,
    /// Observed set size `j`.
    pub j: usize,
    /// Bound cap accepted by the certification.
    pub cap: usize,
    /// Prefix length swept by the analyzer.
    pub prefix_len: u64,
}

impl Workload {
    /// The stop rule this workload observes (see [`StopRule`]).
    pub fn default_stop(&self) -> StopRule {
        match self {
            Workload::FdConvergence { .. } => StopRule::BudgetOnly,
            Workload::Agreement { .. } => StopRule::AllCorrectDecided,
            // The adversary runs its own drive loop; BG stops when every
            // simulator finished. Both are budget-bounded. The lean replay
            // drives execute their whole schedule (decided machines become
            // no-ops), so the post-decision trace is always observed.
            Workload::AdversarialAgreement { .. }
            | Workload::BgReduction { .. }
            | Workload::LeanConvergence { .. }
            | Workload::LeanAgreement { .. }
            | Workload::WideFdConvergence { .. } => StopRule::BudgetOnly,
        }
    }

    /// This workload with its FD timeout policy replaced — the grid
    /// builder's timeout-policy axis. [`Workload::BgReduction`] has no
    /// failure detector underneath; it is returned unchanged.
    pub fn with_policy(mut self, new: TimeoutPolicy) -> Workload {
        match &mut self {
            Workload::FdConvergence { policy, .. }
            | Workload::Agreement { policy, .. }
            | Workload::AdversarialAgreement { policy, .. }
            | Workload::LeanConvergence { policy, .. }
            | Workload::LeanAgreement { policy, .. }
            | Workload::WideFdConvergence { policy, .. } => *policy = new,
            Workload::BgReduction { .. } => {}
        }
        self
    }

    /// [`with_policy`](Self::with_policy) from the declarative axis value.
    pub fn with_policy_spec(self, spec: TimeoutPolicySpec) -> Workload {
        self.with_policy(policy_from_spec(spec))
    }
}

/// When a scenario stops before its budget is exhausted.
///
/// Consulted by the generator-driven workloads ([`Workload::FdConvergence`]
/// and [`Workload::Agreement`]). The adaptive adversary and the BG
/// reduction own their drive loops — the adversary never stops early by
/// design and BG stops when every simulator finished — so the rule does not
/// apply to them (both remain budget-bounded).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StopRule {
    /// Run until the budget or the source ends (convergence workloads judge
    /// the full trace).
    #[default]
    BudgetOnly,
    /// Additionally stop as soon as every correct process decided
    /// (agreement workloads; `StopWhen::AllDecided`).
    AllCorrectDecided,
}

/// One cell of an experiment grid. See the module docs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// Free-form label carried into the outcome (table rows, debugging).
    pub label: String,
    /// The process universe.
    pub universe: Universe,
    /// The schedule generator, as data.
    pub generator: GeneratorSpec,
    /// The protocol run over the schedule.
    pub workload: Workload,
    /// When to stop early.
    pub stop: StopRule,
    /// Maximum executed steps.
    pub budget: u64,
    /// Scenario seed, offset into every embedded generator seed.
    pub seed: u64,
    /// Processes counted faulty for outcome checking (winnerset judgments,
    /// decision obligations). Defaults to what the generator silences.
    pub faulty: ProcSet,
}

impl Scenario {
    /// A scenario with the workload's default stop rule and the generator's
    /// own faulty set.
    pub fn new(
        label: impl Into<String>,
        universe: Universe,
        generator: GeneratorSpec,
        workload: Workload,
        budget: u64,
        seed: u64,
    ) -> Self {
        let faulty = generator.faulty(universe);
        let stop = workload.default_stop();
        Scenario {
            label: label.into(),
            universe,
            generator,
            workload,
            stop,
            budget,
            seed,
            faulty,
        }
    }

    /// Overrides the faulty set (e.g. when only a subset of the crash plan
    /// counts against the fault budget).
    pub fn with_faulty(mut self, faulty: ProcSet) -> Self {
        self.faulty = faulty;
        self
    }

    /// The correct set: complement of [`faulty`](Self::faulty).
    pub fn correct(&self) -> ProcSet {
        self.faulty.complement(self.universe)
    }

    /// Executes the scenario with the [`InvariantChecker`] on — the default
    /// everywhere: every campaign cell is a correctness probe. Deterministic:
    /// depends only on the scenario's fields, never on the calling thread or
    /// on other scenarios.
    pub fn run(&self) -> ScenarioOutcome {
        self.run_inner(true)
    }

    /// Executes the scenario without invariant checking or schedule
    /// recording — the pre-checker fast path, kept for honest overhead
    /// measurement (`st-bench`'s `invariant_overhead`). Outcome data is
    /// identical to [`run`](Self::run); `violations` is empty by
    /// construction.
    pub fn run_unchecked(&self) -> ScenarioOutcome {
        self.run_inner(false)
    }

    fn run_inner(&self, check: bool) -> ScenarioOutcome {
        let (data, evidence) = match &self.workload {
            Workload::FdConvergence {
                k,
                t,
                policy,
                abi,
                detector,
                certify_membership,
            } => {
                let (o, ev) =
                    self.run_fd(*k, *t, *policy, *abi, *detector, *certify_membership, check);
                (OutcomeData::Fd(o), ev)
            }
            Workload::Agreement {
                t,
                k,
                inputs,
                policy,
                certify,
            } => {
                let (o, ev) = self.run_agreement(*t, *k, inputs, *policy, *certify, check);
                (OutcomeData::Agreement(o), ev)
            }
            Workload::AdversarialAgreement {
                t,
                k,
                inputs,
                policy,
                precrashed,
                witness,
            } => (
                OutcomeData::Adversarial(self.run_adversarial(
                    *t,
                    *k,
                    inputs,
                    *policy,
                    *precrashed,
                    *witness,
                )),
                Evidence::default(),
            ),
            Workload::BgReduction {
                n_sim,
                k,
                max_reads,
            } => (
                OutcomeData::Bg(self.run_bg(*n_sim, *k, *max_reads)),
                Evidence::default(),
            ),
            Workload::LeanConvergence { t, policy, drive } => {
                let (o, ev) = self.run_lean(*t, *policy, *drive, false, check);
                (OutcomeData::Lean(o), ev)
            }
            Workload::LeanAgreement { t, policy, drive } => {
                let (o, ev) = self.run_lean(*t, *policy, *drive, true, check);
                (OutcomeData::Lean(o), ev)
            }
            Workload::WideFdConvergence {
                k,
                t,
                policy,
                drive,
            } => {
                let (o, ev) = self.run_wide_fd(*k, *t, *policy, *drive, check);
                (OutcomeData::WideFd(o), ev)
            }
        };
        let (violations, counterexample) = if check {
            let violations = InvariantChecker::for_scenario(self).check(&data, &evidence);
            let counterexample = if violations.is_empty() {
                None
            } else {
                evidence.executed
            };
            (violations, counterexample)
        } else {
            (Vec::new(), None)
        };
        ScenarioOutcome {
            rank: 0,
            label: self.label.clone(),
            data,
            violations,
            counterexample,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_fd(
        &self,
        k: usize,
        t: usize,
        policy: TimeoutPolicy,
        abi: FdAbi,
        detector: FdDetector,
        certify_membership: bool,
        record: bool,
    ) -> (FdOutcome, Evidence) {
        let universe = self.universe;
        let correct = self.correct();
        let mut src = self.generator.build(universe, self.seed);
        let mut sim = Sim::with_recording(universe, certify_membership || record);
        let mut cfg = RunConfig::steps(self.budget);
        if self.stop == StopRule::AllCorrectDecided {
            cfg = cfg.stop_when(StopWhen::AllDecided(correct));
        }
        let (status, probe_key) = match detector {
            FdDetector::SetBased => {
                let fd =
                    KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t).with_policy(policy));
                let status = match abi {
                    FdAbi::Async => {
                        for p in universe.processes() {
                            let fd = fd.clone();
                            sim.spawn(p, move |ctx| fd.run(ctx)).expect("fresh sim");
                        }
                        sim.run(&mut src, cfg)
                    }
                    FdAbi::MachineSlot => {
                        for p in universe.processes() {
                            sim.spawn_automaton(p, fd.machine()).expect("fresh sim");
                        }
                        sim.run(&mut src, cfg)
                    }
                    FdAbi::MachineFleet => {
                        let mut fleet: Vec<_> =
                            universe.processes().map(|_| fd.machine()).collect();
                        sim.run_automata(&mut fleet, &mut src, cfg)
                    }
                };
                (status, WINNERSET_PROBE)
            }
            FdDetector::ProcessBased => {
                let fd = ProcessTimelyDetector::alloc(&mut sim, k, t, policy);
                for p in universe.processes() {
                    let fd = fd.clone();
                    sim.spawn(p, move |ctx| fd.run(ctx)).expect("fresh sim");
                }
                (sim.run(&mut src, cfg), WINNERSET_PROBE)
            }
        };
        let status = status.expect("generator schedules stay within the universe");
        let mut report = sim.report();
        let (membership, stabilization, witness) = match detector {
            FdDetector::SetBased => (
                if certify_membership {
                    certify_system_membership(&report, universe, k, t + 1, 4 * (t + 1))
                } else {
                    None
                },
                winnerset_stabilization(&report, correct),
                kanti_omega_witness(&report, correct),
            ),
            // The baseline publishes under its own probe key and is judged
            // only by its flapping; its winnerset never stabilizes by
            // construction of the motivation workloads.
            FdDetector::ProcessBased => (None, None, None),
        };
        let flap_key = match detector {
            FdDetector::SetBased => probe_key,
            FdDetector::ProcessBased => BASELINE_WINNERSET_PROBE,
        };
        let after = self.budget * 3 / 4;
        let late_flaps = (0..universe.n())
            .map(|i| {
                report
                    .probes
                    .timeline(ProcessId::new(i), flap_key)
                    .iter()
                    .filter(|&&(s, _)| s > after)
                    .count()
            })
            .sum();
        let evidence = Evidence {
            executed: if record { report.executed.take() } else { None },
            ballots: None,
        };
        (
            FdOutcome {
                status,
                steps: report.steps,
                membership,
                stabilization,
                witness,
                late_flaps,
            },
            evidence,
        )
    }

    fn run_agreement(
        &self,
        t: usize,
        k: usize,
        inputs: &[Value],
        policy: TimeoutPolicy,
        certify: Option<CertifyTimely>,
        record: bool,
    ) -> (AgreementScenarioOutcome, Evidence) {
        // Certification sweeps a *fresh* build of the same generator spec —
        // bit-identical to the schedule the protocol is about to see.
        let certified = certify.map(|c| {
            let prefix = self
                .generator
                .build(self.universe, self.seed)
                .take_schedule(c.prefix_len as usize);
            TimelinessAnalyzer::new(self.universe)
                .find_timely_pair(&prefix, c.i, c.j, c.cap)
                .is_some()
        });
        let task = AgreementTask::new(t, k, self.universe.n()).expect("valid task parameters");
        let mut stack = AgreementStack::build_full(task, inputs, policy, record);
        let kind = stack.kind();
        let mut src = self.generator.build(self.universe, self.seed);
        // A failed certification proves nothing about the protocol, so the
        // drive is skipped (zero budget): the outcome is the stack's
        // initial-state snapshot with `certified: Some(false)` — and the
        // multi-million-step budget is not burned on a cell already known
        // to be mismatched.
        let budget = if certified == Some(false) {
            0
        } else {
            self.budget
        };
        // `AgreementStack::run` hardwires the all-decided stop; driving the
        // simulator directly lets a `StopRule::BudgetOnly` override observe
        // the full-budget post-decision trace. With the default rule this is
        // exactly what `stack.run` does.
        let mut cfg = RunConfig::steps(budget);
        if self.stop == StopRule::AllCorrectDecided {
            cfg = cfg.stop_when(StopWhen::AllDecided(self.correct()));
        }
        let status = stack
            .sim_mut()
            .run(&mut src, cfg)
            .expect("agreement schedules stay within the task universe");
        let run = stack.snapshot(status, self.faulty);
        let evidence = if record {
            Evidence {
                executed: run.report.executed.clone(),
                ballots: stack.kset().map(|kset| {
                    let records = kset
                        .instances()
                        .iter()
                        .map(|paxos| paxos.peek_records(stack.sim()))
                        .collect();
                    (self.universe.n(), records)
                }),
            }
        } else {
            Evidence::default()
        };
        (
            AgreementScenarioOutcome {
                kind,
                status: run.status,
                decided_at: run.report.all_decided_step(run.outcome.correct),
                decisions: run.outcome.decisions.clone(),
                correct: run.outcome.correct,
                violations: run.violations.clone(),
                clean: run.is_clean_termination(),
                safe: run.is_safe(),
                certified,
            },
            evidence,
        )
    }

    fn run_adversarial(
        &self,
        t: usize,
        k: usize,
        inputs: &[Value],
        policy: TimeoutPolicy,
        precrashed: ProcSet,
        witness: Option<(ProcSet, ProcSet)>,
    ) -> AdversarialOutcome {
        let task = AgreementTask::new(t, k, self.universe.n()).expect("valid task parameters");
        let stack = AgreementStack::build_full(task, inputs, policy, true);
        let adv = drive_adversarially(stack, self.budget, precrashed, witness);
        AdversarialOutcome {
            status: adv.run.status,
            decided: adv
                .run
                .outcome
                .decisions
                .iter()
                .filter(|d| d.is_some())
                .count(),
            blocked: adv.run.outcome.decisions.iter().all(|d| d.is_none()),
            safe: adv.run.is_safe(),
            freeze_events: adv.freeze_events,
            max_frozen: adv.max_frozen,
            certificate: adv.certificate,
        }
    }

    /// The lean (large-n) workloads: build the whole schedule up front from
    /// the generator — the replay drives want a materialized prefix, and
    /// that prefix doubles as the checker's executed-schedule evidence
    /// without paying for trace recording (a replay executes its schedule
    /// verbatim, finished machines included) — then drive a
    /// [`LeanOmegaMachine`] fleet (`consensus: false`) or a
    /// [`LeanConsensusMachine`] fleet (`consensus: true`, proposals
    /// `100 + pid`) on the configured replay drive.
    fn run_lean(
        &self,
        t: usize,
        policy: TimeoutPolicy,
        drive: FleetReplayDrive,
        consensus: bool,
        check: bool,
    ) -> (LeanOutcome, Evidence) {
        let universe = self.universe;
        let n = universe.n();
        let schedule = self
            .generator
            .build(universe, self.seed)
            .take_schedule(self.budget as usize);
        let mut sim = Sim::new(universe);
        let fd = LeanOmega::alloc(&mut sim, t, policy);
        let cfg = RunConfig::steps(self.budget);
        let status = if consensus {
            let cons = st_agreement::LeanConsensus::alloc(&mut sim);
            let mut fleet: Vec<st_agreement::LeanConsensusMachine> = universe
                .processes()
                .map(|p| cons.machine(&fd, 100 + p.index() as Value))
                .collect();
            match drive {
                FleetReplayDrive::Plain => sim.run_automata_replay(&mut fleet, &schedule, cfg),
                FleetReplayDrive::Soa { slice_len } => {
                    sim.run_automata_replay_soa(&mut fleet, &schedule, slice_len, cfg)
                }
            }
        } else {
            let mut fleet: Vec<LeanOmegaMachine> =
                universe.processes().map(|_| fd.machine()).collect();
            match drive {
                FleetReplayDrive::Plain => sim.run_automata_replay(&mut fleet, &schedule, cfg),
                FleetReplayDrive::Soa { slice_len } => {
                    sim.run_automata_replay_soa(&mut fleet, &schedule, slice_len, cfg)
                }
            }
        }
        .expect("generator schedules stay within the universe");
        let report = sim.report();
        // Leader stabilization: every correct process's *last* published
        // leader agrees (publications happen only on change, so the last
        // timeline entry is the last change). Processes the generator
        // silenced are exempt — they may be stuck on a stale leader.
        let faulty = self.faulty;
        let mut last: Option<(u64, u64)> = None; // (leader, max last-change step)
        let mut stabilized = true;
        let mut publications = 0u64;
        let after = self.budget * 3 / 4;
        let mut late_flaps = 0usize;
        for i in 0..n {
            let p = ProcessId::new(i);
            let timeline = report.probes.timeline(p, LEADER_PROBE);
            publications += timeline.len() as u64;
            late_flaps += timeline.iter().filter(|&&(s, _)| s > after).count();
            if i < st_core::PROCSET_CAPACITY && faulty.contains(p) {
                continue;
            }
            match (timeline.last(), &mut last) {
                (None, _) => stabilized = false,
                (Some(&(step, leader)), Some((l, max_step))) => {
                    if leader != *l {
                        stabilized = false;
                    }
                    *max_step = (*max_step).max(step);
                }
                (Some(&(step, leader)), slot @ None) => *slot = Some((leader, step)),
            }
        }
        let stabilization = match (stabilized, last) {
            (true, Some((leader, step))) => Some(LeanStabilization {
                leader: leader as usize,
                step,
            }),
            _ => None,
        };
        let decisions = sim.decisions();
        let decided = decisions.iter().filter(|d| d.is_some()).count();
        let mut distinct_values: Vec<Value> = decisions.iter().flatten().map(|d| d.value).collect();
        distinct_values.sort_unstable();
        distinct_values.dedup();
        let evidence = Evidence {
            executed: if check { Some(schedule) } else { None },
            ballots: None,
        };
        (
            LeanOutcome {
                status,
                steps: report.steps,
                stabilization,
                publications,
                late_flaps,
                decided,
                distinct_values,
            },
            evidence,
        )
    }

    /// The width-generic Figure 2 workload: pick the narrowest supported
    /// bitset width that holds the universe, then run the paper's full
    /// detector fleet on the configured replay drive. The generic body is
    /// monomorphized per width; widths between the supported powers of two
    /// round up (a wider set than necessary is correct, just larger).
    fn run_wide_fd(
        &self,
        k: usize,
        t: usize,
        policy: TimeoutPolicy,
        drive: FleetReplayDrive,
        check: bool,
    ) -> (WideFdOutcome, Evidence) {
        match st_core::words_for(self.universe.n()) {
            1 => self.run_wide_fd_width::<1>(k, t, policy, drive, check),
            2 => self.run_wide_fd_width::<2>(k, t, policy, drive, check),
            3..=4 => self.run_wide_fd_width::<4>(k, t, policy, drive, check),
            5..=8 => self.run_wide_fd_width::<8>(k, t, policy, drive, check),
            9..=16 => self.run_wide_fd_width::<16>(k, t, policy, drive, check),
            w => unreachable!("words_for caps at MAX_PROCESSES/64 = 16, got {w}"),
        }
    }

    fn run_wide_fd_width<const W: usize>(
        &self,
        k: usize,
        t: usize,
        policy: TimeoutPolicy,
        drive: FleetReplayDrive,
        check: bool,
    ) -> (WideFdOutcome, Evidence) {
        let universe = self.universe;
        let n = universe.n();
        // As for the lean workloads: materialize the schedule up front — the
        // replay drives execute it verbatim, and it doubles as the checker's
        // executed-schedule evidence without trace recording.
        let schedule = self
            .generator
            .build(universe, self.seed)
            .take_schedule(self.budget as usize);
        let mut sim = Sim::new(universe);
        let fd =
            KAntiOmega::<W>::alloc_wide(&mut sim, KAntiOmegaConfig::new(k, t).with_policy(policy));
        let cfg = RunConfig::steps(self.budget);
        let mut fleet: Vec<_> = universe.processes().map(|_| fd.machine()).collect();
        let status = match drive {
            FleetReplayDrive::Plain => sim.run_automata_replay(&mut fleet, &schedule, cfg),
            FleetReplayDrive::Soa { slice_len } => {
                sim.run_automata_replay_soa(&mut fleet, &schedule, slice_len, cfg)
            }
        }
        .expect("generator schedules stay within the universe");
        let report = sim.report();
        // Faulty sets only name indices below the ProcSet capacity; any
        // higher index is correct by construction (as in the lean judge).
        let faulty = self.faulty;
        let correct = universe
            .processes()
            .filter(|p| p.index() >= st_core::PROCSET_CAPACITY || !faulty.contains(*p));
        let stabilization = wide_winnerset_stabilization(&report, correct).map(|st| {
            let members: Vec<usize> = if W == 1 {
                ProcSet::from_bits(st.winnerset_rank)
                    .iter()
                    .map(|p| p.index())
                    .collect()
            } else {
                st_core::subsets::wide_unrank::<W>(universe, k, st.winnerset_rank)
                    .iter()
                    .map(|p| p.index())
                    .collect()
            };
            WideFdStabilization {
                winnerset_code: st.winnerset_rank,
                members,
                step: st.step,
            }
        });
        let after = self.budget * 3 / 4;
        let mut publications = 0u64;
        let mut late_flaps = 0usize;
        for i in 0..n {
            let timeline = report.probes.timeline(ProcessId::new(i), WINNERSET_PROBE);
            publications += timeline.len() as u64;
            late_flaps += timeline.iter().filter(|&&(s, _)| s > after).count();
        }
        let evidence = Evidence {
            executed: if check { Some(schedule) } else { None },
            ballots: None,
        };
        (
            WideFdOutcome {
                status,
                steps: report.steps,
                stabilization,
                publications,
                late_flaps,
            },
            evidence,
        )
    }

    fn run_bg(&self, n_sim: usize, k: usize, max_reads: usize) -> BgOutcome {
        let machines: Vec<TrivialKDecide> = (0..n_sim)
            .map(|u| TrivialKDecide::new(u, k, 300 + u as Value))
            .collect();
        let mut src = self.generator.build(self.universe, self.seed);
        let report = run_reduction(
            self.universe.n(),
            machines,
            max_reads,
            &mut src,
            self.budget,
        );
        // Theorem 26 property (ii), measured on the highest-indexed
        // simulator's linearization (the one E6's crash plans keep alive):
        // the worst empirical bound over live (k+1)-sets of simulated
        // processes. Computed here so the outcome carries the verdict's
        // ingredients without shipping whole schedules through the store.
        let live_sim = self.universe.n() - 1;
        let sched = &report.simulated_schedules[live_sim];
        let stalled = report.stalled_simulated();
        let sim_universe = Universe::new(n_sim).expect("simulated universe in range");
        let full = ProcSet::full(sim_universe);
        let mut max_live_bound = 0usize;
        if k < n_sim {
            for set in KSubsets::new(sim_universe, k + 1) {
                if !set.is_disjoint(stalled) {
                    continue;
                }
                max_live_bound = max_live_bound.max(empirical_bound(sched, set, full));
            }
        }
        BgOutcome {
            status: report.status,
            stalled,
            distinct_simulator_values: report.distinct_simulator_values(),
            simulator_decisions: report.simulator_decisions.clone(),
            simulated_decisions: report.simulated_decisions.clone(),
            host_steps: report.host_steps,
            live_sched_len: sched.len(),
            max_live_bound,
        }
    }
}

/// The result of one scenario, positioned in its campaign.
///
/// Derives `PartialEq`/`Eq`: the determinism differential test compares
/// whole outcome lists across worker counts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScenarioOutcome {
    /// Position of the scenario in its campaign (set by the campaign
    /// runner; 0 for standalone `Scenario::run` calls).
    pub rank: usize,
    /// The scenario's label, copied through.
    pub label: String,
    /// Workload-shaped payload.
    pub data: OutcomeData,
    /// Invariants the [`InvariantChecker`] found violated (empty on healthy
    /// runs, and always empty from [`Scenario::run_unchecked`]).
    pub violations: Vec<InvariantViolation>,
    /// The executed schedule, kept as a replayable counterexample when any
    /// invariant fired and the workload recorded one.
    pub counterexample: Option<Schedule>,
}

/// Workload-shaped outcome payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OutcomeData {
    /// FD-convergence payload.
    Fd(FdOutcome),
    /// Agreement payload.
    Agreement(AgreementScenarioOutcome),
    /// Adaptive-adversary payload.
    Adversarial(AdversarialOutcome),
    /// BG-reduction payload.
    Bg(BgOutcome),
    /// Lean large-n payload (convergence or consensus).
    Lean(LeanOutcome),
    /// Width-generic Figure 2 payload.
    WideFd(WideFdOutcome),
}

impl OutcomeData {
    /// The FD payload, when this is one.
    pub fn as_fd(&self) -> Option<&FdOutcome> {
        match self {
            OutcomeData::Fd(o) => Some(o),
            _ => None,
        }
    }

    /// The agreement payload, when this is one.
    pub fn as_agreement(&self) -> Option<&AgreementScenarioOutcome> {
        match self {
            OutcomeData::Agreement(o) => Some(o),
            _ => None,
        }
    }

    /// The adversarial payload, when this is one.
    pub fn as_adversarial(&self) -> Option<&AdversarialOutcome> {
        match self {
            OutcomeData::Adversarial(o) => Some(o),
            _ => None,
        }
    }

    /// The BG payload, when this is one.
    pub fn as_bg(&self) -> Option<&BgOutcome> {
        match self {
            OutcomeData::Bg(o) => Some(o),
            _ => None,
        }
    }

    /// The lean large-n payload, when this is one.
    pub fn as_lean(&self) -> Option<&LeanOutcome> {
        match self {
            OutcomeData::Lean(o) => Some(o),
            _ => None,
        }
    }

    /// The width-generic Figure 2 payload, when this is one.
    pub fn as_wide_fd(&self) -> Option<&WideFdOutcome> {
        match self {
            OutcomeData::WideFd(o) => Some(o),
            _ => None,
        }
    }
}

/// Lean leader stabilization: the index every correct process's final
/// leader publication named, and the step of the last change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LeanStabilization {
    /// The commonly elected leader index (no `ProcSet`: valid at any `n`).
    pub leader: usize,
    /// Last leader-change step over the correct processes.
    pub step: u64,
}

/// What a lean large-n scenario observed ([`Workload::LeanConvergence`] /
/// [`Workload::LeanAgreement`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeanOutcome {
    /// Why the drive ended.
    pub status: RunStatus,
    /// Steps executed.
    pub steps: u64,
    /// Leader stabilization over correct processes, if reached.
    pub stabilization: Option<LeanStabilization>,
    /// Total leader publications (changes) across the fleet.
    pub publications: u64,
    /// Leader publications in the last quarter of the budget (flapping).
    pub late_flaps: usize,
    /// Processes that decided (always 0 for convergence workloads).
    pub decided: usize,
    /// Distinct decided values, sorted (consensus demands ≤ 1).
    pub distinct_values: Vec<Value>,
}

/// Wide winnerset stabilization: the common final winnerset of the
/// width-generic detector, at any universe size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WideFdStabilization {
    /// The raw stabilized probe payload: the winnerset's bits at `W = 1`,
    /// its colex rank in `Π^k_n` at `W > 1` (the dual encoding of
    /// [`st_fd::WINNERSET_PROBE`]).
    pub winnerset_code: u64,
    /// The winnerset's member indices, sorted ascending (no `ProcSet`:
    /// valid at any `n`).
    pub members: Vec<usize>,
    /// Step by which every correct process had converged to it.
    pub step: u64,
}

/// What a width-generic Figure 2 scenario observed
/// ([`Workload::WideFdConvergence`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WideFdOutcome {
    /// Why the drive ended.
    pub status: RunStatus,
    /// Steps executed.
    pub steps: u64,
    /// Lemma 22 stabilization over correct processes, if reached.
    pub stabilization: Option<WideFdStabilization>,
    /// Total winnerset publications across the fleet.
    pub publications: u64,
    /// Winnerset publications in the last quarter of the budget (flapping).
    pub late_flaps: usize,
}

/// What an FD-convergence scenario observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FdOutcome {
    /// Why the drive ended.
    pub status: RunStatus,
    /// Steps executed.
    pub steps: u64,
    /// `S^k_{t+1,n}` membership certificate of the executed schedule, when
    /// requested.
    pub membership: Option<TimelyPair>,
    /// Lemma 22 stabilization (common final winnerset).
    pub stabilization: Option<Stabilization>,
    /// The k-anti-Ω witness (a correct process eventually never accused).
    pub witness: Option<KAntiOmegaWitness>,
    /// Winnerset publications in the last quarter of the budget, summed over
    /// processes — the flapping measure of the motivation experiment.
    pub late_flaps: usize,
}

/// What an agreement scenario observed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AgreementScenarioOutcome {
    /// Which protocol the stack deployed.
    pub kind: StackKind,
    /// Why the run ended.
    pub status: RunStatus,
    /// Step by which every correct process had decided, if all did.
    pub decided_at: Option<u64>,
    /// Per-process decisions.
    pub decisions: Vec<Option<Value>>,
    /// The correct set the obligations were judged against.
    pub correct: ProcSet,
    /// Checker violations.
    pub violations: Vec<AgreementViolation>,
    /// Every correct process decided and no property was violated.
    pub clean: bool,
    /// Safety held (violations are at most termination).
    pub safe: bool,
    /// Pre-run schedule certification verdict, when the workload asked for
    /// one ([`CertifyTimely`]); `None` when not requested.
    pub certified: Option<bool>,
}

impl AgreementScenarioOutcome {
    /// Number of distinct decided values.
    pub fn distinct_decisions(&self) -> usize {
        let set: std::collections::BTreeSet<Value> =
            self.decisions.iter().flatten().copied().collect();
        set.len()
    }

    /// Number of processes that decided.
    pub fn decided_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_some()).count()
    }
}

/// What an adaptive-adversary scenario observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AdversarialOutcome {
    /// Why the drive ended.
    pub status: RunStatus,
    /// Processes that decided (the adversary's goal is 0).
    pub decided: usize,
    /// No process decided.
    pub blocked: bool,
    /// Safety held throughout.
    pub safe: bool,
    /// Steps denied to in-danger processes.
    pub freeze_events: u64,
    /// Largest simultaneous freeze (≤ k for a correct adversary).
    pub max_frozen: usize,
    /// Certified timeliness witness of the executed schedule.
    pub certificate: Option<TimelyPair>,
}

/// What a BG-reduction scenario observed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BgOutcome {
    /// Why the host run ended.
    pub status: RunStatus,
    /// Simulated processes that never decided.
    pub stalled: ProcSet,
    /// Distinct values adopted by the simulators.
    pub distinct_simulator_values: usize,
    /// Decisions adopted by the simulators.
    pub simulator_decisions: Vec<Option<Value>>,
    /// Decisions reached inside the simulated run.
    pub simulated_decisions: Vec<Option<Value>>,
    /// Host steps executed.
    pub host_steps: u64,
    /// Length of the highest-indexed (never-crashed) simulator's
    /// linearization of the simulated schedule.
    pub live_sched_len: usize,
    /// Worst empirical bound over live `(k+1)`-sets of simulated processes
    /// on that linearization — Theorem 26 property (ii)'s measure.
    pub max_live_bound: usize,
}
